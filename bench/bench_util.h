// Shared helpers for the benchmark harness.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/swm/panner.h"
#include "src/swm/wm.h"
#include "src/twm/twm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace bench_util {

inline std::unique_ptr<xserver::Server> MakeServer(int width = 1152, int height = 900) {
  return std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{width, height, false}});
}

inline std::unique_ptr<swm::WindowManager> MakeSwm(xserver::Server* server,
                                                   const std::string& resources = "",
                                                   const std::string& template_name =
                                                       "openlook") {
  swm::WindowManager::Options options;
  options.resources = resources;
  options.template_name = template_name;
  auto wm = std::make_unique<swm::WindowManager>(server, options);
  wm->Start();
  return wm;
}

inline xlib::ClientAppConfig ClientConfig(int index, const std::string& clazz = "Bench") {
  xlib::ClientAppConfig config;
  config.name = "client" + std::to_string(index);
  config.wm_class = {"client" + std::to_string(index), clazz};
  config.command = {"client" + std::to_string(index)};
  config.geometry = {(index * 13) % 600, (index * 7) % 500, 120, 80};
  return config;
}

// Spawns `n` mapped clients and settles the WM event queue via `process`.
template <typename ProcessFn>
std::vector<std::unique_ptr<xlib::ClientApp>> SpawnClients(xserver::Server* server, int n,
                                                           ProcessFn&& process,
                                                           const std::string& clazz =
                                                               "Bench") {
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  apps.reserve(n);
  for (int i = 0; i < n; ++i) {
    apps.push_back(std::make_unique<xlib::ClientApp>(server, ClientConfig(i, clazz)));
    apps.back()->Map();
  }
  process();
  return apps;
}

}  // namespace bench_util

#endif  // BENCH_BENCH_UTIL_H_
