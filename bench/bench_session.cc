// §7 — session management.
//
// f.places generation and the restart-matching path, scaling with client
// count and with duplicate WM_COMMAND entries.  Expected shape: places
// generation linear in N; a single restart match linear in table size with
// O(1) removal once found (first-match-wins).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/swm/session.h"

namespace {

// f.places over N managed clients.
void BM_GeneratePlaces(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(),
                                "swm*virtualDesktop: 4608x3600\nswm*panner: False\n");
  auto apps = bench_util::SpawnClients(server.get(), clients,
                                       [&] { wm->ProcessEvents(); });
  for (auto _ : state) {
    std::string places = wm->GeneratePlaces();
    benchmark::DoNotOptimize(places);
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_GeneratePlaces)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// swmhints record encode/parse round trip.
void BM_SwmHintsRoundTrip(benchmark::State& state) {
  swm::SwmHintsRecord record;
  record.geometry = {1010, 359, 120, 120};
  record.icon_position = xbase::Point{0, 0};
  record.state = xproto::WmState::kIconic;
  record.sticky = true;
  record.command = "xterm -e vi notes.txt";
  record.machine = "farhost";
  for (auto _ : state) {
    auto reparsed = swm::SwmHintsRecord::Parse(record.Encode());
    benchmark::DoNotOptimize(reparsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwmHintsRoundTrip);

// Matching one reparented client against a restart table of size N
// (worst case: the match is at the end).
void BM_RestartTableMatch(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  swm::RestartTable prototype;
  for (int i = 0; i < entries; ++i) {
    swm::SwmHintsRecord record;
    record.geometry = {i, i, 10, 10};
    record.command = "client" + std::to_string(i);
    prototype.Add(record);
  }
  std::string text = prototype.ToPropertyText();
  std::string needle = "client" + std::to_string(entries - 1);
  for (auto _ : state) {
    state.PauseTiming();
    swm::RestartTable table = swm::RestartTable::FromPropertyText(text);
    state.ResumeTiming();
    auto match = table.MatchAndConsume(needle, "");
    benchmark::DoNotOptimize(match);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestartTableMatch)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

// End-to-end restart: seed N records, start swm, map N matching clients.
// Manual timing: only the swm-start + manage phase is measured; server and
// client construction happen off the clock.
void BM_FullSessionRestore(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto server = bench_util::MakeServer();
    {
      xlib::Display seeder(server.get(), "localhost");
      for (int i = 0; i < clients; ++i) {
        swm::SwmHintsRecord record;
        record.geometry = {40 * (i % 20), 30 * (i / 20), 100, 60};
        record.command = "client" + std::to_string(i);
        swm::AppendSwmHints(&seeder, 0, record);
      }
    }
    std::vector<std::unique_ptr<xlib::ClientApp>> apps;
    for (int i = 0; i < clients; ++i) {
      apps.push_back(
          std::make_unique<xlib::ClientApp>(server.get(), bench_util::ClientConfig(i)));
    }

    auto start = std::chrono::steady_clock::now();
    auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
    for (auto& app : apps) {
      app->Map();
    }
    wm->ProcessEvents();
    benchmark::DoNotOptimize(wm->ClientCount());
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());

    apps.clear();
    wm.reset();
    server.reset();
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_FullSessionRestore)->Arg(4)->Arg(16)->Arg(64)->UseManualTime();

// Duplicate WM_COMMAND pathological case: every entry identical.
void BM_RestartTableAllDuplicates(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  swm::RestartTable prototype;
  for (int i = 0; i < entries; ++i) {
    swm::SwmHintsRecord record;
    record.geometry = {i, i, 10, 10};
    record.command = "xterm";
    prototype.Add(record);
  }
  std::string text = prototype.ToPropertyText();
  for (auto _ : state) {
    state.PauseTiming();
    swm::RestartTable table = swm::RestartTable::FromPropertyText(text);
    state.ResumeTiming();
    // Consume all of them, in order, as N xterms get reparented.
    for (int i = 0; i < entries; ++i) {
      benchmark::DoNotOptimize(table.MatchAndConsume("xterm", ""));
    }
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RestartTableAllDuplicates)->Arg(4)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
