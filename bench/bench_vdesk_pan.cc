// §6 — Virtual Desktop panning.
//
// Panning is one window move regardless of population ("the desktop is an
// X window different from the actual root"), while a naive
// move-every-window scheme is linear in window count.  The sweep varies the
// number of managed windows and the sticky fraction; sticky windows are
// exempt from panning by construction.  Also exercises the 32767 ceiling.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

constexpr char kResources[] =
    "swm*virtualDesktop: 4608x3600\n"
    "swm*panner: False\n";

// Pan cost with N windows, S% of them sticky.
void BM_Pan(benchmark::State& state) {
  const int windows = static_cast<int>(state.range(0));
  const int sticky_percent = static_cast<int>(state.range(1));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kResources);
  auto apps = bench_util::SpawnClients(server.get(), windows,
                                       [&] { wm->ProcessEvents(); });
  int made_sticky = 0;
  for (auto* client : wm->Clients()) {
    if (made_sticky * 100 < windows * sticky_percent) {
      wm->SetSticky(client, true);
      ++made_sticky;
    }
  }
  wm->ProcessEvents();
  swm::VirtualDesktop* desk = wm->vdesk(0);
  int toggle = 0;
  for (auto _ : state) {
    desk->PanTo(toggle++ % 2 == 0 ? xbase::Point{1200, 900} : xbase::Point{0, 0});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["windows"] = windows;
  state.counters["sticky_pct"] = sticky_percent;
}
BENCHMARK(BM_Pan)
    ->Args({1, 0})
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({64, 25})
    ->Args({64, 50})
    ->Args({64, 100});

// The strawman without a Virtual Desktop: pan by moving every frame.
void BM_NaivePanMovesEveryWindow(benchmark::State& state) {
  const int windows = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  auto apps = bench_util::SpawnClients(server.get(), windows,
                                       [&] { wm->ProcessEvents(); });
  std::vector<swm::ManagedClient*> clients = wm->Clients();
  int toggle = 0;
  for (auto _ : state) {
    int dx = toggle++ % 2 == 0 ? -1200 : 1200;
    for (swm::ManagedClient* client : clients) {
      xbase::Rect geometry = client->FrameGeometry();
      wm->MoveFrameTo(client, {geometry.x + dx, geometry.y});
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["windows"] = windows;
}
BENCHMARK(BM_NaivePanMovesEveryWindow)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// Stick/unstick round trip: re-decoration + reparent between roots.
void BM_StickToggle(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kResources);
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  for (auto _ : state) {
    swm::ManagedClient* client = wm->FindClient(app.window());
    wm->SetSticky(client, !client->sticky);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StickToggle);

// Desktop resize (the panner-resize path) across sizes up to the 32767
// protocol ceiling.
void BM_DesktopResize(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kResources);
  swm::VirtualDesktop* desk = wm->vdesk(0);
  int toggle = 0;
  for (auto _ : state) {
    desk->Resize(toggle++ % 2 == 0 ? xbase::Size{size, size}
                                   : xbase::Size{size / 2, size / 2});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DesktopResize)->Arg(4096)->Arg(16384)->Arg(32767);

// USPosition vs PPosition placement cost (the §6.3.2 logic).
void BM_PlacementWithHints(benchmark::State& state) {
  const bool user_position = state.range(0) != 0;
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kResources);
  wm->vdesk(0)->PanTo({1000, 1000});
  int i = 0;
  for (auto _ : state) {
    xlib::ClientAppConfig config = bench_util::ClientConfig(i++);
    config.geometry = {500, 400, 80, 50};
    config.size_hint_flags =
        (user_position ? xproto::kUSPosition | xproto::kUSSize
                       : xproto::kPPosition | xproto::kPSize);
    xlib::ClientApp app(server.get(), config);
    app.Map();
    wm->ProcessEvents();
    state.PauseTiming();
    app.display().DestroyWindow(app.window());
    wm->ProcessEvents();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementWithHints)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
