// §5 — SHAPE extension support.
//
// Shape-mask region conversion, shape-to-children composition, shaped
// reparenting (the shapeit decoration for oclock/xeyes) and shaped
// hit-testing.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/base/bitmap.h"
#include "src/base/region.h"

namespace {

// Bitmap mask -> banded region (the server-side ShapeCombineMask cost).
void BM_MaskToRegion(benchmark::State& state) {
  const int diameter = static_cast<int>(state.range(0));
  const xbase::Bitmap& mask = xbase::CircleMask(diameter);
  for (auto _ : state) {
    xbase::Region region = mask.ToRegion();
    benchmark::DoNotOptimize(region);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaskToRegion)->Arg(16)->Arg(64)->Arg(256);

// Region algebra on shaped windows (intersection against clip rectangles).
void BM_ShapeClipIntersection(benchmark::State& state) {
  xbase::Region circle = xbase::CircleMask(128).ToRegion();
  xbase::Region clip(xbase::Rect{32, 32, 64, 64});
  for (auto _ : state) {
    xbase::Region out = circle.Intersect(clip);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShapeClipIntersection);

// Managing a shaped client: decoration choice flips to the shaped panel,
// and the frame is shaped to its children (paper §5's oclock example).
void BM_ManageShapedClient(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  int i = 0;
  for (auto _ : state) {
    xlib::ClientAppConfig config = bench_util::ClientConfig(i++);
    config.wm_class = {"oclock", "Clock"};
    config.geometry = {10, 10, 64, 64};
    config.shaped = true;
    xlib::ClientApp app(server.get(), config);
    app.Map();
    wm->ProcessEvents();
    benchmark::DoNotOptimize(server->IsShaped(app.window()));
    state.PauseTiming();
    app.display().DestroyWindow(app.window());
    wm->ProcessEvents();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ManageShapedClient);

// Shape-to-children panel composition with N children (§5: "it is shaped
// to contain its children").
void BM_ShapeToChildren(benchmark::State& state) {
  const int children = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  std::string def;
  for (int i = 0; i < children; ++i) {
    def += "button b" + std::to_string(i) + " +" + std::to_string(i % 8) + "+" +
           std::to_string(i / 8) + " ";
  }
  oi::Toolkit& toolkit = wm->toolkit(0);
  auto lookup = [&](const std::string& name) -> std::optional<std::string> {
    if (name == "shapedPanel") {
      return def;
    }
    return std::nullopt;
  };
  auto tree = toolkit.BuildPanelTree("shapedPanel", server->RootWindow(0), lookup);
  tree->DoLayout();
  xlib::Display& dpy = wm->display();
  for (auto _ : state) {
    // The shape-to-children composition itself.
    std::vector<xbase::Rect> rects;
    for (const auto& child : tree->children()) {
      rects.push_back(child->geometry());
    }
    dpy.ShapeSetRegion(tree->window(), xbase::Region(std::move(rects)));
  }
  state.SetItemsProcessed(state.iterations() * children);
}
BENCHMARK(BM_ShapeToChildren)->Arg(2)->Arg(16)->Arg(64);

// Hit-testing through a shaped window (pointer events follow the shape).
void BM_ShapedHitTest(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  xproto::ClientId client = server->Connect();
  xproto::WindowId win = server->CreateWindow(client, server->RootWindow(0),
                                              {0, 0, 128, 128}, 0,
                                              xproto::WindowClass::kInputOutput, false);
  server->MapWindow(client, win);
  server->ShapeSetMask(client, win, xbase::CircleMask(128));
  int toggle = 0;
  for (auto _ : state) {
    // Alternate inside/outside the circle.
    server->SimulateMotion(toggle++ % 2 == 0 ? xbase::Point{64, 64}
                                             : xbase::Point{2, 2});
    benchmark::DoNotOptimize(server->QueryPointer().window);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShapedHitTest);

}  // namespace

BENCHMARK_MAIN();
