// Evaluation §8 — the resource-database design decision:
//
//   "One of the biggest mistakes made with twm was using a separate
//    initialization file rather than the more general X resource database
//    for configuration."
//
// Quantifies the cost of that choice: Xrm lookup latency vs database size,
// specific (tight, per-client) vs non-specific (loose) entries, and the
// attribute-query path objects actually use.  Expected shape: lookups
// bounded by query depth (trie walk), largely insensitive to database size.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/swm/templates.h"
#include "src/xrdb/database.h"

namespace {

xrdb::ResourceDatabase MakeDb(int entries) {
  xrdb::ResourceDatabase db;
  for (int i = 0; i < entries; ++i) {
    // A spread of realistic swm entries.
    std::string cls = "Class" + std::to_string(i % 97);
    std::string inst = "inst" + std::to_string(i % 89);
    switch (i % 4) {
      case 0:
        db.Put("swm*" + cls + "*decoration", "panel" + std::to_string(i));
        break;
      case 1:
        db.Put("swm.color.screen0." + cls + "." + inst + ".decoration",
               "panel" + std::to_string(i));
        break;
      case 2:
        db.Put("swm*button.b" + std::to_string(i) + ".bindings", "<Btn1> : f.raise");
        break;
      case 3:
        db.Put("Swm*panel.p" + std::to_string(i), "button a +0+0 panel client +0+1");
        break;
    }
  }
  db.Put("swm*decoration", "fallback");
  db.Put("swm.color.screen0.Target.target.decoration", "specific-hit");
  return db;
}

// Non-specific lookup (loose-binding fallback), vs DB size.
void BM_LooseLookup(benchmark::State& state) {
  xrdb::ResourceDatabase db = MakeDb(static_cast<int>(state.range(0)));
  std::vector<std::string> names{"swm", "color", "screen0", "NoSuch", "nosuch",
                                 "decoration"};
  std::vector<std::string> classes{"Swm", "Color", "Screen0", "NoSuch", "nosuch",
                                   "Decoration"};
  for (auto _ : state) {
    auto value = db.Get(names, classes);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LooseLookup)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Fully specific lookup (the paper's class.instance form), vs DB size.
void BM_SpecificLookup(benchmark::State& state) {
  xrdb::ResourceDatabase db = MakeDb(static_cast<int>(state.range(0)));
  std::vector<std::string> names{"swm", "color", "screen0", "Target", "target",
                                 "decoration"};
  std::vector<std::string> classes{"Swm", "Color", "Screen0", "Target", "target",
                                   "Decoration"};
  for (auto _ : state) {
    auto value = db.Get(names, classes);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecificLookup)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Missing resource: the full backtracking search.
void BM_MissLookup(benchmark::State& state) {
  xrdb::ResourceDatabase db = MakeDb(static_cast<int>(state.range(0)));
  std::vector<std::string> names{"swm", "color", "screen0", "Target", "target",
                                 "noSuchAttr"};
  std::vector<std::string> classes{"Swm", "Color", "Screen0", "Target", "target",
                                   "NoSuchAttr"};
  for (auto _ : state) {
    auto value = db.Get(names, classes);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MissLookup)->Arg(100)->Arg(10000);

// Query depth scaling: deeper component paths cost more (trie walk).
void BM_LookupDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  xrdb::ResourceDatabase db;
  std::string entry = "swm";
  std::vector<std::string> names{"swm"};
  std::vector<std::string> classes{"Swm"};
  for (int i = 1; i < depth; ++i) {
    entry += ".c" + std::to_string(i);
    names.push_back("c" + std::to_string(i));
    classes.push_back("C" + std::to_string(i));
  }
  db.Put(entry, "value");
  for (auto _ : state) {
    auto value = db.Get(names, classes);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Parsing a whole template (what swm startup does).
void BM_LoadTemplate(benchmark::State& state) {
  std::string text = *swm::TemplateText("openlook");
  for (auto _ : state) {
    xrdb::ResourceDatabase db;
    benchmark::DoNotOptimize(db.LoadFromString(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadTemplate);

// The end-to-end object attribute query (toolkit prefix + tree prefix +
// path), as issued during decoration construction.
void BM_ObjectAttributeQuery(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  oi::Object* name = client->name_object;
  for (auto _ : state) {
    auto value = name->Attribute("bindings");
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectAttributeQuery);

// Same query with the toolkit's attribute/path caches dropped every
// iteration: the price of the first query after a database mutation
// (interned-path rebuild + trie walk, no memoized value).
void BM_ObjectAttributeQueryCold(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  oi::Object* name = client->name_object;
  const oi::Toolkit& toolkit = wm->toolkit(0);
  for (auto _ : state) {
    toolkit.InvalidateQueryCaches();
    auto value = name->Attribute("bindings");
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectAttributeQueryCold);

// A decoration attribute storm: every frame object of every managed client
// re-queried for the attributes decoration construction reads.  This is
// what f.restart or a template reload costs per redecoration pass; the
// cache-hit counters show how much of the storm the memoized layer absorbs.
void BM_DecorationAttributeStorm(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  auto apps = bench_util::SpawnClients(server.get(), clients,
                                       [&wm]() { wm->ProcessEvents(); });
  const oi::Toolkit& toolkit = wm->toolkit(0);
  static const char* kAttributes[] = {"bindings", "decoration", "font",
                                      "foreground", "background"};
  toolkit.ResetQueryStats();
  for (auto _ : state) {
    for (swm::ManagedClient* client : wm->Clients()) {
      for (const char* attribute : kAttributes) {
        auto frame_value = client->frame->Attribute(attribute);
        benchmark::DoNotOptimize(frame_value);
        if (client->name_object != nullptr) {
          auto name_value = client->name_object->Attribute(attribute);
          benchmark::DoNotOptimize(name_value);
        }
      }
    }
  }
  const oi::Toolkit::QueryStats& stats = toolkit.query_stats();
  state.SetItemsProcessed(static_cast<int64_t>(stats.queries));
  state.counters["cache_hit_rate"] =
      stats.queries == 0 ? 0.0
                         : static_cast<double>(stats.cache_hits) /
                               static_cast<double>(stats.queries);
}
BENCHMARK(BM_DecorationAttributeStorm)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
