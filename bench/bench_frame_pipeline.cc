// Event-storm benchmark for the retained-mode frame pipeline (PR 4,
// docs/RENDERING.md): N clients each emit M configure/property events per
// ProcessEvents drain.  The retained pipeline coalesces the batch and paints
// each damaged object once; the `immediate_render` ablation re-lays-out and
// repaints the whole tree at every invalidation, which is what the toolkit
// did before the dirty-flag refactor.
//
// Counters (averaged per drain): objects painted, pixels the server was
// asked to draw, events dispatched after coalescing.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/xlib/icccm.h"

namespace {

constexpr int kClients = 8;
constexpr int kEventsPerClient = 12;

void RunEventStorm(benchmark::State& state, bool immediate_render) {
  auto server = bench_util::MakeServer();
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.immediate_render = immediate_render;
  auto wm = std::make_unique<swm::WindowManager>(server.get(), options);
  wm->Start();
  auto apps = bench_util::SpawnClients(server.get(), kClients,
                                       [&] { wm->ProcessEvents(); });
  wm->toolkit(0).ResetFrameStats();
  server->ResetRenderStats();

  int round = 0;
  for (auto _ : state) {
    for (int e = 0; e < kEventsPerClient; ++e) {
      for (int i = 0; i < kClients; ++i) {
        xlib::ClientApp& app = *apps[i];
        // Alternating move/resize requests plus a retitle: the storm a
        // busy client (or a drag) produces between two WM wakeups.
        xbase::Rect geometry{(i * 13 + e * 3 + round) % 500,
                             (i * 7 + e * 5) % 400,
                             100 + ((e + round) % 5) * 8,
                             60 + ((e + i) % 4) * 6};
        app.RequestMoveResize(geometry);
        xlib::SetWmName(&app.display(), app.window(),
                        "client" + std::to_string(i) + "-" +
                            std::to_string((e + round) % 7));
      }
    }
    wm->ProcessEvents();
    ++round;
  }

  const oi::FrameScheduler::Stats& frames = wm->toolkit(0).frame_stats();
  const xserver::Server::RenderStats& render = server->render_stats();
  auto per_drain = [&](double value) {
    return benchmark::Counter(value, benchmark::Counter::kAvgIterations);
  };
  state.counters["objects_painted"] = per_drain(
      static_cast<double>(frames.objects_painted));
  state.counters["layouts"] = per_drain(static_cast<double>(frames.layouts));
  state.counters["pixels_drawn"] = per_drain(
      static_cast<double>(render.pixels_drawn));
  state.counters["events_dispatched"] = per_drain(
      static_cast<double>(wm->events_dispatched()));
  state.counters["events_coalesced"] = per_drain(
      static_cast<double>(wm->events_coalesced()));
  state.SetItemsProcessed(state.iterations() * kClients * kEventsPerClient);
}

void BM_FramePipeline_EventStorm_Retained(benchmark::State& state) {
  RunEventStorm(state, /*immediate_render=*/false);
}
BENCHMARK(BM_FramePipeline_EventStorm_Retained);

void BM_FramePipeline_EventStorm_Immediate(benchmark::State& state) {
  RunEventStorm(state, /*immediate_render=*/true);
}
BENCHMARK(BM_FramePipeline_EventStorm_Immediate);

}  // namespace

BENCHMARK_MAIN();
