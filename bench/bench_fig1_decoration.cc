// Figure 1 — the OpenLook+ decoration (paper §4.1.1).
//
// Regenerates the figure as ASCII (printed before the benchmarks run) and
// measures the machinery behind it: building a decoration tree from the
// resource database, and the full manage pipeline (reparent + decorate +
// map) as the number of already-managed windows grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace {

void PrintFigure1() {
  xserver::Server server({xserver::ScreenConfig{60, 18, false}});
  auto wm = bench_util::MakeSwm(&server, "swm*panner: False\n");
  xlib::ClientAppConfig config;
  config.name = "xclock";
  config.wm_class = {"xclock", "XClock"};
  config.command = {"xclock"};
  config.geometry = {0, 0, 40, 9};
  xlib::ClientApp xclock(&server, config);
  xclock.Map();
  wm->ProcessEvents();
  std::printf("Figure 1: OpenLook+ decoration (regenerated)\n%s\n",
              server.RenderScreen(0).ToString().c_str());
}

// Cost of building one decoration tree from the panel definition (objects,
// windows, attribute queries, bindings parse) — the core §4 machinery.
void BM_BuildDecorationTree(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  oi::Toolkit& toolkit = wm->toolkit(0);
  auto lookup = [&](const std::string& name) { return wm->PanelDefinition(0, name); };
  for (auto _ : state) {
    auto tree =
        toolkit.BuildPanelTree("openLook", server->RootWindow(0), lookup);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildDecorationTree);

// Full manage pipeline for one new client while N windows are already
// managed (map-redirect, decorate, reparent, place, map).
void BM_ManageWindow(benchmark::State& state) {
  const int existing = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  auto apps = bench_util::SpawnClients(server.get(), existing,
                                       [&] { wm->ProcessEvents(); });
  int index = existing;
  for (auto _ : state) {
    xlib::ClientApp app(server.get(), bench_util::ClientConfig(index++));
    app.Map();
    wm->ProcessEvents();
    benchmark::DoNotOptimize(wm->ClientCount());
    state.PauseTiming();
    app.display().DestroyWindow(app.window());
    wm->ProcessEvents();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ManageWindow)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// Re-titling (WM_NAME change -> button relabel + relayout), a common
// steady-state decoration update.
void BM_TitleUpdate(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  int i = 0;
  for (auto _ : state) {
    xlib::SetWmName(&app.display(), app.window(), "title " + std::to_string(i++));
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TitleUpdate);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
