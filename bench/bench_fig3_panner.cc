// Figure 3 — the Virtual Desktop panner (paper §6.1).
//
// Regenerates the panner rendering and measures the panner's update cost as
// windows accumulate, panner-driven panning, and the panner-resize ->
// desktop-resize path.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace {

constexpr char kPannerResources[] =
    "swm*virtualDesktop: 4608x3600\n"
    "swm*panner: True\n"
    "swm*pannerScale: 48\n";

void PrintFigure3() {
  xserver::Server server({xserver::ScreenConfig{100, 40, false}});
  auto wm = bench_util::MakeSwm(&server,
                                "swm*virtualDesktop: 400x160\n"
                                "swm*panner: True\n"
                                "swm*pannerScale: 8\n");
  // A few windows spread over the desktop so the miniature shows boxes.
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  for (int i = 0; i < 3; ++i) {
    xlib::ClientAppConfig config;
    config.name = "w" + std::to_string(i);
    config.wm_class = {"w", "W"};
    config.geometry = {0, 0, 60, 24};
    apps.push_back(std::make_unique<xlib::ClientApp>(&server, config));
    apps.back()->Map();
  }
  wm->ProcessEvents();
  int i = 0;
  for (auto* client : wm->Clients()) {
    if (!client->is_internal) {
      wm->MoveFrameTo(client, {40 + 120 * i, 20 + 40 * i});
      ++i;
    }
  }
  wm->vdesk(0)->PanTo({60, 30});
  wm->panner(0)->Update();
  wm->ProcessEvents();
  std::printf("Figure 3: Virtual Desktop panner (regenerated)\n%s\n",
              server.RenderScreen(0).ToString().c_str());
}

// Rebuilding the miniature after a change, vs managed window count.
void BM_PannerUpdate(benchmark::State& state) {
  const int windows = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kPannerResources);
  auto apps = bench_util::SpawnClients(server.get(), windows,
                                       [&] { wm->ProcessEvents(); });
  swm::Panner* panner = wm->panner(0);
  for (auto _ : state) {
    panner->Update();
  }
  state.SetItemsProcessed(state.iterations() * windows);
}
BENCHMARK(BM_PannerUpdate)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// A full panner interaction: click into the panner to recenter the
// viewport (Btn1 semantics of §6.1).
void BM_PannerClickPan(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kPannerResources);
  auto apps = bench_util::SpawnClients(server.get(), 16,
                                       [&] { wm->ProcessEvents(); });
  swm::Panner* panner = wm->panner(0);
  xbase::Point origin = server->RootPosition(panner->window());
  int toggle = 0;
  for (auto _ : state) {
    xbase::Point target{origin.x + 10 + (toggle % 2) * 30, origin.y + 10};
    ++toggle;
    server->SimulateMotion(target);
    server->SimulateButton(1, true);
    server->SimulateButton(1, false);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PannerClickPan);

// Miniature-window move: press Btn2 on a miniature, drop elsewhere.
void BM_PannerWindowMove(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kPannerResources);
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  swm::Panner* panner = wm->panner(0);
  int toggle = 0;
  for (auto _ : state) {
    wm->MoveFrameTo(client, {480, 480});
    wm->ProcessEvents();
    xbase::Point origin = server->RootPosition(panner->window());
    server->SimulateMotion({origin.x + 10, origin.y + 10});
    server->SimulateButton(2, true);
    wm->ProcessEvents();
    server->SimulateMotion({origin.x + 20 + (toggle % 2) * 10, origin.y + 20});
    ++toggle;
    server->SimulateButton(2, false);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PannerWindowMove);

// Resizing the panner resizes the Virtual Desktop (paper §6.1).
void BM_PannerResizeDesktop(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), kPannerResources);
  wm->ProcessEvents();
  swm::ManagedClient* panner_client = wm->FindClient(wm->panner(0)->window());
  int toggle = 0;
  for (auto _ : state) {
    xbase::Size size = toggle++ % 2 == 0 ? xbase::Size{80, 60} : xbase::Size{96, 75};
    wm->ResizeClient(panner_client, size);
    wm->ProcessEvents();
    benchmark::DoNotOptimize(wm->vdesk(0)->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PannerResizeDesktop);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
