// Ablations of swm's design choices (DESIGN.md §4):
//
//  * Decoration complexity: how the §4 object model's cost scales with the
//    number of objects in the decoration panel — the price of policy
//    freedom over twm's fixed titlebar.
//  * Specific resources: what the per-client class/instance prefix (§3)
//    adds to every attribute query.
//  * Re-decoration: the cost of swm's rebuild-on-stick choice (§6.2)
//    versus a plain reparent.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

std::string DecorationWithButtons(int buttons) {
  std::string def;
  for (int i = 0; i < buttons; ++i) {
    def += "button b" + std::to_string(i) + " +" + std::to_string(i) + "+0 ";
  }
  def += "panel client +0+1";
  return def;
}

// Manage cost vs decoration object count (0 extra buttons = bare client
// container, like the shaped decoration; 3 = OpenLook; more = baroque).
void BM_Ablation_DecorationComplexity(benchmark::State& state) {
  const int buttons = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  std::string resources = "swm*decoration: fancy\nswm*panner: False\n"
                          "swm*panel.fancy: " +
                          DecorationWithButtons(buttons) + "\n";
  auto wm = bench_util::MakeSwm(server.get(), resources);
  int index = 0;
  for (auto _ : state) {
    xlib::ClientApp app(server.get(), bench_util::ClientConfig(index++));
    app.Map();
    wm->ProcessEvents();
    state.PauseTiming();
    app.display().DestroyWindow(app.window());
    wm->ProcessEvents();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["objects"] = buttons + 2;
}
BENCHMARK(BM_Ablation_DecorationComplexity)->Arg(0)->Arg(3)->Arg(8)->Arg(24);

// Attribute query cost with and without a populated specific-resource
// space (class/instance entries that force longer precedence searches).
void BM_Ablation_SpecificResourceLoad(benchmark::State& state) {
  const bool populated = state.range(0) != 0;
  std::string resources = "swm*panner: False\n";
  if (populated) {
    for (int i = 0; i < 500; ++i) {
      resources += "swm*Class" + std::to_string(i) + "*inst" + std::to_string(i) +
                   "*background: x\n";
    }
  }
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), resources);
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  oi::Object* name = wm->FindClient(app.window())->name_object;
  for (auto _ : state) {
    benchmark::DoNotOptimize(name->Attribute("background"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ablation_SpecificResourceLoad)->Arg(0)->Arg(1);

// Stick toggle = full re-decoration (swm's fidelity-to-resources choice)
// vs what a plain reparent between roots would cost.
void BM_Ablation_StickRedecorate(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(),
                                "swm*virtualDesktop: 2304x1800\nswm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  for (auto _ : state) {
    swm::ManagedClient* client = wm->FindClient(app.window());
    wm->SetSticky(client, !client->sticky);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ablation_StickRedecorate);

void BM_Ablation_PlainReparent(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(),
                                "swm*virtualDesktop: 2304x1800\nswm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  xlib::Display& dpy = wm->display();
  xproto::WindowId frame = client->frame->window();
  xproto::WindowId root = dpy.RootWindow(0);
  xproto::WindowId desk = wm->vdesk(0)->window();
  bool on_root = false;
  for (auto _ : state) {
    dpy.ReparentWindow(frame, on_root ? desk : root, {50, 50});
    on_root = !on_root;
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ablation_PlainReparent);

// Bindings-table size: matching cost with many bindings per object.
void BM_Ablation_BindingTableSize(benchmark::State& state) {
  const int bindings = static_cast<int>(state.range(0));
  std::string table;
  for (int i = 0; i < bindings; ++i) {
    table += "<Key>K" + std::to_string(i) + " : f.nop\\n";
  }
  table += "<Btn1> : f.nop";
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(),
                                "swm*panner: False\nSwm*button.name.bindings: " + table +
                                    "\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  oi::Object* name = wm->FindClient(app.window())->name_object;
  xtb::BindingEvent event;
  event.kind = xtb::EventKind::kButtonPress;
  event.button = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(name->MatchBindings(event));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ablation_BindingTableSize)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
