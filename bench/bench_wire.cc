// Wire-codec benchmarks (PR 6, docs/PROTOCOL.md): decode throughput for the
// hardened parser and wall-clock for deterministic trace replay.
//
//   BM_DecodeRequestStream   parse a pre-encoded mixed request stream;
//                            messages_per_second is the decode rate.
//   BM_DispatchBytesStream   the same stream through the full Server
//                            dispatch path (parse + execute + events).
//   BM_TraceReplay           replay a recorded session (honest traffic,
//                            input, a mutated hostile stream) into a fresh
//                            server per iteration.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/xlib/display.h"
#include "src/xproto/trace.h"
#include "src/xproto/wire.h"
#include "src/xserver/faults.h"
#include "src/xserver/replay.h"

namespace {

// A mixed stream representative of session traffic: window lifecycle,
// configuration, properties, and drawing.
std::vector<uint8_t> BuildStream(int frames, size_t* frame_count) {
  xproto::WireWriter w;
  size_t count = 0;
  for (int i = 0; i < frames; ++i) {
    switch (i % 6) {
      case 0:
        xproto::EncodeRequest(
            xproto::CreateWindowRequest{.parent = 1,
                                        .geometry = {i % 500, i % 300, 120, 80}},
            &w);
        break;
      case 1:
        xproto::EncodeRequest(
            xproto::MapWindowRequest{.window = static_cast<uint32_t>(i % 40 + 2)}, &w);
        break;
      case 2:
        xproto::EncodeRequest(
            xproto::ConfigureWindowRequest{
                .window = static_cast<uint32_t>(i % 40 + 2),
                .value_mask = xproto::kConfigX | xproto::kConfigY,
                .geometry = {i % 400, i % 200, 0, 0}},
            &w);
        break;
      case 3:
        xproto::EncodeRequest(
            xproto::ChangePropertyRequest{
                .window = static_cast<uint32_t>(i % 40 + 2),
                .property = 5,
                .type = 1,
                .format = 8,
                .mode = 0,
                .data = std::vector<uint8_t>(32, 'x')},
            &w);
        break;
      case 4:
        xproto::EncodeRequest(
            xproto::DrawRequest{.window = static_cast<uint32_t>(i % 40 + 2),
                                .kind = 0,
                                .rect = {0, 0, 40, 20},
                                .fill = '#'},
            &w);
        break;
      case 5:
        xproto::EncodeRequest(
            xproto::SelectInputRequest{.window = static_cast<uint32_t>(i % 40 + 2),
                                       .event_mask = 0xFFFF},
            &w);
        break;
    }
    ++count;
  }
  *frame_count = count;
  return w.Take();
}

void BM_DecodeRequestStream(benchmark::State& state) {
  size_t frames = 0;
  std::vector<uint8_t> stream = BuildStream(600, &frames);
  size_t decoded = 0;
  for (auto _ : state) {
    std::span<const uint8_t> rest(stream);
    while (!rest.empty()) {
      xproto::Request request;
      xproto::ParseError error;
      size_t used = xproto::DecodeRequest(rest, &request, &error);
      if (used == 0) {
        state.SkipWithError("decode failed on honest stream");
        break;
      }
      rest = rest.subspan(used);
      ++decoded;
      benchmark::DoNotOptimize(request);
    }
  }
  state.counters["messages_per_second"] = benchmark::Counter(
      static_cast<double>(decoded), benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_DecodeRequestStream);

void BM_DispatchBytesStream(benchmark::State& state) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  size_t frames = 0;
  std::vector<uint8_t> stream = BuildStream(600, &frames);
  auto server = bench_util::MakeServer();
  xproto::ClientId client = server->Connect("bench");
  size_t dispatched = 0;
  for (auto _ : state) {
    xserver::Server::DispatchResult result = server->DispatchBytes(client, stream);
    dispatched += result.requests_dispatched;
  }
  state.counters["messages_per_second"] = benchmark::Counter(
      static_cast<double>(dispatched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchBytesStream);

// Records one session up front: honest wire-mode traffic, simulated input,
// and a hostile stream mangled by the seeded wire mutations.
xproto::Trace RecordSession() {
  xserver::Server server;
  xproto::TraceRecorder recorder;
  server.SetTraceRecorder(&recorder);

  xlib::Display honest(&server, "bench-honest");
  honest.set_wire_mode(true);
  xproto::WindowId root = server.RootWindow(0);
  for (int i = 0; i < 20; ++i) {
    xproto::WindowId w =
        honest.CreateWindow(root, {(i * 17) % 150, (i * 11) % 80, 40, 20});
    honest.MapWindow(w);
    honest.MoveWindow(w, {(i * 23) % 140, (i * 7) % 70});
  }

  xserver::FaultPlan plan;
  plan.seed = 99;
  plan.bitflip_request_permille = 300;
  plan.lie_length_permille = 150;
  plan.truncate_request_permille = 150;
  plan.scramble_opcode_permille = 150;
  server.InstallFaultPlan(plan);
  xproto::ClientId hostile = server.Connect("bench-hostile");
  size_t frames = 0;
  std::vector<uint8_t> stream = BuildStream(200, &frames);
  server.DispatchBytes(hostile, stream);
  server.ClearFaultPlan();

  for (int i = 0; i < 10; ++i) {
    server.SimulateMotion({(i * 13) % 150, (i * 9) % 80});
    server.SimulateButton(1, true);
    server.SimulateButton(1, false);
  }

  server.SetTraceRecorder(nullptr);
  recorder.RecordExpect(server.TotalRequests(), server.render_stats().draw_ops,
                        static_cast<uint64_t>(server.render_stats().pixels_drawn));
  return recorder.Take();
}

void BM_TraceReplay(benchmark::State& state) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  xproto::Trace trace = RecordSession();
  size_t records = 0;
  for (auto _ : state) {
    xserver::Server server;
    xserver::ReplayResult result = xserver::ReplayTrace(&server, trace);
    if (!result.expectations_met) {
      state.SkipWithError("replay diverged");
      break;
    }
    records += result.records_applied;
  }
  state.counters["records_per_second"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["trace_records"] =
      benchmark::Counter(static_cast<double>(trace.records.size()));
}
BENCHMARK(BM_TraceReplay);

}  // namespace

BENCHMARK_MAIN();
