// Layout-policy engine (docs/POLICIES.md).
//
// Two costs matter: the per-manage overhead each policy adds (a manage storm
// of N clients — slot policies reflow the population every manage, so the
// storm is O(N^2) in ApplySlot calls), and the cost of a runtime policy
// switch (SetLayoutPolicy relayouts every screen).  The floating policy is
// the baseline: its manage storm is the pre-refactor cascade placement and
// its relayout is a no-op.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/swm/policy/dynamic_policy.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/policy/tiling_policy.h"

namespace {

// Managing N clients under a given policy, end to end through the WM's
// event loop.  Manual timing: server/client construction is off the clock.
void ManageStorm(benchmark::State& state, const std::string& policy) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto server = bench_util::MakeServer();
    std::vector<std::unique_ptr<xlib::ClientApp>> apps;
    apps.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      apps.push_back(
          std::make_unique<xlib::ClientApp>(server.get(), bench_util::ClientConfig(i)));
    }

    auto start = std::chrono::steady_clock::now();
    auto wm = bench_util::MakeSwm(
        server.get(), "swm*panner: False\nswm.layout.policy: " + policy + "\n");
    for (auto& app : apps) {
      app->Map();
    }
    wm->ProcessEvents();
    benchmark::DoNotOptimize(wm->ClientCount());
    auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());

    apps.clear();
    wm.reset();
    server.reset();
  }
  state.SetItemsProcessed(state.iterations() * clients);
}

void BM_ManageStorm_Floating(benchmark::State& state) {
  ManageStorm(state, "floating");
}
void BM_ManageStorm_Maximize(benchmark::State& state) {
  ManageStorm(state, "maximize");
}
void BM_ManageStorm_Tiling(benchmark::State& state) { ManageStorm(state, "tiling"); }
void BM_ManageStorm_Dynamic(benchmark::State& state) {
  ManageStorm(state, "dynamic");
}
BENCHMARK(BM_ManageStorm_Floating)->Arg(8)->Arg(32)->UseManualTime();
BENCHMARK(BM_ManageStorm_Maximize)->Arg(8)->Arg(32)->UseManualTime();
BENCHMARK(BM_ManageStorm_Tiling)->Arg(8)->Arg(32)->UseManualTime();
BENCHMARK(BM_ManageStorm_Dynamic)->Arg(8)->Arg(32)->UseManualTime();

// One full runtime policy switch over a standing population of N clients:
// SetLayoutPolicy tears the old policy down, adopts the population and
// relayouts every screen.  Cycles through all four policies so each
// iteration pays four switches (reported per switch via items processed).
void BM_PolicySwitch(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  auto apps = bench_util::SpawnClients(server.get(), clients,
                                       [&] { wm->ProcessEvents(); });
  const std::vector<std::string>& names = swm::LayoutPolicyNames();
  for (auto _ : state) {
    for (const std::string& name : names) {
      benchmark::DoNotOptimize(wm->SetLayoutPolicy(name));
    }
  }
  state.SetItemsProcessed(state.iterations() * names.size());
}
BENCHMARK(BM_PolicySwitch)->Arg(4)->Arg(16)->Arg(64);

// The pure slot geometry, isolated from the WM: how expensive is computing
// a layout for N windows?  (Answers whether reflow cost is geometry or
// request traffic — it is traffic; this is nanoseconds.)
void BM_SlotGeometry(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto tiling = swm::TilingPolicy::SplitSlots({1152, 900}, count);
    benchmark::DoNotOptimize(tiling);
    auto dynamic = swm::DynamicPolicy::GridSlots({1152, 900}, count);
    benchmark::DoNotOptimize(dynamic);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SlotGeometry)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
