// Parallel painter benchmark (docs/RENDERING.md): how wall-clock and work
// distribution respond to Options::paint_threads.
//
// Two shapes of parallelism:
//   - MultiScreen: four populated screens rendered via RenderAllScreens;
//     each worker owns whole screens (per-root ownership).
//   - DamageBands: one large screen, a many-band damage region rendered
//     incrementally via RenderScreenInto; the damage bands are partitioned
//     across workers, each painting a private tile.
//
// Counters record the per-worker raster-work split (worker_cells_min/max as
// a fraction of the total) so the work balance is visible even on hosts
// where real concurrency is not: on a single-core machine the wall-clock
// for threads=4 cannot beat threads=1 — the balance counters show the
// partition is even, the BENCH_7 methodology note in docs/RENDERING.md
// covers the caveat.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "bench/bench_util.h"
#include "src/xlib/icccm.h"

namespace {

constexpr int kScreens = 4;
constexpr int kClientsPerScreen = 6;

std::unique_ptr<xserver::Server> MakeMultiScreenServer(int screens) {
  std::vector<xserver::ScreenConfig> configs;
  for (int i = 0; i < screens; ++i) {
    configs.push_back(xserver::ScreenConfig{1152, 900, false});
  }
  return std::make_unique<xserver::Server>(configs);
}

// Spawns clients spread across all screens by warping the pointer (swm
// manages new windows on the pointer's screen).
std::vector<std::unique_ptr<xlib::ClientApp>> PopulateScreens(
    xserver::Server* server, swm::WindowManager* wm, int per_screen) {
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  for (int screen = 0; screen < server->ScreenCount(); ++screen) {
    server->WarpPointer(screen, {10, 10});
    for (int i = 0; i < per_screen; ++i) {
      xlib::ClientAppConfig config = bench_util::ClientConfig(
          screen * per_screen + i, "ParallelPaint");
      config.geometry = {(i * 160) % 900, (i * 130) % 700, 220, 160};
      apps.push_back(std::make_unique<xlib::ClientApp>(server, config));
      apps.back()->Map();
      wm->ProcessEvents();
    }
  }
  server->WarpPointer(0, {10, 10});
  return apps;
}

void ReportWorkerBalance(benchmark::State& state,
                         const std::vector<uint64_t>& worker_cells) {
  uint64_t total = std::accumulate(worker_cells.begin(), worker_cells.end(),
                                   uint64_t{0});
  if (total == 0) {
    return;
  }
  uint64_t lo = *std::min_element(worker_cells.begin(), worker_cells.end());
  uint64_t hi = *std::max_element(worker_cells.begin(), worker_cells.end());
  state.counters["worker_share_min"] = static_cast<double>(lo) / total;
  state.counters["worker_share_max"] = static_cast<double>(hi) / total;
}

// Four screens, each with its own window population: RenderAllScreens fans
// the screens out across the pool.
void BM_ParallelPaint_MultiScreen(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto server = MakeMultiScreenServer(kScreens);
  auto wm = bench_util::MakeSwm(server.get());
  auto apps = PopulateScreens(server.get(), wm.get(), kClientsPerScreen);
  server->SetPaintThreads(threads);

  uint64_t cells = 0;
  for (auto _ : state) {
    std::vector<xbase::Canvas> screens = server->RenderAllScreens();
    for (const xbase::Canvas& c : screens) {
      cells += c.cells_written();
    }
    benchmark::DoNotOptimize(screens);
  }
  state.counters["cells_per_iter"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * kScreens);
}
BENCHMARK(BM_ParallelPaint_MultiScreen)->Arg(1)->Arg(2)->Arg(4);

// One big screen, a storm of damage bands repainted incrementally: the
// banded-damage path the retained pipeline produces each frame.
void BM_ParallelPaint_DamageBands(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get());
  auto apps = bench_util::SpawnClients(server.get(), 8,
                                       [&] { wm->ProcessEvents(); });
  server->SetPaintThreads(threads);

  xbase::Canvas frame = server->RenderScreen(0);
  std::vector<uint64_t> worker_cells;
  std::vector<uint64_t> balance;
  int round = 0;
  for (auto _ : state) {
    // 16 disjoint damage bands marching down the screen, ~1/3 of it total.
    xbase::Region damage;
    for (int band = 0; band < 16; ++band) {
      damage.UnionRect(xbase::Rect{(band * 67 + round * 31) % 400,
                                   band * 56 + (round % 7), 700, 18});
    }
    server->RenderScreenInto(0, damage, &frame, &worker_cells);
    if (balance.empty()) {
      balance.assign(worker_cells.size(), 0);
    }
    for (size_t w = 0; w < worker_cells.size(); ++w) {
      balance[w] += worker_cells[w];
    }
    benchmark::DoNotOptimize(frame);
    ++round;
  }
  ReportWorkerBalance(state, balance);
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ParallelPaint_DamageBands)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
