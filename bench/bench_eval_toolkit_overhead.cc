// Evaluation §8 — the paper's central performance claim:
//
//   "swm, like any toolkit based window manager, has somewhat slower
//    performance than a window manager written directly on top of Xlib."
//
// Head-to-head: swm (OI objects, resource lookups, bindings) vs the twm
// baseline (fixed decoration, direct xlib) on identical operations.  The
// expected *shape*: both linear in window count, swm slower by a constant
// factor — the flexibility/performance trade-off the paper calls
// "well worth the speed trade-off".
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

// ---- Manage/unmanage ---------------------------------------------------------

void BM_Swm_ManageUnmanage(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  for (auto _ : state) {
    std::vector<std::unique_ptr<xlib::ClientApp>> apps;
    for (int i = 0; i < batch; ++i) {
      apps.push_back(
          std::make_unique<xlib::ClientApp>(server.get(), bench_util::ClientConfig(i)));
      apps.back()->Map();
    }
    wm->ProcessEvents();
    for (auto& app : apps) {
      app->display().DestroyWindow(app->window());
    }
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Swm_ManageUnmanage)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_Twm_ManageUnmanage(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  twm::Twm wm(server.get());
  wm.Start();
  for (auto _ : state) {
    std::vector<std::unique_ptr<xlib::ClientApp>> apps;
    for (int i = 0; i < batch; ++i) {
      apps.push_back(
          std::make_unique<xlib::ClientApp>(server.get(), bench_util::ClientConfig(i)));
      apps.back()->Map();
    }
    wm.ProcessEvents();
    for (auto& app : apps) {
      app->display().DestroyWindow(app->window());
    }
    wm.ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Twm_ManageUnmanage)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// ---- Move --------------------------------------------------------------------

void BM_Swm_MoveWindow(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  int i = 0;
  for (auto _ : state) {
    wm->MoveFrameTo(client, {10 + (i % 50), 10 + (i % 40)});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swm_MoveWindow);

void BM_Twm_MoveWindow(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  twm::Twm wm(server.get());
  wm.Start();
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm.ProcessEvents();
  twm::TwmClient* client = wm.FindClient(app.window());
  int i = 0;
  for (auto _ : state) {
    wm.MoveClient(client, {10 + (i % 50), 10 + (i % 40)});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Twm_MoveWindow);

// ---- Resize (relayout of the decoration) -----------------------------------------

void BM_Swm_ResizeWindow(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  int i = 0;
  for (auto _ : state) {
    wm->ResizeClient(client, {100 + (i % 40), 60 + (i % 30)});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swm_ResizeWindow);

void BM_Twm_ResizeWindow(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  twm::Twm wm(server.get());
  wm.Start();
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm.ProcessEvents();
  twm::TwmClient* client = wm.FindClient(app.window());
  int i = 0;
  for (auto _ : state) {
    wm.ResizeClient(client, {100 + (i % 40), 60 + (i % 30)});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Twm_ResizeWindow);

// ---- Titlebar click handling ----------------------------------------------------

void BM_Swm_TitleClick(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  xbase::Point pos = server->RootPosition(client->name_object->window());
  server->SimulateMotion({pos.x + 1, pos.y + 1});
  wm->ProcessEvents();
  for (auto _ : state) {
    server->SimulateButton(1, true);  // Bindings: f.raise.
    server->SimulateButton(1, false);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swm_TitleClick);

void BM_Twm_TitleClick(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  twm::Twm wm(server.get());
  wm.Start();
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm.ProcessEvents();
  twm::TwmClient* client = wm.FindClient(app.window());
  xbase::Point pos = server->RootPosition(client->title);
  server->SimulateMotion({pos.x + 1, pos.y + 1});
  wm.ProcessEvents();
  for (auto _ : state) {
    server->SimulateButton(1, true);  // Fixed policy: raise.
    server->SimulateButton(1, false);
    wm.ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Twm_TitleClick);

// ---- Iconify/deiconify cycle -------------------------------------------------------

void BM_Swm_IconifyCycle(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  for (auto _ : state) {
    wm->Iconify(client);
    wm->Deiconify(client);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Swm_IconifyCycle);

void BM_Twm_IconifyCycle(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  twm::Twm wm(server.get());
  wm.Start();
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm.ProcessEvents();
  twm::TwmClient* client = wm.FindClient(app.window());
  for (auto _ : state) {
    wm.Iconify(client);
    wm.Deiconify(client);
    wm.ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Twm_IconifyCycle);

}  // namespace

BENCHMARK_MAIN();
