// Duplex transport benchmarks (PR 8, docs/PROTOCOL.md):
//
//   BM_ReplyCodecRoundTrip      encode + decode one GetGeometry reply frame;
//                               the pure reply-codec cost.
//   BM_DispatchQueryDirect      a GetGeometry request through DispatchBytes,
//                               reply frame encoded and decoded back — the
//                               in-process baseline a socketpair round trip
//                               is measured against.
//   BM_SocketpairRoundTrip      one request→reply ping-pong through a real
//                               socketpair Connection: encode, write(2),
//                               reassemble, dispatch, encode reply, write(2)
//                               back, reassemble, decode.
//   BM_SocketpairThroughput     a 64-query batch pipelined through the
//                               connection; frames_per_second is the duplex
//                               frame rate (requests in plus replies out).
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/server.h"

namespace {

void BM_ReplyCodecRoundTrip(benchmark::State& state) {
  xproto::GeometryReply reply{.geometry = {10, 20, 300, 200}, .border_width = 2};
  for (auto _ : state) {
    std::vector<uint8_t> frame = xproto::EncodeReplyBytes(reply, 7);
    xproto::Reply decoded;
    xproto::ParseError error;
    uint16_t sequence = 0;
    if (xproto::DecodeReply(frame, &decoded, &error, &sequence) == 0) {
      state.SkipWithError("reply failed to decode");
      break;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["replies_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplyCodecRoundTrip);

void BM_DispatchQueryDirect(benchmark::State& state) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  auto server = bench_util::MakeServer();
  xproto::ClientId client = server->Connect("bench-direct");
  xproto::WindowId root = server->RootWindow(0);
  std::vector<uint8_t> request =
      xproto::EncodeRequestBytes(xproto::GetGeometryRequest{.window = root});
  for (auto _ : state) {
    xserver::Server::DispatchResult result = server->DispatchBytes(client, request);
    xproto::Reply reply;
    xproto::ParseError error;
    if (result.reply_bytes.empty() ||
        xproto::DecodeReply(result.reply_bytes, &reply, &error) == 0) {
      state.SkipWithError("query produced no decodable reply");
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  state.counters["round_trips_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchQueryDirect);

void BM_SocketpairRoundTrip(benchmark::State& state) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  auto server = bench_util::MakeServer();
  xproto::ChannelPair pair = xproto::MakeSocketPair();
  xserver::Connection conn(server.get(), std::move(pair.server), "bench-remote");
  conn.Establish();
  xproto::WireClientEndpoint ep(std::move(pair.client));
  xproto::WindowId root = server->RootWindow(0);
  for (auto _ : state) {
    ep.QueueRequest(xproto::GetGeometryRequest{.window = root});
    ep.Flush();
    conn.Pump();
    xproto::Reply reply;
    xproto::ParseError error;
    if (!ep.NextReply(&reply, &error)) {
      state.SkipWithError("no reply came back over the socketpair");
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  state.counters["round_trips_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SocketpairRoundTrip);

void BM_SocketpairThroughput(benchmark::State& state) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  auto server = bench_util::MakeServer();
  xproto::ChannelPair pair = xproto::MakeSocketPair();
  xserver::Connection conn(server.get(), std::move(pair.server), "bench-pipeline");
  conn.Establish();
  xproto::WireClientEndpoint ep(std::move(pair.client));
  xproto::WindowId root = server->RootWindow(0);
  constexpr int kBatch = 64;
  size_t frames = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ep.QueueRequest(i % 2 == 0
                          ? xproto::Request(xproto::GetGeometryRequest{.window = root})
                          : xproto::Request(xproto::QueryTreeRequest{.window = root}));
    }
    size_t replies = 0;
    // Pipelined: keep flushing and pumping until every reply is back.
    for (int spin = 0; spin < 1024 && replies < kBatch; ++spin) {
      ep.Flush();
      conn.Pump();
      ep.Poll();
      xproto::Reply reply;
      xproto::ParseError error;
      while (ep.NextReply(&reply, &error)) {
        ++replies;
        benchmark::DoNotOptimize(reply);
      }
    }
    if (replies < kBatch) {
      state.SkipWithError("batch did not drain");
      break;
    }
    frames += 2 * kBatch;  // Requests in + replies out.
  }
  state.counters["frames_per_second"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SocketpairThroughput);

}  // namespace

BENCHMARK_MAIN();
