// Figure 2 — the root panel (paper §4.1.4).
//
// Regenerates the 8-button/2-row root panel rendering and measures root
// panel construction and button-event dispatch through the bindings engine.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace {

std::string RowsOfButtons(int buttons, int columns) {
  std::string def;
  for (int i = 0; i < buttons; ++i) {
    def += "button b" + std::to_string(i) + " +" + std::to_string(i % columns) + "+" +
           std::to_string(i / columns) + " ";
  }
  return def;
}

void PrintFigure2() {
  xserver::Server server({xserver::ScreenConfig{46, 12, false}});
  auto wm = bench_util::MakeSwm(&server, "swm*rootPanels: RootPanel\nswm*panner: False\n");
  std::printf("Figure 2: root panel example (regenerated)\n%s\n",
              server.RenderScreen(0).ToString().c_str());
}

// Building a root panel with B buttons (the Figure 2 panel has 8).
void BM_BuildRootPanel(benchmark::State& state) {
  const int buttons = static_cast<int>(state.range(0));
  auto server = bench_util::MakeServer();
  std::string resources =
      "swm*panel.bench: " + RowsOfButtons(buttons, 4) + "\nswm*panner: False\n";
  auto wm = bench_util::MakeSwm(server.get(), resources);
  oi::Toolkit& toolkit = wm->toolkit(0);
  auto lookup = [&](const std::string& name) { return wm->PanelDefinition(0, name); };
  for (auto _ : state) {
    auto tree = toolkit.BuildPanelTree("bench", server->RootWindow(0), lookup);
    tree->DoLayout();
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * buttons);
}
BENCHMARK(BM_BuildRootPanel)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Button press -> binding match -> function dispatch, the §4.4 hot path.
void BM_ButtonDispatch(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(
      server.get(),
      "swm*rootPanels: RootPanel\nswm*panner: False\n"
      "swm*panel.RootPanel.button.raise.bindings: <Btn1> : f.nop\n");
  wm->ProcessEvents();
  // Find the root panel's "raise" button and park the pointer on it.
  oi::Object* button = nullptr;
  for (xproto::WindowId wid = 1; wid < 5000 && button == nullptr; ++wid) {
    oi::Object* candidate = wm->toolkit(0).FindObject(wid);
    if (candidate != nullptr && candidate->name() == "raise") {
      button = candidate;
    }
  }
  if (button == nullptr) {
    state.SkipWithError("root panel button not found");
    return;
  }
  xbase::Point pos = server->RootPosition(button->window());
  server->SimulateMotion({pos.x + 1, pos.y + 1});
  wm->ProcessEvents();
  for (auto _ : state) {
    server->SimulateButton(1, true);
    server->SimulateButton(1, false);
    wm->ProcessEvents();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ButtonDispatch);

// Dynamic appearance change (f.setButtonLabel path) per §4.2.
void BM_DynamicButtonRelabel(benchmark::State& state) {
  auto server = bench_util::MakeServer();
  auto wm = bench_util::MakeSwm(server.get(), "swm*panner: False\n");
  xlib::ClientApp app(server.get(), bench_util::ClientConfig(0));
  app.Map();
  wm->ProcessEvents();
  swm::ManagedClient* client = wm->FindClient(app.window());
  auto* name = static_cast<oi::Button*>(client->name_object);
  int i = 0;
  for (auto _ : state) {
    name->SetLabel(i++ % 2 == 0 ? "busy" : "idle");
    benchmark::DoNotOptimize(name->label());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicButtonRelabel);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
