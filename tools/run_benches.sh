#!/usr/bin/env bash
# Builds the benchmark suite in Release and records the resource-query
# benchmarks to BENCH_<n>.json as {"BenchmarkName": ns_per_op}.  Medians
# of several repetitions are recorded: the harness machines are noisy and
# single runs swing by 2x.
#
# Usage: tools/run_benches.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_2.json}"
BUILD_DIR=build

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_eval_resource_db >/dev/null

# Let the machine settle after the build before timing anything.
sleep 5

"$BUILD_DIR"/bench/bench_eval_resource_db \
    --benchmark_min_time=0.3 \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$OUT.raw"

python3 - "$OUT.raw" "$OUT" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {}
for bench in raw["benchmarks"]:
    name = bench["name"]
    if not name.endswith("_median"):
        continue
    out[name.removesuffix("_median")] = round(bench["real_time"], 2)
json.dump(out, open(sys.argv[2], "w"), indent=2, sort_keys=True)
open(sys.argv[2], "a").write("\n")
EOF
rm -f "$OUT.raw"
echo "wrote $OUT"
