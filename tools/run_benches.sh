#!/usr/bin/env bash
# Builds the benchmark suite in Release and records benchmark results as
# BENCH_<n>.json files of {"BenchmarkName": ns_per_op} plus any per-bench
# counters as {"BenchmarkName/counter": value}.  Medians of several
# repetitions are recorded: the harness machines are noisy and single runs
# swing by 2x.
#
#   BENCH_2.json  resource-query fast path   (bench_eval_resource_db)
#   BENCH_4.json  retained frame pipeline    (bench_frame_pipeline)
#   BENCH_6.json  wire codec + trace replay  (bench_wire)
#   BENCH_7.json  hot-path + parallel paint  (bench_frame_pipeline +
#                                             bench_parallel_paint, merged)
#   BENCH_8.json  duplex transport           (bench_wire + bench_transport,
#                                             merged)
#   BENCH_9.json  layout-policy engine       (bench_policy)
#
# Usage: tools/run_benches.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_eval_resource_db --target bench_frame_pipeline \
  --target bench_wire --target bench_parallel_paint \
  --target bench_transport --target bench_policy >/dev/null

# Let the machine settle after the build before timing anything.
sleep 5

record() {
  local bench="$1" out="$2"
  # A missing binary means the build list above is out of sync with the
  # record calls below — fail loudly instead of skipping the bench.
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: expected bench binary $BUILD_DIR/bench/$bench is missing" >&2
    exit 1
  fi
  "$BUILD_DIR"/bench/"$bench" \
      --benchmark_min_time=0.3 \
      --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json >"$out.raw"

  python3 - "$out.raw" "$out" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {}
skip = {"name", "real_time", "cpu_time", "time_unit", "iterations", "run_name",
        "run_type", "repetitions", "repetition_index", "threads",
        "aggregate_name", "aggregate_unit", "family_index",
        "per_family_instance_index", "items_per_second"}
for bench in raw["benchmarks"]:
    name = bench["name"]
    if not name.endswith("_median"):
        continue
    base = name.removesuffix("_median")
    out[base] = round(bench["real_time"], 2)
    for key, value in bench.items():
        if key in skip or not isinstance(value, (int, float)):
            continue
        out[base + "/" + key] = round(value, 2)
json.dump(out, open(sys.argv[2], "w"), indent=2, sort_keys=True)
open(sys.argv[2], "a").write("\n")
EOF
  rm -f "$out.raw"
  echo "wrote $out"
}

record bench_eval_resource_db BENCH_2.json
record bench_frame_pipeline BENCH_4.json
record bench_wire BENCH_6.json
record bench_parallel_paint BENCH_7_parallel.json

# BENCH_7 = the PR-7 perf story in one file: the event-storm pair (fresh
# run, same binary as BENCH_4) plus the parallel painter results.  Also
# prints the retained-vs-immediate wall-clock delta, the number this repo's
# retained pipeline is supposed to win.
python3 - BENCH_4.json BENCH_7_parallel.json BENCH_7.json <<'EOF'
import json, sys
merged = {}
for path in sys.argv[1:3]:
    merged.update(json.load(open(path)))
json.dump(merged, open(sys.argv[3], "w"), indent=2, sort_keys=True)
open(sys.argv[3], "a").write("\n")

retained = merged.get("BM_FramePipeline_EventStorm_Retained")
immediate = merged.get("BM_FramePipeline_EventStorm_Immediate")
if retained and immediate:
    delta = (immediate - retained) / immediate * 100.0
    faster = "faster" if retained < immediate else "SLOWER"
    print(f"retained {retained:.0f} ns vs immediate {immediate:.0f} ns "
          f"per drain: retained is {abs(delta):.1f}% {faster}")
EOF
rm -f BENCH_7_parallel.json
echo "wrote BENCH_7.json"

record bench_transport BENCH_8_transport.json

# BENCH_8 = the PR-8 duplex transport story: the wire codec results (fresh
# run, same binary as BENCH_6) plus the socketpair transport results.  Also
# prints the socketpair round-trip cost against the in-process dispatch
# baseline — the price of a real kernel boundary under the same codec.
python3 - BENCH_6.json BENCH_8_transport.json BENCH_8.json <<'EOF'
import json, sys
merged = {}
for path in sys.argv[1:3]:
    merged.update(json.load(open(path)))
json.dump(merged, open(sys.argv[3], "w"), indent=2, sort_keys=True)
open(sys.argv[3], "a").write("\n")

direct = merged.get("BM_DispatchQueryDirect")
socket = merged.get("BM_SocketpairRoundTrip")
if direct and socket:
    print(f"query round trip: direct {direct:.0f} ns vs socketpair "
          f"{socket:.0f} ns ({socket / direct:.1f}x for the kernel boundary)")
EOF
rm -f BENCH_8_transport.json
echo "wrote BENCH_8.json"

# BENCH_9 = the PR-9 layout-policy story: manage-storm cost per policy
# (floating is the pre-refactor baseline), the price of a full runtime
# policy switch, and the isolated slot-geometry cost.  Also prints the
# per-client overhead the slot policies add over floating at 32 clients.
record bench_policy BENCH_9.json
python3 - BENCH_9.json <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
floating = data.get("BM_ManageStorm_Floating/32/manual_time")
tiling = data.get("BM_ManageStorm_Tiling/32/manual_time")
if floating and tiling:
    print(f"manage storm (32 clients): floating {floating / 1e6:.2f} ms vs "
          f"tiling {tiling / 1e6:.2f} ms ({tiling / floating:.2f}x for reflow)")
EOF
