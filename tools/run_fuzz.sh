#!/bin/sh
# Wire-codec fuzzing entry point.
#
# Default mode builds everything under ASan+UBSan, runs the seeded chaos/fuzz
# ctest label (24-seed wire fuzz, trace-replay determinism, property fuzz),
# then drives the fuzz_wire harness over the checked-in trace corpus and its
# seeded-random smoke mode.  Any sanitizer report fails the run.
#
# With a clang toolchain, `tools/run_fuzz.sh --libfuzzer [runs]` instead
# builds fuzz_wire as a real libFuzzer target and runs it open-ended against
# the corpus (default 100000 runs).
#
# Usage: tools/run_fuzz.sh [--libfuzzer [runs]] [build-dir]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--libfuzzer" ]; then
  RUNS="${2:-100000}"
  BUILD="${3:-$ROOT/build-libfuzzer}"
  cmake -B "$BUILD" -S "$ROOT" -DSWM_LIBFUZZER=ON \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DSWM_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j "$(nproc)" --target fuzz_wire
  mkdir -p "$BUILD/corpus"
  "$BUILD/tools/fuzz_wire" -runs="$RUNS" "$BUILD/corpus" "$ROOT/tests/traces"
  exit 0
fi

BUILD="${1:-$ROOT/build-sanitize}"
cmake -B "$BUILD" -S "$ROOT" -DSWM_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)" \
  --target wire_fuzz_test --target trace_replay_test --target wire_roundtrip_test \
  --target chaos_test --target restart_chaos_test --target xtb_fuzz_test \
  --target transport_test --target transport_chaos_test \
  --target fuzz_wire

UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L chaos

UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "$BUILD/tools/fuzz_wire" "$ROOT/tests/traces"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "$BUILD/tools/fuzz_wire"

echo "run_fuzz.sh: chaos label + fuzz_wire clean under ASan+UBSan"
