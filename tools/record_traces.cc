// Regenerates the checked-in trace corpus under tests/traces/.
//
// Each chaos_seed_<n>.swmtrace is a recorded session: honest wire-mode
// traffic, a hostile byte stream mangled by the seeded FaultPlan wire
// mutations (the recorder captures the post-mutation bytes, so replay needs
// no fault plan), simulated input, and an expect footer carrying the final
// server counters.  trace_replay_test replays these twice per run and
// requires identical fingerprints plus a matching footer.
//
// Each duplex_seed_<n>.swmtrace is a *duplex* session: query-bearing
// traffic routed through a real socketpair Connection under seeded
// transport faults (short reads, short writes, EINTR storms, mutated and
// reset replies).  The recorder captures reply frames at emission — before
// the transport faults touch them — so replay verifies the honest reply
// stream in both directions with no fault plan installed.
//
// Usage: record_traces [output-dir]     (default: tests/traces)
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/xlib/display.h"
#include "src/xproto/trace.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace {

// Plausible request traffic for the mutator to chew on, drawn from the
// driver stream so every seed records different bytes.
std::vector<uint8_t> BuildRequestBuffer(xserver::FaultRng* driver,
                                        xproto::WindowId root, int frames) {
  xproto::WireWriter w;
  for (int i = 0; i < frames; ++i) {
    switch (driver->Range(0, 4)) {
      case 0:
        xproto::EncodeRequest(
            xproto::CreateWindowRequest{
                .parent = root,
                .geometry = {driver->Range(-20, 150), driver->Range(-20, 80),
                             driver->Range(1, 60), driver->Range(1, 40)}},
            &w);
        break;
      case 1:
        xproto::EncodeRequest(
            xproto::MapWindowRequest{.window = static_cast<xproto::WindowId>(
                                         driver->Range(1, 40))},
            &w);
        break;
      case 2:
        xproto::EncodeRequest(
            xproto::ConfigureWindowRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .value_mask = xproto::kConfigX | xproto::kConfigY,
                .geometry = {driver->Range(-50, 200), driver->Range(-50, 100), 0, 0}},
            &w);
        break;
      case 3:
        xproto::EncodeRequest(
            xproto::DrawRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .kind = 0,
                .rect = {0, 0, driver->Range(1, 30), driver->Range(1, 20)},
                .fill = '#'},
            &w);
        break;
      case 4:
        xproto::EncodeRequest(
            xproto::DestroyWindowRequest{.window = static_cast<xproto::WindowId>(
                                             driver->Range(1, 40))},
            &w);
        break;
    }
  }
  return w.Take();
}

bool RecordSeed(uint64_t seed, const std::string& path) {
  xserver::Server server;
  xproto::TraceRecorder recorder;
  server.SetTraceRecorder(&recorder);

  // Honest traffic first: a wire-mode client builds a small session.
  xlib::Display honest(&server, "corpus-honest");
  honest.set_wire_mode(true);
  xproto::WindowId root = server.RootWindow(0);
  xproto::WindowId w1 = honest.CreateWindow(root, {10, 10, 40, 20}, 1);
  honest.SetWindowBackground(w1, '.');
  honest.MapWindow(w1);

  // Then the hostile stream under the seeded wire mutations.
  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.bitflip_request_permille = 350;
  plan.lie_length_permille = 200;
  plan.truncate_request_permille = 200;
  plan.scramble_opcode_permille = 200;
  server.InstallFaultPlan(plan);

  xserver::FaultRng driver(seed * 0x9e3779b9u + 7);
  xproto::ClientId hostile = server.Connect("corpus-hostile");
  for (int round = 0; round < 30; ++round) {
    server.DispatchBytes(hostile,
                         BuildRequestBuffer(&driver, root, driver.Range(1, 5)));
    if (round % 5 == 0) {
      server.SimulateMotion({driver.Range(0, 150), driver.Range(0, 80)});
    }
    if (round % 7 == 0) {
      server.SimulateButton(1, true);
      server.SimulateButton(1, false);
    }
  }
  server.ClearFaultPlan();

  // A little more honest traffic after the storm, then the expect footer.
  honest.MoveWindow(w1, {30, 15});
  server.WarpPointer(0, {5, 5});

  server.SetTraceRecorder(nullptr);
  recorder.RecordExpect(server.TotalRequests(), server.render_stats().draw_ops,
                        static_cast<uint64_t>(server.render_stats().pixels_drawn));
  if (!xproto::WriteTraceFile(path, recorder.trace())) {
    std::fprintf(stderr, "record_traces: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu records, %llu requests, %llu parse errors)\n",
              path.c_str(), recorder.trace().records.size(),
              static_cast<unsigned long long>(server.TotalRequests()),
              static_cast<unsigned long long>(server.wire_parse_errors()));
  return true;
}

// One query drawn from the driver stream, queued on the framed endpoint.
void QueueDuplexRequest(xserver::FaultRng* driver, xproto::WindowId root,
                        xproto::WireClientEndpoint* ep) {
  switch (driver->Range(0, 5)) {
    case 0:
      ep->QueueRequest(xproto::CreateWindowRequest{
          .parent = root,
          .geometry = {driver->Range(0, 120), driver->Range(0, 60),
                       driver->Range(1, 50), driver->Range(1, 30)}});
      break;
    case 1:
      ep->QueueRequest(xproto::MapWindowRequest{
          .window = static_cast<xproto::WindowId>(driver->Range(1, 30))});
      break;
    case 2:
      ep->QueueRequest(xproto::QueryTreeRequest{.window = root});
      break;
    case 3:
      ep->QueueRequest(xproto::GetGeometryRequest{
          .window = static_cast<xproto::WindowId>(driver->Range(1, 30))});
      break;
    case 4:
      ep->QueueRequest(xproto::InternAtomRequest{
          .name = std::string(static_cast<size_t>(driver->Range(1, 24)), 'Q')});
      break;
    case 5:
      ep->QueueRequest(xproto::GetPropertyRequest{
          .window = root,
          .property = static_cast<xproto::AtomId>(driver->Range(1, 20))});
      break;
  }
}

bool RecordDuplexSeed(uint64_t seed, const std::string& path) {
  xserver::Server server;
  xproto::TraceRecorder recorder;
  server.SetTraceRecorder(&recorder);

  // Honest duplex traffic first: wire-mode queries leave kReply records.
  xlib::Display honest(&server, "corpus-duplex-honest");
  honest.set_wire_mode(true);
  xproto::WindowId root = server.RootWindow(0);
  xproto::WindowId w1 = honest.CreateWindow(root, {12, 8, 50, 25}, 1);
  honest.MapWindow(w1);
  honest.SetStringProperty(w1, "WM_NAME", "duplex-corpus");
  (void)honest.GetGeometry(w1);
  (void)honest.QueryTree(root);
  (void)honest.GetStringProperty(w1, "WM_NAME");
  (void)honest.InternAtom("WM_PROTOCOLS");

  // Then a framed socketpair connection under the seeded storm.  Transport
  // faults only: they reslice, delay, reset and corrupt traffic without
  // rewriting the request frames DispatchBytes records, so the trace stays
  // byte-faithful to what crossed the wire and replays over a fresh
  // socketpair transport land on identical fingerprints.  (Wire mutations
  // rewrite frames *after* reassembly; the chaos_seed corpus covers those
  // in direct-dispatch replay.)
  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.short_read_permille = 250;
  plan.short_write_permille = 250;
  plan.eintr_storm_permille = 150;
  plan.mutate_reply_permille = 150;
  plan.reset_midframe_permille = seed % 2 == 0 ? 60 : 0;
  server.InstallFaultPlan(plan);

  xproto::ChannelPair pair = xproto::MakeSocketPair();
  xserver::Connection conn(&server, std::move(pair.server), "corpus-duplex-remote");
  conn.InstallTransportFaults(plan);
  conn.Establish();
  xproto::WireClientEndpoint ep(std::move(pair.client));

  xserver::FaultRng driver(seed * 0x2545f491u + 3);
  for (int round = 0; round < 40; ++round) {
    if (conn.state() == xserver::ConnectionState::kClosed) {
      break;
    }
    QueueDuplexRequest(&driver, root, &ep);
    ep.Flush();
    conn.Pump();
    ep.Poll();
    while (std::optional<std::vector<uint8_t>> frame = ep.NextFrame()) {
      // The corpus client discards frames; mutated replies are its problem.
    }
    if (round % 9 == 0) {
      server.SimulateMotion({driver.Range(0, 150), driver.Range(0, 80)});
    }
  }
  if (conn.state() != xserver::ConnectionState::kClosed) {
    conn.BeginDrain();
    for (int i = 0; i < 16 && conn.state() != xserver::ConnectionState::kClosed; ++i) {
      ep.Poll();
      conn.Pump();
    }
    conn.Close(xserver::CloseReason::kGracefulDrain);
  }
  server.ClearFaultPlan();

  // Honest queries after the storm, then the expect footer.
  honest.MoveWindow(w1, {20, 12});
  (void)honest.GetGeometry(w1);
  server.WarpPointer(0, {8, 8});

  server.SetTraceRecorder(nullptr);
  recorder.RecordExpect(server.TotalRequests(), server.render_stats().draw_ops,
                        static_cast<uint64_t>(server.render_stats().pixels_drawn));
  if (!xproto::WriteTraceFile(path, recorder.trace())) {
    std::fprintf(stderr, "record_traces: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu records, %llu requests, %llu replies)\n", path.c_str(),
              recorder.trace().records.size(),
              static_cast<unsigned long long>(server.TotalRequests()),
              static_cast<unsigned long long>(server.replies_emitted()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::string dir = argc > 1 ? argv[1] : "tests/traces";
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::string path = dir + "/chaos_seed_" + std::to_string(seed) + ".swmtrace";
    if (!RecordSeed(seed, path)) {
      return 1;
    }
  }
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::string path = dir + "/duplex_seed_" + std::to_string(seed) + ".swmtrace";
    if (!RecordDuplexSeed(seed, path)) {
      return 1;
    }
  }
  return 0;
}
