// Regenerates the checked-in trace corpus under tests/traces/.
//
// Each chaos_seed_<n>.swmtrace is a recorded session: honest wire-mode
// traffic, a hostile byte stream mangled by the seeded FaultPlan wire
// mutations (the recorder captures the post-mutation bytes, so replay needs
// no fault plan), simulated input, and an expect footer carrying the final
// server counters.  trace_replay_test replays these twice per run and
// requires identical fingerprints plus a matching footer.
//
// Usage: record_traces [output-dir]     (default: tests/traces)
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/xlib/display.h"
#include "src/xproto/trace.h"
#include "src/xproto/wire.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace {

// Plausible request traffic for the mutator to chew on, drawn from the
// driver stream so every seed records different bytes.
std::vector<uint8_t> BuildRequestBuffer(xserver::FaultRng* driver,
                                        xproto::WindowId root, int frames) {
  xproto::WireWriter w;
  for (int i = 0; i < frames; ++i) {
    switch (driver->Range(0, 4)) {
      case 0:
        xproto::EncodeRequest(
            xproto::CreateWindowRequest{
                .parent = root,
                .geometry = {driver->Range(-20, 150), driver->Range(-20, 80),
                             driver->Range(1, 60), driver->Range(1, 40)}},
            &w);
        break;
      case 1:
        xproto::EncodeRequest(
            xproto::MapWindowRequest{.window = static_cast<xproto::WindowId>(
                                         driver->Range(1, 40))},
            &w);
        break;
      case 2:
        xproto::EncodeRequest(
            xproto::ConfigureWindowRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .value_mask = xproto::kConfigX | xproto::kConfigY,
                .geometry = {driver->Range(-50, 200), driver->Range(-50, 100), 0, 0}},
            &w);
        break;
      case 3:
        xproto::EncodeRequest(
            xproto::DrawRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .kind = 0,
                .rect = {0, 0, driver->Range(1, 30), driver->Range(1, 20)},
                .fill = '#'},
            &w);
        break;
      case 4:
        xproto::EncodeRequest(
            xproto::DestroyWindowRequest{.window = static_cast<xproto::WindowId>(
                                             driver->Range(1, 40))},
            &w);
        break;
    }
  }
  return w.Take();
}

bool RecordSeed(uint64_t seed, const std::string& path) {
  xserver::Server server;
  xproto::TraceRecorder recorder;
  server.SetTraceRecorder(&recorder);

  // Honest traffic first: a wire-mode client builds a small session.
  xlib::Display honest(&server, "corpus-honest");
  honest.set_wire_mode(true);
  xproto::WindowId root = server.RootWindow(0);
  xproto::WindowId w1 = honest.CreateWindow(root, {10, 10, 40, 20}, 1);
  honest.SetWindowBackground(w1, '.');
  honest.MapWindow(w1);

  // Then the hostile stream under the seeded wire mutations.
  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.bitflip_request_permille = 350;
  plan.lie_length_permille = 200;
  plan.truncate_request_permille = 200;
  plan.scramble_opcode_permille = 200;
  server.InstallFaultPlan(plan);

  xserver::FaultRng driver(seed * 0x9e3779b9u + 7);
  xproto::ClientId hostile = server.Connect("corpus-hostile");
  for (int round = 0; round < 30; ++round) {
    server.DispatchBytes(hostile,
                         BuildRequestBuffer(&driver, root, driver.Range(1, 5)));
    if (round % 5 == 0) {
      server.SimulateMotion({driver.Range(0, 150), driver.Range(0, 80)});
    }
    if (round % 7 == 0) {
      server.SimulateButton(1, true);
      server.SimulateButton(1, false);
    }
  }
  server.ClearFaultPlan();

  // A little more honest traffic after the storm, then the expect footer.
  honest.MoveWindow(w1, {30, 15});
  server.WarpPointer(0, {5, 5});

  server.SetTraceRecorder(nullptr);
  recorder.RecordExpect(server.TotalRequests(), server.render_stats().draw_ops,
                        static_cast<uint64_t>(server.render_stats().pixels_drawn));
  if (!xproto::WriteTraceFile(path, recorder.trace())) {
    std::fprintf(stderr, "record_traces: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu records, %llu requests, %llu parse errors)\n",
              path.c_str(), recorder.trace().records.size(),
              static_cast<unsigned long long>(server.TotalRequests()),
              static_cast<unsigned long long>(server.wire_parse_errors()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::string dir = argc > 1 ? argv[1] : "tests/traces";
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::string path = dir + "/chaos_seed_" + std::to_string(seed) + ".swmtrace";
    if (!RecordSeed(seed, path)) {
      return 1;
    }
  }
  return 0;
}
