#!/bin/sh
# Robustness gate: build everything under ASan+UBSan and run the full test
# suite (including the seeded chaos tests).  Any sanitizer report fails the
# run.  Usage: tools/check.sh [build-dir]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"

cmake -B "$BUILD" -S "$ROOT" -DSWM_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "check.sh: all tests passed under ASan+UBSan"
