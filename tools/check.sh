#!/bin/sh
# Robustness gate: build everything under ASan+UBSan and run the full test
# suite (including the seeded chaos tests), then rebuild the painter suites
# under TSan and run the worker-pool tests.  Any sanitizer report fails the
# run.  Usage: tools/check.sh [asan-build-dir] [tsan-build-dir]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"

cmake -B "$BUILD" -S "$ROOT" -DSWM_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# The retained-pipeline gate, explicitly: the retained-vs-immediate
# differential property test, the frame scheduler tests, and the 24-seed
# chaos suite (which runs the retained pipeline by default plus the
# immediate-render ablation).  These are part of the full ctest run above;
# naming them keeps the gate honest if the suite list ever changes.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
    -R 'frame_differential_test|frame_pipeline_test|chaos_test'

# Fuzz stage: every ctest target labeled `chaos` — the 24-seed chaos suite,
# the 24-seed property-fuzz + restart-under-chaos suite, the binding grammar
# fuzzer, the 24-seed wire fuzz, and trace-replay determinism — must come up
# clean under ASan+UBSan.  This is the acceptance gate for the sanitizing
# ICCCM decoders and the wire codec: malformed bytes must never become an
# out-of-bounds read, only a SanitizerStats tick or a typed ParseError.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L chaos

# Layout-policy stage: every ctest target labeled `policy` — the golden
# no-op gate (the floating policy must reproduce the pre-refactor server
# fingerprint byte for byte), the four-policy conformance suite, and the
# 24-seed policy-switch chaos storm (policies cycling mid-fault-injection).
# This is the acceptance gate for the pluggable layout engine: extracting
# the policy layer must not move a single pixel under the default policy,
# and no policy may leak or corrupt client state under faults.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L policy

# Transport-fault stage: the duplex transport suites, explicitly.  The
# framed-connection unit tests (reassembly, backpressure, lifecycle,
# kill-mid-request) and the 24-seed transport chaos storm — wire mutations
# plus short reads, short writes, EINTR storms and mid-frame resets over
# real socketpairs — must come up leak-free under ASan+UBSan.  This is the
# acceptance gate for the connection lifecycle: every storm ends in a typed
# CloseReason, never a leak or a stuck connection.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
    -R 'transport_test|transport_chaos_test'

# Out-of-process transport stage: every ctest target labeled
# `transport-proc` — the epoll/timerfd readiness core units, the
# forked-client lifecycle suite (real unix-socket clients, deadline expiry,
# EPIPE-to-dead-peer, live-socket trace replay) and the 24-seed
# multi-process crash chaos storm (SIGKILL mid-frame; survivors'
# reply streams must be byte-identical with or without the crash).  The
# label carries hard per-test timeouts, so a wedged accept loop or a
# readiness bug fails the stage instead of hanging it.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L transport-proc

# And the standalone fuzz harness over the checked-in trace corpus plus its
# seeded-random smoke mode (tools/run_fuzz.sh drives the same harness
# open-ended under libFuzzer when clang is available).
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "$BUILD/tools/fuzz_wire" "$ROOT/tests/traces"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "$BUILD/tools/fuzz_wire"

# TSan stage: rebuild with -fsanitize=thread and run the suites that drive
# the painter's worker pool — the parallel-vs-serial differential (including
# its chaos-seed run with the pool enabled), the ThreadPool handshake test,
# the render/multiscreen suites, and the transport chaos storm (every third
# seed paints with two workers while the socketpair faults fire).  This is
# the gate for the "no locks on the pixel path" claim: disjoint tiles or a
# TSan report, nothing in between.
TSAN_BUILD="${2:-$ROOT/build-tsan}"
cmake -B "$TSAN_BUILD" -S "$ROOT" -DSWM_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
  --target parallel_paint_test --target swm_render_test \
  --target swm_multiscreen_test --target xserver_test \
  --target transport_chaos_test \
  --target poller_test --target transport_proc_test \
  --target transport_proc_chaos_test
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$(nproc)" \
    -R 'parallel_paint_test|swm_render_test|swm_multiscreen_test|xserver_test|transport_chaos_test'
# The transport-proc label again under TSan: epoll dispatch, the timer
# wheel, and multi-process accept/close must be race-free too.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$(nproc)" -L transport-proc

echo "check.sh: all tests passed under ASan+UBSan (including the chaos/fuzz and transport-proc labels) and the worker pool + out-of-process transport are TSan-clean"
