// Wire-codec fuzz harness (docs/PROTOCOL.md).
//
// One entry point, two drivers:
//
//   * Built with -DSWM_LIBFUZZER=ON (clang only), this is a libFuzzer target:
//     LLVMFuzzerTestOneInput feeds arbitrary bytes through every decoder and
//     through Server::DispatchBytes on a live connection.
//
//   * Built normally, `fuzz_wire` is a standalone corpus runner: each argv is
//     a corpus file or directory of corpus files, replayed through the same
//     FuzzOne; with no args it generates 50k seeded-random inputs.  Exit 0
//     means no decoder crashed, overread, or tripped a sanitizer.
//
// Either way the contract under test is the same one the unit suites hold
// the codec to: malformed bytes yield a typed ParseError (an X error on the
// dispatch path), never UB.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/xproto/trace.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace {

// A persistent server so consecutive inputs fuzz against accumulated state;
// recycled periodically so window/property tables stay bounded.
struct FuzzTarget {
  std::unique_ptr<xserver::Server> server;
  xproto::ClientId client = 0;
  int inputs = 0;

  void Reset() {
    server = std::make_unique<xserver::Server>();
    client = server->Connect("fuzzer");
    inputs = 0;
  }
};

void FuzzOne(std::span<const uint8_t> data) {
  static FuzzTarget target;
  if (!target.server || ++target.inputs > 512) {
    target.Reset();
  }

  // Pure decoders: every parser the wire subset has.
  xproto::Request request;
  xproto::ParseError error;
  xproto::DecodeRequest(data, &request, &error);
  xproto::Event event;
  xproto::DecodeEvent(data, &event, &error);
  xproto::XError xerror;
  xproto::DecodeError(data, &xerror, &error);
  xproto::Reply reply;
  uint16_t sequence = 0;
  xproto::DecodeReply(data, &reply, &error, &sequence);
  xproto::ParseTrace(data, &error);

  // Frame reassembly in arbitrary slices, both stream directions: framing
  // must never buffer past its cap, hang on a length lie, or hand a decoder
  // bytes it was not fed.  Slice sizes derive from the input so every run
  // of one input reassembles identically.
  uint64_t slice_seed = 1469598103934665603ull;
  for (uint8_t b : data) {
    slice_seed = (slice_seed ^ b) * 1099511628211ull;
  }
  for (xproto::FrameStream direction :
       {xproto::FrameStream::kRequests, xproto::FrameStream::kServerToClient}) {
    xserver::FaultRng slicer(slice_seed | 1);
    xproto::FrameReassembler reasm(direction, /*buffer_cap=*/1u << 16);
    size_t offset = 0;
    while (offset < data.size()) {
      size_t n = std::min(data.size() - offset,
                          static_cast<size_t>(slicer.Range(1, 48)));
      if (!reasm.Feed(data.subspan(offset, n))) {
        break;  // Overflow latched; the reassembler is done.
      }
      while (std::optional<std::vector<uint8_t>> frame = reasm.NextFrame()) {
        if (direction == xproto::FrameStream::kRequests) {
          xproto::DecodeRequest(*frame, &request, &error);
        } else {
          xproto::DecodeReply(*frame, &reply, &error, &sequence);
          xproto::DecodeEvent(*frame, &event, &error);
          xproto::DecodeError(*frame, &xerror, &error);
        }
      }
      offset += n;
    }
  }

  // The full dispatch path: parse, raise X errors, execute what survives.
  target.server->DispatchBytes(target.client, data);

  // The duplex session: the same bytes as a hostile client stream over a
  // real socketpair connection.  The connection must end in a typed close
  // (or stay healthy), and the endpoint must survive whatever error, reply
  // and event frames travel back.
  xproto::ChannelPair pair = xproto::MakeSocketPair();
  if (pair.client && pair.server) {
    xserver::Connection conn(target.server.get(), std::move(pair.server),
                             "fuzz-duplex");
    conn.Establish();
    xproto::WireClientEndpoint ep(std::move(pair.client));
    ep.QueueBytes(data);
    for (int i = 0; i < 8; ++i) {
      ep.Flush();
      conn.Pump();
      ep.Poll();
      if (conn.state() == xserver::ConnectionState::kClosed) {
        break;
      }
    }
    while (std::optional<std::vector<uint8_t>> frame = ep.NextFrame()) {
      xproto::DecodeReply(*frame, &reply, &error, &sequence);
      xproto::DecodeEvent(*frame, &event, &error);
      xproto::DecodeError(*frame, &xerror, &error);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  FuzzOne(std::span<const uint8_t>(data, size));
  return 0;
}

#ifndef SWM_LIBFUZZER

namespace {

int RunFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_wire: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  size_t corpus_files = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          if (RunFile(entry.path().string()) != 0) return 1;
          ++corpus_files;
        }
      }
    } else {
      if (RunFile(arg.string()) != 0) return 1;
      ++corpus_files;
    }
  }

  if (corpus_files == 0) {
    // No corpus given: seeded-random smoke mode.
    xserver::FaultRng rng(0xF0221);
    for (int iter = 0; iter < 50000; ++iter) {
      std::vector<uint8_t> bytes(static_cast<size_t>(rng.Range(0, 128)));
      for (uint8_t& b : bytes) {
        b = static_cast<uint8_t>(rng.Next() % 256);
      }
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    }
    std::printf("fuzz_wire: 50000 seeded-random inputs, no crashes\n");
  } else {
    std::printf("fuzz_wire: replayed %zu corpus file(s), no crashes\n", corpus_files);
  }
  return 0;
}

#endif  // SWM_LIBFUZZER
