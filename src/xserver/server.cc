#include "src/xserver/server.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xserver {

using xproto::AtomId;
using xproto::ClientId;
using xproto::ErrorCode;
using xproto::Event;
using xproto::EventMask;
using xproto::kNone;
using xproto::RequestCode;
using xproto::WindowId;

Server::Server(std::vector<ScreenConfig> screens) {
  XB_CHECK(!screens.empty());
  for (size_t i = 0; i < screens.size(); ++i) {
    const ScreenConfig& cfg = screens[i];
    WindowRec root;
    root.id = next_window_id_++;
    root.parent = kNone;
    root.screen = static_cast<int>(i);
    root.geometry = xbase::Rect{0, 0, cfg.width, cfg.height};
    root.mapped = true;
    root.background = '.';
    windows_[root.id] = root;
    screens_.push_back(ScreenInfo{static_cast<int>(i), root.id,
                                  xbase::Size{cfg.width, cfg.height}, cfg.monochrome});
  }
  pointer_.screen = 0;
  pointer_.root_pos = {screens_[0].size.width / 2, screens_[0].size.height / 2};
  pointer_.window = screens_[0].root;
}

Server::~Server() = default;

// ---- Connections ----------------------------------------------------------

ClientId Server::Connect(const std::string& client_machine) {
  ClientId id = next_client_id_++;
  clients_[id].machine = client_machine;
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordConnect(id, client_machine);
  }
  return id;
}

void Server::Disconnect(ClientId client) {
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return;
  }
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordDisconnect(client);
  }
  // Save-set processing: windows of *other* clients that this client added
  // to its save set are reparented back to their screen's root and mapped.
  std::vector<WindowId> save_set = rec->save_set;
  for (WindowId wid : save_set) {
    WindowRec* win = Find(wid);
    if (win == nullptr || win->owner == client) {
      continue;
    }
    xbase::Point root_pos = RootPosition(wid);
    ReparentWindow(client, wid, screens_[win->screen].root, root_pos);
    MapWindow(win->owner, wid);
  }
  // Destroy windows created by the client (top-level first is not required;
  // DestroyRecursive handles nesting).
  std::vector<WindowId> owned;
  for (const auto& [wid, win] : windows_) {
    if (win.owner == client) {
      owned.push_back(wid);
    }
  }
  for (WindowId wid : owned) {
    if (windows_.count(wid) != 0) {
      DestroyWindow(client, wid);
    }
  }
  // Drop selections and grabs referencing the client.
  for (auto& [wid, win] : windows_) {
    win.selections.erase(client);
    win.shape_selections.erase(client);
    std::erase_if(win.passive_grabs,
                  [client](const PassiveGrab& g) { return g.client == client; });
    std::erase(win.save_set_clients, client);
  }
  if (grab_.active && grab_.client == client) {
    grab_.active = false;
  }
  clients_.erase(client);
}

bool Server::HasClient(ClientId client) const { return clients_.count(client) != 0; }

std::string Server::ClientMachine(ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? std::string() : it->second.machine;
}

// ---- Screens / atoms --------------------------------------------------------

const ScreenInfo& Server::screen(int number) const {
  XB_CHECK_GE(number, 0);
  XB_CHECK_LT(number, static_cast<int>(screens_.size()));
  return screens_[number];
}

int Server::ScreenOfWindow(WindowId window) const {
  const WindowRec* win = Find(window);
  return win == nullptr ? -1 : win->screen;
}

AtomId Server::InternAtom(const std::string& name) {
  auto it = atoms_.find(name);
  if (it != atoms_.end()) {
    return it->second;
  }
  atom_names_.push_back(name);
  AtomId id = static_cast<AtomId>(atom_names_.size());
  atoms_[name] = id;
  return id;
}

std::optional<std::string> Server::GetAtomName(AtomId atom) const {
  if (atom == 0 || atom > atom_names_.size()) {
    return std::nullopt;
  }
  return atom_names_[atom - 1];
}

// ---- Lookup helpers ---------------------------------------------------------

WindowRec* Server::Find(WindowId window) {
  auto it = windows_.find(window);
  return it == windows_.end() ? nullptr : &it->second;
}

const WindowRec* Server::Find(WindowId window) const {
  auto it = windows_.find(window);
  return it == windows_.end() ? nullptr : &it->second;
}

Server::ClientRec* Server::FindClient(ClientId client) {
  auto it = clients_.find(client);
  return it == clients_.end() ? nullptr : &it->second;
}

ClientId Server::RedirectHolder(const WindowRec& win) const {
  for (const auto& [client, mask] : win.selections) {
    if (mask & xproto::kSubstructureRedirectMask) {
      return client;
    }
  }
  return 0;
}

// ---- Error channel ----------------------------------------------------------

void Server::SetErrorCallback(ClientId client, ErrorCallback callback) {
  ClientRec* rec = FindClient(client);
  if (rec != nullptr) {
    rec->on_error = std::move(callback);
  }
}

uint64_t Server::SequenceNumber(ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.sequence;
}

uint64_t Server::ErrorCount(ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.errors;
}

bool Server::RaiseError(ClientId client, xproto::ErrorCode code, uint32_t resource_id) {
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return false;  // Connection already gone; nobody to notify.
  }
  xproto::XError error;
  error.code = code;
  error.request = current_request_;
  error.resource_id = resource_id;
  error.sequence = rec->sequence;
  ++rec->errors;
  if (rec->on_error) {
    // Synchronous, like an Xlib error handler invoked from _XReply.  The
    // handler may issue further (nested) requests.
    rec->on_error(error);
  }
  return false;
}

Server::RequestGuard::RequestGuard(Server* server, ClientId client,
                                   xproto::RequestCode code)
    : server_(server), ok_(true) {
  if (server_->request_depth_++ > 0) {
    return;  // Nested internal request: not a new wire request.
  }
  server_->current_request_ = code;
  server_->current_client_ = client;
  ++server_->total_requests_;
  if (ClientRec* rec = server_->FindClient(client)) {
    ++rec->sequence;
  }
  if (!server_->fault_plan_active_ || server_->in_fault_) {
    return;
  }
  ++server_->faultable_requests_;
  // A doomed window (armed at MapRequest time) dies just before this
  // request executes — the client destroyed it while the WM was working.
  if (server_->doomed_window_ != kNone && --server_->doomed_countdown_ <= 0) {
    WindowId victim = server_->doomed_window_;
    server_->doomed_window_ = kNone;
    server_->InjectDestroy(victim);
  }
  const FaultPlan& plan = server_->fault_plan_;
  if (plan.fail_request_n != 0 && server_->faultable_requests_ == plan.fail_request_n) {
    ++server_->fault_counters_.failed_requests;
    server_->RaiseError(client, plan.fail_code, 0);
    ok_ = false;
  }
}

Server::RequestGuard::~RequestGuard() {
  if (--server_->request_depth_ == 0) {
    server_->current_request_ = xproto::RequestCode::kNone;
    server_->current_client_ = 0;
  }
}

// ---- Fault injection --------------------------------------------------------

void Server::InstallFaultPlan(const FaultPlan& plan) {
  fault_plan_ = plan;
  fault_plan_active_ = true;
  fault_rng_ = FaultRng(plan.seed);
  fault_counters_ = FaultCounters{};
  faultable_requests_ = 0;
  doomed_window_ = kNone;
  doomed_countdown_ = 0;
}

void Server::ClearFaultPlan() {
  fault_plan_active_ = false;
  doomed_window_ = kNone;
  doomed_countdown_ = 0;
}

void Server::MaybeDoom(WindowId window) {
  if (!fault_plan_active_ || in_fault_ || doomed_window_ != kNone) {
    return;
  }
  if (fault_rng_.Roll(fault_plan_.destroy_on_map_permille)) {
    doomed_window_ = window;
    // Spread the death across the manage path: sometimes before the WM's
    // reparent, sometimes in the reparent→SelectInput gap, sometimes after.
    doomed_countdown_ = fault_rng_.Range(1, 6);
  }
}

void Server::InjectDestroy(WindowId window) {
  WindowRec* win = Find(window);
  if (win == nullptr || win->parent == kNone) {
    return;
  }
  in_fault_ = true;
  ++fault_counters_.destroyed_windows;
  if (IsViewable(window)) {
    UnmapWindow(win->owner, window);
  }
  DestroyRecursive(window, /*notify_parent=*/true);
  UpdatePointerWindow();
  in_fault_ = false;
}

// ---- Event delivery ---------------------------------------------------------

void Server::Enqueue(ClientId client, Event event) {
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return;
  }
  if (fault_plan_active_ && !in_fault_) {
    if (fault_rng_.Roll(fault_plan_.delay_event_permille)) {
      // Hold the event back; it is released after the next event for this
      // client (adjacent reorder) or when the queue drains — never dropped.
      ++fault_counters_.delayed_events;
      rec->delayed.push_back(std::move(event));
      return;
    }
    rec->queue.push_back(event);
    if (fault_rng_.Roll(fault_plan_.duplicate_event_permille)) {
      ++fault_counters_.duplicated_events;
      rec->queue.push_back(event);
    }
    // Release anything the plan was holding, now out of order.
    while (!rec->delayed.empty()) {
      rec->queue.push_back(std::move(rec->delayed.front()));
      rec->delayed.pop_front();
    }
    return;
  }
  rec->queue.push_back(std::move(event));
}

int Server::DeliverToSelecting(WindowId window, uint32_t required_mask, const Event& event,
                               ClientId skip) {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return 0;
  }
  int delivered = 0;
  for (const auto& [client, mask] : win->selections) {
    if (client != skip && (mask & required_mask) != 0) {
      Enqueue(client, event);
      ++delivered;
    }
  }
  return delivered;
}

bool Server::SendEvent(ClientId client, WindowId destination, uint32_t event_mask,
                       Event event) {
  RequestGuard req(this, client, RequestCode::kSendEvent);
  if (!req.ok()) {
    return false;
  }
  const WindowRec* win = Find(destination);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, destination);
  }
  if (event_mask == 0) {
    Enqueue(win->owner, std::move(event));
    return true;
  }
  DeliverToSelecting(destination, event_mask, event);
  return true;
}

std::optional<Event> Server::NextEvent(ClientId client) {
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return std::nullopt;
  }
  if (rec->queue.empty() && !rec->delayed.empty()) {
    // Nothing left to reorder against: flush delayed events so none is lost.
    rec->queue.swap(rec->delayed);
  }
  if (rec->queue.empty()) {
    return std::nullopt;
  }
  Event event = std::move(rec->queue.front());
  rec->queue.pop_front();
  return event;
}

size_t Server::PendingEvents(ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.queue.size() + it->second.delayed.size();
}

// ---- Window lifecycle -------------------------------------------------------

WindowId Server::CreateWindow(ClientId client, WindowId parent, const xbase::Rect& geometry,
                              int border_width, xproto::WindowClass window_class,
                              bool override_redirect) {
  RequestGuard req(this, client, RequestCode::kCreateWindow);
  if (!req.ok()) {
    return kNone;
  }
  WindowRec* parent_rec = Find(parent);
  if (parent_rec == nullptr || !HasClient(client)) {
    XB_LOG(Warning) << "CreateWindow: bad parent " << parent;
    RaiseError(client, ErrorCode::kBadWindow, parent);
    return kNone;
  }
  WindowRec win;
  win.id = next_window_id_++;
  win.parent = parent;
  win.screen = parent_rec->screen;
  win.window_class = window_class;
  win.geometry = geometry;
  win.border_width = border_width;
  win.override_redirect = override_redirect;
  win.owner = client;
  WindowId id = win.id;
  windows_[id] = std::move(win);
  parent_rec = Find(parent);  // Map may have rehashed.
  parent_rec->children.push_back(id);
  Tick();

  xproto::CreateNotifyEvent notify;
  notify.parent = parent;
  notify.window = id;
  notify.geometry = geometry;
  notify.override_redirect = override_redirect;
  DeliverToSelecting(parent, xproto::kSubstructureNotifyMask, Event{notify});
  return id;
}

void Server::RemoveFromParent(WindowRec* win) {
  WindowRec* parent = Find(win->parent);
  if (parent != nullptr) {
    std::erase(parent->children, win->id);
  }
}

void Server::DestroyRecursive(WindowId window, bool notify_parent) {
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return;
  }
  std::vector<WindowId> children = win->children;
  for (WindowId child : children) {
    DestroyRecursive(child, /*notify_parent=*/false);
  }
  win = Find(window);  // Children destruction does not rehash parents, but be safe.
  if (win == nullptr) {
    return;
  }
  Tick();
  xproto::DestroyNotifyEvent notify;
  notify.window = window;

  // StructureNotify on the window itself.
  notify.event_window = window;
  DeliverToSelecting(window, xproto::kStructureNotifyMask, Event{notify});
  // SubstructureNotify on the parent.
  if (notify_parent && win->parent != kNone) {
    notify.event_window = win->parent;
    DeliverToSelecting(win->parent, xproto::kSubstructureNotifyMask, Event{notify});
  }
  RemoveFromParent(win);
  // Drop the window from all save sets.
  for (auto& [cid, rec] : clients_) {
    std::erase(rec.save_set, window);
  }
  if (grab_.active && grab_.window == window) {
    grab_.active = false;
  }
  if (pointer_.window == window) {
    pointer_.window = screens_[pointer_.screen].root;
  }
  if (focus_window_ == window) {
    focus_window_ = kNone;  // Revert to pointer-root focus.
  }
  windows_.erase(window);
}

bool Server::DestroyWindow(ClientId client, WindowId window) {
  RequestGuard req(this, client, RequestCode::kDestroyWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (win->parent == kNone) {
    return RaiseError(client, ErrorCode::kBadMatch, window);  // Roots cannot be destroyed.
  }
  bool was_viewable = IsViewable(window);
  if (was_viewable) {
    UnmapWindow(client, window);
  }
  DestroyRecursive(window, /*notify_parent=*/true);
  UpdatePointerWindow();
  return true;
}

bool Server::AncestorsMapped(const WindowRec& win) const {
  WindowId parent = win.parent;
  while (parent != kNone) {
    const WindowRec* p = Find(parent);
    if (p == nullptr || !p->mapped) {
      return false;
    }
    parent = p->parent;
  }
  return true;
}

void Server::SendExpose(WindowRec* win) {
  if (win->window_class == xproto::WindowClass::kInputOnly) {
    return;
  }
  xproto::ExposeEvent expose;
  expose.window = win->id;
  expose.area = xbase::Rect{0, 0, win->geometry.width, win->geometry.height};
  expose.count = 0;
  DeliverToSelecting(win->id, xproto::kExposureMask, Event{expose});
}

void Server::MapApplied(WindowRec* win) {
  win->mapped = true;
  Tick();
  xproto::MapNotifyEvent notify;
  notify.window = win->id;
  notify.override_redirect = win->override_redirect;
  notify.event_window = win->id;
  DeliverToSelecting(win->id, xproto::kStructureNotifyMask, Event{notify});
  if (win->parent != kNone) {
    notify.event_window = win->parent;
    DeliverToSelecting(win->parent, xproto::kSubstructureNotifyMask, Event{notify});
  }
  if (IsViewable(win->id)) {
    SendExpose(win);
  }
  UpdatePointerWindow();
}

bool Server::MapWindow(ClientId client, WindowId window) {
  RequestGuard req(this, client, RequestCode::kMapWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (win->mapped) {
    return true;
  }
  if (!win->override_redirect && win->parent != kNone) {
    const WindowRec* parent = Find(win->parent);
    ClientId holder = RedirectHolder(*parent);
    if (holder != 0 && holder != client) {
      Tick();
      xproto::MapRequestEvent request;
      request.parent = win->parent;
      request.window = window;
      Enqueue(holder, Event{request});
      // The WM is about to start managing this window — the fault plan may
      // decide the client destroys it somewhere along that path.
      MaybeDoom(window);
      return true;  // Redirected, not mapped.
    }
  }
  MapApplied(win);
  return true;
}

bool Server::UnmapWindow(ClientId client, WindowId window) {
  RequestGuard req(this, client, RequestCode::kUnmapWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (!win->mapped) {
    return false;  // Unmapping an unmapped window is a no-op, not an error.
  }
  win->mapped = false;
  Tick();
  xproto::UnmapNotifyEvent notify;
  notify.window = window;
  notify.event_window = window;
  DeliverToSelecting(window, xproto::kStructureNotifyMask, Event{notify});
  if (win->parent != kNone) {
    notify.event_window = win->parent;
    DeliverToSelecting(win->parent, xproto::kSubstructureNotifyMask, Event{notify});
  }
  UpdatePointerWindow();
  return true;
}

bool Server::ReparentWindow(ClientId client, WindowId window, WindowId new_parent,
                            const xbase::Point& position) {
  RequestGuard req(this, client, RequestCode::kReparentWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  WindowRec* parent = Find(new_parent);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (parent == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, new_parent);
  }
  if (win->parent == kNone) {
    return RaiseError(client, ErrorCode::kBadMatch, window);  // Roots stay put.
  }
  if (window == new_parent || IsAncestorOrSelf(window, new_parent)) {
    return RaiseError(client, ErrorCode::kBadMatch, new_parent);  // Would create a cycle.
  }
  ClientId owner = win->owner;
  bool into_frame = parent->parent != kNone;  // Destination is not a screen root.
  bool was_mapped = win->mapped;
  if (was_mapped) {
    UnmapWindow(client, window);
  }
  WindowId old_parent = win->parent;
  RemoveFromParent(win);
  win->parent = new_parent;
  win->screen = parent->screen;
  win->geometry.x = position.x;
  win->geometry.y = position.y;
  parent->children.push_back(window);
  Tick();

  xproto::ReparentNotifyEvent notify;
  notify.window = window;
  notify.parent = new_parent;
  notify.pos = position;
  notify.override_redirect = win->override_redirect;
  notify.event_window = window;
  DeliverToSelecting(window, xproto::kStructureNotifyMask, Event{notify});
  notify.event_window = old_parent;
  DeliverToSelecting(old_parent, xproto::kSubstructureNotifyMask, Event{notify});
  if (new_parent != old_parent) {
    notify.event_window = new_parent;
    DeliverToSelecting(new_parent, xproto::kSubstructureNotifyMask, Event{notify});
  }
  if (was_mapped) {
    // Re-map goes through redirect again per protocol.
    MapWindow(client, window);
  }
  // The narrowest race a WM faces: its reparent succeeded, but the client
  // destroys the window before the WM selects StructureNotify on it — no
  // DestroyNotify will ever reach the WM.
  if (fault_plan_active_ && !in_fault_ && client != owner && into_frame &&
      fault_rng_.Roll(fault_plan_.destroy_on_reparent_permille)) {
    InjectDestroy(window);
  }
  return true;
}

bool Server::ConfigureWindow(ClientId client, WindowId window, uint16_t value_mask,
                             const ConfigureValues& values) {
  RequestGuard req(this, client, RequestCode::kConfigureWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (win->parent == kNone) {
    return RaiseError(client, ErrorCode::kBadMatch, window);  // Roots are not configurable.
  }
  WindowRec* parent = Find(win->parent);
  if (!win->override_redirect && parent != nullptr) {
    ClientId holder = RedirectHolder(*parent);
    if (holder != 0 && holder != client) {
      Tick();
      xproto::ConfigureRequestEvent request;
      request.parent = win->parent;
      request.window = window;
      request.value_mask = value_mask;
      request.geometry = values.geometry;
      request.border_width = values.border_width;
      request.sibling = values.sibling;
      request.stack_mode = values.stack_mode;
      Enqueue(holder, Event{request});
      return true;
    }
  }

  xbase::Rect old_geometry = win->geometry;
  if (value_mask & xproto::kConfigX) {
    win->geometry.x = values.geometry.x;
  }
  if (value_mask & xproto::kConfigY) {
    win->geometry.y = values.geometry.y;
  }
  if (value_mask & xproto::kConfigWidth) {
    win->geometry.width = std::clamp(values.geometry.width, 1, xproto::kMaxCoordinate);
  }
  if (value_mask & xproto::kConfigHeight) {
    win->geometry.height = std::clamp(values.geometry.height, 1, xproto::kMaxCoordinate);
  }
  if (value_mask & xproto::kConfigBorderWidth) {
    win->border_width = values.border_width;
  }
  if ((value_mask & xproto::kConfigStackMode) && parent != nullptr) {
    auto& siblings = parent->children;
    std::erase(siblings, window);
    switch (values.stack_mode) {
      case xproto::StackMode::kAbove:
      case xproto::StackMode::kTopIf:
      case xproto::StackMode::kOpposite: {
        if ((value_mask & xproto::kConfigSibling) && values.sibling != kNone) {
          auto it = std::find(siblings.begin(), siblings.end(), values.sibling);
          if (it != siblings.end()) {
            siblings.insert(it + 1, window);
          } else {
            siblings.push_back(window);
          }
        } else {
          siblings.push_back(window);
        }
        break;
      }
      case xproto::StackMode::kBelow:
      case xproto::StackMode::kBottomIf: {
        if ((value_mask & xproto::kConfigSibling) && values.sibling != kNone) {
          auto it = std::find(siblings.begin(), siblings.end(), values.sibling);
          siblings.insert(it, window);
        } else {
          siblings.insert(siblings.begin(), window);
        }
        break;
      }
    }
  }

  Tick();
  xproto::ConfigureNotifyEvent notify;
  notify.window = window;
  notify.geometry = win->geometry;
  notify.border_width = win->border_width;
  notify.override_redirect = win->override_redirect;
  notify.event_window = window;
  DeliverToSelecting(window, xproto::kStructureNotifyMask, Event{notify});
  if (win->parent != kNone) {
    notify.event_window = win->parent;
    DeliverToSelecting(win->parent, xproto::kSubstructureNotifyMask, Event{notify});
  }
  bool resized = old_geometry.size() != win->geometry.size();
  if (resized && IsViewable(window)) {
    SendExpose(win);
  }
  UpdatePointerWindow();
  // Move/resize-in-progress death: the client gives up on a window the WM is
  // actively configuring.
  if (fault_plan_active_ && !in_fault_ && client != win->owner &&
      fault_rng_.Roll(fault_plan_.destroy_on_configure_permille)) {
    InjectDestroy(window);
  }
  return true;
}

bool Server::MoveWindow(ClientId client, WindowId window, const xbase::Point& pos) {
  ConfigureValues values;
  values.geometry.x = pos.x;
  values.geometry.y = pos.y;
  return ConfigureWindow(client, window, xproto::kConfigX | xproto::kConfigY, values);
}

bool Server::ResizeWindow(ClientId client, WindowId window, const xbase::Size& size) {
  ConfigureValues values;
  values.geometry.width = size.width;
  values.geometry.height = size.height;
  return ConfigureWindow(client, window, xproto::kConfigWidth | xproto::kConfigHeight, values);
}

bool Server::MoveResizeWindow(ClientId client, WindowId window, const xbase::Rect& r) {
  ConfigureValues values;
  values.geometry = r;
  return ConfigureWindow(
      client, window,
      xproto::kConfigX | xproto::kConfigY | xproto::kConfigWidth | xproto::kConfigHeight,
      values);
}

bool Server::RaiseWindow(ClientId client, WindowId window) {
  ConfigureValues values;
  values.stack_mode = xproto::StackMode::kAbove;
  return ConfigureWindow(client, window, xproto::kConfigStackMode, values);
}

bool Server::LowerWindow(ClientId client, WindowId window) {
  ConfigureValues values;
  values.stack_mode = xproto::StackMode::kBelow;
  return ConfigureWindow(client, window, xproto::kConfigStackMode, values);
}

bool Server::SelectInput(ClientId client, WindowId window, uint32_t event_mask) {
  RequestGuard req(this, client, RequestCode::kSelectInput);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr || !HasClient(client)) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (event_mask & xproto::kSubstructureRedirectMask) {
    ClientId holder = RedirectHolder(*win);
    if (holder != 0 && holder != client) {
      // Another window manager is running.
      return RaiseError(client, ErrorCode::kBadAccess, window);
    }
  }
  if (event_mask == 0) {
    win->selections.erase(client);
  } else {
    win->selections[client] = event_mask;
  }
  return true;
}

uint32_t Server::SelectedInput(ClientId client, WindowId window) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return 0;
  }
  auto it = win->selections.find(client);
  return it == win->selections.end() ? 0 : it->second;
}

bool Server::ChangeSaveSet(ClientId client, WindowId window, bool add) {
  RequestGuard req(this, client, RequestCode::kChangeSaveSet);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return false;
  }
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (add) {
    if (std::find(rec->save_set.begin(), rec->save_set.end(), window) == rec->save_set.end()) {
      rec->save_set.push_back(window);
      win->save_set_clients.push_back(client);
    }
  } else {
    std::erase(rec->save_set, window);
    std::erase(win->save_set_clients, client);
  }
  return true;
}

// ---- Introspection ----------------------------------------------------------

std::optional<WindowAttributes> Server::GetWindowAttributes(WindowId window) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return std::nullopt;
  }
  WindowAttributes attrs;
  attrs.window_class = win->window_class;
  attrs.override_redirect = win->override_redirect;
  attrs.all_event_masks = win->AllSelections();
  attrs.border_width = win->border_width;
  if (!win->mapped) {
    attrs.map_state = xproto::MapState::kUnmapped;
  } else if (AncestorsMapped(*win)) {
    attrs.map_state = xproto::MapState::kViewable;
  } else {
    attrs.map_state = xproto::MapState::kUnviewable;
  }
  return attrs;
}

std::optional<xbase::Rect> Server::GetGeometry(WindowId window) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return std::nullopt;
  }
  return win->geometry;
}

std::optional<QueryTreeReply> Server::QueryTree(WindowId window) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return std::nullopt;
  }
  QueryTreeReply reply;
  reply.parent = win->parent;
  reply.children = win->children;
  reply.root = screens_[win->screen].root;
  return reply;
}

xbase::Point Server::RootPosition(WindowId window) const {
  xbase::Point pos;
  const WindowRec* win = Find(window);
  while (win != nullptr) {
    pos.x += win->geometry.x;
    pos.y += win->geometry.y;
    win = Find(win->parent);
  }
  return pos;
}

std::optional<xbase::Point> Server::TranslateCoordinates(WindowId src, WindowId dst,
                                                         const xbase::Point& point) const {
  const WindowRec* src_win = Find(src);
  const WindowRec* dst_win = Find(dst);
  if (src_win == nullptr || dst_win == nullptr || src_win->screen != dst_win->screen) {
    return std::nullopt;
  }
  xbase::Point src_root = RootPosition(src);
  xbase::Point dst_root = RootPosition(dst);
  return xbase::Point{point.x + src_root.x - dst_root.x, point.y + src_root.y - dst_root.y};
}

bool Server::WindowExists(WindowId window) const { return Find(window) != nullptr; }

std::vector<WindowId> Server::ClientWindows(ClientId client) const {
  std::vector<WindowId> ids;
  for (const auto& [id, rec] : windows_) {
    if (rec.owner == client && !rec.destroyed) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool Server::IsViewable(WindowId window) const {
  const WindowRec* win = Find(window);
  return win != nullptr && win->mapped && AncestorsMapped(*win);
}

bool Server::IsAncestorOrSelf(WindowId ancestor, WindowId descendant) const {
  WindowId cur = descendant;
  while (cur != kNone) {
    if (cur == ancestor) {
      return true;
    }
    const WindowRec* win = Find(cur);
    if (win == nullptr) {
      return false;
    }
    cur = win->parent;
  }
  return false;
}

// ---- Properties -------------------------------------------------------------

bool Server::ChangeProperty(ClientId client, WindowId window, AtomId property, AtomId type,
                            int format, PropMode mode, const std::vector<uint8_t>& data) {
  RequestGuard req(this, client, RequestCode::kChangeProperty);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (property == xproto::kAtomNone) {
    return RaiseError(client, ErrorCode::kBadAtom, property);
  }
  if (format != 8 && format != 16 && format != 32) {
    return RaiseError(client, ErrorCode::kBadValue, static_cast<uint32_t>(format));
  }
  PropertyRec& rec = win->properties[property];
  switch (mode) {
    case PropMode::kReplace:
      rec.type = type;
      rec.format = format;
      rec.data = data;
      break;
    case PropMode::kAppend:
      if (!rec.data.empty() && (rec.type != type || rec.format != format)) {
        return RaiseError(client, ErrorCode::kBadMatch, property);
      }
      rec.type = type;
      rec.format = format;
      rec.data.insert(rec.data.end(), data.begin(), data.end());
      break;
    case PropMode::kPrepend:
      if (!rec.data.empty() && (rec.type != type || rec.format != format)) {
        return RaiseError(client, ErrorCode::kBadMatch, property);
      }
      rec.type = type;
      rec.format = format;
      rec.data.insert(rec.data.begin(), data.begin(), data.end());
      break;
  }
  xproto::PropertyNotifyEvent notify;
  notify.window = window;
  notify.atom = property;
  notify.state = xproto::PropertyState::kNewValue;
  notify.time = Tick();
  DeliverToSelecting(window, xproto::kPropertyChangeMask, Event{notify});
  return true;
}

bool Server::DeleteProperty(ClientId client, WindowId window, AtomId property) {
  RequestGuard req(this, client, RequestCode::kDeleteProperty);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (win->properties.erase(property) == 0) {
    return false;  // Deleting an absent property is a no-op, not an error.
  }
  xproto::PropertyNotifyEvent notify;
  notify.window = window;
  notify.atom = property;
  notify.state = xproto::PropertyState::kDeleted;
  notify.time = Tick();
  DeliverToSelecting(window, xproto::kPropertyChangeMask, Event{notify});
  return true;
}

std::optional<PropertyRec> Server::GetProperty(WindowId window, AtomId property) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return std::nullopt;
  }
  auto it = win->properties.find(property);
  if (it == win->properties.end()) {
    return std::nullopt;
  }
  if (fault_plan_active_ && !in_fault_ &&
      fault_rng_.Roll(fault_plan_.corrupt_property_permille)) {
    // Oversized garbage payload, same type/format the reader expects.
    ++fault_counters_.corrupted_properties;
    PropertyRec garbage = it->second;
    garbage.data.resize(fault_plan_.corrupt_property_bytes);
    for (uint8_t& byte : garbage.data) {
      byte = static_cast<uint8_t>(fault_rng_.Next());
    }
    return garbage;
  }
  if (fault_plan_active_ && !in_fault_ &&
      fault_rng_.Roll(fault_plan_.malform_property_permille)) {
    ++fault_counters_.malformed_properties;
    return MalformProperty(it->second);
  }
  return it->second;
}

PropertyRec Server::MalformProperty(const PropertyRec& original) const {
  // Structured malformations: the shapes hostile or buggy clients actually
  // produce, each targeting a decoder assumption.  Which shape is drawn from
  // the same seeded stream as every other fault decision.
  PropertyRec out = original;
  switch (fault_rng_.Range(0, 4)) {
    case 0:
      // Truncated mid-field: a hints array cut anywhere, including inside a
      // 32-bit field.
      if (!out.data.empty()) {
        out.data.resize(fault_rng_.Next() % out.data.size());
        break;
      }
      [[fallthrough]];
    case 1: {
      // Giant string, sprinkled with control characters and NULs.
      out.data.resize(64 * 1024 + static_cast<size_t>(fault_rng_.Range(0, 4095)));
      for (uint8_t& byte : out.data) {
        uint64_t draw = fault_rng_.Next();
        byte = (draw % 17 == 0) ? static_cast<uint8_t>(draw % 32)  // NUL/C0.
                                : static_cast<uint8_t>('!' + draw % 94);
      }
      break;
    }
    case 2: {
      // All-negative 32-bit fields: -1, INT_MIN, or a large negative, per
      // field (negative sizes, increments, coordinates).
      for (size_t i = 0; i + 4 <= out.data.size(); i += 4) {
        uint32_t value = 0;
        switch (fault_rng_.Range(0, 2)) {
          case 0: value = 0xffffffffu; break;                        // -1
          case 1: value = 0x80000000u; break;                        // INT_MIN
          default: value = 0x80000000u | static_cast<uint32_t>(fault_rng_.Next()); break;
        }
        out.data[i] = static_cast<uint8_t>(value & 0xff);
        out.data[i + 1] = static_cast<uint8_t>((value >> 8) & 0xff);
        out.data[i + 2] = static_cast<uint8_t>((value >> 16) & 0xff);
        out.data[i + 3] = static_cast<uint8_t>((value >> 24) & 0xff);
      }
      break;
    }
    case 3:
      // Wrong format tag: 32-bit data claiming to be bytes and vice versa.
      out.format = out.format == 32 ? 8 : 32;
      break;
    default:
      // All-zero payload: zero sizes, zero resize increments, state 0.
      std::fill(out.data.begin(), out.data.end(), 0);
      break;
  }
  return out;
}

std::vector<AtomId> Server::ListProperties(WindowId window) const {
  std::vector<AtomId> out;
  const WindowRec* win = Find(window);
  if (win != nullptr) {
    for (const auto& [atom, rec] : win->properties) {
      out.push_back(atom);
    }
  }
  return out;
}

// ---- Drawing ----------------------------------------------------------------

bool Server::SetWindowBackground(ClientId client, WindowId window, char background) {
  RequestGuard req(this, client, RequestCode::kSetWindowBackground);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  win->background = background;
  return true;
}

bool Server::SetCursor(ClientId client, WindowId window, const std::string& name) {
  RequestGuard req(this, client, RequestCode::kSetCursor);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  win->cursor_name = name;
  return true;
}

bool Server::ClearWindow(ClientId client, WindowId window) {
  RequestGuard req(this, client, RequestCode::kClearWindow);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  // No Expose is generated here: redraw-on-clear would make every renderer
  // that clears-then-draws in its Expose handler loop forever.
  win->draw_ops.clear();
  ++render_stats_.clears;
  return true;
}

bool Server::Draw(ClientId client, WindowId window, DrawOp op) {
  RequestGuard req(this, client, RequestCode::kDraw);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, ErrorCode::kBadWindow, window);
  }
  if (win->window_class == xproto::WindowClass::kInputOnly) {
    return RaiseError(client, ErrorCode::kBadMatch, window);
  }
  RecordDraw(op);
  win->draw_ops.push_back(std::move(op));
  return true;
}

}  // namespace xserver
