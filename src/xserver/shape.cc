// SHAPE extension: non-rectangular bounding shapes (paper §5).
#include "src/xserver/server.h"

namespace xserver {

using xproto::ClientId;
using xproto::Event;
using xproto::WindowId;

void Server::SetShapeInternal(ClientId client, WindowRec* win,
                              std::optional<xbase::Region> region) {
  (void)client;
  win->shape = std::move(region);
  Tick();
  xproto::ShapeNotifyEvent notify;
  notify.window = win->id;
  notify.shaped = win->shape.has_value();
  notify.extents = win->shape.has_value()
                       ? win->shape->Bounds()
                       : xbase::Rect{0, 0, win->geometry.width, win->geometry.height};
  for (const auto& [cid, enabled] : win->shape_selections) {
    if (enabled) {
      Enqueue(cid, Event{notify});
    }
  }
}

bool Server::ShapeSetMask(ClientId client, WindowId window, const xbase::Bitmap& mask) {
  RequestGuard req(this, client, xproto::RequestCode::kShapeOp);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  SetShapeInternal(client, win, mask.ToRegion());
  return true;
}

bool Server::ShapeSetRegion(ClientId client, WindowId window, xbase::Region region) {
  RequestGuard req(this, client, xproto::RequestCode::kShapeOp);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  SetShapeInternal(client, win, std::move(region));
  return true;
}

bool Server::ShapeClear(ClientId client, WindowId window) {
  RequestGuard req(this, client, xproto::RequestCode::kShapeOp);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  SetShapeInternal(client, win, std::nullopt);
  return true;
}

bool Server::ShapeSelect(ClientId client, WindowId window, bool enable) {
  RequestGuard req(this, client, xproto::RequestCode::kShapeOp);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr || !HasClient(client)) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  if (enable) {
    win->shape_selections[client] = true;
  } else {
    win->shape_selections.erase(client);
  }
  return true;
}

std::optional<xbase::Region> Server::GetShape(WindowId window) const {
  const WindowRec* win = Find(window);
  if (win == nullptr) {
    return std::nullopt;
  }
  return win->shape;
}

bool Server::IsShaped(WindowId window) const {
  const WindowRec* win = Find(window);
  return win != nullptr && win->shape.has_value();
}

}  // namespace xserver
