// Readiness-driven host for out-of-process clients (docs/PROTOCOL.md,
// "Out-of-process operation").
//
// A WireHost owns one xproto::Listener plus one xbase::EventLoop and turns
// kernel readiness into Connection pumps: the listening socket's readability
// drives an accept loop that mints an xserver::Connection per peer, each
// connection's fd is watched for read (always) and write (only while reply
// bytes are queued), and the ConnectionLimits wall-clock deadlines —
// read_idle_ms / write_stall_ms — live on the event loop's timerfd wheel.
// Nothing spins: between events the host sleeps in epoll_wait, which is the
// difference between the test harnesses' Pump() loops and a process that can
// host real clients.
//
// Crash tolerance is the point.  A client killed mid-request surfaces here
// as readability, then EOF with a partial frame buffered: the connection
// drains, closes as kPeerClosed with died_mid_frame() latched, the
// misbehavior ledger is charged, and Server::Disconnect sweeps exactly that
// client's windows.  Other connections never notice — their reply streams
// are byte-identical with or without the crash.
#ifndef SRC_XSERVER_WIRE_HOST_H_
#define SRC_XSERVER_WIRE_HOST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/poller.h"
#include "src/xproto/transport.h"
#include "src/xserver/connection.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace xserver {

struct WireHostOptions {
  // Per-connection lifecycle limits; read_idle_ms / write_stall_ms become
  // event-loop deadlines here (the pump-count limits still apply inside
  // each Pump).
  ConnectionLimits limits;
  // Machine label new connections register with (shows up in client recs).
  std::string machine = "socket";
  // Transport fault plan, applied to every accepted connection when active.
  FaultPlan transport_faults;
  bool faults_active = false;
  // Wired into each connection's misbehavior hook (the swm layer points
  // this at MisbehaviorLedger::Charge).
  std::function<void(xproto::ClientId, int)> misbehavior_hook;
  // Observes each connection just before it is reaped (stats, tests).
  std::function<void(const Connection&)> on_close;
};

class WireHost {
 public:
  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t idle_expirations = 0;
    uint64_t stall_expirations = 0;
    uint64_t mid_frame_deaths = 0;
    // Indexed by static_cast<size_t>(CloseReason).
    uint64_t closed_by_reason[9] = {};
  };

  // Binds `socket_path` (xproto::Listener conventions: '@' prefix selects
  // the abstract namespace, filesystem paths get stale-socket cleanup).
  // Check ok() — a bind failure leaves the host inert, not crashed.
  WireHost(Server* server, const std::string& socket_path,
           WireHostOptions options = {});
  ~WireHost();

  WireHost(const WireHost&) = delete;
  WireHost& operator=(const WireHost&) = delete;

  bool ok() const { return listener_.ok() && loop_.ok(); }
  const std::string& socket_path() const { return listener_.path(); }

  // One event-loop turn: sleeps up to timeout_ms in epoll_wait, then runs
  // every ready accept, connection pump and due deadline.  Returns the
  // number of callbacks dispatched.
  int PollOnce(int timeout_ms);

  // Polls until done() returns true or budget_ms elapses; returns done()'s
  // final verdict.
  bool RunUntil(const std::function<bool()>& done, int64_t budget_ms);

  size_t connection_count() const { return sessions_.size(); }
  // Live connection for a server-side client id, or nullptr.
  Connection* FindConnection(xproto::ClientId client);
  // Live client ids in accept order (how trace replay binds recorded
  // clients to freshly accepted connections).
  std::vector<xproto::ClientId> clients() const;
  // Abandons every live transport without tearing down its session state —
  // replay's end-of-trace semantics (Connection::Detach).
  void DetachAll();

  const Stats& stats() const { return stats_; }
  uint64_t closed_with(CloseReason reason) const {
    return stats_.closed_by_reason[static_cast<size_t>(reason)];
  }
  xbase::EventLoop& loop() { return loop_; }

 private:
  struct Session {
    std::unique_ptr<Connection> conn;
    int fd = -1;  // Cached: the channel fd dies inside Connection::Close.
    xbase::EventLoop::TimerId idle_timer = 0;
    xbase::EventLoop::TimerId stall_timer = 0;
    bool want_write = false;
  };

  void AcceptPending();
  // Pump + post-pump bookkeeping (timers, write interest, reaping).
  void PumpSession(uint64_t id);
  void ArmIdleTimer(uint64_t id);
  void UpdateWriteInterest(uint64_t id);
  void ExpireSession(uint64_t id, CloseReason reason);
  void ReapSession(uint64_t id);

  Server* server_;
  WireHostOptions options_;
  xproto::Listener listener_;
  xbase::EventLoop loop_;
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_id_ = 1;
  Stats stats_;
};

}  // namespace xserver

#endif  // SRC_XSERVER_WIRE_HOST_H_
