#include "src/xserver/connection.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/xproto/wire.h"

namespace xserver {

using xproto::IoStatus;

const char* ConnectionStateName(ConnectionState state) {
  switch (state) {
    case ConnectionState::kConnecting:
      return "connecting";
    case ConnectionState::kEstablished:
      return "established";
    case ConnectionState::kDraining:
      return "draining";
    case ConnectionState::kClosed:
      return "closed";
  }
  return "?";
}

const char* CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kNone:
      return "none";
    case CloseReason::kPeerClosed:
      return "peer-closed";
    case CloseReason::kGracefulDrain:
      return "graceful-drain";
    case CloseReason::kWriteStalled:
      return "write-stalled";
    case CloseReason::kReadIdle:
      return "read-idle";
    case CloseReason::kReadOverflow:
      return "read-overflow";
    case CloseReason::kProtocolError:
      return "protocol-error";
    case CloseReason::kTransportError:
      return "transport-error";
    case CloseReason::kReset:
      return "reset";
  }
  return "?";
}

Connection::Connection(Server* server, std::unique_ptr<xproto::ByteChannel> channel,
                       std::string machine, ConnectionLimits limits)
    : server_(server),
      channel_(std::move(channel)),
      machine_(std::move(machine)),
      limits_(limits),
      inbound_(xproto::FrameStream::kRequests, limits.read_buffer_cap) {}

Connection::~Connection() {
  if (state_ != ConnectionState::kClosed) {
    Close(close_reason_ == CloseReason::kNone ? CloseReason::kGracefulDrain
                                              : close_reason_);
  }
}

void Connection::Establish() {
  if (state_ != ConnectionState::kConnecting) {
    return;
  }
  client_ = server_->Connect(machine_);
  // X errors for this client travel the wire like everything else: encode
  // onto the outbound queue as the server raises them.
  server_->SetErrorCallback(client_, [this](const xproto::XError& error) {
    xproto::WireWriter w;
    xproto::EncodeError(error, &w);
    QueueBytes(w.span());
    ++stats_.errors_queued;
  });
  // Per-connection deterministic fault stream: same plan seed + same client
  // id => same faults, every run.
  if (faults_active_) {
    rng_ = FaultRng(plan_.seed ^ (0x9e3779b97f4a7c15ull * (client_ + 1)));
  }
  state_ = ConnectionState::kEstablished;
}

void Connection::SetMisbehaviorHook(std::function<void(xproto::ClientId, int)> hook) {
  misbehavior_hook_ = std::move(hook);
}

void Connection::InstallTransportFaults(const FaultPlan& plan) {
  plan_ = plan;
  faults_active_ = plan.short_read_permille > 0 || plan.short_write_permille > 0 ||
                   plan.eintr_storm_permille > 0 || plan.reset_midframe_permille > 0 ||
                   plan.mutate_reply_permille > 0;
  rng_ = FaultRng(plan_.seed ^ (0x9e3779b97f4a7c15ull * (client_ + 1)));
}

void Connection::ChargeMisbehavior() {
  if (misbehavior_hook_) {
    misbehavior_hook_(client_, limits_.misbehavior_cost);
  }
}

void Connection::Close(CloseReason reason) {
  if (state_ == ConnectionState::kClosed) {
    return;
  }
  state_ = ConnectionState::kClosed;
  close_reason_ = reason;
  if (reason != CloseReason::kPeerClosed && reason != CloseReason::kGracefulDrain) {
    XB_LOG(Warning) << "connection client=" << client_ << " closed: "
                    << CloseReasonName(reason);
  }
  // Disconnect runs save-set processing and sweeps the client's windows —
  // the same teardown a direct-call client gets, touching no other client.
  if (client_ != 0) {
    server_->Disconnect(client_);
    client_ = 0;
  }
  if (channel_) {
    channel_->Close();
  }
}

void Connection::CloseExpired(CloseReason reason) {
  if (state_ == ConnectionState::kClosed) {
    return;
  }
  ChargeMisbehavior();
  Close(reason);
}

void Connection::Detach() {
  if (state_ == ConnectionState::kClosed) {
    return;
  }
  state_ = ConnectionState::kClosed;
  close_reason_ = CloseReason::kGracefulDrain;
  if (client_ != 0) {
    // The error callback captures `this`; the client record outlives us.
    server_->SetErrorCallback(client_, nullptr);
    client_ = 0;
  }
  if (channel_) {
    channel_->Close();
  }
}

void Connection::BeginDrain() {
  if (state_ == ConnectionState::kEstablished || state_ == ConnectionState::kConnecting) {
    if (state_ == ConnectionState::kConnecting) {
      Establish();
    }
    state_ = ConnectionState::kDraining;
    drain_reason_ = CloseReason::kGracefulDrain;
  }
}

void Connection::QueueBytes(std::span<const uint8_t> bytes) {
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
}

bool Connection::FeedChecked(std::span<const uint8_t> bytes) {
  if (!inbound_.Feed(bytes)) {
    ChargeMisbehavior();
    Close(CloseReason::kReadOverflow);
    return false;
  }
  return true;
}

bool Connection::ReadInbound() {
  // Bytes a short-read fault held back last pump arrive first — the stream
  // stays in order, just sliced.
  if (pending_in_offset_ < pending_in_.size()) {
    std::span<const uint8_t> rest(pending_in_.data() + pending_in_offset_,
                                  pending_in_.size() - pending_in_offset_);
    pending_in_offset_ = pending_in_.size();
    if (!FeedChecked(rest)) {
      return false;
    }
    pending_in_.clear();
    pending_in_offset_ = 0;
  }

  uint8_t buf[4096];
  for (;;) {
    if (faults_active_ && plan_.eintr_storm_permille > 0 &&
        rng_.Roll(plan_.eintr_storm_permille)) {
      // The channel retries real EINTR internally; the storm is accounted as
      // the retries a blocking loop would have burned.
      fault_counters_.eintr_retries += static_cast<uint64_t>(rng_.Range(1, 4));
    }
    size_t n = 0;
    IoStatus status = channel_->Read(buf, sizeof(buf), &n);
    if (n > 0) {
      stats_.bytes_read += n;
      idle_pumps_ = 0;
      std::span<const uint8_t> data(buf, n);
      if (faults_active_ && n > 1 && rng_.Roll(plan_.short_read_permille)) {
        // Deliver a slice now, stash the rest for the next pump.
        size_t cut = static_cast<size_t>(rng_.Range(1, static_cast<int>(n) - 1));
        pending_in_.assign(data.begin() + static_cast<ptrdiff_t>(cut), data.end());
        pending_in_offset_ = 0;
        ++fault_counters_.short_reads;
        return FeedChecked(data.first(cut));
      }
      if (!FeedChecked(data)) {
        return false;
      }
    }
    switch (status) {
      case IoStatus::kOk:
        if (n == 0) {
          return true;
        }
        break;  // More may be waiting.
      case IoStatus::kWouldBlock:
        return true;
      case IoStatus::kClosed:
        // EOF: dispatch what already arrived, flush, then close.
        state_ = ConnectionState::kDraining;
        drain_reason_ = CloseReason::kPeerClosed;
        return true;
      case IoStatus::kError:
        Close(CloseReason::kTransportError);
        return false;
    }
  }
}

bool Connection::QueueReplies(std::span<uint8_t> frames) {
  size_t cursor = 0;
  while (cursor < frames.size()) {
    size_t remaining = frames.size() - cursor;
    size_t frame_len =
        xproto::FrameBytesAtHead(xproto::FrameStream::kServerToClient,
                                 frames.subspan(cursor))
            .value_or(remaining);
    frame_len = std::clamp(frame_len, size_t{1}, remaining);
    std::span<uint8_t> frame = frames.subspan(cursor, frame_len);
    if (faults_active_ && rng_.Roll(plan_.mutate_reply_permille)) {
      // In-flight corruption.  The trace already captured the honest bytes
      // in Server::EmitReply, so replays are unaffected.
      int flips = rng_.Range(1, 3);
      for (int i = 0; i < flips; ++i) {
        size_t bit = rng_.Next() % (frame.size() * 8);
        frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      ++fault_counters_.mutated_replies;
    }
    if (faults_active_ && rng_.Roll(plan_.reset_midframe_permille)) {
      // Die partway through the frame: the peer sees a truncated stream,
      // then EOF.
      size_t keep = std::max<size_t>(1, frame.size() / 2);
      QueueBytes(frame.first(keep));
      ++fault_counters_.connection_resets;
      FlushOutbound();
      Close(CloseReason::kReset);
      return false;
    }
    QueueBytes(frame);
    cursor += frame_len;
  }
  return true;
}

bool Connection::DispatchInbound() {
  uint64_t assembled_before = inbound_.frames_assembled();
  std::vector<uint8_t> frames = inbound_.TakeFrames();
  if (frames.empty()) {
    return true;
  }
  stats_.frames_dispatched += inbound_.frames_assembled() - assembled_before;
  Server::DispatchResult result = server_->DispatchBytes(client_, frames);
  stats_.requests_dispatched += result.requests_dispatched;
  stats_.parse_errors += result.parse_errors;
  stats_.replies_queued += result.replies;
  if (!result.reply_bytes.empty() && !QueueReplies(result.reply_bytes)) {
    return false;
  }
  if (result.parse_errors > 0) {
    // The codec rejected a frame; its X error is already queued via the
    // error callback.  A framed stream cannot resynchronize past that, so
    // flush what the client has earned and tear down.
    ChargeMisbehavior();
    FlushOutbound();
    Close(CloseReason::kProtocolError);
    return false;
  }
  return true;
}

void Connection::QueueEvents() {
  if (client_ == 0) {
    return;
  }
  uint16_t sequence = static_cast<uint16_t>(server_->SequenceNumber(client_));
  while (std::optional<xproto::Event> event = server_->NextEvent(client_)) {
    xproto::WireWriter w;
    xproto::EncodeEvent(*event, sequence, &w);
    QueueBytes(w.span());
    ++stats_.events_queued;
  }
}

IoStatus Connection::FlushOutbound() {
  while (outbox_sent_ < outbox_.size()) {
    std::span<const uint8_t> chunk(outbox_.data() + outbox_sent_,
                                   outbox_.size() - outbox_sent_);
    bool short_write = faults_active_ && chunk.size() > 1 &&
                       rng_.Roll(plan_.short_write_permille);
    if (short_write) {
      chunk = chunk.first(
          static_cast<size_t>(rng_.Range(1, static_cast<int>(chunk.size()) - 1)));
      ++fault_counters_.short_writes;
    }
    size_t written = 0;
    IoStatus status = channel_->Write(chunk, &written);
    outbox_sent_ += written;
    stats_.bytes_written += written;
    if (status != IoStatus::kOk) {
      return status;
    }
    if (short_write || written == 0) {
      // Faulted short write ends this pump's flushing (the rest goes next
      // pump); a zero-byte accept means the peer's buffer is full.
      return written == 0 && !short_write ? IoStatus::kWouldBlock : IoStatus::kOk;
    }
  }
  outbox_.clear();
  outbox_sent_ = 0;
  return IoStatus::kOk;
}

ConnectionState Connection::Pump() {
  if (state_ == ConnectionState::kConnecting) {
    Establish();
  }
  if (state_ == ConnectionState::kClosed) {
    return state_;
  }
  ++stats_.pumps;
  uint64_t read_before = stats_.bytes_read;

  if (state_ == ConnectionState::kEstablished) {
    if (!ReadInbound()) {
      return state_;
    }
  }
  if (state_ != ConnectionState::kClosed) {
    if (!DispatchInbound()) {
      return state_;
    }
  }
  QueueEvents();

  stats_.write_queue_peak = std::max(stats_.write_queue_peak, outbound_queued());
  IoStatus flush = FlushOutbound();
  if (flush == IoStatus::kClosed) {
    // A write rejected with EPIPE/ECONNRESET on a still-established
    // connection is a dead peer we only discovered on the write side —
    // a transport error, not a clean EOF.  During a drain the read side
    // already diagnosed the close; keep its reason (and still account a
    // partial request frame as a mid-request death).
    if (state_ == ConnectionState::kDraining) {
      if (drain_reason_ == CloseReason::kPeerClosed &&
          inbound_.buffered_bytes() > 0) {
        died_mid_frame_ = true;
        ChargeMisbehavior();
      }
      Close(drain_reason_);
    } else {
      Close(CloseReason::kTransportError);
    }
    return state_;
  }
  if (flush == IoStatus::kError) {
    Close(CloseReason::kTransportError);
    return state_;
  }

  if (state_ == ConnectionState::kDraining) {
    if (outbound_queued() == 0) {
      // EOF with a partial request frame still buffered: the client died
      // mid-request (SIGKILL, crash).  That burdened the server with
      // reassembly work it can never finish — charge it like any other
      // misbehavior before the sweep.
      if (drain_reason_ == CloseReason::kPeerClosed &&
          inbound_.buffered_bytes() > 0) {
        died_mid_frame_ = true;
        ChargeMisbehavior();
      }
      Close(drain_reason_);
    }
    return state_;
  }

  // Backpressure: a peer that stops reading pins our queue over the high
  // water mark; each stalled pump is a misbehavior charge, and a run of
  // them is a dead peer.
  if (outbound_queued() > limits_.write_queue_high_water) {
    ++stalled_pumps_;
    ChargeMisbehavior();
    XB_LOG_EVERY_N(Warning, "conn-write-stall", 16)
        << "connection client=" << client_ << " write queue "
        << outbound_queued() << "B over high water ("
        << limits_.write_queue_high_water << "B), stalled pump "
        << stalled_pumps_ << "/" << limits_.stall_pump_limit;
    if (stalled_pumps_ >= limits_.stall_pump_limit) {
      Close(CloseReason::kWriteStalled);
      return state_;
    }
  } else {
    stalled_pumps_ = 0;
  }

  // Read-idle deadline (opt-in): an established peer that never sends.
  if (stats_.bytes_read == read_before) {
    ++idle_pumps_;
    ++stats_.idle_pumps;
    if (limits_.read_idle_limit > 0 && idle_pumps_ >= limits_.read_idle_limit) {
      ChargeMisbehavior();
      Close(CloseReason::kReadIdle);
    }
  }
  return state_;
}

}  // namespace xserver
