#include "src/xserver/replay.h"

#include <sstream>

#include "src/base/geometry.h"

namespace xserver {

using xproto::ClientId;
using xproto::Trace;
using xproto::TraceRecord;
using xproto::TraceRecordType;

ReplayResult ReplayTrace(Server* server, const Trace& trace,
                         const ReplayOptions& options) {
  ReplayResult result;
  std::map<ClientId, ClientId> client_map = options.client_map;
  auto live = [&](ClientId recorded) -> ClientId {
    auto it = client_map.find(recorded);
    return it == client_map.end() ? recorded : it->second;
  };

  for (const TraceRecord& rec : trace.records) {
    switch (rec.type) {
      case TraceRecordType::kConnect:
        client_map[rec.client] = server->Connect(rec.machine);
        break;
      case TraceRecordType::kDisconnect:
        server->Disconnect(live(rec.client));
        break;
      case TraceRecordType::kRequest: {
        Server::DispatchResult d = server->DispatchBytes(live(rec.client), rec.bytes);
        result.requests_dispatched += d.requests_dispatched;
        result.parse_errors += d.parse_errors;
        break;
      }
      case TraceRecordType::kMotion:
        server->SimulateMotion({rec.x, rec.y});
        break;
      case TraceRecordType::kButton:
        server->SimulateButton(rec.button, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kKey:
        server->SimulateKey(rec.keysym, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kWarp:
        server->WarpPointer(rec.screen, {rec.x, rec.y});
        break;
      case TraceRecordType::kPump:
        if (options.pump) {
          options.pump();
        }
        break;
      case TraceRecordType::kExpect: {
        ++result.expectations_checked;
        uint64_t requests = server->TotalRequests();
        uint64_t draw_ops = server->render_stats().draw_ops;
        uint64_t pixels = static_cast<uint64_t>(server->render_stats().pixels_drawn);
        if (result.expectations_met &&
            (requests != rec.expect_requests || draw_ops != rec.expect_draw_ops ||
             pixels != rec.expect_pixels)) {
          result.expectations_met = false;
          std::ostringstream out;
          out << "expect mismatch: requests " << requests << " vs recorded "
              << rec.expect_requests << ", draw_ops " << draw_ops << " vs "
              << rec.expect_draw_ops << ", pixels " << pixels << " vs "
              << rec.expect_pixels;
          result.mismatch = out.str();
        }
        break;
      }
    }
    ++result.records_applied;
  }
  return result;
}

ServerFingerprint FingerprintServer(const Server& server) {
  ServerFingerprint fp;
  fp.total_requests = server.TotalRequests();
  fp.wire_parse_errors = server.wire_parse_errors();
  fp.draw_ops = server.render_stats().draw_ops;
  fp.pixels_drawn = server.render_stats().pixels_drawn;
  // FNV-1a over every screen's rendered canvas: any divergence in the window
  // tree, stacking, shapes, or display lists shows up here.
  uint64_t hash = 1469598103934665603ull;
  for (int s = 0; s < server.ScreenCount(); ++s) {
    std::string rendered = server.RenderScreen(s).ToString();
    for (char c : rendered) {
      hash ^= static_cast<uint8_t>(c);
      hash *= 1099511628211ull;
    }
  }
  fp.screen_hash = hash;
  return fp;
}

}  // namespace xserver
