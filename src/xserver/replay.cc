#include "src/xserver/replay.h"

#include <memory>
#include <sstream>
#include <vector>

#include "src/base/geometry.h"
#include "src/xproto/transport.h"
#include "src/xserver/connection.h"

namespace xserver {

using xproto::ClientId;
using xproto::Trace;
using xproto::TraceRecord;
using xproto::TraceRecordType;

namespace {

void HashBytes(std::span<const uint8_t> bytes, uint64_t* hash) {
  for (uint8_t b : bytes) {
    *hash = (*hash ^ b) * 1099511628211ull;
  }
}

// One traced client's live channel when ReplayOptions::use_transport is set.
struct TransportClient {
  std::unique_ptr<Connection> connection;
  std::unique_ptr<xproto::WireClientEndpoint> endpoint;
  uint64_t requests_seen = 0;
  uint64_t parse_errors_seen = 0;
};

}  // namespace

ReplayResult ReplayTrace(Server* server, const Trace& trace,
                         const ReplayOptions& options) {
  ReplayResult result;
  std::map<ClientId, ClientId> client_map = options.client_map;
  auto live = [&](ClientId recorded) -> ClientId {
    auto it = client_map.find(recorded);
    return it == client_map.end() ? recorded : it->second;
  };

  // Live channels, keyed by *recorded* client id (transport mode only).
  std::map<ClientId, TransportClient> channels;

  // Collects a transport client's reply frames and dispatch counters after
  // moving bytes both ways until the pair goes quiescent.
  auto pump_channel = [&](TransportClient& tc) {
    for (int spin = 0; spin < 64; ++spin) {
      tc.endpoint->Flush();
      ConnectionState state = tc.connection->Pump();
      tc.endpoint->Poll();
      bool quiescent = tc.endpoint->queued_bytes() == 0 &&
                       tc.connection->outbound_queued() == 0;
      if (quiescent || state == ConnectionState::kClosed) {
        break;
      }
    }
    const Connection::Stats& stats = tc.connection->stats();
    result.requests_dispatched +=
        static_cast<size_t>(stats.requests_dispatched - tc.requests_seen);
    result.parse_errors += static_cast<size_t>(stats.parse_errors - tc.parse_errors_seen);
    tc.requests_seen = stats.requests_dispatched;
    tc.parse_errors_seen = stats.parse_errors;
    while (std::optional<std::vector<uint8_t>> frame = tc.endpoint->NextFrame()) {
      if (!frame->empty() && (*frame)[0] == 1) {
        ++result.replayed_replies;
        result.replayed_reply_bytes += frame->size();
        HashBytes(*frame, &result.replayed_reply_hash);
      }
    }
  };

  for (const TraceRecord& rec : trace.records) {
    switch (rec.type) {
      case TraceRecordType::kConnect:
        if (options.use_transport) {
          xproto::ChannelPair pair = xproto::MakeSocketPair();
          TransportClient tc;
          tc.connection = std::make_unique<Connection>(server, std::move(pair.server),
                                                       rec.machine);
          tc.connection->Establish();
          tc.endpoint =
              std::make_unique<xproto::WireClientEndpoint>(std::move(pair.client));
          client_map[rec.client] = tc.connection->client();
          channels[rec.client] = std::move(tc);
        } else {
          client_map[rec.client] = server->Connect(rec.machine);
        }
        break;
      case TraceRecordType::kDisconnect: {
        auto it = channels.find(rec.client);
        if (it != channels.end()) {
          it->second.connection->BeginDrain();
          pump_channel(it->second);
          it->second.connection->Close(CloseReason::kGracefulDrain);
          channels.erase(it);
        } else {
          server->Disconnect(live(rec.client));
        }
        break;
      }
      case TraceRecordType::kRequest: {
        auto it = channels.find(rec.client);
        if (it != channels.end()) {
          it->second.endpoint->QueueBytes(rec.bytes);
          pump_channel(it->second);
          break;
        }
        Server::DispatchResult d = server->DispatchBytes(live(rec.client), rec.bytes);
        result.requests_dispatched += d.requests_dispatched;
        result.parse_errors += d.parse_errors;
        result.replayed_replies += d.replies;
        result.replayed_reply_bytes += d.reply_bytes.size();
        HashBytes(d.reply_bytes, &result.replayed_reply_hash);
        break;
      }
      case TraceRecordType::kReply:
        ++result.recorded_replies;
        result.recorded_reply_bytes += rec.bytes.size();
        HashBytes(rec.bytes, &result.recorded_reply_hash);
        break;
      case TraceRecordType::kMotion:
        server->SimulateMotion({rec.x, rec.y});
        break;
      case TraceRecordType::kButton:
        server->SimulateButton(rec.button, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kKey:
        server->SimulateKey(rec.keysym, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kWarp:
        server->WarpPointer(rec.screen, {rec.x, rec.y});
        break;
      case TraceRecordType::kPump:
        if (options.pump) {
          options.pump();
        }
        break;
      case TraceRecordType::kExpect: {
        ++result.expectations_checked;
        uint64_t requests = server->TotalRequests();
        uint64_t draw_ops = server->render_stats().draw_ops;
        uint64_t pixels = static_cast<uint64_t>(server->render_stats().pixels_drawn);
        if (result.expectations_met &&
            (requests != rec.expect_requests || draw_ops != rec.expect_draw_ops ||
             pixels != rec.expect_pixels)) {
          result.expectations_met = false;
          std::ostringstream out;
          out << "expect mismatch: requests " << requests << " vs recorded "
              << rec.expect_requests << ", draw_ops " << draw_ops << " vs "
              << rec.expect_draw_ops << ", pixels " << pixels << " vs "
              << rec.expect_pixels;
          result.mismatch = out.str();
        }
        break;
      }
    }
    ++result.records_applied;
  }

  // Channels the trace never disconnected: collect their last replies, then
  // detach — the recorded server still had these clients connected, so the
  // replayed one must keep their sessions (and windows) alive too.
  for (auto& [recorded_id, tc] : channels) {
    pump_channel(tc);
    tc.connection->Detach();
  }
  channels.clear();

  if (result.recorded_replies > 0 || result.replayed_replies > 0) {
    result.replies_match =
        result.recorded_replies == result.replayed_replies &&
        result.recorded_reply_bytes == result.replayed_reply_bytes &&
        result.recorded_reply_hash == result.replayed_reply_hash;
    if (!result.replies_match) {
      std::ostringstream out;
      out << "reply mismatch: recorded " << result.recorded_replies << " frames/"
          << result.recorded_reply_bytes << "B hash " << std::hex
          << result.recorded_reply_hash << ", replayed " << std::dec
          << result.replayed_replies << " frames/" << result.replayed_reply_bytes
          << "B hash " << std::hex << result.replayed_reply_hash;
      result.reply_mismatch = out.str();
    }
  }
  return result;
}

ServerFingerprint FingerprintServer(const Server& server) {
  ServerFingerprint fp;
  fp.total_requests = server.TotalRequests();
  fp.wire_parse_errors = server.wire_parse_errors();
  fp.draw_ops = server.render_stats().draw_ops;
  fp.pixels_drawn = server.render_stats().pixels_drawn;
  // FNV-1a over every screen's rendered canvas: any divergence in the window
  // tree, stacking, shapes, or display lists shows up here.
  uint64_t hash = 1469598103934665603ull;
  for (int s = 0; s < server.ScreenCount(); ++s) {
    std::string rendered = server.RenderScreen(s).ToString();
    for (char c : rendered) {
      hash ^= static_cast<uint8_t>(c);
      hash *= 1099511628211ull;
    }
  }
  fp.screen_hash = hash;
  fp.replies_emitted = server.replies_emitted();
  fp.reply_bytes = server.reply_bytes_emitted();
  fp.reply_hash = server.reply_hash();
  return fp;
}

}  // namespace xserver
