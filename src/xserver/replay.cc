#include "src/xserver/replay.h"

#include <memory>
#include <sstream>
#include <vector>

#include "src/base/geometry.h"
#include "src/base/logging.h"
#include "src/xproto/transport.h"
#include "src/xserver/connection.h"
#include "src/xserver/wire_host.h"

namespace xserver {

using xproto::ClientId;
using xproto::Trace;
using xproto::TraceRecord;
using xproto::TraceRecordType;

namespace {

void HashBytes(std::span<const uint8_t> bytes, uint64_t* hash) {
  for (uint8_t b : bytes) {
    *hash = (*hash ^ b) * 1099511628211ull;
  }
}

// One traced client's live channel when ReplayOptions::use_transport or
// listen_socket is set.
struct TransportClient {
  std::unique_ptr<Connection> connection;  // Socketpair mode: replay-owned.
  Connection* conn = nullptr;  // Either mode: view (host-owned in socket mode).
  std::unique_ptr<xproto::WireClientEndpoint> endpoint;
  ClientId live_id = 0;
  uint64_t requests_seen = 0;
  uint64_t parse_errors_seen = 0;
  uint64_t bytes_sent = 0;  // Request bytes queued, for quiescence detection.
};

}  // namespace

ReplayResult ReplayTrace(Server* server, const Trace& trace,
                         const ReplayOptions& options) {
  ReplayResult result;
  std::map<ClientId, ClientId> client_map = options.client_map;
  auto live = [&](ClientId recorded) -> ClientId {
    auto it = client_map.find(recorded);
    return it == client_map.end() ? recorded : it->second;
  };

  // Live channels, keyed by *recorded* client id (transport mode only).
  std::map<ClientId, TransportClient> channels;

  // Socket mode: the readiness loop owns every server-side connection.
  std::unique_ptr<WireHost> host;
  if (!options.listen_socket.empty()) {
    WireHostOptions host_options;
    host_options.machine = "replay-socket";
    // A connection the host reaps (protocol error, EOF) dies with dispatch
    // counters the record loop hasn't folded in yet; catch them here.
    host_options.on_close = [&](const Connection& conn) {
      for (auto& [recorded_id, tc] : channels) {
        if (tc.conn == &conn) {
          const Connection::Stats& stats = conn.stats();
          result.requests_dispatched +=
              static_cast<size_t>(stats.requests_dispatched - tc.requests_seen);
          result.parse_errors +=
              static_cast<size_t>(stats.parse_errors - tc.parse_errors_seen);
          tc.requests_seen = stats.requests_dispatched;
          tc.parse_errors_seen = stats.parse_errors;
          tc.conn = nullptr;
          break;
        }
      }
    };
    host = std::make_unique<WireHost>(server, options.listen_socket,
                                      std::move(host_options));
    if (!host->ok()) {
      XB_LOG(Error) << "replay: cannot listen on " << options.listen_socket;
      host.reset();
    }
  }

  // Folds a channel's dispatch counters and reply frames into the result.
  auto collect = [&](TransportClient& tc) {
    if (tc.conn != nullptr) {
      const Connection::Stats& stats = tc.conn->stats();
      result.requests_dispatched +=
          static_cast<size_t>(stats.requests_dispatched - tc.requests_seen);
      result.parse_errors += static_cast<size_t>(stats.parse_errors - tc.parse_errors_seen);
      tc.requests_seen = stats.requests_dispatched;
      tc.parse_errors_seen = stats.parse_errors;
    }
    while (std::optional<std::vector<uint8_t>> frame = tc.endpoint->NextFrame()) {
      if (!frame->empty() && (*frame)[0] == 1) {
        ++result.replayed_replies;
        result.replayed_reply_bytes += frame->size();
        HashBytes(*frame, &result.replayed_reply_hash);
      }
    }
  };

  // Collects a transport client's reply frames and dispatch counters after
  // moving bytes both ways until the pair goes quiescent.
  auto pump_channel = [&](TransportClient& tc) {
    for (int spin = 0; spin < 64; ++spin) {
      tc.endpoint->Flush();
      ConnectionState state = tc.connection->Pump();
      tc.endpoint->Poll();
      bool quiescent = tc.endpoint->queued_bytes() == 0 &&
                       tc.connection->outbound_queued() == 0;
      if (quiescent || state == ConnectionState::kClosed) {
        break;
      }
    }
    collect(tc);
  };

  // Socket mode: let the epoll loop move bytes until the client's stream is
  // fully absorbed (every queued byte flushed and read server-side) and the
  // server's replies are fully flushed, then drain them client-side.
  auto pump_socket = [&](TransportClient& tc) {
    host->RunUntil(
        [&]() {
          tc.endpoint->Flush();
          tc.endpoint->Poll();
          if (tc.endpoint->queued_bytes() > 0) {
            return false;
          }
          if (tc.conn == nullptr) {
            return true;  // Closed and reaped; nothing more will move.
          }
          return tc.conn->stats().bytes_read >= tc.bytes_sent &&
                 tc.conn->outbound_queued() == 0;
        },
        /*budget_ms=*/2000);
    tc.endpoint->Poll();
    collect(tc);
  };

  for (const TraceRecord& rec : trace.records) {
    switch (rec.type) {
      case TraceRecordType::kConnect:
        if (host != nullptr) {
          TransportClient tc;
          std::unique_ptr<xproto::ByteChannel> channel =
              xproto::ConnectSocket(host->socket_path());
          uint64_t accepted_before = host->stats().accepted;
          if (channel != nullptr) {
            tc.endpoint =
                std::make_unique<xproto::WireClientEndpoint>(std::move(channel));
            host->RunUntil(
                [&]() { return host->stats().accepted > accepted_before; },
                /*budget_ms=*/2000);
          }
          if (host->stats().accepted > accepted_before) {
            // Accept order is connect order on a unix socket: the newest
            // live client is ours.
            tc.live_id = host->clients().back();
            tc.conn = host->FindConnection(tc.live_id);
            client_map[rec.client] = tc.live_id;
            channels[rec.client] = std::move(tc);
          } else {
            XB_LOG(Error) << "replay: socket connect failed for traced client "
                          << rec.client;
            client_map[rec.client] = server->Connect(rec.machine);
          }
          break;
        }
        if (options.use_transport) {
          xproto::ChannelPair pair = xproto::MakeSocketPair();
          TransportClient tc;
          tc.connection = std::make_unique<Connection>(server, std::move(pair.server),
                                                       rec.machine);
          tc.connection->Establish();
          tc.conn = tc.connection.get();
          tc.live_id = tc.connection->client();
          tc.endpoint =
              std::make_unique<xproto::WireClientEndpoint>(std::move(pair.client));
          client_map[rec.client] = tc.live_id;
          channels[rec.client] = std::move(tc);
        } else {
          client_map[rec.client] = server->Connect(rec.machine);
        }
        break;
      case TraceRecordType::kDisconnect: {
        auto it = channels.find(rec.client);
        if (it != channels.end()) {
          if (host != nullptr) {
            pump_socket(it->second);
            // EOF is the disconnect: the readiness loop drains and sweeps.
            it->second.endpoint->Close();
            TransportClient& tc = it->second;
            host->RunUntil([&]() { return tc.conn == nullptr; },
                           /*budget_ms=*/2000);
          } else {
            it->second.connection->BeginDrain();
            pump_channel(it->second);
            it->second.connection->Close(CloseReason::kGracefulDrain);
          }
          channels.erase(it);
        } else {
          server->Disconnect(live(rec.client));
        }
        break;
      }
      case TraceRecordType::kRequest: {
        auto it = channels.find(rec.client);
        if (it != channels.end()) {
          it->second.endpoint->QueueBytes(rec.bytes);
          it->second.bytes_sent += rec.bytes.size();
          if (host != nullptr) {
            pump_socket(it->second);
          } else {
            pump_channel(it->second);
          }
          break;
        }
        Server::DispatchResult d = server->DispatchBytes(live(rec.client), rec.bytes);
        result.requests_dispatched += d.requests_dispatched;
        result.parse_errors += d.parse_errors;
        result.replayed_replies += d.replies;
        result.replayed_reply_bytes += d.reply_bytes.size();
        HashBytes(d.reply_bytes, &result.replayed_reply_hash);
        break;
      }
      case TraceRecordType::kReply:
        ++result.recorded_replies;
        result.recorded_reply_bytes += rec.bytes.size();
        HashBytes(rec.bytes, &result.recorded_reply_hash);
        break;
      case TraceRecordType::kMotion:
        server->SimulateMotion({rec.x, rec.y});
        break;
      case TraceRecordType::kButton:
        server->SimulateButton(rec.button, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kKey:
        server->SimulateKey(rec.keysym, rec.press, rec.modifiers);
        break;
      case TraceRecordType::kWarp:
        server->WarpPointer(rec.screen, {rec.x, rec.y});
        break;
      case TraceRecordType::kPump:
        if (options.pump) {
          options.pump();
        }
        break;
      case TraceRecordType::kExpect: {
        ++result.expectations_checked;
        uint64_t requests = server->TotalRequests();
        uint64_t draw_ops = server->render_stats().draw_ops;
        uint64_t pixels = static_cast<uint64_t>(server->render_stats().pixels_drawn);
        if (result.expectations_met &&
            (requests != rec.expect_requests || draw_ops != rec.expect_draw_ops ||
             pixels != rec.expect_pixels)) {
          result.expectations_met = false;
          std::ostringstream out;
          out << "expect mismatch: requests " << requests << " vs recorded "
              << rec.expect_requests << ", draw_ops " << draw_ops << " vs "
              << rec.expect_draw_ops << ", pixels " << pixels << " vs "
              << rec.expect_pixels;
          result.mismatch = out.str();
        }
        break;
      }
    }
    ++result.records_applied;
  }

  // Channels the trace never disconnected: collect their last replies, then
  // detach — the recorded server still had these clients connected, so the
  // replayed one must keep their sessions (and windows) alive too.
  if (host != nullptr) {
    for (auto& [recorded_id, tc] : channels) {
      pump_socket(tc);
      tc.conn = nullptr;  // DetachAll destroys the host-owned connections.
    }
    host->DetachAll();
  } else {
    for (auto& [recorded_id, tc] : channels) {
      pump_channel(tc);
      tc.connection->Detach();
    }
  }
  channels.clear();

  if (result.recorded_replies > 0 || result.replayed_replies > 0) {
    result.replies_match =
        result.recorded_replies == result.replayed_replies &&
        result.recorded_reply_bytes == result.replayed_reply_bytes &&
        result.recorded_reply_hash == result.replayed_reply_hash;
    if (!result.replies_match) {
      std::ostringstream out;
      out << "reply mismatch: recorded " << result.recorded_replies << " frames/"
          << result.recorded_reply_bytes << "B hash " << std::hex
          << result.recorded_reply_hash << ", replayed " << std::dec
          << result.replayed_replies << " frames/" << result.replayed_reply_bytes
          << "B hash " << std::hex << result.replayed_reply_hash;
      result.reply_mismatch = out.str();
    }
  }
  return result;
}

ServerFingerprint FingerprintServer(const Server& server) {
  ServerFingerprint fp;
  fp.total_requests = server.TotalRequests();
  fp.wire_parse_errors = server.wire_parse_errors();
  fp.draw_ops = server.render_stats().draw_ops;
  fp.pixels_drawn = server.render_stats().pixels_drawn;
  // FNV-1a over every screen's rendered canvas: any divergence in the window
  // tree, stacking, shapes, or display lists shows up here.
  uint64_t hash = 1469598103934665603ull;
  for (int s = 0; s < server.ScreenCount(); ++s) {
    std::string rendered = server.RenderScreen(s).ToString();
    for (char c : rendered) {
      hash ^= static_cast<uint8_t>(c);
      hash *= 1099511628211ull;
    }
  }
  fp.screen_hash = hash;
  fp.replies_emitted = server.replies_emitted();
  fp.reply_bytes = server.reply_bytes_emitted();
  fp.reply_hash = server.reply_hash();
  return fp;
}

}  // namespace xserver
