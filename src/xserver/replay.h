// Deterministic trace replay (docs/PROTOCOL.md).
//
// A trace recorded via xproto::TraceRecorder is a complete account of the
// external stimuli a server saw: connections, request byte buffers (exactly
// as the parser saw them, wire mutations included), and simulated input.
// ReplayTrace feeds those stimuli to a fresh server in order, so the same
// trace always produces the same window tree, the same render stats, and the
// same error counts — replaying twice and diffing is the regression test.
//
// Client ids are minted by the server at Connect time, so a trace's recorded
// ids are remapped: each kConnect record connects a fresh client and binds
// the recorded id to the new one.  Ids that appear without a kConnect record
// (e.g. a WM connected before recording started) can be pre-bound through
// ReplayOptions::client_map.
#ifndef SRC_XSERVER_REPLAY_H_
#define SRC_XSERVER_REPLAY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/xproto/trace.h"
#include "src/xserver/server.h"

namespace xserver {

struct ReplayOptions {
  // Pre-seeded recorded-id → live-id bindings (for clients that connected
  // before recording started, typically the window manager).
  std::map<xproto::ClientId, xproto::ClientId> client_map;
  // Invoked at every kPump record — the recorded session's "drain the WM's
  // event queue" points.  Optional.
  std::function<void()> pump;
  // Route every traced client's request bytes through a real socketpair
  // Connection + WireClientEndpoint instead of calling DispatchBytes
  // directly, so replay exercises framing, reassembly and the outbound
  // queue.  Replies come back across the kernel boundary and are verified
  // against the trace's kReply records the same way.  (Pre-bound clients in
  // `client_map` have no channel and stay on the direct path.)
  bool use_transport = false;
  // Non-empty: the full out-of-process path.  Replay binds a WireHost to
  // this socket ('@' prefix = abstract namespace), connects each traced
  // client through the listener, and lets the epoll readiness loop — accept,
  // read, dispatch, flush — move every byte.  Traced clients bind to live
  // ids in accept order (connect order on a unix socket).  Takes precedence
  // over use_transport; the reply-stream verification is identical, which
  // is what makes this the cross-version gate for recorded sessions.
  std::string listen_socket;
};

struct ReplayResult {
  size_t records_applied = 0;
  size_t requests_dispatched = 0;  // Frames parsed and executed.
  size_t parse_errors = 0;         // Frames the wire codec rejected.
  // kExpect verification: counters recorded at capture time vs. this replay.
  size_t expectations_checked = 0;
  bool expectations_met = true;
  std::string mismatch;  // Human-readable first mismatch, empty when met.
  // Reply-direction verification: the trace's kReply records (the honest
  // bytes the recording server emitted) vs. the reply frames this replay
  // produced, as chained FNV-1a hashes + byte/frame counts.  Byte-identical
  // streams are the acceptance bar for duplex traces.
  size_t recorded_replies = 0;
  uint64_t recorded_reply_bytes = 0;
  uint64_t recorded_reply_hash = 1469598103934665603ull;
  size_t replayed_replies = 0;
  uint64_t replayed_reply_bytes = 0;
  uint64_t replayed_reply_hash = 1469598103934665603ull;
  bool replies_match = true;
  std::string reply_mismatch;
};

// Applies every record of `trace` to `server`.  Stops at nothing: malformed
// request buffers raise X errors exactly as they did when recorded.
ReplayResult ReplayTrace(Server* server, const xproto::Trace& trace,
                         const ReplayOptions& options = {});

// Fingerprint of observable server state used by determinism tests: request
// and error totals, render stats, and a hash of every screen's rendered
// canvas.  Two replays of the same trace must produce equal fingerprints.
struct ServerFingerprint {
  uint64_t total_requests = 0;
  uint64_t wire_parse_errors = 0;
  uint64_t draw_ops = 0;
  int64_t pixels_drawn = 0;
  uint64_t screen_hash = 0;
  // Reply direction: count / bytes / chained FNV-1a of every reply frame the
  // server emitted, in order — covers the server→client half of a session.
  uint64_t replies_emitted = 0;
  uint64_t reply_bytes = 0;
  uint64_t reply_hash = 0;

  bool operator==(const ServerFingerprint&) const = default;
};

ServerFingerprint FingerprintServer(const Server& server);

}  // namespace xserver

#endif  // SRC_XSERVER_REPLAY_H_
