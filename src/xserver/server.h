// In-memory X server simulator.
//
// Substitutes for the live X11 server the paper ran against.  It implements
// the protocol semantics a window manager exercises: the window tree with
// stacking, reparenting and save-sets; per-client event selection and
// delivery including SubstructureRedirect (MapRequest / ConfigureRequest);
// properties and atoms with PropertyNotify; pointer/keyboard simulation with
// propagation, automatic and passive grabs; the SHAPE extension; and a
// display-list renderer that paints a screen into an ASCII canvas so the
// paper's figures can be regenerated deterministically.
//
// Single-threaded by design for requests: they are synchronous calls and
// events are queued per client connection, exactly like a round-trip-free
// Xlib stream.  The one concurrent subsystem is the painter: the const
// render paths may fan damage bands / screens out over a worker pool
// (SetPaintThreads), with every worker writing only its own canvas tile.
#ifndef SRC_XSERVER_SERVER_H_
#define SRC_XSERVER_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/canvas.h"
#include "src/base/thread_pool.h"
#include "src/xproto/error.h"
#include "src/xproto/events.h"
#include "src/xproto/trace.h"
#include "src/xproto/types.h"
#include "src/xproto/wire.h"
#include "src/xserver/faults.h"
#include "src/xserver/window.h"

namespace xserver {

struct ScreenConfig {
  int width = 1152;
  int height = 900;
  bool monochrome = false;
};

struct ScreenInfo {
  int number = 0;
  xproto::WindowId root = xproto::kNone;
  xbase::Size size;
  bool monochrome = false;
};

struct ConfigureValues {
  xbase::Rect geometry;
  int border_width = 0;
  xproto::WindowId sibling = xproto::kNone;
  xproto::StackMode stack_mode = xproto::StackMode::kAbove;
};

struct WindowAttributes {
  xproto::WindowClass window_class = xproto::WindowClass::kInputOutput;
  xproto::MapState map_state = xproto::MapState::kUnmapped;
  bool override_redirect = false;
  uint32_t all_event_masks = 0;
  int border_width = 0;
};

struct QueryTreeReply {
  xproto::WindowId root = xproto::kNone;
  xproto::WindowId parent = xproto::kNone;
  std::vector<xproto::WindowId> children;  // Bottom-most first.
};

struct PointerState {
  int screen = 0;
  xbase::Point root_pos;
  xproto::WindowId window = xproto::kNone;  // Deepest viewable window under pointer.
  uint32_t buttons_down = 0;                // Bit i-1 set for button i.
};

enum class PropMode {
  kReplace,
  kAppend,
  kPrepend,
};

class Server {
 public:
  explicit Server(std::vector<ScreenConfig> screens = {ScreenConfig{}});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // ---- Connections -------------------------------------------------------
  xproto::ClientId Connect(const std::string& client_machine = "localhost");
  // Runs save-set processing (reparent-to-root + remap of other clients'
  // windows the disconnecting client had added), then destroys the client's
  // own windows and selections.
  void Disconnect(xproto::ClientId client);
  bool HasClient(xproto::ClientId client) const;
  std::string ClientMachine(xproto::ClientId client) const;

  // ---- Error channel -----------------------------------------------------
  // Errors for requests against dead/invalid resources are reported to the
  // issuing client's callback (its Display's XSetErrorHandler equivalent),
  // synchronously with the failing request.  The request still returns
  // false/kNone, so un-ported callers keep working.
  using ErrorCallback = std::function<void(const xproto::XError&)>;
  void SetErrorCallback(xproto::ClientId client, ErrorCallback callback);
  // Per-connection request sequence number (requests processed so far).
  uint64_t SequenceNumber(xproto::ClientId client) const;
  // Errors raised against the connection so far.
  uint64_t ErrorCount(xproto::ClientId client) const;
  // Requests processed across all connections.
  uint64_t TotalRequests() const { return total_requests_; }

  // ---- Wire dispatch (docs/PROTOCOL.md) ----------------------------------
  // Requests arriving as bytes.  Parses frame after frame out of `bytes`
  // and applies each through the same request paths as the direct calls, so
  // the error channel, fault hooks and sequence numbers behave identically.
  // Malformed input raises a typed X error (BadRequest / BadLength /
  // BadValue) on the connection and aborts the rest of the buffer — after a
  // framing error the stream cannot be resynchronized, exactly the case
  // where a real server would kill the connection.
  struct DispatchResult {
    size_t requests_dispatched = 0;  // Frames parsed and executed.
    size_t requests_failed = 0;      // Executed but refused (X error raised).
    size_t parse_errors = 0;         // Frames rejected by the wire codec.
    std::optional<xproto::ParseError> first_parse_error;
    // Window id minted by the last CreateWindow in the buffer (CreateWindow
    // has no reply in core X either — ids are client-allocated there;
    // byte-routed clients read the id here).
    xproto::WindowId last_created_window = xproto::kNone;
    size_t bytes_consumed = 0;
    // Reply frames the dispatched queries emitted, drained from the
    // connection's outbound encoder (docs/PROTOCOL.md "Replies").  The
    // transport writes these back to the peer; in-process wire clients
    // decode them directly.
    std::vector<uint8_t> reply_bytes;
    size_t replies = 0;
  };
  DispatchResult DispatchBytes(xproto::ClientId client, std::span<const uint8_t> bytes);
  // Applies one already-decoded request (the replayer and wire-mode clients
  // share this with DispatchBytes).  Returns false if the request failed.
  bool ApplyRequest(xproto::ClientId client, const xproto::Request& request,
                    DispatchResult* result);
  // Wire frames rejected across all connections (parser health metric).
  uint64_t wire_parse_errors() const { return wire_parse_errors_; }

  // ---- Reply accounting (docs/PROTOCOL.md "Replies") ---------------------
  // Counters and a running FNV-1a hash over every reply frame emitted, in
  // order — the reply-direction half of the replay fingerprint.
  uint64_t replies_emitted() const { return replies_emitted_; }
  uint64_t reply_bytes_emitted() const { return reply_bytes_emitted_; }
  uint64_t reply_hash() const { return reply_hash_; }

  // ---- Trace recording (docs/PROTOCOL.md) --------------------------------
  // When a recorder is installed, the server appends every external
  // stimulus it sees — connects/disconnects, DispatchBytes buffers (exactly
  // as the parser saw them, mutations included), and simulated input — to
  // the recorder.  Not owned; caller clears before destroying the recorder.
  void SetTraceRecorder(xproto::TraceRecorder* recorder) { trace_recorder_ = recorder; }
  xproto::TraceRecorder* trace_recorder() const { return trace_recorder_; }

  // ---- Fault injection ---------------------------------------------------
  // Installs a deterministic fault plan (see faults.h) and resets the fault
  // counters.  Faults apply to requests/events processed after this call.
  void InstallFaultPlan(const FaultPlan& plan);
  void ClearFaultPlan();
  bool HasFaultPlan() const { return fault_plan_active_; }
  const FaultCounters& fault_counters() const { return fault_counters_; }

  // ---- Render accounting -------------------------------------------------
  // Counts the drawing actually requested of the server, so tests and
  // benches can assert that the retained-mode frame pipeline repaints less
  // than eager rendering for the same final framebuffer.
  struct RenderStats {
    uint64_t draw_ops = 0;      // Draw requests recorded into display lists.
    uint64_t clears = 0;        // ClearWindow requests (display list resets).
    uint64_t rects_drawn = 0;   // Rect-shaped ops (fill/border/bitmap).
    int64_t pixels_drawn = 0;   // Cells covered by the recorded ops.
  };
  const RenderStats& render_stats() const { return render_stats_; }
  void ResetRenderStats() { render_stats_ = {}; }

  // ---- Screens -----------------------------------------------------------
  int ScreenCount() const { return static_cast<int>(screens_.size()); }
  const ScreenInfo& screen(int number) const;
  xproto::WindowId RootWindow(int number) const { return screen(number).root; }
  // Screen a window lives on, or -1 for unknown windows.
  int ScreenOfWindow(xproto::WindowId window) const;

  // ---- Atoms -------------------------------------------------------------
  xproto::AtomId InternAtom(const std::string& name);
  std::optional<std::string> GetAtomName(xproto::AtomId atom) const;

  // ---- Window lifecycle --------------------------------------------------
  xproto::WindowId CreateWindow(xproto::ClientId client, xproto::WindowId parent,
                                const xbase::Rect& geometry, int border_width,
                                xproto::WindowClass window_class, bool override_redirect);
  bool DestroyWindow(xproto::ClientId client, xproto::WindowId window);
  bool MapWindow(xproto::ClientId client, xproto::WindowId window);
  bool UnmapWindow(xproto::ClientId client, xproto::WindowId window);
  bool ReparentWindow(xproto::ClientId client, xproto::WindowId window,
                      xproto::WindowId new_parent, const xbase::Point& position);
  bool ConfigureWindow(xproto::ClientId client, xproto::WindowId window, uint16_t value_mask,
                       const ConfigureValues& values);

  // Convenience wrappers over ConfigureWindow.
  bool MoveWindow(xproto::ClientId client, xproto::WindowId window, const xbase::Point& pos);
  bool ResizeWindow(xproto::ClientId client, xproto::WindowId window, const xbase::Size& size);
  bool MoveResizeWindow(xproto::ClientId client, xproto::WindowId window, const xbase::Rect& r);
  bool RaiseWindow(xproto::ClientId client, xproto::WindowId window);
  bool LowerWindow(xproto::ClientId client, xproto::WindowId window);

  // Fails (returns false) when another client already holds
  // SubstructureRedirect on the window — "another WM is running".
  bool SelectInput(xproto::ClientId client, xproto::WindowId window, uint32_t event_mask);
  uint32_t SelectedInput(xproto::ClientId client, xproto::WindowId window) const;

  bool ChangeSaveSet(xproto::ClientId client, xproto::WindowId window, bool add);

  // ---- Introspection -----------------------------------------------------
  std::optional<WindowAttributes> GetWindowAttributes(xproto::WindowId window) const;
  std::optional<xbase::Rect> GetGeometry(xproto::WindowId window) const;
  std::optional<QueryTreeReply> QueryTree(xproto::WindowId window) const;
  std::optional<xbase::Point> TranslateCoordinates(xproto::WindowId src, xproto::WindowId dst,
                                                   const xbase::Point& point) const;
  bool WindowExists(xproto::WindowId window) const;
  bool IsViewable(xproto::WindowId window) const;
  // All windows a client created, ascending id (newest last — ids are minted
  // monotonically).  The wire substitute for DispatchResult's
  // last_created_window when the client lives in another process.
  std::vector<xproto::WindowId> ClientWindows(xproto::ClientId client) const;
  // Position of the window's top-left corner in real-root coordinates.
  xbase::Point RootPosition(xproto::WindowId window) const;

  // ---- Properties --------------------------------------------------------
  bool ChangeProperty(xproto::ClientId client, xproto::WindowId window, xproto::AtomId property,
                      xproto::AtomId type, int format, PropMode mode,
                      const std::vector<uint8_t>& data);
  bool DeleteProperty(xproto::ClientId client, xproto::WindowId window,
                      xproto::AtomId property);
  std::optional<PropertyRec> GetProperty(xproto::WindowId window,
                                         xproto::AtomId property) const;
  std::vector<xproto::AtomId> ListProperties(xproto::WindowId window) const;

  // ---- Events ------------------------------------------------------------
  // event_mask == 0 delivers to the window's creating client (SendEvent
  // semantics for ClientMessage).
  bool SendEvent(xproto::ClientId client, xproto::WindowId destination, uint32_t event_mask,
                 xproto::Event event);
  std::optional<xproto::Event> NextEvent(xproto::ClientId client);
  size_t PendingEvents(xproto::ClientId client) const;

  // ---- Input focus ---------------------------------------------------------
  // kNone means pointer-root focus (keys go to the window under the
  // pointer).  FocusIn/FocusOut are delivered to FocusChangeMask selectors.
  bool SetInputFocus(xproto::ClientId client, xproto::WindowId window);
  xproto::WindowId GetInputFocus() const { return focus_window_; }

  // ---- Pointer / keyboard ------------------------------------------------
  void WarpPointer(int screen, const xbase::Point& root_pos);
  PointerState QueryPointer() const { return pointer_; }
  // Moves the pointer, generating Enter/Leave and MotionNotify events.
  void SimulateMotion(const xbase::Point& root_pos);
  void SimulateButton(int button, bool press, uint32_t modifiers = 0);
  void SimulateKey(xproto::KeySym keysym, bool press, uint32_t modifiers = 0);
  bool GrabButton(xproto::ClientId client, xproto::WindowId window, int button,
                  uint32_t modifiers, uint32_t event_mask);
  bool UngrabButton(xproto::ClientId client, xproto::WindowId window, int button,
                    uint32_t modifiers);

  // ---- SHAPE extension ---------------------------------------------------
  bool ShapeSetMask(xproto::ClientId client, xproto::WindowId window,
                    const xbase::Bitmap& mask);
  bool ShapeSetRegion(xproto::ClientId client, xproto::WindowId window, xbase::Region region);
  bool ShapeClear(xproto::ClientId client, xproto::WindowId window);
  bool ShapeSelect(xproto::ClientId client, xproto::WindowId window, bool enable);
  std::optional<xbase::Region> GetShape(xproto::WindowId window) const;
  bool IsShaped(xproto::WindowId window) const;

  // ---- Drawing / rendering ----------------------------------------------
  bool SetWindowBackground(xproto::ClientId client, xproto::WindowId window, char background);
  bool SetCursor(xproto::ClientId client, xproto::WindowId window, const std::string& name);
  bool ClearWindow(xproto::ClientId client, xproto::WindowId window);
  bool Draw(xproto::ClientId client, xproto::WindowId window, DrawOp op);
  xbase::Canvas RenderScreen(int number) const;

  // ---- Parallel painter (docs/RENDERING.md) -------------------------------
  // Sizes the painter's worker pool.  `threads <= 1` paints serially on the
  // caller (no OS threads are created); requests stay single-threaded
  // either way — only the const render paths below ever run on workers.
  void SetPaintThreads(int threads);
  int paint_threads() const { return paint_threads_; }

  // Incremental present: repaints exactly the cells of `canvas` covered by
  // `damage` (screen coordinates, clipped to the screen); everything
  // outside the damage keeps its prior contents.  `canvas` must be
  // screen-sized.  With a worker pool, the damage bands are partitioned by
  // area across workers, each painting its partition into a private
  // screen-sized tile that is then copied back serially — disjoint bands,
  // no locks on the pixel path, byte-identical output for any thread
  // count.  When `worker_cells` is non-null it is resized to the worker
  // count and filled with the cells each worker rasterized (work-balance
  // telemetry for the benches).
  void RenderScreenInto(int number, const xbase::Region& damage, xbase::Canvas* canvas,
                        std::vector<uint64_t>* worker_cells = nullptr) const;

  // Renders every screen from scratch.  With a worker pool, screens paint
  // concurrently — each task owns its output canvas (per-root ownership),
  // so no two workers ever share pixels.
  std::vector<xbase::Canvas> RenderAllScreens() const;

  xproto::Timestamp CurrentTime() const { return time_; }

  // Test-only introspection (const view of internal records).
  const WindowRec* FindWindowForTest(xproto::WindowId window) const { return Find(window); }

 private:
  struct ClientRec {
    std::string machine;
    std::deque<xproto::Event> queue;
    // Events a fault plan is holding back; released after the next enqueue
    // for this client (adjacent reorder) or when the queue drains.
    std::deque<xproto::Event> delayed;
    std::vector<xproto::WindowId> save_set;
    uint64_t sequence = 0;  // Requests processed on this connection.
    uint64_t errors = 0;
    ErrorCallback on_error;
    // Per-connection outbound reply encoder; DispatchBytes drains it into
    // DispatchResult::reply_bytes.
    xproto::WireWriter outbound;
    uint64_t replies_sent = 0;
  };

  struct ActiveGrab {
    bool active = false;
    xproto::ClientId client = 0;
    xproto::WindowId window = xproto::kNone;
    int button = 0;
    uint32_t event_mask = 0;
  };

  WindowRec* Find(xproto::WindowId window);
  const WindowRec* Find(xproto::WindowId window) const;
  ClientRec* FindClient(xproto::ClientId client);

  xproto::Timestamp Tick() { return ++time_; }

  // ---- Request bookkeeping / error channel ---------------------------------
  // Every state-changing request enters through a RequestGuard: the
  // outermost guard bumps the client's sequence number and runs the fault
  // hooks (nth-request failure, doomed-window destruction).  Nested guards
  // (requests issued internally while servicing another request, e.g. the
  // unmap inside ReparentWindow) are transparent.
  class RequestGuard {
   public:
    RequestGuard(Server* server, xproto::ClientId client, xproto::RequestCode code);
    ~RequestGuard();
    bool ok() const { return ok_; }  // False when a fault failed the request.

   private:
    Server* server_;
    bool ok_;
  };
  friend class RequestGuard;

  // Raises `code` on `client`'s connection (invoking its error callback) and
  // returns false so call sites can `return RaiseError(...)`.
  bool RaiseError(xproto::ClientId client, xproto::ErrorCode code, uint32_t resource_id);

  // Destroys a window on behalf of the fault plan (full DestroyNotify
  // semantics, no redirect, no recursion into fault hooks).
  void InjectDestroy(xproto::WindowId window);
  // Rolls the doomed-window dice after a redirected MapRequest.
  void MaybeDoom(xproto::WindowId window);
  // Applies one seeded structured malformation to a GetProperty reply
  // (truncation, giant string, negative fields, wrong format, zero fill).
  PropertyRec MalformProperty(const PropertyRec& original) const;

  // Delivers `event` to every client that selected `required_mask` on
  // `window` (excluding `skip`).  Returns number of clients reached.
  int DeliverToSelecting(xproto::WindowId window, uint32_t required_mask,
                         const xproto::Event& event, xproto::ClientId skip = 0);
  void Enqueue(xproto::ClientId client, xproto::Event event);

  // The client holding SubstructureRedirect on `window`, or 0.
  xproto::ClientId RedirectHolder(const WindowRec& win) const;

  void DestroyRecursive(xproto::WindowId window, bool notify_parent);
  void MapApplied(WindowRec* win);
  void SendExpose(WindowRec* win);
  bool AncestorsMapped(const WindowRec& win) const;
  void RemoveFromParent(WindowRec* win);

  // Pointer helpers.
  xproto::WindowId DeepestViewableAt(const xbase::Point& root_pos) const;
  xproto::WindowId DeepestInWindow(const WindowRec& win, const xbase::Point& local) const;
  void UpdatePointerWindow();
  // Child of `ancestor` on the path toward `descendant` (kNone if none).
  xproto::WindowId ChildTowards(xproto::WindowId ancestor, xproto::WindowId descendant) const;
  bool IsAncestorOrSelf(xproto::WindowId ancestor, xproto::WindowId descendant) const;

  void SetShapeInternal(xproto::ClientId client, WindowRec* win,
                        std::optional<xbase::Region> region);

  void RenderWindow(const WindowRec& win, const xbase::Point& origin,
                    const xbase::Region& clip, xbase::Canvas* canvas) const;

  std::vector<ScreenInfo> screens_;
  std::map<xproto::WindowId, WindowRec> windows_;
  std::map<xproto::ClientId, ClientRec> clients_;
  std::map<std::string, xproto::AtomId> atoms_;
  std::vector<std::string> atom_names_;  // atom id - 1 -> name.

  xproto::WindowId next_window_id_ = 1;
  xproto::ClientId next_client_id_ = 1;
  xproto::Timestamp time_ = 0;

  PointerState pointer_;
  ActiveGrab grab_;
  xproto::WindowId focus_window_ = xproto::kNone;  // kNone = pointer-root.

  // ---- Error-channel state --------------------------------------------------
  uint64_t total_requests_ = 0;
  int request_depth_ = 0;  // >0 while servicing a request (nested calls).
  xproto::RequestCode current_request_ = xproto::RequestCode::kNone;
  xproto::ClientId current_client_ = 0;

  // ---- Fault-injection state ------------------------------------------------
  // Mutable: const read paths (GetProperty) also consume PRNG draws and
  // bump counters when corrupting replies.
  FaultPlan fault_plan_;
  bool fault_plan_active_ = false;
  bool in_fault_ = false;  // Re-entrancy guard while injecting a fault.
  mutable FaultRng fault_rng_{1};
  mutable FaultCounters fault_counters_;
  uint64_t faultable_requests_ = 0;  // Requests since plan installation.
  xproto::WindowId doomed_window_ = xproto::kNone;
  int doomed_countdown_ = 0;

  // ---- Wire dispatch state ---------------------------------------------------
  // Applies the plan's byte-level mutations to `frame` in place (dispatch.cc).
  void MutateFrame(std::vector<uint8_t>* frame, size_t frame_start);
  uint64_t wire_parse_errors_ = 0;

  // Encodes `reply` into the client's outbound writer with its current
  // sequence number, updates the reply fingerprint and records the honest
  // bytes to the trace (dispatch.cc).
  void EmitReply(xproto::ClientId client, const xproto::Reply& reply);
  uint64_t replies_emitted_ = 0;
  uint64_t reply_bytes_emitted_ = 0;
  uint64_t reply_hash_ = 1469598103934665603ull;  // FNV-1a offset basis.

  // ---- Trace recording -------------------------------------------------------
  xproto::TraceRecorder* trace_recorder_ = nullptr;

  // ---- Render accounting -----------------------------------------------------
  void RecordDraw(const DrawOp& op);  // render.cc
  RenderStats render_stats_;

  // ---- Parallel painter ------------------------------------------------------
  // Renders the window tree of screen `number` into `canvas` under `clip`
  // (already clipped to the screen); damage cells no window covers become
  // background.  The core of both RenderScreenInto paths.
  void RenderClipped(int number, const xbase::Region& clip, xbase::Canvas* canvas) const;
  int paint_threads_ = 1;
  std::unique_ptr<xbase::ThreadPool> paint_pool_;
  // Per-worker tiles recycled across RenderScreenInto calls.  Mutable with
  // a const render path for the same reason the fault RNG is: a pooled
  // implementation detail, not observable server state.  Only the calling
  // thread resizes the pool; workers each write one preallocated tile.
  mutable std::vector<xbase::Canvas> paint_tiles_;
};

}  // namespace xserver

#endif  // SRC_XSERVER_SERVER_H_
