// Pointer and keyboard simulation: propagation, Enter/Leave generation,
// automatic (button-hold) grabs and passive button grabs.
#include <algorithm>

#include "src/base/logging.h"
#include "src/xserver/server.h"

namespace xserver {

using xproto::ClientId;
using xproto::Event;
using xproto::kNone;
using xproto::WindowId;

WindowId Server::DeepestInWindow(const WindowRec& win, const xbase::Point& local) const {
  // Children are bottom-most first; hit-test from the top of the stack.
  for (auto it = win.children.rbegin(); it != win.children.rend(); ++it) {
    const WindowRec* child = Find(*it);
    if (child == nullptr || !child->mapped) {
      continue;
    }
    xbase::Point child_local{local.x - child->geometry.x, local.y - child->geometry.y};
    xbase::Rect bounds{0, 0, child->geometry.width, child->geometry.height};
    if (!bounds.Contains(child_local)) {
      continue;
    }
    if (child->shape.has_value() && !child->shape->Contains(child_local)) {
      continue;  // SHAPE: input follows the bounding shape.
    }
    return DeepestInWindow(*child, child_local);
  }
  return win.id;
}

WindowId Server::DeepestViewableAt(const xbase::Point& root_pos) const {
  const WindowRec* root = Find(screens_[pointer_.screen].root);
  if (root == nullptr) {
    return kNone;
  }
  return DeepestInWindow(*root, root_pos);
}

WindowId Server::ChildTowards(WindowId ancestor, WindowId descendant) const {
  WindowId cur = descendant;
  WindowId prev = kNone;
  while (cur != kNone && cur != ancestor) {
    const WindowRec* win = Find(cur);
    if (win == nullptr) {
      return kNone;
    }
    prev = cur;
    cur = win->parent;
  }
  return cur == ancestor ? prev : kNone;
}

void Server::UpdatePointerWindow() {
  WindowId now_under = DeepestViewableAt(pointer_.root_pos);
  WindowId was_under = pointer_.window;
  if (now_under == was_under) {
    return;
  }
  Tick();
  if (was_under != kNone && Find(was_under) != nullptr) {
    xproto::CrossingEvent leave;
    leave.enter = false;
    leave.window = was_under;
    leave.root_pos = pointer_.root_pos;
    leave.time = time_;
    DeliverToSelecting(was_under, xproto::kLeaveWindowMask, Event{leave});
  }
  pointer_.window = now_under;
  if (now_under != kNone) {
    xproto::CrossingEvent enter;
    enter.enter = true;
    enter.window = now_under;
    enter.root_pos = pointer_.root_pos;
    xbase::Point origin = RootPosition(now_under);
    enter.pos = {pointer_.root_pos.x - origin.x, pointer_.root_pos.y - origin.y};
    enter.time = time_;
    DeliverToSelecting(now_under, xproto::kEnterWindowMask, Event{enter});
  }
}

void Server::WarpPointer(int screen, const xbase::Point& root_pos) {
  XB_CHECK_GE(screen, 0);
  XB_CHECK_LT(screen, static_cast<int>(screens_.size()));
  pointer_.screen = screen;
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordWarp(screen, root_pos.x, root_pos.y);
  }
  // The nested motion must not also be recorded — replaying the warp record
  // re-runs it.
  xproto::TraceRecorder* recorder = trace_recorder_;
  trace_recorder_ = nullptr;
  SimulateMotion(root_pos);
  trace_recorder_ = recorder;
}

void Server::SimulateMotion(const xbase::Point& root_pos) {
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordMotion(root_pos.x, root_pos.y);
  }
  pointer_.root_pos = root_pos;
  Tick();
  UpdatePointerWindow();

  if (grab_.active) {
    // During a grab all motion is reported relative to the grab window.
    const WindowRec* gwin = Find(grab_.window);
    if (gwin != nullptr) {
      xproto::MotionEvent motion;
      motion.window = grab_.window;
      motion.root_pos = root_pos;
      xbase::Point origin = RootPosition(grab_.window);
      motion.pos = {root_pos.x - origin.x, root_pos.y - origin.y};
      motion.time = time_;
      Enqueue(grab_.client, Event{motion});
    }
    return;
  }

  // Normal delivery: propagate from the deepest window up to the first
  // window where some client selected PointerMotion.
  WindowId target = pointer_.window;
  while (target != kNone) {
    const WindowRec* win = Find(target);
    if (win == nullptr) {
      return;
    }
    if (win->AllSelections() & xproto::kPointerMotionMask) {
      xproto::MotionEvent motion;
      motion.window = target;
      motion.subwindow = ChildTowards(target, pointer_.window);
      motion.root_pos = root_pos;
      xbase::Point origin = RootPosition(target);
      motion.pos = {root_pos.x - origin.x, root_pos.y - origin.y};
      motion.time = time_;
      DeliverToSelecting(target, xproto::kPointerMotionMask, Event{motion});
      return;
    }
    target = win->parent;
  }
}

bool Server::GrabButton(ClientId client, WindowId window, int button, uint32_t modifiers,
                        uint32_t event_mask) {
  RequestGuard req(this, client, xproto::RequestCode::kGrabButton);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr || !HasClient(client)) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  // A conflicting grab (same button+modifiers by another client) fails.
  for (const PassiveGrab& grab : win->passive_grabs) {
    if (grab.button == button && grab.modifiers == modifiers && grab.client != client) {
      return RaiseError(client, xproto::ErrorCode::kBadAccess, window);
    }
  }
  win->passive_grabs.push_back(PassiveGrab{client, button, modifiers, event_mask});
  return true;
}

bool Server::UngrabButton(ClientId client, WindowId window, int button, uint32_t modifiers) {
  RequestGuard req(this, client, xproto::RequestCode::kUngrabButton);
  if (!req.ok()) {
    return false;
  }
  WindowRec* win = Find(window);
  if (win == nullptr) {
    return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
  }
  size_t before = win->passive_grabs.size();
  std::erase_if(win->passive_grabs, [&](const PassiveGrab& g) {
    return g.client == client && g.button == button && g.modifiers == modifiers;
  });
  return win->passive_grabs.size() != before;
}

void Server::SimulateButton(int button, bool press, uint32_t modifiers) {
  XB_CHECK_GE(button, 1);
  XB_CHECK_LE(button, xproto::kMaxButton);
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordButton(button, press, modifiers);
  }
  Tick();
  uint32_t bit = 1u << (button - 1);

  if (press) {
    pointer_.buttons_down |= bit;
  } else {
    pointer_.buttons_down &= ~bit;
  }

  xproto::ButtonEvent event;
  event.press = press;
  event.button = button;
  event.modifiers = modifiers;
  event.root_pos = pointer_.root_pos;
  event.time = time_;

  if (grab_.active) {
    // Deliver to the grabbing client relative to the grab window.
    event.window = grab_.window;
    event.subwindow = ChildTowards(grab_.window, pointer_.window);
    xbase::Point origin = RootPosition(grab_.window);
    event.pos = {pointer_.root_pos.x - origin.x, pointer_.root_pos.y - origin.y};
    Enqueue(grab_.client, Event{event});
    if (!press && pointer_.buttons_down == 0) {
      grab_.active = false;
    }
    return;
  }
  if (!press) {
    return;  // Release with no grab in progress: nothing selected it.
  }

  // Passive grabs: checked from the root down toward the pointer window, as
  // in the protocol's grab-window search order.
  std::vector<WindowId> chain;
  for (WindowId cur = pointer_.window; cur != kNone;) {
    chain.push_back(cur);
    const WindowRec* win = Find(cur);
    cur = win == nullptr ? kNone : win->parent;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const WindowRec* win = Find(*it);
    if (win == nullptr) {
      continue;
    }
    for (const PassiveGrab& grab : win->passive_grabs) {
      bool button_match = grab.button == 0 || grab.button == button;
      bool mods_match = grab.modifiers == modifiers;
      if (button_match && mods_match) {
        grab_.active = true;
        grab_.client = grab.client;
        grab_.window = *it;
        grab_.button = button;
        grab_.event_mask = grab.event_mask;
        event.window = *it;
        event.subwindow = ChildTowards(*it, pointer_.window);
        xbase::Point origin = RootPosition(*it);
        event.pos = {pointer_.root_pos.x - origin.x, pointer_.root_pos.y - origin.y};
        Enqueue(grab.client, Event{event});
        return;
      }
    }
  }

  // Normal delivery with upward propagation; the first window with a
  // selecting client receives the event and starts an automatic grab for
  // the first such client.
  for (WindowId target : chain) {
    const WindowRec* win = Find(target);
    if (win == nullptr) {
      continue;
    }
    if ((win->AllSelections() & xproto::kButtonPressMask) != 0) {
      event.window = target;
      event.subwindow = ChildTowards(target, pointer_.window);
      xbase::Point origin = RootPosition(target);
      event.pos = {pointer_.root_pos.x - origin.x, pointer_.root_pos.y - origin.y};
      ClientId first = 0;
      for (const auto& [client, mask] : win->selections) {
        if (mask & xproto::kButtonPressMask) {
          if (first == 0) {
            first = client;
          }
          Enqueue(client, Event{event});
        }
      }
      if (first != 0) {
        grab_.active = true;
        grab_.client = first;
        grab_.window = target;
        grab_.button = button;
        grab_.event_mask = win->selections.at(first);
      }
      return;
    }
  }
}

bool Server::SetInputFocus(ClientId client, WindowId window) {
  RequestGuard req(this, client, xproto::RequestCode::kSetInputFocus);
  if (!req.ok()) {
    return false;
  }
  if (window != xproto::kNone) {
    if (Find(window) == nullptr) {
      return RaiseError(client, xproto::ErrorCode::kBadWindow, window);
    }
    if (!IsViewable(window)) {
      return RaiseError(client, xproto::ErrorCode::kBadMatch, window);
    }
  }
  if (window == focus_window_) {
    return true;
  }
  Tick();
  if (focus_window_ != xproto::kNone && Find(focus_window_) != nullptr) {
    xproto::FocusEvent out;
    out.in = false;
    out.window = focus_window_;
    DeliverToSelecting(focus_window_, xproto::kFocusChangeMask, Event{out});
  }
  focus_window_ = window;
  if (focus_window_ != xproto::kNone) {
    xproto::FocusEvent in;
    in.in = true;
    in.window = focus_window_;
    DeliverToSelecting(focus_window_, xproto::kFocusChangeMask, Event{in});
  }
  return true;
}

void Server::SimulateKey(xproto::KeySym keysym, bool press, uint32_t modifiers) {
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordKey(keysym, press, modifiers);
  }
  Tick();
  xproto::KeyEvent event;
  event.press = press;
  event.keysym = keysym;
  event.modifiers = modifiers;
  event.root_pos = pointer_.root_pos;
  event.time = time_;
  uint32_t mask = press ? xproto::kKeyPressMask : xproto::kKeyReleaseMask;

  // Explicit focus wins; otherwise pointer-root focus: deliver to the
  // window under the pointer, propagating upward (matches swm's "key while
  // the pointer is in the object" binding semantics).
  if (focus_window_ != xproto::kNone && Find(focus_window_) == nullptr) {
    focus_window_ = xproto::kNone;  // Focus window died.
  }
  WindowId target = focus_window_ != xproto::kNone ? focus_window_ : pointer_.window;
  while (target != kNone) {
    const WindowRec* win = Find(target);
    if (win == nullptr) {
      return;
    }
    if ((win->AllSelections() & mask) != 0) {
      event.window = target;
      xbase::Point origin = RootPosition(target);
      event.pos = {pointer_.root_pos.x - origin.x, pointer_.root_pos.y - origin.y};
      DeliverToSelecting(target, mask, Event{event});
      return;
    }
    target = win->parent;
  }
}

}  // namespace xserver
