// Seeded fault-injection harness for the in-process X server.
//
// A FaultPlan is installed on a Server and deterministically — every decision
// derives from a uint64 seed via a SplitMix64 stream — injects the failure
// modes a window manager must survive in the wild: a request that fails out
// of the blue, a client window destroyed in the race between its MapRequest
// and the WM's reparent, garbage or oversized property payloads, and event
// delivery that duplicates or reorders.  Same seed, same faults: a failing
// chaos run reproduces exactly.
#ifndef SRC_XSERVER_FAULTS_H_
#define SRC_XSERVER_FAULTS_H_

#include <cstdint>

#include "src/xproto/error.h"

namespace xserver {

// What a fault plan may do.  Per-mille rates make faults frequency-tunable
// while staying deterministic (each decision consumes one PRNG draw).
struct FaultPlan {
  uint64_t seed = 1;

  // Fail exactly the Nth request processed by the server (1-based, counted
  // from plan installation) with `fail_code`.  0 disables.
  uint64_t fail_request_n = 0;
  xproto::ErrorCode fail_code = xproto::ErrorCode::kBadImplementation;

  // Destroy a window in the MapRequest → reparent race: when a MapRequest is
  // redirected to a window manager, roll; on a hit the window is destroyed
  // 1–6 requests later (the spread lands the death before, between, and
  // after the WM's manage-path requests across seeds).
  int destroy_on_map_permille = 0;

  // Destroy a window immediately after another client (the WM) reparents it
  // away from the root — the narrowest race: after the reparent but before
  // the WM selects StructureNotify, so no DestroyNotify reaches the WM.
  int destroy_on_reparent_permille = 0;

  // Destroy a window immediately after another client configures it
  // (move/resize-in-progress death).
  int destroy_on_configure_permille = 0;

  // Replace a GetProperty reply with `corrupt_property_bytes` of garbage.
  int corrupt_property_permille = 0;
  uint32_t corrupt_property_bytes = 4096;

  // Replace a GetProperty reply with a *structured* malformation instead of
  // uniform garbage: truncated mid-field (short hints arrays), a giant
  // string, all-negative 32-bit fields, a wrong format tag, or an all-zero
  // payload (zero resize increments).  These are the shapes hostile clients
  // actually send; uniform garbage rarely hits them.
  int malform_property_permille = 0;

  // Deliver an event twice.
  int duplicate_event_permille = 0;

  // Hold an event back so it arrives after the next event for the same
  // client (adjacent reordering); never dropped.
  int delay_event_permille = 0;

  // ---- Byte-level wire mutations (docs/PROTOCOL.md) -------------------------
  // Applied per frame inside Server::DispatchBytes, before the parser sees
  // the bytes — the attacks a corrupted or hostile out-of-process client
  // mounts against the wire codec.  The parser's contract under these is a
  // typed ParseError or an X error, never UB; tests/wire_fuzz_test.cc holds
  // it to that under ASan+UBSan.

  // Flip 1–3 random bits anywhere in the frame.
  int bitflip_request_permille = 0;

  // Overwrite the frame's length field with a lie (zero, huge, off-by-N).
  int lie_length_permille = 0;

  // Cut the frame short mid-message (drop 1..frame-1 trailing bytes).
  int truncate_request_permille = 0;

  // Replace the major opcode (sometimes with garbage, sometimes with a
  // different valid opcode so the old payload is parsed under new rules).
  int scramble_opcode_permille = 0;

  // ---- Transport faults (docs/PROTOCOL.md) ----------------------------------
  // Applied inside xserver::Connection, on the bytes crossing the channel
  // rather than on frame contents — the failure modes of a real connection:
  // reads that return a slice of what arrived, writes the peer only partly
  // accepts, interrupted syscalls, a connection dying partway through a
  // frame, and reply bytes corrupted in flight.  Like the wire mutations,
  // every decision is one seeded PRNG draw and lands in FaultCounters.

  // Deliver inbound bytes to the reassembler in partial slices.
  int short_read_permille = 0;

  // Flush only part of the outbound queue even when the peer would accept
  // more.
  int short_write_permille = 0;

  // Simulate 1–4 EINTR retries before a read completes.
  int eintr_storm_permille = 0;

  // Kill the connection after queueing only a prefix of an outbound frame —
  // the peer sees a truncated stream, then EOF.
  int reset_midframe_permille = 0;

  // Flip 1–3 bits in an outbound reply frame (after trace recording, so
  // replays reproduce the honest bytes).
  int mutate_reply_permille = 0;
};

// Exposed by Server::fault_counters() so tests can assert the harness
// actually exercised something.
struct FaultCounters {
  uint64_t failed_requests = 0;
  uint64_t destroyed_windows = 0;
  uint64_t corrupted_properties = 0;
  uint64_t malformed_properties = 0;
  uint64_t duplicated_events = 0;
  uint64_t delayed_events = 0;
  // Wire mutations applied by DispatchBytes.
  uint64_t bitflipped_requests = 0;
  uint64_t length_lies = 0;
  uint64_t truncated_requests = 0;
  uint64_t scrambled_opcodes = 0;
  // Transport faults applied by Connection.
  uint64_t short_reads = 0;
  uint64_t short_writes = 0;
  uint64_t eintr_retries = 0;
  uint64_t connection_resets = 0;
  uint64_t mutated_replies = 0;

  uint64_t WireMutations() const {
    return bitflipped_requests + length_lies + truncated_requests + scrambled_opcodes;
  }

  uint64_t TransportFaults() const {
    return short_reads + short_writes + eintr_retries + connection_resets + mutated_replies;
  }

  uint64_t Total() const {
    return failed_requests + destroyed_windows + corrupted_properties +
           malformed_properties + duplicated_events + delayed_events + WireMutations() +
           TransportFaults();
  }
};

// SplitMix64: tiny, well-distributed, and fully determined by the seed.
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed = 1) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // One draw; true with probability permille/1000.
  bool Roll(int permille) {
    if (permille <= 0) {
      return false;
    }
    return Next() % 1000 < static_cast<uint64_t>(permille);
  }

  // Uniform in [lo, hi], inclusive.
  int Range(int lo, int hi) {
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

 private:
  uint64_t state_;
};

}  // namespace xserver

#endif  // SRC_XSERVER_FAULTS_H_
