#include "src/xserver/wire_host.h"

#include <iterator>
#include <utility>

#include "src/base/logging.h"

namespace xserver {

WireHost::WireHost(Server* server, const std::string& socket_path,
                   WireHostOptions options)
    : server_(server), options_(std::move(options)), listener_(socket_path) {
  if (!ok()) {
    return;
  }
  loop_.WatchFd(listener_.fd(), [this](const xbase::Poller::Event&) {
    AcceptPending();
  });
}

WireHost::~WireHost() {
  // Sessions tear down through ~Connection (graceful drain close); unwatch
  // first so the loop never touches a dying fd.
  for (auto& [id, session] : sessions_) {
    loop_.UnwatchFd(session.fd);
    loop_.CancelTimer(session.idle_timer);
    loop_.CancelTimer(session.stall_timer);
  }
  sessions_.clear();
  if (listener_.ok()) {
    loop_.UnwatchFd(listener_.fd());
  }
}

void WireHost::AcceptPending() {
  while (std::unique_ptr<xproto::ByteChannel> channel = listener_.Accept()) {
    uint64_t id = next_session_id_++;
    Session session;
    session.conn = std::make_unique<Connection>(server_, std::move(channel),
                                                options_.machine, options_.limits);
    if (options_.misbehavior_hook) {
      session.conn->SetMisbehaviorHook(options_.misbehavior_hook);
    }
    // Establish immediately: client ids are minted in accept order, which is
    // connect order on a unix socket — the property trace replay relies on
    // to bind recorded clients to live connections.
    session.conn->Establish();
    if (options_.faults_active) {
      session.conn->InstallTransportFaults(options_.transport_faults);
    }
    session.fd = session.conn->PollFd();
    ++stats_.accepted;
    auto [it, inserted] = sessions_.emplace(id, std::move(session));
    (void)inserted;
    if (!loop_.WatchFd(it->second.fd, [this, id](const xbase::Poller::Event&) {
          PumpSession(id);
        })) {
      XB_LOG(Error) << "wire-host: cannot watch accepted fd " << it->second.fd;
      it->second.conn->Close(CloseReason::kTransportError);
      ReapSession(id);
      continue;
    }
    ArmIdleTimer(id);
    // A peer may have connected, written and died before we accepted; don't
    // wait for an edge that already passed.
    PumpSession(id);
  }
}

void WireHost::ArmIdleTimer(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  loop_.CancelTimer(session.idle_timer);
  session.idle_timer = 0;
  if (options_.limits.read_idle_ms > 0) {
    session.idle_timer = loop_.AddTimer(options_.limits.read_idle_ms,
                                        [this, id]() {
                                          ExpireSession(id, CloseReason::kReadIdle);
                                        });
  }
}

void WireHost::UpdateWriteInterest(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  bool want_write = session.conn->outbound_queued() > 0;
  if (want_write != session.want_write) {
    session.want_write = want_write;
    loop_.ModifyFd(session.fd, /*want_read=*/true, want_write);
  }
  if (want_write) {
    // The stall clock starts when reply bytes first queue and keeps running
    // until the peer drains them — re-arming per pump would let a reader
    // that nibbles one byte per deadline stall us forever.
    if (session.stall_timer == 0 && options_.limits.write_stall_ms > 0) {
      session.stall_timer = loop_.AddTimer(options_.limits.write_stall_ms,
                                           [this, id]() {
                                             ExpireSession(id, CloseReason::kWriteStalled);
                                           });
    }
  } else if (session.stall_timer != 0) {
    loop_.CancelTimer(session.stall_timer);
    session.stall_timer = 0;
  }
}

void WireHost::ExpireSession(uint64_t id, CloseReason reason) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  if (reason == CloseReason::kReadIdle) {
    ++stats_.idle_expirations;
    it->second.idle_timer = 0;
  } else {
    ++stats_.stall_expirations;
    it->second.stall_timer = 0;
  }
  it->second.conn->CloseExpired(reason);
  ReapSession(id);
}

void WireHost::PumpSession(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  uint64_t read_before = session.conn->stats().bytes_read;
  ConnectionState state = session.conn->Pump();
  if (state == ConnectionState::kClosed) {
    ReapSession(id);
    return;
  }
  if (session.conn->stats().bytes_read != read_before) {
    ArmIdleTimer(id);
  }
  UpdateWriteInterest(id);
}

void WireHost::ReapSession(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  loop_.UnwatchFd(session.fd);
  loop_.CancelTimer(session.idle_timer);
  loop_.CancelTimer(session.stall_timer);
  ++stats_.closed;
  size_t reason = static_cast<size_t>(session.conn->close_reason());
  if (reason < std::size(stats_.closed_by_reason)) {
    ++stats_.closed_by_reason[reason];
  }
  if (session.conn->died_mid_frame()) {
    ++stats_.mid_frame_deaths;
  }
  if (options_.on_close) {
    options_.on_close(*session.conn);
  }
  sessions_.erase(it);
}

int WireHost::PollOnce(int timeout_ms) { return loop_.PollOnce(timeout_ms); }

bool WireHost::RunUntil(const std::function<bool()>& done, int64_t budget_ms) {
  return loop_.RunUntil(done, budget_ms);
}

Connection* WireHost::FindConnection(xproto::ClientId client) {
  for (auto& [id, session] : sessions_) {
    if (session.conn->client() == client) {
      return session.conn.get();
    }
  }
  return nullptr;
}

std::vector<xproto::ClientId> WireHost::clients() const {
  std::vector<xproto::ClientId> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session.conn->client());
  }
  return out;
}

void WireHost::DetachAll() {
  for (auto& [id, session] : sessions_) {
    loop_.UnwatchFd(session.fd);
    loop_.CancelTimer(session.idle_timer);
    loop_.CancelTimer(session.stall_timer);
    session.conn->Detach();
  }
  sessions_.clear();
}

}  // namespace xserver
