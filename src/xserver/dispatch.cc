// Byte-level request dispatch (docs/PROTOCOL.md).
//
// DispatchBytes is where a hostile or corrupted client stream first touches
// the server: frames are parsed by the hardened wire codec and applied
// through the exact same request paths as direct calls, so sequence numbers,
// the error channel and the fault hooks behave identically no matter how a
// request arrived.  A frame the codec rejects raises a typed X error on the
// connection and aborts the rest of the buffer — after a framing error the
// stream cannot be resynchronized.
//
// This file also implements the byte-level fault mutations (bit flips,
// length-field lies, mid-message truncation, opcode scrambling): they run
// here, between the honest frames a client produced and the parser, which is
// precisely where real-world corruption happens.
#include <algorithm>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/region.h"
#include "src/xproto/wire.h"
#include "src/xserver/server.h"

namespace xserver {

using xproto::ClientId;
using xproto::ParseError;
using xproto::ParseErrorCode;
using xproto::Request;
using xproto::WindowId;

namespace {

// X error a rejected frame maps to.
xproto::ErrorCode ErrorForParse(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kBadOpcode:
      return xproto::ErrorCode::kBadRequest;
    case ParseErrorCode::kBadValue:
      return xproto::ErrorCode::kBadValue;
    case ParseErrorCode::kTruncated:
    case ParseErrorCode::kBadLength:
    case ParseErrorCode::kOversized:
      return xproto::ErrorCode::kBadLength;
  }
  return xproto::ErrorCode::kBadLength;
}

// Opcodes a scramble may rewrite to: parsing an old payload under a
// different valid opcode's rules probes far more decoder paths than pure
// garbage does.
constexpr uint8_t kValidOpcodes[] = {1,  3,  4,  6,  7,  8,  10, 12,  14,  15,
                                     16, 17, 18, 19, 20, 25, 28, 29,  40,  42,
                                     61, 128, 129, 130, 131, 132, 133, 134, 135,
                                     136};

}  // namespace

void Server::MutateFrame(std::vector<uint8_t>* frame, size_t frame_start) {
  const FaultPlan& plan = fault_plan_;
  size_t frame_len = frame->size() - frame_start;
  if (frame_len == 0) {
    return;
  }
  if (fault_rng_.Roll(plan.bitflip_request_permille)) {
    int flips = fault_rng_.Range(1, 3);
    for (int i = 0; i < flips; ++i) {
      size_t bit = fault_rng_.Next() % (frame_len * 8);
      (*frame)[frame_start + bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    ++fault_counters_.bitflipped_requests;
  }
  if (frame_len >= 1 && fault_rng_.Roll(plan.scramble_opcode_permille)) {
    uint8_t replacement =
        fault_rng_.Roll(500)
            ? static_cast<uint8_t>(fault_rng_.Next() % 256)
            : kValidOpcodes[fault_rng_.Next() % std::size(kValidOpcodes)];
    (*frame)[frame_start] = replacement;
    ++fault_counters_.scrambled_opcodes;
  }
  if (frame_len >= 4 && fault_rng_.Roll(plan.lie_length_permille)) {
    uint16_t honest = static_cast<uint16_t>((*frame)[frame_start + 2] |
                                            (*frame)[frame_start + 3] << 8);
    uint16_t lie = 0;
    switch (fault_rng_.Range(0, 2)) {
      case 0:
        lie = 0;
        break;
      case 1:
        lie = 0xFFFF;
        break;
      default:
        lie = static_cast<uint16_t>(honest + fault_rng_.Range(1, 8));
        break;
    }
    (*frame)[frame_start + 2] = static_cast<uint8_t>(lie);
    (*frame)[frame_start + 3] = static_cast<uint8_t>(lie >> 8);
    ++fault_counters_.length_lies;
  }
  if (frame_len > 1 && fault_rng_.Roll(plan.truncate_request_permille)) {
    size_t drop = static_cast<size_t>(
        fault_rng_.Range(1, static_cast<int>(frame_len) - 1));
    frame->resize(frame->size() - drop);
    ++fault_counters_.truncated_requests;
  }
}

Server::DispatchResult Server::DispatchBytes(ClientId client,
                                             std::span<const uint8_t> bytes) {
  DispatchResult result;

  // Byte-level faults: rewrite the buffer frame-by-frame before the parser
  // (and the trace recorder) see it.  Frame boundaries for mutation targeting
  // come from the honest lengths; after mutation the parser is on its own.
  std::vector<uint8_t> mutated;
  std::span<const uint8_t> view = bytes;
  bool wire_faults =
      fault_plan_active_ && !in_fault_ &&
      (fault_plan_.bitflip_request_permille > 0 || fault_plan_.lie_length_permille > 0 ||
       fault_plan_.truncate_request_permille > 0 ||
       fault_plan_.scramble_opcode_permille > 0);
  if (wire_faults) {
    mutated.reserve(bytes.size());
    size_t cursor = 0;
    while (bytes.size() - cursor >= 4) {
      size_t frame_len = (static_cast<size_t>(bytes[cursor + 2]) |
                          static_cast<size_t>(bytes[cursor + 3]) << 8) *
                         4;
      frame_len = std::clamp(frame_len, size_t{4}, bytes.size() - cursor);
      size_t start = mutated.size();
      mutated.insert(mutated.end(), bytes.begin() + cursor, bytes.begin() + cursor + frame_len);
      MutateFrame(&mutated, start);
      cursor += frame_len;
    }
    mutated.insert(mutated.end(), bytes.begin() + cursor, bytes.end());
    view = mutated;
  }

  // The recorder captures exactly the bytes the parser is about to see —
  // mutations included — so replaying the trace reproduces this dispatch
  // byte for byte without needing the fault plan.
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordRequestBytes(client, view);
  }

  uint64_t replies_before = 0;
  if (ClientRec* rec = FindClient(client)) {
    replies_before = rec->replies_sent;
  }

  size_t offset = 0;
  while (offset < view.size()) {
    Request request;
    ParseError error;
    size_t consumed = xproto::DecodeRequest(view.subspan(offset), &request, &error);
    if (consumed == 0) {
      error.offset += offset;
      ++wire_parse_errors_;
      ++result.parse_errors;
      if (!result.first_parse_error.has_value()) {
        result.first_parse_error = error;
      }
      // A malformed frame still occupies a request slot — the client can
      // correlate the error with what it sent — then poisons the rest of
      // the buffer (no resynchronization after a framing error).
      ++total_requests_;
      if (ClientRec* rec = FindClient(client)) {
        ++rec->sequence;
      }
      current_request_ = xproto::RequestCodeForOpcode(error.opcode);
      RaiseError(client, ErrorForParse(error.code), 0);
      current_request_ = xproto::RequestCode::kNone;
      break;
    }
    offset += consumed;
    ++result.requests_dispatched;
    if (!ApplyRequest(client, request, &result)) {
      ++result.requests_failed;
    }
  }
  result.bytes_consumed = offset;

  // Drain the connection's outbound reply encoder: the caller (transport or
  // in-process wire client) owns delivery of these frames.
  if (ClientRec* rec = FindClient(client)) {
    result.replies = static_cast<size_t>(rec->replies_sent - replies_before);
    if (!rec->outbound.bytes().empty()) {
      result.reply_bytes = rec->outbound.Take();
    }
  }
  return result;
}

void Server::EmitReply(ClientId client, const xproto::Reply& reply) {
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return;
  }
  size_t start = rec->outbound.bytes().size();
  xproto::EncodeReply(reply, static_cast<uint16_t>(rec->sequence), &rec->outbound);
  std::span<const uint8_t> frame(rec->outbound.bytes().data() + start,
                                 rec->outbound.bytes().size() - start);
  ++rec->replies_sent;
  ++replies_emitted_;
  reply_bytes_emitted_ += frame.size();
  // FNV-1a over the frame, chained across all replies in emission order —
  // the reply-direction half of the replay fingerprint.
  for (uint8_t b : frame) {
    reply_hash_ = (reply_hash_ ^ b) * 1099511628211ull;
  }
  // The trace captures the honest bytes: transport faults (reply mutation,
  // mid-frame resets) happen downstream in Connection, so a replay needs no
  // fault plan to reproduce this stream.
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordReplyBytes(client, frame);
  }
}

bool Server::ApplyRequest(ClientId client, const Request& request,
                          DispatchResult* result) {
  return std::visit(
      [&](const auto& r) -> bool {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, xproto::CreateWindowRequest>) {
          WindowId created = CreateWindow(client, r.parent, r.geometry, r.border_width,
                                          r.window_class, r.override_redirect);
          if (created == xproto::kNone) {
            return false;
          }
          if (result != nullptr) {
            result->last_created_window = created;
          }
          return true;
        } else if constexpr (std::is_same_v<T, xproto::DestroyWindowRequest>) {
          return DestroyWindow(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::MapWindowRequest>) {
          return MapWindow(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::UnmapWindowRequest>) {
          return UnmapWindow(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::ReparentWindowRequest>) {
          return ReparentWindow(client, r.window, r.parent, r.position);
        } else if constexpr (std::is_same_v<T, xproto::ConfigureWindowRequest>) {
          ConfigureValues values;
          values.geometry = r.geometry;
          values.border_width = r.border_width;
          values.sibling = r.sibling;
          values.stack_mode = r.stack_mode;
          return ConfigureWindow(client, r.window, r.value_mask, values);
        } else if constexpr (std::is_same_v<T, xproto::SelectInputRequest>) {
          return SelectInput(client, r.window, r.event_mask);
        } else if constexpr (std::is_same_v<T, xproto::ChangeSaveSetRequest>) {
          return ChangeSaveSet(client, r.window, r.add);
        } else if constexpr (std::is_same_v<T, xproto::ChangePropertyRequest>) {
          PropMode mode = r.mode == 1 ? PropMode::kAppend
                          : r.mode == 2 ? PropMode::kPrepend
                                        : PropMode::kReplace;
          return ChangeProperty(client, r.window, r.property, r.type, r.format, mode,
                                r.data);
        } else if constexpr (std::is_same_v<T, xproto::DeletePropertyRequest>) {
          return DeleteProperty(client, r.window, r.property);
        } else if constexpr (std::is_same_v<T, xproto::SendEventRequest>) {
          return SendEvent(client, r.destination, r.event_mask, r.event);
        } else if constexpr (std::is_same_v<T, xproto::SetInputFocusRequest>) {
          return SetInputFocus(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::GrabButtonRequest>) {
          return GrabButton(client, r.window, r.button, r.modifiers, r.event_mask);
        } else if constexpr (std::is_same_v<T, xproto::UngrabButtonRequest>) {
          return UngrabButton(client, r.window, r.button, r.modifiers);
        } else if constexpr (std::is_same_v<T, xproto::ClearWindowRequest>) {
          return ClearWindow(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::SetWindowBackgroundRequest>) {
          return SetWindowBackground(client, r.window, r.background);
        } else if constexpr (std::is_same_v<T, xproto::SetCursorRequest>) {
          return SetCursor(client, r.window, r.name);
        } else if constexpr (std::is_same_v<T, xproto::DrawRequest>) {
          DrawOp op;
          op.kind = static_cast<DrawOp::Kind>(r.kind);
          op.rect = r.rect;
          op.fill = r.fill;
          op.text = r.text;
          if (op.kind == DrawOp::Kind::kBitmap && r.bitmap_width > 0 &&
              r.bitmap_height > 0) {
            xbase::Bitmap bitmap(r.bitmap_width, r.bitmap_height);
            for (int y = 0; y < r.bitmap_height; ++y) {
              for (int x = 0; x < r.bitmap_width; ++x) {
                size_t index = static_cast<size_t>(y) * r.bitmap_width + x;
                bitmap.Set(x, y, r.bitmap_cells[index] != 0);
              }
            }
            op.bitmap = std::move(bitmap);
          }
          return Draw(client, r.window, std::move(op));
        } else if constexpr (std::is_same_v<T, xproto::ShapeRegionRequest>) {
          return ShapeSetRegion(client, r.window, xbase::Region(r.rects));
        } else if constexpr (std::is_same_v<T, xproto::ShapeClearRequest>) {
          return ShapeClear(client, r.window);
        } else if constexpr (std::is_same_v<T, xproto::ShapeSelectRequest>) {
          return ShapeSelect(client, r.window, r.enable);
        }
        // ---- Reply-bearing queries (docs/PROTOCOL.md "Replies") -----------
        // Byte-routed queries take a RequestGuard like any other wire request
        // — they occupy a sequence slot (as in real X) and are visible to the
        // fail-request-N fault hook — then answer through the connection's
        // outbound reply encoder.  Direct-call queries stay const and free.
        else if constexpr (std::is_same_v<T, xproto::GetWindowAttributesRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kGetWindowAttributes);
          if (!guard.ok()) {
            return false;
          }
          std::optional<WindowAttributes> attrs = GetWindowAttributes(r.window);
          if (!attrs.has_value()) {
            return RaiseError(client, xproto::ErrorCode::kBadWindow, r.window);
          }
          xproto::AttributesReply reply;
          reply.window = r.window;
          reply.window_class = attrs->window_class;
          reply.map_state = attrs->map_state;
          reply.override_redirect = attrs->override_redirect;
          reply.all_event_masks = attrs->all_event_masks;
          reply.border_width = attrs->border_width;
          EmitReply(client, reply);
          return true;
        } else if constexpr (std::is_same_v<T, xproto::GetGeometryRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kGetGeometry);
          if (!guard.ok()) {
            return false;
          }
          std::optional<xbase::Rect> geometry = GetGeometry(r.window);
          if (!geometry.has_value()) {
            return RaiseError(client, xproto::ErrorCode::kBadWindow, r.window);
          }
          const WindowRec* win = Find(r.window);
          xproto::GeometryReply reply;
          reply.window = r.window;
          reply.geometry = *geometry;
          reply.border_width = win != nullptr ? win->border_width : 0;
          EmitReply(client, reply);
          return true;
        } else if constexpr (std::is_same_v<T, xproto::QueryTreeRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kQueryTree);
          if (!guard.ok()) {
            return false;
          }
          std::optional<QueryTreeReply> tree = QueryTree(r.window);
          if (!tree.has_value()) {
            return RaiseError(client, xproto::ErrorCode::kBadWindow, r.window);
          }
          xproto::TreeReply reply;
          reply.window = r.window;
          reply.root = tree->root;
          reply.parent = tree->parent;
          reply.children = std::move(tree->children);
          EmitReply(client, reply);
          return true;
        } else if constexpr (std::is_same_v<T, xproto::InternAtomRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kInternAtom);
          if (!guard.ok()) {
            return false;
          }
          EmitReply(client, xproto::AtomReply{InternAtom(r.name)});
          return true;
        } else if constexpr (std::is_same_v<T, xproto::GetAtomNameRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kGetAtomName);
          if (!guard.ok()) {
            return false;
          }
          std::optional<std::string> name = GetAtomName(r.atom);
          if (!name.has_value()) {
            return RaiseError(client, xproto::ErrorCode::kBadAtom, r.atom);
          }
          EmitReply(client, xproto::AtomNameReply{r.atom, std::move(*name)});
          return true;
        } else if constexpr (std::is_same_v<T, xproto::GetPropertyRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kGetProperty);
          if (!guard.ok()) {
            return false;
          }
          if (!WindowExists(r.window)) {
            return RaiseError(client, xproto::ErrorCode::kBadWindow, r.window);
          }
          xproto::PropertyReply reply;
          reply.window = r.window;
          reply.property = r.property;
          // A missing property is not an error in X: found=false says so.
          if (std::optional<PropertyRec> prop = GetProperty(r.window, r.property)) {
            reply.found = true;
            reply.type = prop->type;
            reply.format = prop->format;
            reply.data = std::move(prop->data);
          }
          EmitReply(client, reply);
          return true;
        } else if constexpr (std::is_same_v<T, xproto::TranslateCoordinatesRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kTranslateCoordinates);
          if (!guard.ok()) {
            return false;
          }
          std::optional<xbase::Point> position =
              TranslateCoordinates(r.src, r.dst, r.point);
          if (!position.has_value()) {
            xproto::WindowId missing = WindowExists(r.src) ? r.dst : r.src;
            return RaiseError(client, xproto::ErrorCode::kBadWindow, missing);
          }
          EmitReply(client, xproto::CoordinatesReply{*position});
          return true;
        }
        // ---- Connection-setup queries (out-of-process clients) ------------
        // A remote Display has no direct Server pointer, so screen layout and
        // resource-id discovery travel over the wire like everything else.
        else if constexpr (std::is_same_v<T, xproto::QueryScreensRequest>) {
          RequestGuard guard(this, client, xproto::RequestCode::kQueryScreens);
          if (!guard.ok()) {
            return false;
          }
          xproto::ScreensReply reply;
          for (int i = 0; i < ScreenCount(); ++i) {
            const ScreenInfo& info = screen(i);
            xproto::ScreensReply::Screen out;
            out.root = info.root;
            out.width = info.size.width;
            out.height = info.size.height;
            out.monochrome = info.monochrome;
            reply.screens.push_back(out);
          }
          EmitReply(client, reply);
          return true;
        } else if constexpr (std::is_same_v<T, xproto::QueryClientWindowsRequest>) {
          RequestGuard guard(this, client,
                             xproto::RequestCode::kQueryClientWindows);
          if (!guard.ok()) {
            return false;
          }
          EmitReply(client, xproto::ClientWindowsReply{ClientWindows(client)});
          return true;
        }
      },
      request);
}

}  // namespace xserver
