// Screen rendering: replays window display lists into an ASCII canvas in
// stacking order, honoring borders and SHAPE regions.  This is how the
// paper's figure screenshots are regenerated.
#include <algorithm>

#include "src/xserver/server.h"

namespace xserver {

// Accounting for the drawing clients request (Server::Draw funnels every op
// through here).  "Pixels" are canvas cells the op covers before clipping:
// a stable proxy for repaint work that lets tests assert the retained
// pipeline draws strictly less than eager rendering.
void Server::RecordDraw(const DrawOp& op) {
  ++render_stats_.draw_ops;
  int64_t width = std::max(0, op.rect.width);
  int64_t height = std::max(0, op.rect.height);
  switch (op.kind) {
    case DrawOp::Kind::kFillRect:
      ++render_stats_.rects_drawn;
      render_stats_.pixels_drawn += width * height;
      break;
    case DrawOp::Kind::kBorder:
      ++render_stats_.rects_drawn;
      // Outline only: both horizontal edges plus the remaining verticals.
      render_stats_.pixels_drawn +=
          2 * width + 2 * std::max<int64_t>(0, height - 2);
      break;
    case DrawOp::Kind::kText:
    case DrawOp::Kind::kTextCentered:
      render_stats_.pixels_drawn += static_cast<int64_t>(op.text.size());
      break;
    case DrawOp::Kind::kBitmap:
      ++render_stats_.rects_drawn;
      render_stats_.pixels_drawn +=
          static_cast<int64_t>(op.bitmap.width()) * op.bitmap.height();
      break;
  }
}

void Server::RenderWindow(const WindowRec& win, const xbase::Point& origin,
                          const xbase::Region& clip, xbase::Canvas* canvas) const {
  if (!win.mapped || win.window_class == xproto::WindowClass::kInputOnly) {
    return;
  }
  xbase::Rect bounds{origin.x, origin.y, win.geometry.width, win.geometry.height};
  xbase::Region window_clip = clip.Intersect(xbase::Region(bounds));
  if (win.shape.has_value()) {
    window_clip = window_clip.Intersect(win.shape->Translated(origin.x, origin.y));
  }

  // Border is drawn outside the window area, clipped by the parent only.
  if (win.border_width > 0) {
    canvas->SetClip(clip);
    xbase::Rect border{origin.x - win.border_width, origin.y - win.border_width,
                       win.geometry.width + 2 * win.border_width,
                       win.geometry.height + 2 * win.border_width};
    canvas->DrawBorder(border, '=', '|', '#');
  }

  if (window_clip.IsEmpty()) {
    return;
  }
  canvas->SetClip(window_clip);
  canvas->FillRect(bounds, win.background);
  for (const DrawOp& op : win.draw_ops) {
    xbase::Rect r = op.rect.Translated(origin.x, origin.y);
    switch (op.kind) {
      case DrawOp::Kind::kFillRect:
        canvas->FillRect(r, op.fill);
        break;
      case DrawOp::Kind::kBorder:
        canvas->DrawBorder(r, '-', '|', '+');
        break;
      case DrawOp::Kind::kText:
        canvas->DrawText(r.x, r.y, op.text);
        break;
      case DrawOp::Kind::kTextCentered:
        canvas->DrawTextCentered(r.x, r.width, r.y, op.text);
        break;
      case DrawOp::Kind::kBitmap:
        canvas->DrawBitmap(r.x, r.y, op.bitmap, op.fill == ' ' ? '#' : op.fill);
        break;
    }
  }

  for (xproto::WindowId child_id : win.children) {
    const WindowRec* child = Find(child_id);
    if (child != nullptr) {
      xbase::Point child_origin{origin.x + child->geometry.x, origin.y + child->geometry.y};
      RenderWindow(*child, child_origin, window_clip, canvas);
    }
  }
  canvas->ClearClip();
}

xbase::Canvas Server::RenderScreen(int number) const {
  const ScreenInfo& info = screen(number);
  xbase::Canvas canvas(info.size.width, info.size.height, ' ');
  const WindowRec* root = Find(info.root);
  if (root != nullptr) {
    RenderWindow(*root, {0, 0}, xbase::Region(xbase::Rect{0, 0, info.size.width,
                                                          info.size.height}),
                 &canvas);
  }
  return canvas;
}

}  // namespace xserver
