// Screen rendering: replays window display lists into an ASCII canvas in
// stacking order, honoring borders and SHAPE regions.  This is how the
// paper's figure screenshots are regenerated.
#include <algorithm>

#include "src/xserver/server.h"

namespace xserver {

// Accounting for the drawing clients request (Server::Draw funnels every op
// through here).  "Pixels" are canvas cells the op covers before clipping:
// a stable proxy for repaint work that lets tests assert the retained
// pipeline draws strictly less than eager rendering.
void Server::RecordDraw(const DrawOp& op) {
  ++render_stats_.draw_ops;
  int64_t width = std::max(0, op.rect.width);
  int64_t height = std::max(0, op.rect.height);
  switch (op.kind) {
    case DrawOp::Kind::kFillRect:
      ++render_stats_.rects_drawn;
      render_stats_.pixels_drawn += width * height;
      break;
    case DrawOp::Kind::kBorder:
      ++render_stats_.rects_drawn;
      // Outline only: both horizontal edges plus the remaining verticals.
      render_stats_.pixels_drawn +=
          2 * width + 2 * std::max<int64_t>(0, height - 2);
      break;
    case DrawOp::Kind::kText:
    case DrawOp::Kind::kTextCentered:
      render_stats_.pixels_drawn += static_cast<int64_t>(op.text.size());
      break;
    case DrawOp::Kind::kBitmap:
      ++render_stats_.rects_drawn;
      render_stats_.pixels_drawn +=
          static_cast<int64_t>(op.bitmap.width()) * op.bitmap.height();
      break;
  }
}

void Server::RenderWindow(const WindowRec& win, const xbase::Point& origin,
                          const xbase::Region& clip, xbase::Canvas* canvas) const {
  if (!win.mapped || win.window_class == xproto::WindowClass::kInputOnly) {
    return;
  }
  xbase::Rect bounds{origin.x, origin.y, win.geometry.width, win.geometry.height};
  xbase::Region window_clip = clip.Intersect(xbase::Region(bounds));
  if (win.shape.has_value()) {
    window_clip = window_clip.Intersect(win.shape->Translated(origin.x, origin.y));
  }

  // Border is drawn outside the window area, clipped by the parent only.
  if (win.border_width > 0) {
    canvas->SetClip(clip);
    xbase::Rect border{origin.x - win.border_width, origin.y - win.border_width,
                       win.geometry.width + 2 * win.border_width,
                       win.geometry.height + 2 * win.border_width};
    canvas->DrawBorder(border, '=', '|', '#');
  }

  if (window_clip.IsEmpty()) {
    return;
  }
  canvas->SetClip(window_clip);
  // Background clear costs what the visible damage covers, not what the
  // window covers: the fill is pre-clipped to the window clip's bounding
  // box (the clip still applies, so output is unchanged).
  canvas->FillRect(bounds.Intersection(window_clip.Bounds()), win.background);
  for (const DrawOp& op : win.draw_ops) {
    xbase::Rect r = op.rect.Translated(origin.x, origin.y);
    switch (op.kind) {
      case DrawOp::Kind::kFillRect:
        canvas->FillRect(r, op.fill);
        break;
      case DrawOp::Kind::kBorder:
        canvas->DrawBorder(r, '-', '|', '+');
        break;
      case DrawOp::Kind::kText:
        canvas->DrawText(r.x, r.y, op.text);
        break;
      case DrawOp::Kind::kTextCentered:
        canvas->DrawTextCentered(r.x, r.width, r.y, op.text);
        break;
      case DrawOp::Kind::kBitmap:
        canvas->DrawBitmap(r.x, r.y, op.bitmap, op.fill == ' ' ? '#' : op.fill);
        break;
    }
  }

  for (xproto::WindowId child_id : win.children) {
    const WindowRec* child = Find(child_id);
    if (child != nullptr) {
      xbase::Point child_origin{origin.x + child->geometry.x, origin.y + child->geometry.y};
      RenderWindow(*child, child_origin, window_clip, canvas);
    }
  }
  canvas->ClearClip();
}

xbase::Canvas Server::RenderScreen(int number) const {
  const ScreenInfo& info = screen(number);
  xbase::Canvas canvas(info.size.width, info.size.height, ' ');
  const WindowRec* root = Find(info.root);
  if (root != nullptr) {
    RenderWindow(*root, {0, 0}, xbase::Region(xbase::Rect{0, 0, info.size.width,
                                                          info.size.height}),
                 &canvas);
  }
  return canvas;
}

void Server::SetPaintThreads(int threads) {
  threads = std::max(1, threads);
  if (threads == paint_threads_) {
    return;
  }
  paint_threads_ = threads;
  paint_pool_.reset();
  if (threads > 1) {
    paint_pool_ = std::make_unique<xbase::ThreadPool>(threads);
  }
}

void Server::RenderClipped(int number, const xbase::Region& clip,
                           xbase::Canvas* canvas) const {
  const ScreenInfo& info = screen(number);
  // Damage cells no window covers must come out identical on every path
  // (serial, parallel, any partition): clear them to background first.
  canvas->SetClip(clip);
  canvas->FillRect(clip.Bounds(), ' ');
  canvas->ClearClip();
  const WindowRec* root = Find(info.root);
  if (root != nullptr) {
    RenderWindow(*root, {0, 0}, clip, canvas);
  }
}

void Server::RenderScreenInto(int number, const xbase::Region& damage,
                              xbase::Canvas* canvas,
                              std::vector<uint64_t>* worker_cells) const {
  const ScreenInfo& info = screen(number);
  const int workers = paint_pool_ != nullptr ? paint_pool_->thread_count() : 1;
  if (worker_cells != nullptr) {
    worker_cells->assign(static_cast<size_t>(workers), 0);
  }
  xbase::Region clip = damage;
  clip.IntersectRect(xbase::Rect{0, 0, info.size.width, info.size.height});
  if (clip.IsEmpty()) {
    return;
  }
  if (paint_pool_ == nullptr || clip.RectCount() < 2) {
    uint64_t before = canvas->cells_written();
    RenderClipped(number, clip, canvas);
    if (worker_cells != nullptr) {
      (*worker_cells)[0] = canvas->cells_written() - before;
    }
    return;
  }

  // Partition the damage bands into contiguous, roughly equal-area chunks
  // (one per worker at most).  The partition never affects output — only
  // which worker rasterizes which band — so any chunking is deterministic.
  const std::vector<xbase::Rect>& rects = clip.rects();
  const int chunk_count = std::min(workers, static_cast<int>(rects.size()));
  const int64_t total_area = clip.Area();
  std::vector<xbase::Region> chunks;
  chunks.reserve(static_cast<size_t>(chunk_count));
  std::vector<xbase::Rect> bucket;
  int64_t accumulated = 0;
  size_t next_rect = 0;
  for (int c = 0; c < chunk_count; ++c) {
    bucket.clear();
    const int64_t threshold = (total_area * (c + 1)) / chunk_count;
    // Take bands until this chunk reaches its area share, always leaving at
    // least one band for each chunk still to come.
    while (next_rect < rects.size() &&
           (bucket.empty() || accumulated < threshold) &&
           rects.size() - next_rect > static_cast<size_t>(chunk_count - c - 1)) {
      const xbase::Rect& r = rects[next_rect++];
      accumulated += static_cast<int64_t>(r.width) * r.height;
      bucket.push_back(r);
    }
    if (!bucket.empty()) {
      chunks.emplace_back(bucket);
    }
  }

  // Each worker paints its chunks into a private screen-sized tile; no two
  // workers ever share a canvas, so the pixel path takes no locks.  The
  // tiles are pooled across calls (only the caller thread touches the pool
  // container); stale cells outside the current chunks are never read back.
  std::vector<xbase::Canvas>& tiles = paint_tiles_;
  if (tiles.size() < static_cast<size_t>(workers)) {
    tiles.resize(static_cast<size_t>(workers));
  }
  for (int w = 0; w < workers; ++w) {
    xbase::Canvas& tile = tiles[static_cast<size_t>(w)];
    if (tile.width() != info.size.width || tile.height() != info.size.height) {
      tile = xbase::Canvas(info.size.width, info.size.height, ' ');
    }
  }
  std::vector<int> chunk_owner(chunks.size(), 0);
  std::vector<uint64_t> cells_before(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    cells_before[static_cast<size_t>(w)] = tiles[static_cast<size_t>(w)].cells_written();
  }
  paint_pool_->ParallelFor(static_cast<int>(chunks.size()), [&](int task, int worker) {
    chunk_owner[static_cast<size_t>(task)] = worker;
    RenderClipped(number, chunks[static_cast<size_t>(task)], &tiles[static_cast<size_t>(worker)]);
  });
  // Serial copyback of the finished (disjoint) bands into the shared canvas.
  for (size_t c = 0; c < chunks.size(); ++c) {
    const xbase::Canvas& tile = tiles[static_cast<size_t>(chunk_owner[c])];
    for (const xbase::Rect& r : chunks[c].rects()) {
      canvas->CopyRectFrom(tile, r);
    }
  }
  if (worker_cells != nullptr) {
    for (int w = 0; w < workers; ++w) {
      (*worker_cells)[static_cast<size_t>(w)] =
          tiles[static_cast<size_t>(w)].cells_written() - cells_before[static_cast<size_t>(w)];
    }
  }
}

std::vector<xbase::Canvas> Server::RenderAllScreens() const {
  std::vector<xbase::Canvas> out(screens_.size());
  auto render_one = [&](int task, int /*worker*/) {
    const ScreenInfo& info = screens_[static_cast<size_t>(task)];
    // Construction (the big background clear) happens inside the task so
    // it parallelizes along with the painting; each task owns its slot.
    out[static_cast<size_t>(task)] = xbase::Canvas(info.size.width, info.size.height, ' ');
    const WindowRec* root = Find(info.root);
    if (root != nullptr) {
      RenderWindow(*root, {0, 0},
                   xbase::Region(xbase::Rect{0, 0, info.size.width, info.size.height}),
                   &out[static_cast<size_t>(task)]);
    }
  };
  if (paint_pool_ != nullptr && screens_.size() > 1) {
    paint_pool_->ParallelFor(static_cast<int>(screens_.size()), render_one);
  } else {
    for (size_t i = 0; i < screens_.size(); ++i) {
      render_one(static_cast<int>(i), 0);
    }
  }
  return out;
}

}  // namespace xserver
