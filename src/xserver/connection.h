// Server-side framed connection (docs/PROTOCOL.md, "Connection lifecycle").
//
// A Connection owns one ByteChannel end and drives the duplex wire protocol
// for one client: it reassembles inbound request frames across arbitrary
// short reads, hands them to Server::DispatchBytes, and writes the resulting
// reply frames — plus encoded X errors and queued events — back through a
// bounded outbound queue.  On top of that it implements the lifecycle a real
// display server needs against misbehaving peers:
//
//   kConnecting -> kEstablished -> kDraining -> kClosed
//
// with typed close reasons.  Stalled or hostile peers are detected by
// write-queue high-water marks, read-idle deadlines and reassembler
// overflow; each detection charges a pluggable misbehavior hook (the swm
// layer wires its MisbehaviorLedger in) before the connection is torn down.
// Teardown goes through Server::Disconnect, so save-set processing and
// window sweeping behave exactly as for direct-call clients, and no other
// client's sequence space is perturbed.
//
// Transport fault injection lives here too: short reads/writes, EINTR
// storms, mid-frame connection resets and reply-byte mutations are applied
// on the bytes crossing the channel, after trace recording, so recorded
// sessions replay the honest stream deterministically.
#ifndef SRC_XSERVER_CONNECTION_H_
#define SRC_XSERVER_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/xproto/transport.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace xserver {

enum class ConnectionState : uint8_t {
  kConnecting,   // Channel attached, client not yet registered with the server.
  kEstablished,  // Normal duplex operation.
  kDraining,     // No more reads; flushing the outbound queue, then closing.
  kClosed,       // Torn down; the server-side client is disconnected.
};

enum class CloseReason : uint8_t {
  kNone,           // Still open.
  kPeerClosed,     // Peer closed its end (EOF / EPIPE).
  kGracefulDrain,  // BeginDrain() completed.
  kWriteStalled,   // Peer stopped reading; outbound queue pinned over high water.
  kReadIdle,       // Peer sent nothing for read_idle_limit pumps.
  kReadOverflow,   // Peer streamed an unbounded partial frame (reassembler cap).
  kProtocolError,  // A frame the wire codec rejected; the stream cannot resync.
  kTransportError, // Unrecoverable channel error.
  kReset,          // Fault injection killed the connection mid-frame.
};

const char* ConnectionStateName(ConnectionState state);
const char* CloseReasonName(CloseReason reason);

struct ConnectionLimits {
  // Outbound bytes still queued after a flush before the peer counts as
  // stalled; stall_pump_limit consecutive over-water pumps close it.
  size_t write_queue_high_water = 64 * 1024;
  int stall_pump_limit = 4;
  // Reassembler buffer cap for inbound request bytes.
  size_t read_buffer_cap = 64 * 1024;
  // Consecutive pumps with no inbound bytes before an established peer is
  // declared dead.  0 disables (the default: quiet clients are legal).
  int read_idle_limit = 0;
  // Wall-clock deadlines for readiness-driven hosts (WireHost): a peer that
  // sends nothing for read_idle_ms, or leaves our outbound queue non-empty
  // for write_stall_ms, is closed (kReadIdle / kWriteStalled).  Pump()-based
  // harnesses ignore these — they count pumps, not time.  read_idle_ms == 0
  // disables the idle deadline (quiet clients are legal); the resource
  // database exposes both as swm.transport.idleMs / swm.transport.stallMs.
  int64_t read_idle_ms = 0;
  int64_t write_stall_ms = 5000;
  // Cost charged to the misbehavior hook per detection (matches the swm
  // quarantine policy's error_cost).
  int misbehavior_cost = 12;
};

class Connection {
 public:
  struct Stats {
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t frames_dispatched = 0;
    uint64_t requests_dispatched = 0;
    uint64_t parse_errors = 0;
    uint64_t replies_queued = 0;
    uint64_t events_queued = 0;
    uint64_t errors_queued = 0;
    uint64_t pumps = 0;
    uint64_t idle_pumps = 0;
    size_t write_queue_peak = 0;
  };

  // Takes ownership of the server end of a channel pair.  The server object
  // must outlive the connection.
  Connection(Server* server, std::unique_ptr<xproto::ByteChannel> channel,
             std::string machine = "socketpair", ConnectionLimits limits = {});
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Registers the client with the server and installs the error callback
  // that encodes X errors onto the outbound queue.  kConnecting -> kEstablished.
  void Establish();

  // One duplex cycle: read + reassemble + dispatch inbound frames, queue
  // replies/errors/events, flush outbound, run lifecycle checks.  Returns
  // the state after the cycle; call repeatedly until kClosed (or until the
  // test's condition is met).
  ConnectionState Pump();

  // Stop reading; flush what is queued, then close as kGracefulDrain.
  void BeginDrain();

  // Immediate teardown: disconnects the server-side client (save-set
  // processing + window sweep) and closes the channel.
  void Close(CloseReason reason);

  // Deadline-expiry teardown for readiness hosts (WireHost): charges the
  // misbehavior hook — blowing a wall-clock deadline is a policy violation,
  // exactly like blowing a pump-count limit — then closes with `reason`.
  void CloseExpired(CloseReason reason);

  // Abandons the transport without tearing down the session: the channel
  // closes but the client record — windows included — survives on the
  // server.  Trace replay uses this for clients the recording never
  // disconnected, so a transport-mode replay leaves the same observable
  // state a direct-dispatch replay does.
  void Detach();

  // Charged (client id, cost) on each stall/idle/overflow/protocol
  // detection.  The swm layer points this at MisbehaviorLedger::Charge.
  void SetMisbehaviorHook(std::function<void(xproto::ClientId, int)> hook);

  // Installs transport faults (the transport fields of `plan`; the wire and
  // semantic fields stay the server's business).  Deterministic per
  // connection: the RNG is seeded from plan.seed and the client id.
  void InstallTransportFaults(const FaultPlan& plan);

  xproto::ClientId client() const { return client_; }
  ConnectionState state() const { return state_; }
  CloseReason close_reason() const { return close_reason_; }
  const Stats& stats() const { return stats_; }
  const FaultCounters& transport_fault_counters() const { return fault_counters_; }
  size_t outbound_queued() const { return outbox_.size() - outbox_sent_; }
  const ConnectionLimits& limits() const { return limits_; }
  // Channel fd for readiness polling (epoll/poll); -1 for fd-less channels.
  // The fd stays channel-owned — callers must not close it.
  int PollFd() const { return channel_ ? channel_->ReadFd() : -1; }
  // True when the peer's EOF arrived with a partial request frame still
  // buffered — the signature of a client killed mid-request.
  bool died_mid_frame() const { return died_mid_frame_; }

 private:
  // Reads whatever the channel has into the reassembler (short-read and
  // EINTR-storm faults apply here).  Returns false when the connection
  // closed under it.
  bool ReadInbound();
  // Feed + overflow detection (charge, close kReadOverflow).
  bool FeedChecked(std::span<const uint8_t> bytes);
  // Dispatches every complete inbound frame; queues the reply bytes (reply
  // mutation and mid-frame reset faults apply here).  Returns false when the
  // connection died mid-dispatch (reset fault or protocol error).
  bool DispatchInbound();
  // Queues reply frames with per-frame mutation / mid-frame reset faults.
  bool QueueReplies(std::span<uint8_t> frames);
  void QueueEvents();
  void QueueBytes(std::span<const uint8_t> bytes);
  // Flushes as much of the outbound queue as the peer accepts (short-write
  // fault applies here).
  xproto::IoStatus FlushOutbound();
  void ChargeMisbehavior();

  Server* server_;
  std::unique_ptr<xproto::ByteChannel> channel_;
  std::string machine_;
  ConnectionLimits limits_;

  xproto::ClientId client_ = 0;
  ConnectionState state_ = ConnectionState::kConnecting;
  CloseReason close_reason_ = CloseReason::kNone;
  // Reason the drain in progress will close with (kGracefulDrain for
  // BeginDrain, kPeerClosed when the drain started at EOF).
  CloseReason drain_reason_ = CloseReason::kGracefulDrain;

  xproto::FrameReassembler inbound_;
  // Short-read fault stash: bytes read from the channel but not yet fed to
  // the reassembler (delivered on later pumps, as a slow kernel would).
  std::vector<uint8_t> pending_in_;
  size_t pending_in_offset_ = 0;

  std::vector<uint8_t> outbox_;
  size_t outbox_sent_ = 0;
  int stalled_pumps_ = 0;
  int idle_pumps_ = 0;
  bool died_mid_frame_ = false;

  bool faults_active_ = false;
  FaultPlan plan_;
  FaultRng rng_{1};
  FaultCounters fault_counters_;

  std::function<void(xproto::ClientId, int)> misbehavior_hook_;
  Stats stats_;
};

}  // namespace xserver

#endif  // SRC_XSERVER_CONNECTION_H_
