// Server-side window record.  Internal to the server; clients see windows
// only through ids and requests.
#ifndef SRC_XSERVER_WINDOW_H_
#define SRC_XSERVER_WINDOW_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/geometry.h"
#include "src/base/region.h"
#include "src/xproto/types.h"

namespace xserver {

// A recorded drawing command.  The simulator has no pixel formats; windows
// carry a display list that the renderer replays into the ASCII canvas.
struct DrawOp {
  enum class Kind {
    kFillRect,
    kBorder,
    kText,
    kTextCentered,
    kBitmap,
  };
  Kind kind = Kind::kFillRect;
  xbase::Rect rect;       // Window-relative.
  std::string text;
  xbase::Bitmap bitmap;
  char fill = ' ';
};

struct PropertyRec {
  xproto::AtomId type = xproto::kAtomNone;
  int format = 8;  // 8, 16 or 32.
  std::vector<uint8_t> data;

  friend bool operator==(const PropertyRec&, const PropertyRec&) = default;
};

struct PassiveGrab {
  xproto::ClientId client = 0;
  int button = 0;  // 0 = AnyButton.
  uint32_t modifiers = 0;
  uint32_t event_mask = 0;
};

struct WindowRec {
  xproto::WindowId id = xproto::kNone;
  xproto::WindowId parent = xproto::kNone;
  int screen = 0;
  xproto::WindowClass window_class = xproto::WindowClass::kInputOutput;

  // Geometry relative to parent (excluding the border).
  xbase::Rect geometry;
  int border_width = 0;

  bool override_redirect = false;
  bool mapped = false;
  bool destroyed = false;

  // Children in stacking order, bottom-most first.
  std::vector<xproto::WindowId> children;

  xproto::ClientId owner = 0;

  // Per-client event selections.
  std::map<xproto::ClientId, uint32_t> selections;

  // Clients that asked for ShapeNotify on this window.
  std::map<xproto::ClientId, bool> shape_selections;

  std::map<xproto::AtomId, PropertyRec> properties;

  std::vector<PassiveGrab> passive_grabs;

  // Clients whose save-set includes this window.
  std::vector<xproto::ClientId> save_set_clients;

  // SHAPE: bounding shape in window coordinates; nullopt = rectangular.
  std::optional<xbase::Region> shape;

  // Rendering state.
  char background = ' ';
  std::vector<DrawOp> draw_ops;
  std::string cursor_name;  // Informational only.

  uint32_t AllSelections() const {
    uint32_t mask = 0;
    for (const auto& [client, m] : selections) {
      mask |= m;
    }
    return mask;
  }
};

}  // namespace xserver

#endif  // SRC_XSERVER_WINDOW_H_
