#include "src/xrdb/database.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace xrdb {

std::vector<ResourceComponent> ParseResourceName(const std::string& text) {
  std::vector<ResourceComponent> components;
  std::string current;
  bool loose = false;       // Binding preceding the component being built.
  bool have_binding = true; // The first component has an implicit tight binding.
  for (char c : text) {
    if (c == '.' || c == '*') {
      if (current.empty()) {
        if (c == '*') {
          // Runs like "**" or ".*" collapse to a loose binding; "*" at the
          // very start is also legal ("*foo").
          loose = true;
          have_binding = true;
          continue;
        }
        return {};  // ".." or leading "." is malformed.
      }
      components.push_back({loose, current});
      current.clear();
      loose = c == '*';
      have_binding = true;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
               c == '?') {
      current.push_back(c);
    } else {
      return {};  // Illegal character in component.
    }
  }
  if (current.empty() || !have_binding) {
    return {};
  }
  components.push_back({loose, current});
  return components;
}

std::string FormatResourceName(const std::vector<ResourceComponent>& components) {
  std::string out;
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i].loose) {
      out += '*';
    } else if (i > 0) {
      out += '.';
    }
    out += components[i].name;
  }
  return out;
}

struct ResourceDatabase::Node {
  // Children keyed by (binding, component-name).
  std::map<ResourceComponent, std::unique_ptr<Node>> children;
  std::optional<std::string> value;
  bool has_loose_child = false;  // Cached: any loose-bound descendant edge here.
};

ResourceDatabase::ResourceDatabase() : root_(std::make_unique<Node>()) {}
ResourceDatabase::~ResourceDatabase() = default;
ResourceDatabase::ResourceDatabase(ResourceDatabase&&) noexcept = default;
ResourceDatabase& ResourceDatabase::operator=(ResourceDatabase&&) noexcept = default;

bool ResourceDatabase::Put(const std::string& specifier, const std::string& value) {
  std::vector<ResourceComponent> components = ParseResourceName(specifier);
  if (components.empty()) {
    XB_LOG(Warning) << "xrdb: malformed resource specifier '" << specifier << "'";
    return false;
  }
  Node* node = root_.get();
  for (const ResourceComponent& component : components) {
    if (component.loose) {
      node->has_loose_child = true;
    }
    std::unique_ptr<Node>& child = node->children[component];
    if (child == nullptr) {
      child = std::make_unique<Node>();
    }
    node = child.get();
  }
  if (!node->value.has_value()) {
    ++entry_count_;
  }
  node->value = value;
  return true;
}

std::optional<std::string> ResourceDatabase::Match(const Node& node,
                                                   const std::vector<std::string>& names,
                                                   const std::vector<std::string>& classes,
                                                   size_t level, bool loose_only) const {
  if (level == names.size()) {
    return node.value;
  }
  // Candidates in precedence order (see header).  After a skip, only
  // loose-bound edges are eligible, because a tight binding means
  // "immediately follows".
  const std::string& name = names[level];
  const std::string& clazz = classes[level];
  struct Candidate {
    bool loose;
    const std::string* text;
  };
  const std::string question = "?";
  const Candidate candidates[] = {
      {false, &name},   {true, &name},   {false, &clazz},
      {true, &clazz},   {false, &question}, {true, &question},
  };
  for (const Candidate& candidate : candidates) {
    if (loose_only && !candidate.loose) {
      continue;
    }
    auto it = node.children.find(ResourceComponent{candidate.loose, *candidate.text});
    if (it != node.children.end()) {
      std::optional<std::string> result =
          Match(*it->second, names, classes, level + 1, /*loose_only=*/false);
      if (result.has_value()) {
        return result;
      }
    }
  }
  // Lowest precedence: skip this component (requires a loose edge below).
  // The final component can never be skipped: an entry must match the
  // resource name itself, not just a prefix.
  if (node.has_loose_child && level + 1 < names.size()) {
    return Match(node, names, classes, level + 1, /*loose_only=*/true);
  }
  return std::nullopt;
}

std::optional<std::string> ResourceDatabase::Get(const std::vector<std::string>& names,
                                                 const std::vector<std::string>& classes) const {
  if (names.empty() || names.size() != classes.size()) {
    return std::nullopt;
  }
  return Match(*root_, names, classes, 0, /*loose_only=*/false);
}

std::optional<std::string> ResourceDatabase::Get(const std::string& dotted_names,
                                                 const std::string& dotted_classes) const {
  return Get(xbase::Split(dotted_names, '.'), xbase::Split(dotted_classes, '.'));
}

int ResourceDatabase::LoadFromString(const std::string& text) {
  int loaded = 0;
  std::istringstream stream(text);
  std::string line;
  std::string logical;
  auto flush = [&]() {
    std::string line_text = std::move(logical);
    logical.clear();
    std::string trimmed = xbase::TrimWhitespace(line_text);
    if (trimmed.empty() || trimmed[0] == '!' || trimmed[0] == '#') {
      return;
    }
    size_t colon = line_text.find(':');
    if (colon == std::string::npos) {
      XB_LOG(Warning) << "xrdb: line without ':' skipped: " << trimmed;
      return;
    }
    std::string key = xbase::TrimWhitespace(line_text.substr(0, colon));
    // Trailing whitespace in values is significant (only leading is eaten).
    std::string raw_value = line_text.substr(colon + 1);
    // Leading whitespace in the value is not significant; embedded is.
    size_t start = 0;
    while (start < raw_value.size() &&
           (raw_value[start] == ' ' || raw_value[start] == '\t')) {
      ++start;
    }
    std::string value;
    for (size_t i = start; i < raw_value.size(); ++i) {
      if (raw_value[i] == '\\' && i + 1 < raw_value.size() && raw_value[i + 1] == 'n') {
        value.push_back('\n');
        ++i;
      } else if (raw_value[i] == '\\' && i + 1 < raw_value.size() &&
                 raw_value[i + 1] == '\\') {
        value.push_back('\\');
        ++i;
      } else {
        value.push_back(raw_value[i]);
      }
    }
    if (Put(key, value)) {
      ++loaded;
    }
  };
  while (std::getline(stream, line)) {
    // Backslash at end of line continues onto the next line.
    while (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      logical += line;
      continue;
    }
    logical += line;
    flush();
  }
  flush();
  return loaded;
}

int ResourceDatabase::LoadFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    XB_LOG(Warning) << "xrdb: cannot open " << path;
    return 0;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return LoadFromString(contents.str());
}

void ResourceDatabase::Merge(const ResourceDatabase& other) {
  for (const auto& [specifier, value] : other.Enumerate()) {
    Put(specifier, value);
  }
}

std::vector<std::pair<std::string, std::string>> ResourceDatabase::Enumerate() const {
  std::vector<std::pair<std::string, std::string>> out;
  std::vector<ResourceComponent> prefix;
  // Iterative DFS using an explicit walker to keep Node private.
  struct Frame {
    const Node* node;
    std::map<ResourceComponent, std::unique_ptr<Node>>::const_iterator it;
  };
  std::vector<Frame> stack;
  if (root_->value.has_value()) {
    out.emplace_back("", *root_->value);
  }
  stack.push_back({root_.get(), root_->children.begin()});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.it == frame.node->children.end()) {
      if (!prefix.empty()) {
        prefix.pop_back();
      }
      stack.pop_back();
      continue;
    }
    const ResourceComponent& component = frame.it->first;
    const Node* child = frame.it->second.get();
    ++frame.it;
    prefix.push_back(component);
    if (child->value.has_value()) {
      out.emplace_back(FormatResourceName(prefix), *child->value);
    }
    stack.push_back({child, child->children.begin()});
  }
  return out;
}

std::string ResourceDatabase::Serialize() const {
  std::ostringstream os;
  for (const auto& [specifier, value] : Enumerate()) {
    std::string escaped;
    for (char c : value) {
      if (c == '\n') {
        escaped += "\\n";
      } else if (c == '\\') {
        escaped += "\\\\";
      } else {
        escaped.push_back(c);
      }
    }
    os << specifier << ": " << escaped << "\n";
  }
  return os.str();
}

}  // namespace xrdb
