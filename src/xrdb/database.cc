#include "src/xrdb/database.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace xrdb {

namespace {

// Edge keys pack the binding into the low bit so one integer compare covers
// the whole (loose, symbol) component identity.
uint64_t EdgeKey(bool loose, xbase::Symbol symbol) {
  return (static_cast<uint64_t>(symbol) << 1) | (loose ? 1u : 0u);
}

bool EdgeKeyLoose(uint64_t key) { return (key & 1) != 0; }

xbase::Symbol EdgeKeySymbol(uint64_t key) {
  return static_cast<xbase::Symbol>(key >> 1);
}

// Process-global, monotonic: no two mutations anywhere ever produce the
// same generation value (see generation() in the header).
uint64_t g_generation_counter = 0;

}  // namespace

std::vector<ResourceComponent> ParseResourceName(const std::string& text) {
  std::vector<ResourceComponent> components;
  std::string current;
  bool loose = false;       // Binding preceding the component being built.
  bool have_binding = true; // The first component has an implicit tight binding.
  for (char c : text) {
    if (c == '.' || c == '*') {
      if (current.empty()) {
        if (c == '*') {
          // Runs like "**" or ".*" collapse to a loose binding; "*" at the
          // very start is also legal ("*foo").
          loose = true;
          have_binding = true;
          continue;
        }
        return {};  // ".." or leading "." is malformed.
      }
      components.push_back({loose, current});
      current.clear();
      loose = c == '*';
      have_binding = true;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
               c == '?') {
      current.push_back(c);
    } else {
      return {};  // Illegal character in component.
    }
  }
  if (current.empty() || !have_binding) {
    return {};
  }
  components.push_back({loose, current});
  return components;
}

std::string FormatResourceName(const std::vector<ResourceComponent>& components) {
  std::string out;
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i].loose) {
      out += '*';
    } else if (i > 0) {
      out += '.';
    }
    out += components[i].name;
  }
  return out;
}

struct ResourceDatabase::Node {
  // Children as two parallel sorted arrays: the binary search touches only
  // the dense key array (8 bytes per edge, not key + pointer), which halves
  // the cache lines a probe of a high-fanout node pulls in.
  std::vector<uint64_t> keys;  // Sorted EdgeKey(loose, symbol) values.
  std::vector<std::unique_ptr<Node>> children;  // children[i] under keys[i].
  std::optional<std::string> value;
  bool has_loose_child = false;  // Cached: any loose-bound edge here.

  const Node* Find(uint64_t key) const {
    auto it = std::lower_bound(keys.begin(), keys.end(), key);
    return (it != keys.end() && *it == key) ? children[it - keys.begin()].get()
                                            : nullptr;
  }

  Node* FindOrAdd(uint64_t key) {
    auto it = std::lower_bound(keys.begin(), keys.end(), key);
    size_t index = it - keys.begin();
    if (it != keys.end() && *it == key) {
      return children[index].get();
    }
    keys.insert(it, key);
    children.insert(children.begin() + index, std::make_unique<Node>());
    return children[index].get();
  }
};

ResourceDatabase::ResourceDatabase()
    : root_(std::make_unique<Node>()),
      question_(xbase::SymbolInterner::Global().Intern("?")) {}
ResourceDatabase::~ResourceDatabase() = default;
ResourceDatabase::ResourceDatabase(ResourceDatabase&&) noexcept = default;
ResourceDatabase& ResourceDatabase::operator=(ResourceDatabase&&) noexcept = default;

void ResourceDatabase::Touch() { generation_ = ++g_generation_counter; }

bool ResourceDatabase::Put(const std::string& specifier, const std::string& value) {
  std::vector<ResourceComponent> components = ParseResourceName(specifier);
  if (components.empty()) {
    XB_LOG(Warning) << "xrdb: malformed resource specifier '" << specifier << "'";
    return false;
  }
  xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
  Node* node = root_.get();
  for (const ResourceComponent& component : components) {
    if (component.loose) {
      node->has_loose_child = true;
    }
    node = node->FindOrAdd(EdgeKey(component.loose, interner.Intern(component.name)));
  }
  if (!node->value.has_value()) {
    ++entry_count_;
  }
  node->value = value;
  Touch();
  return true;
}

namespace {

// Eager query: components already interned (the toolkit fast path).
struct SymbolQuery {
  std::span<const xbase::Symbol> names;
  std::span<const xbase::Symbol> classes;

  size_t size() const { return names.size(); }
  xbase::Symbol name(size_t level) const { return names[level]; }
  xbase::Symbol clazz(size_t level) const { return classes[level]; }
};

// String query: components are interner-Find'ed on first use and memoized
// in a caller-provided buffer.  Class symbols are rarely needed (only when
// the name probes of that level fail), so laziness halves the interning
// work for fully specific lookups.
struct LazyStringQuery {
  static constexpr xbase::Symbol kUnresolved = 0xFFFFFFFEu;

  const std::vector<std::string>* name_strings;
  const std::vector<std::string>* class_strings;
  xbase::Symbol* name_symbols;   // size() entries, preset to kUnresolved.
  xbase::Symbol* class_symbols;  // size() entries, preset to kUnresolved.

  size_t size() const { return name_strings->size(); }
  xbase::Symbol name(size_t level) const {
    if (name_symbols[level] == kUnresolved) {
      name_symbols[level] = xbase::SymbolInterner::Global().Find((*name_strings)[level]);
    }
    return name_symbols[level];
  }
  xbase::Symbol clazz(size_t level) const {
    if (class_symbols[level] == kUnresolved) {
      class_symbols[level] =
          xbase::SymbolInterner::Global().Find((*class_strings)[level]);
    }
    return class_symbols[level];
  }
};

}  // namespace

template <typename QueryT>
const std::optional<std::string>* ResourceDatabase::TightNameHit(const QueryT& query) const {
  const Node* node = root_.get();
  const size_t depth = query.size();
  for (size_t level = 0; level < depth; ++level) {
    xbase::Symbol symbol = query.name(level);
    if (symbol == xbase::kNoSymbol) {
      return nullptr;
    }
    node = node->Find(EdgeKey(/*loose=*/false, symbol));
    if (node == nullptr) {
      return nullptr;
    }
  }
  return node->value.has_value() ? &node->value : nullptr;
}

template <typename QueryT>
std::optional<std::string> ResourceDatabase::Match(const Node& node, const QueryT& query,
                                                   size_t level, bool loose_only) const {
  if (level == query.size()) {
    return node.value;
  }
  // Candidates in precedence order (see header).  After a skip, only
  // loose-bound edges are eligible, because a tight binding means
  // "immediately follows".  Candidates are generated lazily — a successful
  // first probe (the common fully-specific case) pays for one edge lookup
  // only — and duplicate keys (name == class, or either is "?") are
  // dropped so the same subtree is never searched twice.
  uint64_t tried[6];
  int tried_count = 0;
  std::optional<std::string> result;
  auto probe = [&](bool loose, xbase::Symbol symbol) -> bool {
    if (symbol == xbase::kNoSymbol) {
      return false;  // A never-interned query component matches nothing.
    }
    if (loose_only && !loose) {
      return false;
    }
    uint64_t key = EdgeKey(loose, symbol);
    for (int i = 0; i < tried_count; ++i) {
      if (tried[i] == key) {
        return false;  // Same (binding, component): subtree already searched.
      }
    }
    tried[tried_count++] = key;
    const Node* child = node.Find(key);
    if (child == nullptr) {
      return false;
    }
    result = Match(*child, query, level + 1, /*loose_only=*/false);
    return result.has_value();
  };
  if (probe(false, query.name(level)) || probe(true, query.name(level)) ||
      probe(false, query.clazz(level)) || probe(true, query.clazz(level)) ||
      probe(false, question_) || probe(true, question_)) {
    return result;
  }
  // Lowest precedence: skip this component (requires a loose edge below).
  // The final component can never be skipped: an entry must match the
  // resource name itself, not just a prefix.
  if (node.has_loose_child && level + 1 < query.size()) {
    return Match(node, query, level + 1, /*loose_only=*/true);
  }
  return std::nullopt;
}

std::optional<std::string> ResourceDatabase::Get(
    std::span<const xbase::Symbol> names, std::span<const xbase::Symbol> classes) const {
  if (names.empty() || names.size() != classes.size()) {
    return std::nullopt;
  }
  SymbolQuery query{names, classes};
  if (const std::optional<std::string>* hit = TightNameHit(query)) {
    return *hit;
  }
  return Match(*root_, query, 0, /*loose_only=*/false);
}

std::optional<std::string> ResourceDatabase::Get(const std::vector<std::string>& names,
                                                 const std::vector<std::string>& classes) const {
  if (names.empty() || names.size() != classes.size()) {
    return std::nullopt;
  }
  // Interning happens lazily during the walk (see LazyStringQuery), into a
  // stack buffer for realistic depths.  Find() (not Intern()) keeps
  // arbitrary query strings from growing the global table.
  constexpr size_t kInlineDepth = 16;
  xbase::Symbol inline_buf[2 * kInlineDepth];
  std::vector<xbase::Symbol> heap_buf;
  xbase::Symbol* name_syms;
  if (names.size() <= kInlineDepth) {
    name_syms = inline_buf;
  } else {
    heap_buf.resize(2 * names.size());
    name_syms = heap_buf.data();
  }
  xbase::Symbol* class_syms = name_syms + names.size();
  for (size_t i = 0; i < names.size(); ++i) {
    name_syms[i] = LazyStringQuery::kUnresolved;
    class_syms[i] = LazyStringQuery::kUnresolved;
  }
  LazyStringQuery query{&names, &classes, name_syms, class_syms};
  if (const std::optional<std::string>* hit = TightNameHit(query)) {
    return *hit;  // Name symbols it resolved stay memoized for Match below.
  }
  return Match(*root_, query, 0, /*loose_only=*/false);
}

std::optional<std::string> ResourceDatabase::Get(const std::string& dotted_names,
                                                 const std::string& dotted_classes) const {
  return Get(xbase::Split(dotted_names, '.'), xbase::Split(dotted_classes, '.'));
}

int ResourceDatabase::LoadFromString(const std::string& text) {
  int loaded = 0;
  std::istringstream stream(text);
  std::string line;
  std::string logical;
  auto flush = [&]() {
    std::string line_text = std::move(logical);
    logical.clear();
    std::string trimmed = xbase::TrimWhitespace(line_text);
    if (trimmed.empty() || trimmed[0] == '!' || trimmed[0] == '#') {
      return;
    }
    size_t colon = line_text.find(':');
    if (colon == std::string::npos) {
      XB_LOG(Warning) << "xrdb: line without ':' skipped: " << trimmed;
      return;
    }
    std::string key = xbase::TrimWhitespace(line_text.substr(0, colon));
    // Trailing whitespace in values is significant (only leading is eaten).
    std::string raw_value = line_text.substr(colon + 1);
    // Leading whitespace in the value is not significant; embedded is.
    size_t start = 0;
    while (start < raw_value.size() &&
           (raw_value[start] == ' ' || raw_value[start] == '\t')) {
      ++start;
    }
    std::string value;
    for (size_t i = start; i < raw_value.size(); ++i) {
      if (raw_value[i] == '\\' && i + 1 < raw_value.size() && raw_value[i + 1] == 'n') {
        value.push_back('\n');
        ++i;
      } else if (raw_value[i] == '\\' && i + 1 < raw_value.size() &&
                 raw_value[i + 1] == '\\') {
        value.push_back('\\');
        ++i;
      } else {
        value.push_back(raw_value[i]);
      }
    }
    if (Put(key, value)) {
      ++loaded;
    }
  };
  while (std::getline(stream, line)) {
    // Backslash at end of line continues onto the next line.
    while (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      logical += line;
      continue;
    }
    logical += line;
    flush();
  }
  flush();
  return loaded;
}

int ResourceDatabase::LoadFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    XB_LOG(Warning) << "xrdb: cannot open " << path;
    return 0;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return LoadFromString(contents.str());
}

void ResourceDatabase::MergeNode(Node* dst, const Node& src) {
  if (src.value.has_value()) {
    if (!dst->value.has_value()) {
      ++entry_count_;
    }
    dst->value = src.value;
  }
  for (size_t i = 0; i < src.keys.size(); ++i) {
    if (EdgeKeyLoose(src.keys[i])) {
      dst->has_loose_child = true;
    }
    MergeNode(dst->FindOrAdd(src.keys[i]), *src.children[i]);
  }
}

void ResourceDatabase::Merge(const ResourceDatabase& other) {
  // Structural copy of the source trie: both tries share the global symbol
  // table, so edges transfer by key without a FormatResourceName →
  // ParseResourceName round trip per entry.
  MergeNode(root_.get(), *other.root_);
  Touch();
}

std::vector<std::pair<std::string, std::string>> ResourceDatabase::Enumerate() const {
  std::vector<std::pair<std::string, std::string>> out;
  std::vector<ResourceComponent> prefix;
  const xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
  // Iterative DFS using an explicit walker to keep Node private.  Children
  // are visited in (binding, component-name) order — symbol ids reflect
  // interning order, not lexicographic order, so each level re-sorts.
  struct Frame {
    const Node* node;
    std::vector<size_t> order;  // Indices into node->keys/children.
    size_t next = 0;
  };
  auto sorted_edges = [&interner](const Node& node) {
    std::vector<size_t> order(node.keys.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&interner, &node](size_t a, size_t b) {
      bool a_loose = EdgeKeyLoose(node.keys[a]);
      bool b_loose = EdgeKeyLoose(node.keys[b]);
      if (a_loose != b_loose) {
        return !a_loose;
      }
      return interner.NameOf(EdgeKeySymbol(node.keys[a])) <
             interner.NameOf(EdgeKeySymbol(node.keys[b]));
    });
    return order;
  };
  if (root_->value.has_value()) {
    out.emplace_back("", *root_->value);
  }
  std::vector<Frame> stack;
  stack.push_back({root_.get(), sorted_edges(*root_), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next == frame.order.size()) {
      if (!prefix.empty()) {
        prefix.pop_back();
      }
      stack.pop_back();
      continue;
    }
    size_t index = frame.order[frame.next++];
    uint64_t key = frame.node->keys[index];
    prefix.push_back({EdgeKeyLoose(key), interner.NameOf(EdgeKeySymbol(key))});
    const Node* child = frame.node->children[index].get();
    if (child->value.has_value()) {
      out.emplace_back(FormatResourceName(prefix), *child->value);
    }
    stack.push_back({child, sorted_edges(*child), 0});
  }
  return out;
}

std::string ResourceDatabase::Serialize() const {
  std::ostringstream os;
  for (const auto& [specifier, value] : Enumerate()) {
    std::string escaped;
    for (char c : value) {
      if (c == '\n') {
        escaped += "\\n";
      } else if (c == '\\') {
        escaped += "\\\\";
      } else {
        escaped.push_back(c);
      }
    }
    os << specifier << ": " << escaped << "\n";
  }
  return os.str();
}

}  // namespace xrdb
