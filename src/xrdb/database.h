// X resource database (Xrm) reimplementation.
//
// swm is configured *entirely* through the resource database (paper §3):
// per-screen and per-visual prefixes, specific resources naming WM_CLASS
// components, panel definitions, bindings, template files.  This module
// implements the standard Xrm model: entries are component sequences with
// tight (".") or loose ("*") bindings plus a single-component wildcard
// ("?"), and queries follow XrmGetResource's precedence rules:
//
//   1. Matching a component (by name, class or "?") outranks skipping it
//      (which only a loose binding permits).
//   2. Matching by name outranks matching by class outranks "?".
//   3. A tight binding outranks a loose binding.
//
// Rules apply per component, left to right, rule 1 strongest.
#ifndef SRC_XRDB_DATABASE_H_
#define SRC_XRDB_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace xrdb {

struct ResourceComponent {
  bool loose = false;  // Binding *preceding* this component: '.' or '*'.
  std::string name;

  friend bool operator==(const ResourceComponent&, const ResourceComponent&) = default;
  friend auto operator<=>(const ResourceComponent&, const ResourceComponent&) = default;
};

// Parses "Swm*panel.openLook.resizeCorners" into components.  Returns an
// empty vector on malformed input (empty component, trailing binding).
std::vector<ResourceComponent> ParseResourceName(const std::string& text);

// Re-serializes a component list ("a*b.c").
std::string FormatResourceName(const std::vector<ResourceComponent>& components);

class ResourceDatabase {
 public:
  ResourceDatabase();
  ~ResourceDatabase();

  ResourceDatabase(const ResourceDatabase&) = delete;
  ResourceDatabase& operator=(const ResourceDatabase&) = delete;
  ResourceDatabase(ResourceDatabase&&) noexcept;
  ResourceDatabase& operator=(ResourceDatabase&&) noexcept;

  // Inserts or replaces one entry.  Returns false on malformed specifier.
  bool Put(const std::string& specifier, const std::string& value);

  // XrmGetResource: `names` and `classes` must be the same length (the fully
  // qualified name and class of the resource).  Returns the value of the
  // most specific matching entry.
  std::optional<std::string> Get(const std::vector<std::string>& names,
                                 const std::vector<std::string>& classes) const;

  // Convenience for "name.name.name" / "Class.Class.Class" dotted strings.
  std::optional<std::string> Get(const std::string& dotted_names,
                                 const std::string& dotted_classes) const;

  // Loads "key: value" lines.  Supports '!' comment lines, '#' directives
  // (ignored), backslash line-continuation and the \n escape in values.
  // Returns the number of entries loaded; malformed lines are skipped with
  // a warning.
  int LoadFromString(const std::string& text);
  int LoadFromFile(const std::string& path);

  // Merges another database over this one (other's entries win).
  void Merge(const ResourceDatabase& other);

  // All entries as (specifier, value) pairs, in deterministic order.
  std::vector<std::pair<std::string, std::string>> Enumerate() const;
  std::string Serialize() const;

  size_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }

 private:
  struct Node;

  std::optional<std::string> Match(const Node& node, const std::vector<std::string>& names,
                                   const std::vector<std::string>& classes, size_t level,
                                   bool loose_only) const;

  std::unique_ptr<Node> root_;
  size_t entry_count_ = 0;
};

}  // namespace xrdb

#endif  // SRC_XRDB_DATABASE_H_
