// X resource database (Xrm) reimplementation.
//
// swm is configured *entirely* through the resource database (paper §3):
// per-screen and per-visual prefixes, specific resources naming WM_CLASS
// components, panel definitions, bindings, template files.  This module
// implements the standard Xrm model: entries are component sequences with
// tight (".") or loose ("*") bindings plus a single-component wildcard
// ("?"), and queries follow XrmGetResource's precedence rules:
//
//   1. Matching a component (by name, class or "?") outranks skipping it
//      (which only a loose binding permits).
//   2. Matching by name outranks matching by class outranks "?".
//   3. A tight binding outranks a loose binding.
//
// Rules apply per component, left to right, rule 1 strongest.
//
// Internally the trie is keyed on interned symbols (xbase::SymbolInterner),
// so a Match probe is an integer binary search with zero allocations; the
// string API interns at the boundary.  A monotonic generation() counter is
// bumped by every mutation so callers (the OI toolkit) can memoize query
// results and invalidate them when the database changes.
#ifndef SRC_XRDB_DATABASE_H_
#define SRC_XRDB_DATABASE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/interner.h"

namespace xrdb {

struct ResourceComponent {
  bool loose = false;  // Binding *preceding* this component: '.' or '*'.
  std::string name;

  friend bool operator==(const ResourceComponent&, const ResourceComponent&) = default;
  friend auto operator<=>(const ResourceComponent&, const ResourceComponent&) = default;
};

// Parses "Swm*panel.openLook.resizeCorners" into components.  Returns an
// empty vector on malformed input (empty component, trailing binding).
std::vector<ResourceComponent> ParseResourceName(const std::string& text);

// Re-serializes a component list ("a*b.c").
std::string FormatResourceName(const std::vector<ResourceComponent>& components);

class ResourceDatabase {
 public:
  ResourceDatabase();
  ~ResourceDatabase();

  ResourceDatabase(const ResourceDatabase&) = delete;
  ResourceDatabase& operator=(const ResourceDatabase&) = delete;
  ResourceDatabase(ResourceDatabase&&) noexcept;
  ResourceDatabase& operator=(ResourceDatabase&&) noexcept;

  // Inserts or replaces one entry.  Returns false on malformed specifier.
  bool Put(const std::string& specifier, const std::string& value);

  // XrmGetResource: `names` and `classes` must be the same length (the fully
  // qualified name and class of the resource).  Returns the value of the
  // most specific matching entry.
  std::optional<std::string> Get(const std::vector<std::string>& names,
                                 const std::vector<std::string>& classes) const;

  // Allocation-free variant for callers that keep interned query paths
  // (symbols from xbase::SymbolInterner::Global()).
  std::optional<std::string> Get(std::span<const xbase::Symbol> names,
                                 std::span<const xbase::Symbol> classes) const;

  // Convenience for "name.name.name" / "Class.Class.Class" dotted strings.
  std::optional<std::string> Get(const std::string& dotted_names,
                                 const std::string& dotted_classes) const;

  // Loads "key: value" lines.  Supports '!' comment lines, '#' directives
  // (ignored), backslash line-continuation and the \n escape in values.
  // Returns the number of entries loaded; malformed lines are skipped with
  // a warning.
  int LoadFromString(const std::string& text);
  int LoadFromFile(const std::string& path);

  // Merges another database over this one (other's entries win).  Walks the
  // source trie directly; no entry is re-parsed.
  void Merge(const ResourceDatabase& other);

  // All entries as (specifier, value) pairs, in deterministic order.
  std::vector<std::pair<std::string, std::string>> Enumerate() const;
  std::string Serialize() const;

  size_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }

  // Changes with every successful Put/Merge/Load.  Drawn from a counter
  // global to the process, so two databases never share a non-zero
  // generation — a cache keyed on it stays correct across SetResources
  // swaps and whole-database reloads.
  uint64_t generation() const { return generation_; }

 private:
  struct Node;

  // Templated on the query representation: eager symbol spans (the toolkit
  // fast path) or lazily-interned strings (the class symbol of a level is
  // only resolved if its name probes fail — a fully specific hit interns
  // half as much).
  template <typename QueryT>
  std::optional<std::string> Match(const Node& node, const QueryT& query, size_t level,
                                   bool loose_only) const;
  // Iterative walk of the all-tight-name path.  That path is the first leaf
  // the Match DFS would explore, so when it ends on a value the value is the
  // overall highest-precedence match and the backtracking search is skipped.
  template <typename QueryT>
  const std::optional<std::string>* TightNameHit(const QueryT& query) const;
  void MergeNode(Node* dst, const Node& src);
  void Touch();  // Bumps generation_ from the global counter.

  std::unique_ptr<Node> root_;
  size_t entry_count_ = 0;
  uint64_t generation_ = 0;
  xbase::Symbol question_;  // Interned "?".
};

}  // namespace xrdb

#endif  // SRC_XRDB_DATABASE_H_
