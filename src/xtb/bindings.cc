#include "src/xtb/bindings.h"

#include <map>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace xtb {

namespace {

std::map<std::string, xproto::KeySym>& KeySymTable() {
  static auto* table = new std::map<std::string, xproto::KeySym>();
  return *table;
}

std::vector<std::string>& KeySymNames() {
  static auto* names = new std::vector<std::string>();
  return *names;
}

}  // namespace

xproto::KeySym InternKeySym(const std::string& name) {
  auto& table = KeySymTable();
  auto it = table.find(name);
  if (it != table.end()) {
    return it->second;
  }
  KeySymNames().push_back(name);
  xproto::KeySym sym = static_cast<xproto::KeySym>(KeySymNames().size());
  table[name] = sym;
  return sym;
}

std::string KeySymName(xproto::KeySym keysym) {
  const auto& names = KeySymNames();
  if (keysym == 0 || keysym > names.size()) {
    return "";
  }
  return names[keysym - 1];
}

std::string BindingEvent::ToString() const {
  std::string out;
  if (modifiers & static_cast<uint32_t>(xproto::ModifierMask::kShift)) {
    out += "Shift ";
  }
  if (modifiers & static_cast<uint32_t>(xproto::ModifierMask::kControl)) {
    out += "Ctrl ";
  }
  if (modifiers & static_cast<uint32_t>(xproto::ModifierMask::kMod1)) {
    out += "Meta ";
  }
  switch (kind) {
    case EventKind::kButtonPress:
      out += "<Btn" + std::to_string(button) + ">";
      break;
    case EventKind::kButtonRelease:
      out += "<Btn" + std::to_string(button) + "Up>";
      break;
    case EventKind::kKeyPress:
      out += "<Key>" + KeySymName(keysym);
      break;
    case EventKind::kEnter:
      out += "<Enter>";
      break;
    case EventKind::kLeave:
      out += "<Leave>";
      break;
    case EventKind::kMotion:
      out += "<Motion>";
      break;
  }
  return out;
}

std::string FunctionCall::ToString() const {
  if (args.empty()) {
    return name;
  }
  return name + "(" + xbase::JoinStrings(args, ",") + ")";
}

std::string Binding::ToString() const {
  std::string out = event.ToString() + " :";
  for (const FunctionCall& fn : functions) {
    out += " " + fn.ToString();
  }
  return out;
}

namespace {

// Parses the modifier prefix tokens before '<'.  Returns nullopt on an
// unknown modifier name.
std::optional<uint32_t> ParseModifiers(const std::string& prefix) {
  uint32_t mods = 0;
  for (const std::string& token : xbase::SplitWhitespace(prefix)) {
    std::string lower = xbase::ToLowerAscii(token);
    if (lower == "shift") {
      mods |= static_cast<uint32_t>(xproto::ModifierMask::kShift);
    } else if (lower == "ctrl" || lower == "control") {
      mods |= static_cast<uint32_t>(xproto::ModifierMask::kControl);
    } else if (lower == "meta" || lower == "mod1" || lower == "alt") {
      mods |= static_cast<uint32_t>(xproto::ModifierMask::kMod1);
    } else {
      return std::nullopt;
    }
  }
  return mods;
}

std::optional<BindingEvent> ParseEventSpec(const std::string& text) {
  size_t open = text.find('<');
  size_t close = text.find('>');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return std::nullopt;
  }
  BindingEvent event;
  std::optional<uint32_t> mods = ParseModifiers(text.substr(0, open));
  if (!mods.has_value()) {
    return std::nullopt;
  }
  event.modifiers = *mods;
  std::string type = text.substr(open + 1, close - open - 1);
  std::string detail = xbase::TrimWhitespace(text.substr(close + 1));
  std::string type_lower = xbase::ToLowerAscii(type);

  if (xbase::StartsWith(type_lower, "btn")) {
    std::string rest = type_lower.substr(3);
    bool release = false;
    if (xbase::EndsWith(rest, "up")) {
      release = true;
      rest = rest.substr(0, rest.size() - 2);
    } else if (xbase::EndsWith(rest, "down")) {
      rest = rest.substr(0, rest.size() - 4);
    }
    std::optional<int> button = xbase::ParseInt(rest);
    if (!button.has_value() || *button < 1 || *button > xproto::kMaxButton ||
        !detail.empty()) {
      return std::nullopt;
    }
    event.kind = release ? EventKind::kButtonRelease : EventKind::kButtonPress;
    event.button = *button;
    return event;
  }
  if (type_lower == "key") {
    if (detail.empty()) {
      return std::nullopt;
    }
    event.kind = EventKind::kKeyPress;
    event.keysym = InternKeySym(detail);
    return event;
  }
  if (type_lower == "enter" || type_lower == "enterwindow") {
    event.kind = EventKind::kEnter;
    return detail.empty() ? std::optional<BindingEvent>(event) : std::nullopt;
  }
  if (type_lower == "leave" || type_lower == "leavewindow") {
    event.kind = EventKind::kLeave;
    return detail.empty() ? std::optional<BindingEvent>(event) : std::nullopt;
  }
  if (type_lower == "motion" || type_lower == "ptrmoved") {
    event.kind = EventKind::kMotion;
    return detail.empty() ? std::optional<BindingEvent>(event) : std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<FunctionCall>> ParseFunctionList(const std::string& text) {
  std::vector<FunctionCall> functions;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    // Function name: up to whitespace or '('.
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i])) && text[i] != '(') {
      ++i;
    }
    FunctionCall fn;
    fn.name = text.substr(start, i - start);
    if (fn.name.empty() || !xbase::StartsWith(fn.name, "f.")) {
      return std::nullopt;
    }
    if (i < n && text[i] == '(') {
      size_t close = text.find(')', i);
      if (close == std::string::npos) {
        return std::nullopt;
      }
      std::string args_text = text.substr(i + 1, close - i - 1);
      if (!xbase::TrimWhitespace(args_text).empty()) {
        for (const std::string& arg : xbase::Split(args_text, ',')) {
          fn.args.push_back(xbase::TrimWhitespace(arg));
        }
      }
      i = close + 1;
    }
    functions.push_back(std::move(fn));
  }
  if (functions.empty()) {
    return std::nullopt;
  }
  return functions;
}

std::optional<Binding> ParseBindingLine(const std::string& line) {
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    return std::nullopt;
  }
  std::optional<BindingEvent> event =
      ParseEventSpec(xbase::TrimWhitespace(line.substr(0, colon)));
  if (!event.has_value()) {
    return std::nullopt;
  }
  std::optional<std::vector<FunctionCall>> functions =
      ParseFunctionList(line.substr(colon + 1));
  if (!functions.has_value()) {
    return std::nullopt;
  }
  Binding binding;
  binding.event = *event;
  binding.functions = std::move(*functions);
  return binding;
}

ParseResult ParseBindings(const std::string& text) {
  ParseResult result;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::string trimmed = xbase::TrimWhitespace(line);
    if (trimmed.empty()) {
      continue;
    }
    std::optional<Binding> binding = ParseBindingLine(trimmed);
    if (binding.has_value()) {
      result.bindings.push_back(std::move(*binding));
    } else {
      XB_LOG(Warning) << "bindings: malformed line skipped: '" << trimmed << "'";
      ++result.errors;
    }
  }
  return result;
}

std::string FormatBindings(const std::vector<Binding>& bindings) {
  std::string out;
  for (const Binding& binding : bindings) {
    out += binding.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace xtb
