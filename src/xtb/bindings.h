// Parser for swm's object `bindings` attribute (paper §4.4):
//
//   swm*button.foo.bindings:
//       <Btn1> : f.raise
//       <Btn2> : f.save f.zoom
//       <Key>Up : f.warpVertical(-50)
//
// (in resource files the lines are joined with trailing backslashes)
//
// The syntax is the X Toolkit Intrinsics translation-table format "so that
// those familiar with the Xt syntax will not have to learn yet another way
// of specifying actions".  Any number of bindings per object, any number of
// functions per binding.
#ifndef SRC_XTB_BINDINGS_H_
#define SRC_XTB_BINDINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/xproto/types.h"

namespace xtb {

enum class EventKind {
  kButtonPress,
  kButtonRelease,
  kKeyPress,
  kEnter,
  kLeave,
  kMotion,
};

// Interned keysym registry: maps symbolic key names ("Up", "a", "F1") to
// stable KeySym values shared by event producers and binding matchers.
xproto::KeySym InternKeySym(const std::string& name);
std::string KeySymName(xproto::KeySym keysym);

struct BindingEvent {
  EventKind kind = EventKind::kButtonPress;
  int button = 0;            // 1..5 for button events, 0 otherwise.
  uint32_t modifiers = 0;    // xproto::ModifierMask bits.
  xproto::KeySym keysym = 0; // For kKeyPress.

  friend bool operator==(const BindingEvent&, const BindingEvent&) = default;

  std::string ToString() const;
};

struct FunctionCall {
  std::string name;               // e.g. "f.raise", "f.warpVertical".
  std::vector<std::string> args;  // Raw argument strings ("-50", "#$", "blob").

  friend bool operator==(const FunctionCall&, const FunctionCall&) = default;

  std::string ToString() const;
};

struct Binding {
  BindingEvent event;
  std::vector<FunctionCall> functions;

  friend bool operator==(const Binding&, const Binding&) = default;

  std::string ToString() const;
};

struct ParseResult {
  std::vector<Binding> bindings;
  int errors = 0;  // Malformed lines skipped (each also logged).
};

// Parses a whole bindings attribute value: one binding per line; blank
// lines ignored.  Never fails wholesale — bad lines are counted and skipped
// so one typo does not disable an object (matching Xt's resilience).
ParseResult ParseBindings(const std::string& text);

// Parses a single "event : functions" line.
std::optional<Binding> ParseBindingLine(const std::string& line);

// Parses just a function list ("f.save f.zoom f.warpVertical(-50)") — also
// the syntax of swmcmd command strings (paper §4.5).
std::optional<std::vector<FunctionCall>> ParseFunctionList(const std::string& text);

// Serializes bindings back to the textual form (round-trip testable).
std::string FormatBindings(const std::vector<Binding>& bindings);

}  // namespace xtb

#endif  // SRC_XTB_BINDINGS_H_
