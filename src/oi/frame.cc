#include "src/oi/frame.h"

#include <algorithm>
#include <utility>

#include "src/oi/object.h"
#include "src/oi/panel.h"

namespace oi {

namespace {

// Offset of an object's window within its tree root's window.
xbase::Point OffsetInTree(const Object* object) {
  xbase::Point offset{0, 0};
  for (const Object* cur = object; cur->parent() != nullptr; cur = cur->parent()) {
    offset.x += cur->geometry().x;
    offset.y += cur->geometry().y;
  }
  return offset;
}

}  // namespace

void FrameScheduler::MarkDirty(Object* object, uint8_t kinds, Object* tree_root) {
  ++stats_.invalidations;
  if (immediate_render_) {
    ImmediateFlush(object, kinds, tree_root);
    return;
  }
  // Dirty bits double as queue membership: an object joins each queue at
  // most once between flushes, which is what makes "painted exactly once
  // per flush" hold under invalidation storms.
  if ((kinds & kLayoutDirty) != 0 && (tree_root->dirty_kinds_ & kLayoutDirty) == 0) {
    tree_root->dirty_kinds_ |= kLayoutDirty;
    layout_roots_.push_back(tree_root);
  }
  if ((kinds & kPaintDirty) != 0 && (object->dirty_kinds_ & kPaintDirty) == 0) {
    object->dirty_kinds_ |= kPaintDirty;
    paint_objects_.push_back(object);
  }
}

void FrameScheduler::AddExposeDamage(Object* object, const xbase::Rect& area) {
  ++stats_.expose_rects;
  if (immediate_render_) {
    if (immediate_depth_ > 0) {
      return;
    }
    ++immediate_depth_;
    object->Render();
    ++stats_.frames;
    --immediate_depth_;
    return;
  }
  expose_rects_.emplace_back(object, area);
  if ((object->dirty_kinds_ & kPaintDirty) == 0) {
    object->dirty_kinds_ |= kPaintDirty;
    paint_objects_.push_back(object);
  }
}

void FrameScheduler::ForgetObject(Object* object) {
  layout_roots_.erase(std::remove(layout_roots_.begin(), layout_roots_.end(), object),
                      layout_roots_.end());
  paint_objects_.erase(std::remove(paint_objects_.begin(), paint_objects_.end(), object),
                       paint_objects_.end());
  expose_rects_.erase(
      std::remove_if(expose_rects_.begin(), expose_rects_.end(),
                     [object](const auto& entry) { return entry.first == object; }),
      expose_rects_.end());
}

xbase::Region& FrameScheduler::DamageFor(Object* root) {
  // Dirty trees per flush number a handful (one per screen plus open icons
  // and menus), so a linear scan beats any associative container here and
  // keeps the slot pool trivially reusable.
  for (size_t i = 0; i < damage_slots_used_; ++i) {
    if (damage_slots_[i].root == root) {
      return damage_slots_[i].damage;
    }
  }
  if (damage_slots_used_ == damage_slots_.size()) {
    damage_slots_.emplace_back();
  }
  RootDamage& slot = damage_slots_[damage_slots_used_++];
  slot.root = root;
  slot.damage.Clear();  // Keeps the banded rect storage from prior frames.
  return slot.damage;
}

void FrameScheduler::FlushFrame() {
  if (immediate_render_ || in_flush_ || !HasPendingWork()) {
    return;
  }
  in_flush_ = true;
  // Layout phase.  Laying out resizes child windows, which marks them
  // paint-dirty (and occasionally marks further layout, e.g. a nested
  // size-override change); everything lands in this same frame, so the
  // paint snapshot below is taken only once the layout queue is drained.
  while (!layout_roots_.empty()) {
    layout_scratch_.clear();
    layout_scratch_.swap(layout_roots_);
    for (Object* root : layout_scratch_) {
      root->dirty_kinds_ &= static_cast<uint8_t>(~kLayoutDirty);
      root->Layout();
      ++stats_.layouts;
      if (layout_observer_) {
        layout_observer_(root);
      }
    }
  }
  // Damage + paint phase.  Per tree, the union of every damaged object's
  // bounds plus any Expose rectangles accumulates into a pooled banded
  // Region, each contribution clipped to the tree root's bounds before any
  // region arithmetic runs.  Draw lists are per-window in this server, so
  // the object window is the repaint granularity.
  paint_scratch_.clear();
  paint_scratch_.swap(paint_objects_);
  for (Object* object : paint_scratch_) {
    const xbase::Rect& geo = object->geometry();
    if (geo.width <= 0 || geo.height <= 0) {
      // Zero-area objects clip out entirely; they repaint on their next
      // resize, which re-queues them.
      object->dirty_kinds_ &= static_cast<uint8_t>(~kPaintDirty);
      continue;
    }
    Object* root = object->TreeRoot();
    xbase::Rect bounds{0, 0, root->geometry().width, root->geometry().height};
    xbase::Point offset = OffsetInTree(object);
    xbase::Rect damage =
        xbase::Rect{offset.x, offset.y, geo.width, geo.height}.Intersection(bounds);
    if (object != root && damage.IsEmpty()) {
      // Entirely outside its tree's bounds: no pixels can result, so leave
      // the draw list untouched.  The object keeps its dirty bit and stays
      // queued, so a later flush repaints it once layout brings it back
      // into view — dropping it here would leave the server holding a
      // stale draw list.
      paint_objects_.push_back(object);
      continue;
    }
    object->dirty_kinds_ &= static_cast<uint8_t>(~kPaintDirty);
    DamageFor(root).UnionRect(damage);
    if (object->parent() != nullptr) {
      // Containers used to Show children as part of rendering; preserve
      // that for freshly built trees.  Tree roots stay under their owner's
      // explicit Show/Hide (icons and menus pop up on their own schedule).
      object->Show();
    }
    object->Paint();
  }
  for (const auto& [object, rect] : expose_rects_) {
    Object* root = object->TreeRoot();
    xbase::Rect bounds{0, 0, root->geometry().width, root->geometry().height};
    xbase::Point offset = OffsetInTree(object);
    xbase::Rect damage = rect.Translated(offset.x, offset.y).Intersection(bounds);
    if (!damage.IsEmpty()) {
      DamageFor(root).UnionRect(damage);
    }
  }
  expose_rects_.clear();
  last_frame_damage_area_ = 0;
  for (size_t i = 0; i < damage_slots_used_; ++i) {
    int64_t area = damage_slots_[i].damage.Area();
    if (area > 0) {
      last_frame_damage_area_ += static_cast<uint64_t>(area);
    }
    damage_slots_[i].root = nullptr;
  }
  damage_slots_used_ = 0;
  // Saturating: a counter wedged at max is better than one that wrapped.
  stats_.damage_area = (stats_.damage_area > UINT64_MAX - last_frame_damage_area_)
                           ? UINT64_MAX
                           : stats_.damage_area + last_frame_damage_area_;
  ++stats_.frames;
  in_flush_ = false;
}

void FrameScheduler::ImmediateFlush(Object* object, uint8_t kinds, Object* tree_root) {
  if (immediate_depth_ > 0) {
    // Invalidation raised by the layout/paint running below: the outer
    // eager pass re-renders the whole tree, so nothing is lost.
    return;
  }
  ++immediate_depth_;
  if ((kinds & kLayoutDirty) != 0) {
    tree_root->Layout();
    ++stats_.layouts;
    if (layout_observer_) {
      layout_observer_(tree_root);
    }
    tree_root->Render();
  } else {
    object->Render();
  }
  ++stats_.frames;
  --immediate_depth_;
}

}  // namespace oi
