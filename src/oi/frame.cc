#include "src/oi/frame.h"

#include <algorithm>
#include <utility>

#include "src/oi/object.h"
#include "src/oi/panel.h"

namespace oi {

namespace {

// Offset of an object's window within its tree root's window.
xbase::Point OffsetInTree(const Object* object) {
  xbase::Point offset{0, 0};
  for (const Object* cur = object; cur->parent() != nullptr; cur = cur->parent()) {
    offset.x += cur->geometry().x;
    offset.y += cur->geometry().y;
  }
  return offset;
}

}  // namespace

void FrameScheduler::MarkDirty(Object* object, uint8_t kinds, Object* tree_root) {
  ++stats_.invalidations;
  if (immediate_render_) {
    ImmediateFlush(object, kinds, tree_root);
    return;
  }
  // Dirty bits double as queue membership: an object joins each queue at
  // most once between flushes, which is what makes "painted exactly once
  // per flush" hold under invalidation storms.
  if ((kinds & kLayoutDirty) != 0 && (tree_root->dirty_kinds_ & kLayoutDirty) == 0) {
    tree_root->dirty_kinds_ |= kLayoutDirty;
    layout_roots_.push_back(tree_root);
  }
  if ((kinds & kPaintDirty) != 0 && (object->dirty_kinds_ & kPaintDirty) == 0) {
    object->dirty_kinds_ |= kPaintDirty;
    paint_objects_.push_back(object);
  }
}

void FrameScheduler::AddExposeDamage(Object* object, const xbase::Rect& area) {
  ++stats_.expose_rects;
  if (immediate_render_) {
    if (immediate_depth_ > 0) {
      return;
    }
    ++immediate_depth_;
    object->Render();
    ++stats_.frames;
    --immediate_depth_;
    return;
  }
  expose_rects_[object].push_back(area);
  if ((object->dirty_kinds_ & kPaintDirty) == 0) {
    object->dirty_kinds_ |= kPaintDirty;
    paint_objects_.push_back(object);
  }
}

void FrameScheduler::ForgetObject(Object* object) {
  layout_roots_.erase(std::remove(layout_roots_.begin(), layout_roots_.end(), object),
                      layout_roots_.end());
  paint_objects_.erase(std::remove(paint_objects_.begin(), paint_objects_.end(), object),
                       paint_objects_.end());
  expose_rects_.erase(object);
}

void FrameScheduler::FlushFrame() {
  if (immediate_render_ || in_flush_ || !HasPendingWork()) {
    return;
  }
  in_flush_ = true;
  // Layout phase.  Laying out resizes child windows, which marks them
  // paint-dirty (and occasionally marks further layout, e.g. a nested
  // size-override change); everything lands in this same frame, so the
  // paint snapshot below is taken only once the layout queue is drained.
  while (!layout_roots_.empty()) {
    std::vector<Object*> roots;
    roots.swap(layout_roots_);
    for (Object* root : roots) {
      root->dirty_kinds_ &= static_cast<uint8_t>(~kLayoutDirty);
      root->Layout();
      ++stats_.layouts;
      if (layout_observer_) {
        layout_observer_(root);
      }
    }
  }
  // Damage accumulation: per tree, the union of every damaged object's
  // bounds plus any Expose rectangles, as a canonical banded Region.  Draw
  // lists are per-window in this server, so the object window is the
  // repaint granularity; zero-area objects clip out entirely.
  std::vector<Object*> paints;
  paints.swap(paint_objects_);
  std::map<Object*, std::vector<xbase::Rect>> damage;
  for (Object* object : paints) {
    object->dirty_kinds_ &= static_cast<uint8_t>(~kPaintDirty);
    xbase::Point offset = OffsetInTree(object);
    damage[object->TreeRoot()].push_back(
        xbase::Rect{offset.x, offset.y, object->geometry().width, object->geometry().height});
  }
  for (auto& [object, rects] : expose_rects_) {
    xbase::Point offset = OffsetInTree(object);
    for (const xbase::Rect& rect : rects) {
      damage[object->TreeRoot()].push_back(rect.Translated(offset.x, offset.y));
    }
  }
  expose_rects_.clear();
  last_frame_damage_area_ = 0;
  for (auto& [root, rects] : damage) {
    last_frame_damage_area_ += xbase::Region(std::move(rects)).Area();
  }
  stats_.damage_area += last_frame_damage_area_;
  // Paint phase: each damaged object exactly once.
  for (Object* object : paints) {
    if (object->geometry().width <= 0 || object->geometry().height <= 0) {
      continue;
    }
    if (object->parent() != nullptr) {
      // Containers used to Show children as part of rendering; preserve
      // that for freshly built trees.  Tree roots stay under their owner's
      // explicit Show/Hide (icons and menus pop up on their own schedule).
      object->Show();
    }
    object->Paint();
  }
  ++stats_.frames;
  in_flush_ = false;
}

void FrameScheduler::ImmediateFlush(Object* object, uint8_t kinds, Object* tree_root) {
  if (immediate_depth_ > 0) {
    // Invalidation raised by the layout/paint running below: the outer
    // eager pass re-renders the whole tree, so nothing is lost.
    return;
  }
  ++immediate_depth_;
  if ((kinds & kLayoutDirty) != 0) {
    tree_root->Layout();
    ++stats_.layouts;
    if (layout_observer_) {
      layout_observer_(tree_root);
    }
    tree_root->Render();
  } else {
    object->Render();
  }
  ++stats_.frames;
  --immediate_depth_;
}

}  // namespace oi
