#include "src/oi/panel_def.h"

#include <cctype>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace oi {

std::optional<ObjectType> ObjectTypeFromName(const std::string& name) {
  std::string lower = xbase::ToLowerAscii(name);
  if (lower == "panel") {
    return ObjectType::kPanel;
  }
  if (lower == "button") {
    return ObjectType::kButton;
  }
  if (lower == "text") {
    return ObjectType::kText;
  }
  if (lower == "menu") {
    return ObjectType::kMenu;
  }
  return std::nullopt;
}

std::string ObjectTypeName(ObjectType type) {
  switch (type) {
    case ObjectType::kPanel:
      return "panel";
    case ObjectType::kButton:
      return "button";
    case ObjectType::kText:
      return "text";
    case ObjectType::kMenu:
      return "menu";
  }
  return "?";
}

std::string ObjectTypeClass(ObjectType type) {
  switch (type) {
    case ObjectType::kPanel:
      return "Panel";
    case ObjectType::kButton:
      return "Button";
    case ObjectType::kText:
      return "Text";
    case ObjectType::kMenu:
      return "Menu";
  }
  return "?";
}

std::string ObjectPosition::ToString() const {
  std::string out;
  switch (align) {
    case HAlign::kLeft:
      out = "+" + std::to_string(column);
      break;
    case HAlign::kCenter:
      out = "+C";
      break;
    case HAlign::kRight:
      out = "-" + std::to_string(column);
      break;
  }
  out += "+" + std::to_string(row);
  return out;
}

std::optional<ObjectPosition> ParseObjectPosition(const std::string& text) {
  if (text.size() < 4) {
    return std::nullopt;
  }
  ObjectPosition pos;
  size_t i = 0;
  if (text[i] == '-') {
    pos.align = HAlign::kRight;
  } else if (text[i] != '+') {
    return std::nullopt;
  }
  ++i;
  // X component: digits or 'C'.
  if ((text[i] == 'C' || text[i] == 'c') && pos.align == HAlign::kLeft) {
    pos.align = HAlign::kCenter;
    ++i;
  } else {
    size_t start = i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == start) {
      return std::nullopt;
    }
    pos.column = *xbase::ParseInt(text.substr(start, i - start));
  }
  if (i >= text.size() || text[i] != '+') {
    return std::nullopt;
  }
  ++i;
  size_t start = i;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == start || i != text.size()) {
    return std::nullopt;
  }
  pos.row = *xbase::ParseInt(text.substr(start, i - start));
  return pos;
}

std::optional<std::vector<PanelItemDef>> ParsePanelDefinition(const std::string& value) {
  std::vector<std::string> tokens = xbase::SplitWhitespace(value);
  if (tokens.empty() || tokens.size() % 3 != 0) {
    return std::nullopt;
  }
  std::vector<PanelItemDef> items;
  for (size_t i = 0; i < tokens.size(); i += 3) {
    PanelItemDef item;
    std::optional<ObjectType> type = ObjectTypeFromName(tokens[i]);
    std::optional<ObjectPosition> position = ParseObjectPosition(tokens[i + 2]);
    if (!type.has_value() || !position.has_value() || tokens[i + 1].empty()) {
      return std::nullopt;
    }
    item.type = *type;
    item.name = tokens[i + 1];
    item.position = *position;
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace oi
