#include "src/oi/menu.h"

#include <algorithm>

#include "src/oi/toolkit.h"

namespace oi {

Menu::Menu(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window, std::string name)
    : Object(toolkit, parent, parent_window, std::move(name), ObjectType::kMenu) {
  ApplyStandardAttributes();
}

Menu::~Menu() { items_.clear(); }

Button* Menu::AddItem(const std::string& name, const std::string& label) {
  auto item = std::make_unique<Button>(toolkit_, nullptr, window_, name);
  if (!label.empty()) {
    item->SetLabel(label);
  }
  items_.push_back(std::move(item));
  // Items are parented on the menu window but are not tree children, so
  // the fresh item's dirty bits are seeded here (it missed AddChild).
  items_.back()->Invalidate(kPaintDirty);
  DoLayout();
  Invalidate(kPaintDirty);
  return items_.back().get();
}

xbase::Size Menu::PreferredSize() const {
  xbase::Size size{4, 2};
  int height = 1;
  for (const std::unique_ptr<Button>& item : items_) {
    xbase::Size item_size = item->PreferredSize();
    size.width = std::max(size.width, item_size.width + 2);
    height += item_size.height;
  }
  size.height = height + 1;
  return size;
}

void Menu::DoLayout() {
  xbase::Size size = PreferredSize();
  SetGeometry(xbase::Rect{geometry_.x, geometry_.y, size.width, size.height});
  int y = 1;
  for (const std::unique_ptr<Button>& item : items_) {
    xbase::Size item_size = item->PreferredSize();
    item->SetGeometry(xbase::Rect{1, y, size.width - 2, item_size.height});
    y += item_size.height;
  }
}

void Menu::PopupAt(const xbase::Point& position) {
  DoLayout();
  SetGeometry(
      xbase::Rect{position.x, position.y, geometry_.width, geometry_.height});
  toolkit_->display().RaiseWindow(window_);
  Show();
  for (const std::unique_ptr<Button>& item : items_) {
    item->Show();
  }
  InvalidateTree(kPaintDirty);
  popped_up_ = true;
}

void Menu::Popdown() {
  Hide();
  popped_up_ = false;
}

void Menu::Render() {
  Paint();
  for (const std::unique_ptr<Button>& item : items_) {
    item->Render();
  }
}

void Menu::RenderSelf() {
  xlib::Display& dpy = toolkit_->display();
  dpy.ClearWindow(window_);
  xserver::DrawOp border;
  border.kind = xserver::DrawOp::Kind::kBorder;
  border.rect = xbase::Rect{0, 0, geometry_.width, geometry_.height};
  dpy.Draw(window_, border);
}

void Menu::InvalidateTree(uint8_t kinds) {
  Invalidate(kinds);
  for (const std::unique_ptr<Button>& item : items_) {
    item->InvalidateTree(kinds);
  }
}

}  // namespace oi
