// Panel object (paper §4.1): "nothing more than a container for other
// objects.  Objects within panels are organized into rows."
#ifndef SRC_OI_PANEL_H_
#define SRC_OI_PANEL_H_

#include <memory>
#include <vector>

#include "src/oi/object.h"

namespace oi {

class Panel : public Object {
 public:
  Panel(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window, std::string name);
  ~Panel() override;

  ObjectType type() const override { return ObjectType::kPanel; }

  // Adds an already-created child (takes ownership).  Children are laid out
  // by (row, column) from their ObjectPosition.
  Object* AddChild(std::unique_ptr<Object> child);
  std::unique_ptr<Object> RemoveChild(Object* child);
  const std::vector<std::unique_ptr<Object>>& children() const { return children_; }

  // Finds a descendant by name (depth-first), e.g. the special "client"
  // panel of a decoration definition or the "name" title button.
  Object* FindDescendant(const std::string& name);

  xbase::Size PreferredSize() const override;

  // Recomputes the row layout and positions/sizes all child windows.  If
  // `forced` is non-null the panel body is made exactly that size and rows
  // are laid out inside it; otherwise the panel shrinks to content.
  void DoLayout(const xbase::Size* forced = nullptr);
  void Layout() override { DoLayout(); }

  void Render() override;
  // Panels issue no draw ops of their own; RenderSelf stays empty.
  void InvalidateTree(uint8_t kinds) override;
  void ApplyShape() override;
  void RefreshAttributes() override;  // Recurses into children.

  // Horizontal/vertical padding between objects, in cells.
  static constexpr int kGap = 1;

 private:
  struct RowLayout {
    int y = 0;
    int height = 0;
    std::vector<Object*> left;
    std::vector<Object*> center;
    std::vector<Object*> right;
  };

  std::vector<RowLayout> ComputeRows() const;

  std::vector<std::unique_ptr<Object>> children_;
};

}  // namespace oi

#endif  // SRC_OI_PANEL_H_
