// Menu object (paper §4): a popup panel of buttons stacked vertically.
// Menus live in override-redirect windows parented on the root (or virtual
// root) and are popped up/down by window-manager functions.
#ifndef SRC_OI_MENU_H_
#define SRC_OI_MENU_H_

#include <memory>
#include <string>
#include <vector>

#include "src/oi/widgets.h"

namespace oi {

class Menu : public Object {
 public:
  Menu(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window, std::string name);
  ~Menu() override;

  ObjectType type() const override { return ObjectType::kMenu; }

  // Adds an item; the item's bindings come from the resource database like
  // any other button ("menus are just panels of buttons").
  Button* AddItem(const std::string& name, const std::string& label);
  const std::vector<std::unique_ptr<Button>>& items() const { return items_; }

  xbase::Size PreferredSize() const override;

  // Pops the menu up at the given position (relative to its parent window).
  void PopupAt(const xbase::Point& position);
  void Popdown();
  bool popped_up() const { return popped_up_; }

  void Render() override;
  void RenderSelf() override;
  void InvalidateTree(uint8_t kinds) override;
  void Layout() override { DoLayout(); }

 private:
  void DoLayout();

  std::vector<std::unique_ptr<Button>> items_;
  bool popped_up_ = false;
};

}  // namespace oi

#endif  // SRC_OI_MENU_H_
