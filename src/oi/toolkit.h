// The OI toolkit runtime (paper §2): owns the connection between objects,
// the resource database and the display; builds object trees from panel
// definitions; dispatches X events to object bindings.
#ifndef SRC_OI_TOOLKIT_H_
#define SRC_OI_TOOLKIT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/interner.h"
#include "src/oi/frame.h"
#include "src/oi/menu.h"
#include "src/oi/panel.h"
#include "src/oi/panel_def.h"
#include "src/oi/widgets.h"
#include "src/xlib/display.h"
#include "src/xrdb/database.h"

namespace oi {

// Context an event was dispatched in, handed to action callbacks so
// window-manager functions can resolve "the current window", "#$", etc.
struct ActionContext {
  Object* object = nullptr;
  xproto::WindowId event_window = xproto::kNone;
  xbase::Point root_pos;
  xbase::Point pos;
  int button = 0;
  uint32_t modifiers = 0;
};

// Invoked once per function call of a matched binding.
using ActionHandler = std::function<void(const xtb::FunctionCall&, const ActionContext&)>;

class Toolkit {
 public:
  // `resource_prefix_names` / `_classes` are prepended to every attribute
  // query of every object (swm passes e.g. {"swm","color","screen0"} /
  // {"Swm","Color","Screen0"}).
  Toolkit(xlib::Display* display, const xrdb::ResourceDatabase* resources, int screen);
  ~Toolkit();

  Toolkit(const Toolkit&) = delete;
  Toolkit& operator=(const Toolkit&) = delete;

  xlib::Display& display() { return *display_; }
  const xrdb::ResourceDatabase& resources() const { return *resources_; }
  void SetResources(const xrdb::ResourceDatabase* resources) {
    resources_ = resources;
    InvalidateQueryCaches();
  }
  int screen() const { return screen_; }

  void SetResourcePrefix(std::vector<std::string> names, std::vector<std::string> classes);
  const std::vector<std::string>& prefix_names() const { return prefix_names_; }
  const std::vector<std::string>& prefix_classes() const { return prefix_classes_; }

  void SetActionHandler(ActionHandler handler) { action_handler_ = std::move(handler); }

  // ---- Object factory -------------------------------------------------------
  // All object creation funnels through these so the registry stays correct.
  std::unique_ptr<Panel> CreatePanel(Panel* parent, xproto::WindowId parent_window,
                                     const std::string& name);
  std::unique_ptr<Button> CreateButton(Panel* parent, xproto::WindowId parent_window,
                                       const std::string& name);
  std::unique_ptr<TextObject> CreateText(Panel* parent, xproto::WindowId parent_window,
                                         const std::string& name);
  std::unique_ptr<Menu> CreateMenu(xproto::WindowId parent_window, const std::string& name);

  // Builds a full object tree for the named panel definition.  Definitions
  // are resolved through `definition_lookup` (swm resolves "swm*panel.NAME"
  // with its screen prefixes); nested panel items recurse, with cycles and
  // missing definitions diagnosed and skipped.  Extra resource-path prefix
  // components for this tree (e.g. the client's class/instance for specific
  // resources) are installed with SetTreePrefix on the returned panel.
  using DefinitionLookup =
      std::function<std::optional<std::string>(const std::string& panel_name)>;
  std::unique_ptr<Panel> BuildPanelTree(const std::string& panel_name,
                                        xproto::WindowId parent_window,
                                        const DefinitionLookup& definition_lookup,
                                        std::vector<std::string> prefix_names = {},
                                        std::vector<std::string> prefix_classes = {});

  // Per-tree extra resource prefix (between the toolkit prefix and the
  // object path).  Used for specific resources: class + instance of the
  // client a decoration tree belongs to, and the "sticky"/"shaped" markers.
  void SetTreePrefix(const Object* tree_root, std::vector<std::string> names,
                     std::vector<std::string> classes);
  const std::pair<std::vector<std::string>, std::vector<std::string>>* TreePrefix(
      const Object* tree_root) const;

  // ---- Event dispatch ----------------------------------------------------------
  // Routes an event to the owning object's bindings; returns true if the
  // event targeted a toolkit object (regardless of binding matches).
  bool DispatchEvent(const xproto::Event& event);

  Object* FindObject(xproto::WindowId window) const;

  // Full attribute query for an object (toolkit prefix + tree prefix +
  // object path + attribute).
  //
  // Fast path: the object's full interned query path (session prefix + tree
  // prefix + object path) is computed once and reused, and results —
  // including misses — are memoized per (object, attribute).  The memo is
  // dropped automatically when the database generation() moves, and
  // explicitly when a prefix changes, so repeated reads (decoration
  // construction, LoadBindings, ApplyStandardAttributes) cost one map probe
  // instead of a trie walk.
  std::optional<std::string> QueryAttribute(const Object& object,
                                            const std::string& attribute) const;

  // Drops the memoized attribute values and interned paths.  Called
  // internally on prefix/database changes; exposed for cold-path
  // measurements and for callers that mutate the database behind a
  // const pointer without going through ResourceDatabase (none today).
  void InvalidateQueryCaches() const;

  // ---- Frame pipeline ------------------------------------------------------
  // The retained-mode scheduler every object of this toolkit reports its
  // invalidations to (docs/RENDERING.md).
  FrameScheduler& frame_scheduler() { return frame_scheduler_; }
  const FrameScheduler& frame_scheduler() const { return frame_scheduler_; }
  // Lays out dirty subtrees and paints accumulated damage: one frame.
  void FlushFrame() { frame_scheduler_.FlushFrame(); }
  // Per-frame instrumentation, alongside the query-cache stats below.
  const FrameScheduler::Stats& frame_stats() const { return frame_scheduler_.stats(); }
  void ResetFrameStats() { frame_scheduler_.ResetStats(); }

  // Query-path instrumentation (benchmarks, tests).
  struct QueryStats {
    uint64_t queries = 0;      // QueryAttribute calls.
    uint64_t cache_hits = 0;   // Served from the attribute memo.
    uint64_t trie_lookups = 0; // Fell through to a database walk.
  };
  const QueryStats& query_stats() const { return query_stats_; }
  void ResetQueryStats() const { query_stats_ = {}; }

  // Registry maintenance (called from Object's ctor/dtor).
  void Register(Object* object);
  void Unregister(Object* object);

 private:
  struct InternedPath {
    std::vector<xbase::Symbol> names;
    std::vector<xbase::Symbol> classes;
  };

  Object* TreeRootOf(const Object& object) const;
  // The object's cached full interned path, minus the attribute component.
  const InternedPath& PathFor(const Object& object) const;
  // Interned capitalized form of an attribute symbol ("bindings"→"Bindings").
  xbase::Symbol CapitalizedSymbol(xbase::Symbol attribute) const;

  xlib::Display* display_;
  const xrdb::ResourceDatabase* resources_;
  int screen_;
  std::vector<std::string> prefix_names_;
  std::vector<std::string> prefix_classes_;
  std::vector<xbase::Symbol> prefix_name_symbols_;
  std::vector<xbase::Symbol> prefix_class_symbols_;
  std::map<xproto::WindowId, Object*> registry_;
  std::map<const Object*, std::pair<std::vector<std::string>, std::vector<std::string>>>
      tree_prefixes_;
  ActionHandler action_handler_;
  std::vector<std::string> build_stack_;  // Cycle detection during BuildPanelTree.
  FrameScheduler frame_scheduler_;

  // ---- Query fast-path state (logically const: pure memoization) -------------
  mutable uint64_t seen_generation_ = 0;
  mutable std::map<const Object*, InternedPath> path_cache_;
  mutable std::map<std::pair<const Object*, xbase::Symbol>, std::optional<std::string>>
      attribute_cache_;
  mutable std::map<xbase::Symbol, xbase::Symbol> capitalized_;
  mutable std::vector<xbase::Symbol> scratch_names_;
  mutable std::vector<xbase::Symbol> scratch_classes_;
  mutable QueryStats query_stats_;
};

}  // namespace oi

#endif  // SRC_OI_TOOLKIT_H_
