#include "src/oi/toolkit.h"

#include <algorithm>

#include "src/base/logging.h"

namespace oi {

namespace {

std::string Capitalized(const std::string& s) {
  if (s.empty()) {
    return s;
  }
  std::string out = s;
  out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

}  // namespace

Toolkit::Toolkit(xlib::Display* display, const xrdb::ResourceDatabase* resources, int screen)
    : display_(display), resources_(resources), screen_(screen) {
  SetResourcePrefix({"swm"}, {"Swm"});
}

Toolkit::~Toolkit() = default;

void Toolkit::SetResourcePrefix(std::vector<std::string> names,
                                std::vector<std::string> classes) {
  XB_CHECK_EQ(names.size(), classes.size());
  prefix_names_ = std::move(names);
  prefix_classes_ = std::move(classes);
  xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
  prefix_name_symbols_.clear();
  prefix_class_symbols_.clear();
  for (const std::string& name : prefix_names_) {
    prefix_name_symbols_.push_back(interner.Intern(name));
  }
  for (const std::string& clazz : prefix_classes_) {
    prefix_class_symbols_.push_back(interner.Intern(clazz));
  }
  InvalidateQueryCaches();
}

void Toolkit::InvalidateQueryCaches() const {
  path_cache_.clear();
  attribute_cache_.clear();
  seen_generation_ = resources_ != nullptr ? resources_->generation() : 0;
}

std::unique_ptr<Panel> Toolkit::CreatePanel(Panel* parent, xproto::WindowId parent_window,
                                            const std::string& name) {
  auto panel = std::make_unique<Panel>(this, parent, parent_window, name);
  // Factories seed the dirty bits once the object is fully constructed;
  // doing it from the Object constructor would let an immediate-mode
  // layout reach a half-built derived class.
  panel->Invalidate(kLayoutDirty | kPaintDirty);
  return panel;
}

std::unique_ptr<Button> Toolkit::CreateButton(Panel* parent, xproto::WindowId parent_window,
                                              const std::string& name) {
  auto button = std::make_unique<Button>(this, parent, parent_window, name);
  button->Invalidate(kLayoutDirty | kPaintDirty);
  return button;
}

std::unique_ptr<TextObject> Toolkit::CreateText(Panel* parent, xproto::WindowId parent_window,
                                                const std::string& name) {
  auto text = std::make_unique<TextObject>(this, parent, parent_window, name);
  text->Invalidate(kLayoutDirty | kPaintDirty);
  return text;
}

std::unique_ptr<Menu> Toolkit::CreateMenu(xproto::WindowId parent_window,
                                          const std::string& name) {
  auto menu = std::make_unique<Menu>(this, nullptr, parent_window, name);
  menu->Invalidate(kLayoutDirty | kPaintDirty);
  return menu;
}

void Toolkit::Register(Object* object) { registry_[object->window()] = object; }

void Toolkit::Unregister(Object* object) {
  frame_scheduler_.ForgetObject(object);
  registry_.erase(object->window());
  tree_prefixes_.erase(object);
  // Drop the object's cache entries: a later object may reuse the address.
  path_cache_.erase(object);
  attribute_cache_.erase(
      attribute_cache_.lower_bound(std::make_pair(object, xbase::Symbol{0})),
      attribute_cache_.upper_bound(std::make_pair(object, xbase::kNoSymbol)));
}

Object* Toolkit::FindObject(xproto::WindowId window) const {
  auto it = registry_.find(window);
  return it == registry_.end() ? nullptr : it->second;
}

Object* Toolkit::TreeRootOf(const Object& object) const {
  const Object* cur = &object;
  while (cur->parent() != nullptr) {
    cur = cur->parent();
  }
  return const_cast<Object*>(cur);
}

void Toolkit::SetTreePrefix(const Object* tree_root, std::vector<std::string> names,
                            std::vector<std::string> classes) {
  XB_CHECK_EQ(names.size(), classes.size());
  tree_prefixes_[tree_root] = {std::move(names), std::move(classes)};
  // The whole tree's query paths changed; prefix changes are rare (one per
  // decoration build / stickiness toggle), so a full drop keeps this simple.
  InvalidateQueryCaches();
}

const std::pair<std::vector<std::string>, std::vector<std::string>>* Toolkit::TreePrefix(
    const Object* tree_root) const {
  auto it = tree_prefixes_.find(tree_root);
  return it == tree_prefixes_.end() ? nullptr : &it->second;
}

const Toolkit::InternedPath& Toolkit::PathFor(const Object& object) const {
  auto it = path_cache_.find(&object);
  if (it != path_cache_.end()) {
    return it->second;
  }
  xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
  InternedPath path;
  path.names = prefix_name_symbols_;
  path.classes = prefix_class_symbols_;
  const auto* tree_prefix = TreePrefix(TreeRootOf(object));
  if (tree_prefix != nullptr) {
    for (const std::string& name : tree_prefix->first) {
      path.names.push_back(interner.Intern(name));
    }
    for (const std::string& clazz : tree_prefix->second) {
      path.classes.push_back(interner.Intern(clazz));
    }
  }
  for (const std::string& name : object.path_names()) {
    path.names.push_back(interner.Intern(name));
  }
  for (const std::string& clazz : object.path_classes()) {
    path.classes.push_back(interner.Intern(clazz));
  }
  return path_cache_.emplace(&object, std::move(path)).first->second;
}

xbase::Symbol Toolkit::CapitalizedSymbol(xbase::Symbol attribute) const {
  auto it = capitalized_.find(attribute);
  if (it != capitalized_.end()) {
    return it->second;
  }
  xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
  xbase::Symbol result = interner.Intern(Capitalized(interner.NameOf(attribute)));
  capitalized_.emplace(attribute, result);
  return result;
}

std::optional<std::string> Toolkit::QueryAttribute(const Object& object,
                                                   const std::string& attribute) const {
  ++query_stats_.queries;
  // Any database mutation moved the generation; stale memo entries go.
  // (Interned paths only depend on prefixes, which invalidate eagerly.)
  if (resources_->generation() != seen_generation_) {
    attribute_cache_.clear();
    seen_generation_ = resources_->generation();
  }
  xbase::Symbol attr = xbase::SymbolInterner::Global().Intern(attribute);
  const auto key = std::make_pair(&object, attr);
  if (auto it = attribute_cache_.find(key); it != attribute_cache_.end()) {
    ++query_stats_.cache_hits;
    return it->second;
  }
  const InternedPath& path = PathFor(object);
  scratch_names_.assign(path.names.begin(), path.names.end());
  scratch_classes_.assign(path.classes.begin(), path.classes.end());
  scratch_names_.push_back(attr);
  scratch_classes_.push_back(CapitalizedSymbol(attr));
  ++query_stats_.trie_lookups;
  std::optional<std::string> value =
      resources_->Get(std::span<const xbase::Symbol>(scratch_names_),
                      std::span<const xbase::Symbol>(scratch_classes_));
  attribute_cache_.emplace(key, value);
  return value;
}

std::unique_ptr<Panel> Toolkit::BuildPanelTree(const std::string& panel_name,
                                               xproto::WindowId parent_window,
                                               const DefinitionLookup& definition_lookup,
                                               std::vector<std::string> prefix_names,
                                               std::vector<std::string> prefix_classes) {
  std::optional<std::string> definition = definition_lookup(panel_name);
  if (!definition.has_value()) {
    XB_LOG(Warning) << "no panel definition for '" << panel_name << "'";
    return nullptr;
  }
  std::optional<std::vector<PanelItemDef>> items = ParsePanelDefinition(*definition);
  if (!items.has_value()) {
    XB_LOG(Warning) << "malformed panel definition for '" << panel_name << "'";
    return nullptr;
  }
  std::unique_ptr<Panel> root = CreatePanel(nullptr, parent_window, panel_name);
  if (!prefix_names.empty()) {
    // Install the prefix before populating children so their construction-
    // time attribute reads already see specific resources; the root itself
    // re-reads below.
    SetTreePrefix(root.get(), std::move(prefix_names), std::move(prefix_classes));
    root->RefreshAttributes();
  }
  build_stack_.push_back(panel_name);

  // Recursive lambda to populate a panel from its item definitions.
  std::function<void(Panel*, const std::vector<PanelItemDef>&)> populate =
      [&](Panel* panel, const std::vector<PanelItemDef>& defs) {
        for (const PanelItemDef& def : defs) {
          std::unique_ptr<Object> child;
          switch (def.type) {
            case ObjectType::kButton:
              child = std::make_unique<Button>(this, panel, panel->window(), def.name);
              break;
            case ObjectType::kText:
              child = std::make_unique<TextObject>(this, panel, panel->window(), def.name);
              break;
            case ObjectType::kMenu:
              child = std::make_unique<Menu>(this, panel, panel->window(), def.name);
              break;
            case ObjectType::kPanel: {
              auto sub = std::make_unique<Panel>(this, panel, panel->window(), def.name);
              bool cycle = std::find(build_stack_.begin(), build_stack_.end(), def.name) !=
                           build_stack_.end();
              if (cycle) {
                XB_LOG(Warning) << "panel definition cycle at '" << def.name
                                << "'; treating as plain container";
              } else {
                std::optional<std::string> sub_def = definition_lookup(def.name);
                if (sub_def.has_value()) {
                  std::optional<std::vector<PanelItemDef>> sub_items =
                      ParsePanelDefinition(*sub_def);
                  if (sub_items.has_value()) {
                    build_stack_.push_back(def.name);
                    populate(sub.get(), *sub_items);
                    build_stack_.pop_back();
                  } else {
                    XB_LOG(Warning) << "malformed nested panel definition '" << def.name
                                    << "'";
                  }
                }
                // No definition: a plain container panel (like `client`).
              }
              child = std::move(sub);
              break;
            }
          }
          child->SetPosition(def.position);
          panel->AddChild(std::move(child));
        }
      };
  populate(root.get(), *items);
  build_stack_.pop_back();
  return root;
}

bool Toolkit::DispatchEvent(const xproto::Event& event) {
  Object* object = FindObject(xproto::EventWindow(event));
  if (object == nullptr) {
    return false;
  }

  xtb::BindingEvent binding_event;
  ActionContext context;
  context.object = object;
  context.event_window = object->window();
  bool actionable = true;

  if (const auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
    binding_event.kind =
        button->press ? xtb::EventKind::kButtonPress : xtb::EventKind::kButtonRelease;
    binding_event.button = button->button;
    binding_event.modifiers = button->modifiers;
    context.root_pos = button->root_pos;
    context.pos = button->pos;
    context.button = button->button;
    context.modifiers = button->modifiers;
  } else if (const auto* key = std::get_if<xproto::KeyEvent>(&event)) {
    if (!key->press) {
      return true;
    }
    binding_event.kind = xtb::EventKind::kKeyPress;
    binding_event.keysym = key->keysym;
    binding_event.modifiers = key->modifiers;
    context.root_pos = key->root_pos;
    context.pos = key->pos;
    context.modifiers = key->modifiers;
  } else if (const auto* crossing = std::get_if<xproto::CrossingEvent>(&event)) {
    binding_event.kind = crossing->enter ? xtb::EventKind::kEnter : xtb::EventKind::kLeave;
    context.root_pos = crossing->root_pos;
    context.pos = crossing->pos;
  } else if (const auto* motion = std::get_if<xproto::MotionEvent>(&event)) {
    binding_event.kind = xtb::EventKind::kMotion;
    binding_event.modifiers = motion->modifiers;
    context.root_pos = motion->root_pos;
    context.pos = motion->pos;
    context.modifiers = motion->modifiers;
  } else if (const auto* expose = std::get_if<xproto::ExposeEvent>(&event)) {
    // The exposed rectangle joins the damage region; the object repaints
    // once at the next FlushFrame (immediately in immediate mode).
    frame_scheduler_.AddExposeDamage(object, expose->area);
    return true;
  } else {
    actionable = false;
  }

  if (!actionable || !action_handler_) {
    return true;
  }
  for (const xtb::Binding* binding : object->MatchBindings(binding_event)) {
    for (const xtb::FunctionCall& function : binding->functions) {
      action_handler_(function, context);
    }
  }
  return true;
}

}  // namespace oi
