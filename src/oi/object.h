// The OI-style object base class (paper §2, §4).
//
// "swm is object oriented in that it deals with four basic objects to
// implement window manager appearance and behavior. [...] once a specific
// object is created, it can be treated as a generic base class object when
// dealing with attribute settings."
//
// Every object owns one X window, queries its attributes (color, font,
// cursor, bindings, shape) from the resource database through its resource
// path, and dispatches pointer/keyboard events against its bindings.
#ifndef SRC_OI_OBJECT_H_
#define SRC_OI_OBJECT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/geometry.h"
#include "src/oi/panel_def.h"
#include "src/xproto/events.h"
#include "src/xtb/bindings.h"

namespace oi {

class Toolkit;
class Panel;
class FrameScheduler;

// Dirty bits for the retained-mode frame pipeline (docs/RENDERING.md).
// kLayoutDirty bubbles to the subtree root — row layout is computed
// top-down — while kPaintDirty stays on the object whose draw list went
// stale.
enum DirtyKind : uint8_t {
  kLayoutDirty = 1u << 0,
  kPaintDirty = 1u << 1,
};

class Object {
 public:
  virtual ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  Toolkit& toolkit() const { return *toolkit_; }
  xproto::WindowId window() const { return window_; }
  const std::string& name() const { return name_; }
  virtual ObjectType type() const = 0;
  Panel* parent() const { return parent_; }

  // Resource path of this object within its tree, as alternating
  // (type-keyword, object-name) components — e.g. for button "name" inside
  // panel "openLook": names {"panel","openLook","button","name"} and
  // classes {"Panel","openLook","Button","name"}.
  const std::vector<std::string>& path_names() const { return path_names_; }
  const std::vector<std::string>& path_classes() const { return path_classes_; }

  // Queries the resource database for `attribute` on this object, using the
  // tree's resource context.  Generic: works identically for any derived
  // type, as the paper emphasizes.
  std::optional<std::string> Attribute(const std::string& attribute) const;
  bool BoolAttribute(const std::string& attribute, bool default_value = false) const;

  // ---- Geometry ------------------------------------------------------------
  // Geometry relative to the parent object's window.
  const xbase::Rect& geometry() const { return geometry_; }
  void SetGeometry(const xbase::Rect& geometry);
  // Natural size of the object's content.
  virtual xbase::Size PreferredSize() const = 0;
  // Hard override used e.g. for the `client` panel, sized by the client
  // window rather than by content.
  void SetSizeOverride(std::optional<xbase::Size> size);
  const std::optional<xbase::Size>& size_override() const { return size_override_; }
  xbase::Size EffectiveSize() const {
    return size_override_.has_value() ? *size_override_ : PreferredSize();
  }

  // Position within the parent panel's rows (from the panel definition).
  const ObjectPosition& position() const { return position_; }
  void SetPosition(const ObjectPosition& position);

  // Floating objects are excluded from the parent panel's row layout and
  // positioned explicitly (e.g. swm's resize-corner handles).
  bool floating() const { return floating_; }
  void SetFloating(bool floating) { floating_ = floating; }

  // ---- Invalidation (retained-mode frame pipeline; docs/RENDERING.md) -----
  // Records that this object needs the given work and registers it with the
  // toolkit's FrameScheduler (or lays out and repaints on the spot when the
  // scheduler runs in immediate mode).  Attribute setters self-invalidate;
  // callers outside src/oi never invoke layout or painting directly.
  void Invalidate(uint8_t kinds);
  // Invalidates this object and, for containers, every descendant.
  virtual void InvalidateTree(uint8_t kinds) { Invalidate(kinds); }
  uint8_t dirty_kinds() const { return dirty_kinds_; }
  // Root of the tree this object belongs to (decoration frame, icon tree,
  // root panel, or the object itself when parentless).
  Object* TreeRoot();

  // Recomputes this subtree's layout; containers override.
  virtual void Layout() {}

  // ---- Appearance ------------------------------------------------------------
  // Re-issues this object's draw list (and children's, for panels).  The
  // legacy recursive entry, still used by immediate mode and Expose
  // fallback paths inside the toolkit.
  virtual void Render();
  // This object's own draw list only, no recursion: the unit the frame
  // scheduler repaints.
  virtual void RenderSelf() {}
  // Counts (for FrameScheduler stats) and reissues this object's draw list.
  void Paint();
  // Applies the object's shape attributes (shapeMask / shape-to-children).
  virtual void ApplyShape();
  void Show();
  void Hide();

  // ---- Bindings -----------------------------------------------------------------
  const std::vector<xtb::Binding>& bindings() const { return bindings_; }
  // Dynamic rebinding: "the button object can also have its bindings
  // (functions) changed dynamically".
  void SetBindings(std::vector<xtb::Binding> bindings) { bindings_ = std::move(bindings); }
  // (Re)loads bindings from the resource database.
  void LoadBindings();

  // Re-reads standard attributes from the resource database.  Needed after
  // the tree's resource prefix changes (e.g. when a decoration tree is
  // bound to a specific client's class/instance, or stickiness toggles).
  virtual void RefreshAttributes();

  // Returns the function lists of all bindings matching the event.
  std::vector<const xtb::Binding*> MatchBindings(const xtb::BindingEvent& event) const;

 protected:
  Object(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window, std::string name,
         ObjectType type_for_path);

  // Reads standard attributes (background, cursor) and applies them.
  void ApplyStandardAttributes();

  Toolkit* toolkit_;
  Panel* parent_;
  std::string name_;
  xproto::WindowId window_ = xproto::kNone;
  xbase::Rect geometry_;
  ObjectPosition position_;
  bool floating_ = false;
  std::optional<xbase::Size> size_override_;
  std::vector<xtb::Binding> bindings_;
  std::vector<std::string> path_names_;
  std::vector<std::string> path_classes_;

 private:
  // Owned by the FrameScheduler: bits double as pending-queue membership.
  friend class FrameScheduler;
  uint8_t dirty_kinds_ = 0;
};

}  // namespace oi

#endif  // SRC_OI_OBJECT_H_
