#include "src/oi/panel.h"

#include <algorithm>
#include <map>

#include "src/base/logging.h"
#include "src/oi/toolkit.h"

namespace oi {

Panel::Panel(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window,
             std::string name)
    : Object(toolkit, parent, parent_window, std::move(name), ObjectType::kPanel) {
  ApplyStandardAttributes();
}

Panel::~Panel() {
  // Children must be destroyed before the base destructor destroys this
  // panel's window (their windows are its children).
  children_.clear();
}

Object* Panel::AddChild(std::unique_ptr<Object> child) {
  children_.push_back(std::move(child));
  Object* added = children_.back().get();
  // The child is fully constructed here, so this is the safe place to seed
  // its dirty bits (a constructor-time Invalidate would lay out a tree with
  // half-built members in immediate mode).  The layout bit bubbles to the
  // tree root and covers this panel too.
  added->Invalidate(kLayoutDirty | kPaintDirty);
  return added;
}

std::unique_ptr<Object> Panel::RemoveChild(Object* child) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->get() == child) {
      std::unique_ptr<Object> out = std::move(*it);
      children_.erase(it);
      Invalidate(kLayoutDirty);
      return out;
    }
  }
  return nullptr;
}

Object* Panel::FindDescendant(const std::string& name) {
  for (const std::unique_ptr<Object>& child : children_) {
    if (child->name() == name) {
      return child.get();
    }
    if (child->type() == ObjectType::kPanel) {
      Object* found = static_cast<Panel*>(child.get())->FindDescendant(name);
      if (found != nullptr) {
        return found;
      }
    }
  }
  return nullptr;
}

std::vector<Panel::RowLayout> Panel::ComputeRows() const {
  std::map<int, RowLayout> by_row;
  for (const std::unique_ptr<Object>& child : children_) {
    if (child->floating()) {
      continue;  // Positioned explicitly by the owner.
    }
    RowLayout& row = by_row[child->position().row];
    switch (child->position().align) {
      case HAlign::kLeft:
        row.left.push_back(child.get());
        break;
      case HAlign::kCenter:
        row.center.push_back(child.get());
        break;
      case HAlign::kRight:
        row.right.push_back(child.get());
        break;
    }
  }
  std::vector<RowLayout> rows;
  int y = 0;
  for (auto& [index, row] : by_row) {
    auto by_column = [](const Object* a, const Object* b) {
      return a->position().column < b->position().column;
    };
    std::sort(row.left.begin(), row.left.end(), by_column);
    std::sort(row.center.begin(), row.center.end(), by_column);
    std::sort(row.right.begin(), row.right.end(), by_column);
    row.height = 1;
    for (const Object* child : row.left) {
      row.height = std::max(row.height, child->EffectiveSize().height);
    }
    for (const Object* child : row.center) {
      row.height = std::max(row.height, child->EffectiveSize().height);
    }
    for (const Object* child : row.right) {
      row.height = std::max(row.height, child->EffectiveSize().height);
    }
    row.y = y;
    y += row.height;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

int GroupWidth(const std::vector<Object*>& group) {
  int width = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) {
      width += Panel::kGap;
    }
    width += group[i]->EffectiveSize().width;
  }
  return width;
}

}  // namespace

xbase::Size Panel::PreferredSize() const {
  std::vector<RowLayout> rows = ComputeRows();
  xbase::Size size{1, 1};
  int height = 0;
  for (const RowLayout& row : rows) {
    int width = GroupWidth(row.left) + GroupWidth(row.center) + GroupWidth(row.right);
    int groups = (row.left.empty() ? 0 : 1) + (row.center.empty() ? 0 : 1) +
                 (row.right.empty() ? 0 : 1);
    if (groups > 1) {
      width += (groups - 1) * kGap;
    }
    size.width = std::max(size.width, width);
    height += row.height;
  }
  size.height = std::max(size.height, height);
  return size;
}

void Panel::DoLayout(const xbase::Size* forced) {
  xbase::Size size = forced != nullptr ? *forced : EffectiveSize();
  SetGeometry(xbase::Rect{geometry_.x, geometry_.y, size.width, size.height});

  std::vector<RowLayout> rows = ComputeRows();
  for (const RowLayout& row : rows) {
    // Left group packs from the left edge in column order.
    int x = 0;
    for (Object* child : row.left) {
      xbase::Size child_size = child->EffectiveSize();
      child->SetGeometry(xbase::Rect{x, row.y, child_size.width, child_size.height});
      x += child_size.width + kGap;
    }
    // Right group packs against the right edge; "-0" is the rightmost
    // column, "-1" sits to its left, and so on inward.
    int right_x = size.width;
    for (Object* child : row.right) {
      xbase::Size child_size = child->EffectiveSize();
      right_x -= child_size.width;
      child->SetGeometry(xbase::Rect{right_x, row.y, child_size.width,
                                     child_size.height});
      right_x -= kGap;
    }
    // Center group is centered as a block within the full panel width.
    int center_width = GroupWidth(row.center);
    int cx = std::max(0, (size.width - center_width) / 2);
    for (Object* child : row.center) {
      xbase::Size child_size = child->EffectiveSize();
      child->SetGeometry(xbase::Rect{cx, row.y, child_size.width, child_size.height});
      cx += child_size.width + kGap;
    }
  }
  // Nested panels lay out their own interiors at the assigned size.
  for (const std::unique_ptr<Object>& child : children_) {
    if (child->type() == ObjectType::kPanel) {
      xbase::Size assigned = child->geometry().size();
      static_cast<Panel*>(child.get())->DoLayout(&assigned);
    }
  }
}

void Panel::Render() {
  Paint();
  for (const std::unique_ptr<Object>& child : children_) {
    child->Show();
    child->Render();
  }
}

void Panel::InvalidateTree(uint8_t kinds) {
  Invalidate(kinds);
  for (const std::unique_ptr<Object>& child : children_) {
    child->InvalidateTree(kinds);
  }
}

void Panel::RefreshAttributes() {
  Object::RefreshAttributes();
  for (const std::unique_ptr<Object>& child : children_) {
    child->RefreshAttributes();
  }
}

void Panel::ApplyShape() {
  std::optional<std::string> mask = Attribute("shapeMask");
  if (!mask.has_value() && BoolAttribute("shape")) {
    // "if a panel object is to be shaped and no shape mask is specified,
    // it is shaped to contain its children" (paper §5).
    std::vector<xbase::Rect> rects;
    for (const std::unique_ptr<Object>& child : children_) {
      rects.push_back(child->geometry());
    }
    toolkit_->display().ShapeSetRegion(window_, xbase::Region(std::move(rects)));
    return;
  }
  Object::ApplyShape();
  for (const std::unique_ptr<Object>& child : children_) {
    child->ApplyShape();
  }
}

}  // namespace oi
