#include "src/oi/object.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/oi/panel.h"
#include "src/oi/toolkit.h"

namespace oi {

Object::Object(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window,
               std::string name, ObjectType type_for_path)
    : toolkit_(toolkit), parent_(parent), name_(std::move(name)) {
  if (parent != nullptr) {
    path_names_ = parent->path_names();
    path_classes_ = parent->path_classes();
  }
  path_names_.push_back(ObjectTypeName(type_for_path));
  path_names_.push_back(name_);
  path_classes_.push_back(ObjectTypeClass(type_for_path));
  path_classes_.push_back(name_);

  geometry_ = xbase::Rect{0, 0, 1, 1};
  window_ = toolkit_->display().CreateWindow(parent_window, geometry_);
  toolkit_->display().SelectInput(
      window_, xproto::kButtonPressMask | xproto::kButtonReleaseMask |
                   xproto::kKeyPressMask | xproto::kEnterWindowMask |
                   xproto::kLeaveWindowMask | xproto::kExposureMask);
  toolkit_->Register(this);
}

Object::~Object() {
  toolkit_->Unregister(this);
  if (window_ != xproto::kNone) {
    toolkit_->display().DestroyWindow(window_);
  }
}

std::optional<std::string> Object::Attribute(const std::string& attribute) const {
  return toolkit_->QueryAttribute(*this, attribute);
}

bool Object::BoolAttribute(const std::string& attribute, bool default_value) const {
  std::optional<std::string> value = Attribute(attribute);
  if (!value.has_value()) {
    return default_value;
  }
  std::string lower = xbase::ToLowerAscii(xbase::TrimWhitespace(*value));
  return lower == "true" || lower == "yes" || lower == "on" || lower == "1";
}

void Object::SetGeometry(const xbase::Rect& geometry) {
  if (geometry == geometry_) {
    return;
  }
  bool resized = geometry.size() != geometry_.size();
  geometry_ = geometry;
  // The window moves/resizes immediately — owners read laid-out geometry
  // synchronously — but painting is deferred.  Draw lists are
  // window-relative and survive moves; only a size change goes stale.
  toolkit_->display().MoveResizeWindow(window_, geometry);
  if (resized) {
    Invalidate(kPaintDirty);
  }
}

void Object::SetSizeOverride(std::optional<xbase::Size> size) {
  if (size_override_ == size) {
    return;
  }
  size_override_ = std::move(size);
  Invalidate(kLayoutDirty);
}

void Object::SetPosition(const ObjectPosition& position) {
  if (position == position_) {
    return;
  }
  position_ = position;
  Invalidate(kLayoutDirty);
}

void Object::Invalidate(uint8_t kinds) {
  if (kinds == 0) {
    return;
  }
  toolkit_->frame_scheduler().MarkDirty(this, kinds, TreeRoot());
}

Object* Object::TreeRoot() {
  Object* cur = this;
  while (cur->parent_ != nullptr) {
    cur = cur->parent_;
  }
  return cur;
}

void Object::Paint() {
  toolkit_->frame_scheduler().NoteObjectPainted();
  RenderSelf();
}

void Object::Render() { Paint(); }

void Object::ApplyShape() {
  std::optional<std::string> mask_name = Attribute("shapeMask");
  if (mask_name.has_value()) {
    // Shape masks are named built-in bitmaps in the simulation.
    std::string name = xbase::TrimWhitespace(*mask_name);
    if (name == "rounded") {
      toolkit_->display().ShapeSetMask(window_, xbase::RoundedMask16());
    } else if (name == "circle") {
      int diameter = std::min(geometry_.width, geometry_.height);
      toolkit_->display().ShapeSetMask(window_, xbase::CircleMask(std::max(1, diameter)));
    } else if (name == "xlogo") {
      toolkit_->display().ShapeSetMask(window_, xbase::XLogo32());
    } else {
      XB_LOG(Warning) << "object " << name_ << ": unknown shapeMask '" << name << "'";
    }
  }
}

void Object::Show() { toolkit_->display().MapWindow(window_); }

void Object::Hide() { toolkit_->display().UnmapWindow(window_); }

void Object::LoadBindings() {
  std::optional<std::string> text = Attribute("bindings");
  if (!text.has_value()) {
    bindings_.clear();
    return;
  }
  xtb::ParseResult parsed = xtb::ParseBindings(*text);
  bindings_ = std::move(parsed.bindings);
}

std::vector<const xtb::Binding*> Object::MatchBindings(const xtb::BindingEvent& event) const {
  std::vector<const xtb::Binding*> matched;
  for (const xtb::Binding& binding : bindings_) {
    const xtb::BindingEvent& want = binding.event;
    if (want.kind != event.kind || want.modifiers != event.modifiers) {
      continue;
    }
    bool detail_match = true;
    switch (want.kind) {
      case xtb::EventKind::kButtonPress:
      case xtb::EventKind::kButtonRelease:
        detail_match = want.button == event.button;
        break;
      case xtb::EventKind::kKeyPress:
        detail_match = want.keysym == event.keysym;
        break;
      default:
        break;
    }
    if (detail_match) {
      matched.push_back(&binding);
    }
  }
  return matched;
}

void Object::RefreshAttributes() { ApplyStandardAttributes(); }

void Object::ApplyStandardAttributes() {
  std::optional<std::string> background = Attribute("background");
  if (background.has_value() && !background->empty()) {
    toolkit_->display().SetWindowBackground(window_, (*background)[0]);
  }
  std::optional<std::string> cursor = Attribute("cursor");
  if (cursor.has_value()) {
    toolkit_->display().SetCursor(window_, *cursor);
  }
  std::optional<std::string> border = Attribute("borderWidth");
  if (border.has_value()) {
    std::optional<int> width = xbase::ParseInt(xbase::TrimWhitespace(*border));
    if (width.has_value() && *width >= 0) {
      xserver::ConfigureValues values;
      values.border_width = *width;
      toolkit_->display().ConfigureWindow(window_, xproto::kConfigBorderWidth, values);
    } else {
      XB_LOG(Warning) << "object " << name_ << ": bad borderWidth '" << *border << "'";
    }
  }
  LoadBindings();
}

}  // namespace oi
