// Panel definition syntax (paper §4.1):
//
//   swm*panel.panel-name:
//       object-type object-name position
//       object-type object-name position ...
//
// After resource-file unescaping a definition is a whitespace-separated list
// of (type, name, position) triples.  `position` is a geometry-like string
// whose X component is the column within the row — a number, "C" to center,
// or a "-" prefix to align from the right — and whose Y component is the row.
#ifndef SRC_OI_PANEL_DEF_H_
#define SRC_OI_PANEL_DEF_H_

#include <optional>
#include <string>
#include <vector>

namespace oi {

enum class ObjectType {
  kPanel,
  kButton,
  kText,
  kMenu,
};

std::optional<ObjectType> ObjectTypeFromName(const std::string& name);
std::string ObjectTypeName(ObjectType type);   // "panel", "button", ...
std::string ObjectTypeClass(ObjectType type);  // "Panel", "Button", ...

enum class HAlign {
  kLeft,    // "+col+row": column counted from the left.
  kCenter,  // "+C+row": centered within the row.
  kRight,   // "-col+row": column counted from the right edge.
};

struct ObjectPosition {
  HAlign align = HAlign::kLeft;
  int column = 0;
  int row = 0;

  friend bool operator==(const ObjectPosition&, const ObjectPosition&) = default;

  std::string ToString() const;
};

// Parses "+0+0", "+C+1", "-0+0".  Returns nullopt on malformed input.
std::optional<ObjectPosition> ParseObjectPosition(const std::string& text);

struct PanelItemDef {
  ObjectType type = ObjectType::kButton;
  std::string name;
  ObjectPosition position;

  friend bool operator==(const PanelItemDef&, const PanelItemDef&) = default;
};

// Parses a full panel definition value.  Returns nullopt if the token count
// is not a multiple of three or any triple is malformed.
std::optional<std::vector<PanelItemDef>> ParsePanelDefinition(const std::string& value);

}  // namespace oi

#endif  // SRC_OI_PANEL_DEF_H_
