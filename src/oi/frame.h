// Retained-mode frame scheduling (docs/RENDERING.md).
//
// Objects no longer lay out and repaint eagerly at every mutation.  Setters
// call Object::Invalidate, which records the dirty subtree root and the
// dirty object here; FlushFrame() then runs one layout pass over the dirty
// roots, folds the damaged rectangles into an xbase::Region per tree, and
// reissues each damaged object's draw list exactly once, however many
// invalidations hit it since the previous flush.
//
// The flush path is allocation-free in steady state: the pending queues are
// flat vectors whose buffers are recycled across frames, and the per-root
// damage regions live in a pooled slot arena (`RootDamage`) whose banded
// rect storage is reused frame after frame instead of being rebuilt from a
// map of rect vectors.  Each object's damage contribution is clipped to its
// tree root's bounds with a plain rect intersection before any region work
// happens; an object that clips out entirely keeps its dirty bit and stays
// queued (its draw list is not touched until it can produce pixels).
//
// An immediate mode bypasses the deferral for ablation benchmarks and A/B
// correctness tests: every invalidation lays out and repaints its tree on
// the spot, as the pre-pipeline code did.  Pixel output is identical in
// both modes; only the amount of repeated work differs.
#ifndef SRC_OI_FRAME_H_
#define SRC_OI_FRAME_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/base/geometry.h"
#include "src/base/region.h"

namespace oi {

class Object;

class FrameScheduler {
 public:
  // Cumulative instrumentation since the last ResetStats.
  struct Stats {
    uint64_t frames = 0;           // Flushes (or eager renders) that did work.
    uint64_t layouts = 0;          // Subtree layout passes.
    uint64_t objects_painted = 0;  // Draw lists reissued, via any paint path.
    uint64_t invalidations = 0;    // Invalidate() calls reaching the scheduler.
    uint64_t expose_rects = 0;     // Expose rectangles folded into damage.
    uint64_t damage_area = 0;      // Cells covered by flushed damage regions
                                   // (clipped to tree bounds; saturating).
  };

  // Called after each dirty root's layout pass (both modes); swm uses it to
  // pin floating resize-corner handles to the frame edges.
  using LayoutObserver = std::function<void(Object* tree_root)>;

  // ---- Invalidation intake (called via Object::Invalidate) -----------------
  void MarkDirty(Object* object, uint8_t kinds, Object* tree_root);
  // Expose handling: the window-relative rectangle joins the damage region
  // and the object repaints at the next flush (immediately when eager).
  void AddExposeDamage(Object* object, const xbase::Rect& area);
  // Object destruction: drop every pending reference.
  void ForgetObject(Object* object);

  // ---- Frame flush ---------------------------------------------------------
  // Lays out every dirty subtree root (a layout pass may invalidate further
  // paint or layout; it joins the same frame), then paints each damaged
  // object exactly once.  No-op in immediate mode or with nothing pending.
  void FlushFrame();
  bool HasPendingWork() const {
    return !layout_roots_.empty() || !paint_objects_.empty() || !expose_rects_.empty();
  }

  void SetLayoutObserver(LayoutObserver observer) { layout_observer_ = std::move(observer); }

  // Ablation escape hatch: eager per-invalidation layout + paint.
  void SetImmediateRender(bool immediate) { immediate_render_ = immediate; }
  bool immediate_render() const { return immediate_render_; }

  // Every draw-list reissue funnels through Object::Paint, which reports
  // here, so `objects_painted` is comparable across modes.
  void NoteObjectPainted() { ++stats_.objects_painted; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }
  // Damage accumulated by the most recent flush alone (diagnostics/tests).
  uint64_t last_frame_damage_area() const { return last_frame_damage_area_; }

 private:
  // One pooled damage accumulator per dirty tree root.  Slots (and the
  // banded rect storage inside their Regions) are recycled across frames.
  struct RootDamage {
    Object* root = nullptr;
    xbase::Region damage;
  };

  void ImmediateFlush(Object* object, uint8_t kinds, Object* tree_root);
  xbase::Region& DamageFor(Object* root);

  std::vector<Object*> layout_roots_;
  std::vector<Object*> paint_objects_;
  std::vector<std::pair<Object*, xbase::Rect>> expose_rects_;
  // Recycled scratch buffers for the flush (capacity persists).
  std::vector<Object*> layout_scratch_;
  std::vector<Object*> paint_scratch_;
  std::vector<RootDamage> damage_slots_;
  size_t damage_slots_used_ = 0;
  LayoutObserver layout_observer_;
  bool immediate_render_ = false;
  bool in_flush_ = false;
  int immediate_depth_ = 0;
  Stats stats_;
  uint64_t last_frame_damage_area_ = 0;
};

}  // namespace oi

#endif  // SRC_OI_FRAME_H_
