#include "src/oi/widgets.h"

#include "src/oi/toolkit.h"

namespace oi {

// ---- Button ----------------------------------------------------------------

Button::Button(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window,
               std::string name)
    : Object(toolkit, parent, parent_window, std::move(name), ObjectType::kButton) {
  ApplyStandardAttributes();
  std::optional<std::string> label = Attribute("label");
  label_ = label.value_or(name_);
  std::optional<std::string> image = Attribute("image");
  if (image.has_value() && *image == "xlogo") {
    image_ = xbase::XLogo32();
  }
}

void Button::RefreshAttributes() {
  Object::RefreshAttributes();
  if (std::optional<std::string> label = Attribute("label")) {
    label_ = *label;
  }
  if (std::optional<std::string> image = Attribute("image"); image && *image == "xlogo") {
    image_ = xbase::XLogo32();
  }
}

void Button::SetLabel(std::string label) {
  if (label == label_) {
    return;
  }
  label_ = std::move(label);
  // The label feeds PreferredSize, so the row layout is stale too.
  Invalidate(kLayoutDirty | kPaintDirty);
}

void Button::SetImage(xbase::Bitmap image) {
  image_ = std::move(image);
  Invalidate(kLayoutDirty | kPaintDirty);
}

void Button::ClearImage() {
  if (!image_.has_value()) {
    return;
  }
  image_.reset();
  Invalidate(kLayoutDirty | kPaintDirty);
}

xbase::Size Button::PreferredSize() const {
  if (image_.has_value()) {
    return {image_->width() + 2, image_->height() + 2};
  }
  // Label plus one border cell on each side.
  return {static_cast<int>(label_.size()) + 4, 3};
}

void Button::RenderSelf() {
  xlib::Display& dpy = toolkit_->display();
  dpy.ClearWindow(window_);
  xbase::Rect bounds{0, 0, geometry_.width, geometry_.height};
  xserver::DrawOp border;
  border.kind = xserver::DrawOp::Kind::kBorder;
  border.rect = bounds;
  dpy.Draw(window_, border);
  if (image_.has_value()) {
    xserver::DrawOp image_op;
    image_op.kind = xserver::DrawOp::Kind::kBitmap;
    image_op.rect = xbase::Rect{1, 1, image_->width(), image_->height()};
    image_op.bitmap = *image_;
    image_op.fill = '#';
    dpy.Draw(window_, image_op);
  } else {
    xserver::DrawOp text_op;
    text_op.kind = xserver::DrawOp::Kind::kTextCentered;
    text_op.rect = xbase::Rect{0, geometry_.height / 2, geometry_.width, 1};
    text_op.text = label_;
    dpy.Draw(window_, text_op);
  }
}

// ---- TextObject --------------------------------------------------------------

TextObject::TextObject(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window,
                       std::string name)
    : Object(toolkit, parent, parent_window, std::move(name), ObjectType::kText) {
  ApplyStandardAttributes();
  std::optional<std::string> label = Attribute("label");
  text_ = label.value_or(name_);
}

void TextObject::SetText(std::string text) {
  if (text == text_) {
    return;
  }
  text_ = std::move(text);
  Invalidate(kLayoutDirty | kPaintDirty);
}

xbase::Size TextObject::PreferredSize() const {
  return {static_cast<int>(text_.size()) + 2, 1};
}

void TextObject::RenderSelf() {
  xlib::Display& dpy = toolkit_->display();
  dpy.ClearWindow(window_);
  xserver::DrawOp text_op;
  text_op.kind = xserver::DrawOp::Kind::kTextCentered;
  text_op.rect = xbase::Rect{0, geometry_.height / 2, geometry_.width, 1};
  text_op.text = text_;
  dpy.Draw(window_, text_op);
}

}  // namespace oi
