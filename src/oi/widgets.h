// Button and Text objects (paper §4.2, §4.3).
#ifndef SRC_OI_WIDGETS_H_
#define SRC_OI_WIDGETS_H_

#include <optional>
#include <string>

#include "src/base/bitmap.h"
#include "src/oi/object.h"

namespace oi {

// "The button object can contain either text or a bitmap image. [...] its
// appearance can be changed dynamically through the use of window manager
// functions."
class Button : public Object {
 public:
  Button(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window, std::string name);

  ObjectType type() const override { return ObjectType::kButton; }

  const std::string& label() const { return label_; }
  void SetLabel(std::string label);
  bool has_image() const { return image_.has_value(); }
  void SetImage(xbase::Bitmap image);
  void ClearImage();

  xbase::Size PreferredSize() const override;
  void RenderSelf() override;
  // Re-reads the label/image attributes if configured (explicit SetLabel
  // values survive when no resource entry exists).
  void RefreshAttributes() override;

 private:
  std::string label_;
  std::optional<xbase::Bitmap> image_;
};

// A non-interactive text display object.
class TextObject : public Object {
 public:
  TextObject(Toolkit* toolkit, Panel* parent, xproto::WindowId parent_window,
             std::string name);

  ObjectType type() const override { return ObjectType::kText; }

  const std::string& text() const { return text_; }
  void SetText(std::string text);

  xbase::Size PreferredSize() const override;
  void RenderSelf() override;

 private:
  std::string text_;
};

}  // namespace oi

#endif  // SRC_OI_WIDGETS_H_
