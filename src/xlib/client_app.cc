#include "src/xlib/client_app.h"

#include "src/base/bitmap.h"

namespace xlib {

ClientApp::ClientApp(xserver::Server* server, const ClientAppConfig& config)
    : display_(server, config.machine), config_(config) {
  window_ = display_.CreateWindow(display_.RootWindow(config.screen), config.geometry);
  current_parent_ = display_.RootWindow(config.screen);
  believed_root_position_ = config.geometry.origin();

  SetWmName(&display_, window_, config.name);
  SetWmIconName(&display_, window_,
                config.icon_name.empty() ? config.name : config.icon_name);
  SetWmClass(&display_, window_, config.wm_class);
  SetWmCommand(&display_, window_, config.command);
  SetWmClientMachine(&display_, window_, config.machine);

  xproto::SizeHints size_hints;
  size_hints.flags = config.size_hint_flags;
  size_hints.x = config.geometry.x;
  size_hints.y = config.geometry.y;
  size_hints.width = config.geometry.width;
  size_hints.height = config.geometry.height;
  SetWmNormalHints(&display_, window_, size_hints);

  xproto::WmHints wm_hints;
  if (config.initial_state.has_value()) {
    wm_hints.flags |= xproto::kStateHint;
    wm_hints.initial_state = *config.initial_state;
  }
  if (!config.icon_pixmap_name.empty()) {
    wm_hints.flags |= xproto::kIconPixmapHint;
    wm_hints.icon_pixmap_name = config.icon_pixmap_name;
  }
  if (wm_hints.flags != 0) {
    SetWmHints(&display_, window_, wm_hints);
  }

  if (config.shaped) {
    int diameter = std::min(config.geometry.width, config.geometry.height);
    display_.ShapeSetMask(window_, xbase::CircleMask(diameter));
  }

  display_.SelectInput(window_, xproto::kStructureNotifyMask | xproto::kPropertyChangeMask);
  display_.SetWindowBackground(window_, config.name.empty() ? 'o' : config.name[0]);
}

void ClientApp::Map() { display_.MapWindow(window_); }

void ClientApp::Unmap() { display_.UnmapWindow(window_); }

void ClientApp::RequestIconify() {
  xlib::RequestIconify(&display_, window_, config_.screen);
}

void ClientApp::RequestMoveResize(const xbase::Rect& geometry) {
  display_.MoveResizeWindow(window_, geometry);
}

void ClientApp::ProcessEvents() {
  display_.DrainEvents([this](const xproto::Event& event) {
    if (const auto* configure = std::get_if<xproto::ConfigureNotifyEvent>(&event)) {
      if (configure->window == window_) {
        ++configure_notify_count_;
        if (configure->synthetic) {
          // Synthetic events carry root-relative coordinates directly.
          believed_root_position_ = configure->geometry.origin();
        } else {
          // Real events are parent-relative; translate like a toolkit would.
          auto translated = display_.TranslateCoordinates(
              window_, display_.RootWindow(config_.screen), {0, 0});
          if (translated.has_value()) {
            believed_root_position_ = *translated;
          }
        }
      }
    } else if (const auto* reparent = std::get_if<xproto::ReparentNotifyEvent>(&event)) {
      if (reparent->window == window_) {
        ++reparent_count_;
        current_parent_ = reparent->parent;
      }
    } else if (const auto* message = std::get_if<xproto::ClientMessageEvent>(&event)) {
      if (message->window == window_ &&
          message->message_type == display_.InternAtom(xproto::kAtomWmProtocols) &&
          message->data[0] == display_.InternAtom(xproto::kAtomWmDeleteWindow)) {
        saw_delete_window_ = true;
      }
    }
  });
}

xproto::WindowId ClientApp::EffectiveRootForPopups() {
  auto swm_root = display_.GetWindowIdProperty(window_, xproto::kAtomSwmRoot);
  if (swm_root.has_value() && display_.server().WindowExists(*swm_root)) {
    return *swm_root;
  }
  return display_.RootWindow(config_.screen);
}

}  // namespace xlib
