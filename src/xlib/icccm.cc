#include "src/xlib/icccm.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/xproto/sanitize.h"

namespace xlib {

using xproto::AtomId;
using xproto::WindowId;

namespace {

// Sanitizer rejections log once per (window, kind): the first garbage
// property from a window is news, the next thousand are the same news.
constexpr int kLogOncePerWindow = 1 << 30;

void LogSanitized(WindowId window, const char* kind) {
  XB_LOG_EVERY_N(Warning,
                 std::string("icccm:") + kind + ":" + std::to_string(window),
                 kLogOncePerWindow)
      << "icccm: sanitized " << kind << " from window " << window;
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  out->push_back(static_cast<uint8_t>(value & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 24) & 0xff));
}

void PutI32(std::vector<uint8_t>* out, int32_t value) {
  PutU32(out, static_cast<uint32_t>(value));
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  uint32_t U32() {
    if (pos_ + 4 > data_.size()) {
      ok_ = false;
      return 0;
    }
    uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                 (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
                 (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
                 (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }

  // Tolerant variants for struct-shaped properties: a property truncated
  // mid-field keeps its decoded prefix and defaults the rest, like Xlib's
  // XGetWMNormalHints accepting short pre-ICCCM hints.  Sets truncated().
  uint32_t U32Or(uint32_t fallback) {
    if (pos_ + 4 > data_.size()) {
      truncated_ = truncated_ || pos_ < data_.size();
      exhausted_ = true;
      pos_ = data_.size();
      return fallback;
    }
    return U32();
  }

  int32_t I32Or(int32_t fallback) {
    return static_cast<int32_t>(U32Or(static_cast<uint32_t>(fallback)));
  }

  // True when a tolerant read hit a partial trailing field (not a clean end).
  bool truncated() const { return truncated_; }
  // True when any tolerant read ran past the end (clean or not).
  bool exhausted() const { return exhausted_; }

  std::string Rest() {
    std::string s(data_.begin() + static_cast<long>(pos_), data_.end());
    pos_ = data_.size();
    return s;
  }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
  bool ok_ = true;
  bool truncated_ = false;
  bool exhausted_ = false;
};

}  // namespace

// ---- Simple string properties -------------------------------------------------

namespace {

// Shared by the capped string getters: fetch, then run the sanitizer with
// the per-window dedupe on the log line.
std::optional<std::string> GetSanitizedString(Display* dpy, WindowId window,
                                              const char* atom, size_t cap,
                                              const char* kind) {
  std::optional<std::string> raw = dpy->GetStringProperty(window, atom);
  if (!raw.has_value()) {
    return std::nullopt;
  }
  if (xproto::SanitizeClientString(&*raw, cap, dpy->mutable_sanitizer_stats())) {
    LogSanitized(window, kind);
  }
  return raw;
}

}  // namespace

bool SetWmName(Display* dpy, WindowId window, const std::string& name) {
  return dpy->SetStringProperty(window, xproto::kAtomWmName, name);
}

std::optional<std::string> GetWmName(Display* dpy, WindowId window) {
  return GetSanitizedString(dpy, window, xproto::kAtomWmName,
                            xproto::kMaxWmStringBytes, "WM_NAME");
}

bool SetWmIconName(Display* dpy, WindowId window, const std::string& name) {
  return dpy->SetStringProperty(window, xproto::kAtomWmIconName, name);
}

std::optional<std::string> GetWmIconName(Display* dpy, WindowId window) {
  return GetSanitizedString(dpy, window, xproto::kAtomWmIconName,
                            xproto::kMaxWmStringBytes, "WM_ICON_NAME");
}

bool SetWmClientMachine(Display* dpy, WindowId window, const std::string& machine) {
  return dpy->SetStringProperty(window, xproto::kAtomWmClientMachine, machine);
}

std::optional<std::string> GetWmClientMachine(Display* dpy, WindowId window) {
  return GetSanitizedString(dpy, window, xproto::kAtomWmClientMachine,
                            xproto::kMaxWmStringBytes, "WM_CLIENT_MACHINE");
}

// ---- WM_TRANSIENT_FOR ------------------------------------------------------

bool SetTransientForHint(Display* dpy, WindowId window, WindowId owner) {
  return dpy->SetWindowIdProperty(window, xproto::kAtomWmTransientFor, owner);
}

std::optional<WindowId> GetTransientForHint(Display* dpy, WindowId window) {
  std::optional<WindowId> owner =
      dpy->GetWindowIdProperty(window, xproto::kAtomWmTransientFor);
  if (!owner.has_value()) {
    return std::nullopt;
  }
  WindowId sanitized =
      xproto::SanitizeTransientFor(window, *owner, dpy->mutable_sanitizer_stats());
  if (sanitized != *owner) {
    LogSanitized(window, "WM_TRANSIENT_FOR");
  }
  return sanitized;
}

// ---- WM_CLASS --------------------------------------------------------------

bool SetWmClass(Display* dpy, WindowId window, const xproto::WmClass& wm_class) {
  std::string encoded = wm_class.instance + '\0' + wm_class.clazz + '\0';
  return dpy->SetStringProperty(window, xproto::kAtomWmClass, encoded);
}

std::optional<xproto::WmClass> GetWmClass(Display* dpy, WindowId window) {
  std::optional<std::string> raw = dpy->GetStringProperty(window, xproto::kAtomWmClass);
  if (!raw.has_value()) {
    return std::nullopt;
  }
  xproto::WmClass out;
  if (xproto::DecodeWmClass(*raw, &out, dpy->mutable_sanitizer_stats())) {
    LogSanitized(window, "WM_CLASS");
  }
  return out;
}

// ---- WM_COMMAND --------------------------------------------------------------

bool SetWmCommand(Display* dpy, WindowId window, const std::vector<std::string>& argv) {
  std::string encoded;
  for (const std::string& arg : argv) {
    encoded += arg;
    encoded += '\0';
  }
  return dpy->SetStringProperty(window, xproto::kAtomWmCommand, encoded);
}

std::optional<std::vector<std::string>> GetWmCommand(Display* dpy, WindowId window) {
  std::optional<std::string> raw = dpy->GetStringProperty(window, xproto::kAtomWmCommand);
  if (!raw.has_value()) {
    return std::nullopt;
  }
  bool repaired = false;
  if (raw->size() > xproto::kMaxWmCommandBytes) {
    raw->resize(xproto::kMaxWmCommandBytes);
    ++dpy->mutable_sanitizer_stats()->strings_truncated;
    repaired = true;
  }
  std::vector<std::string> argv;
  std::string cur;
  for (char c : *raw) {
    if (c == '\0') {
      argv.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    argv.push_back(cur);  // Tolerate a missing trailing NUL.
  }
  for (std::string& arg : argv) {
    repaired |= xproto::SanitizeClientString(&arg, xproto::kMaxWmStringBytes,
                                             dpy->mutable_sanitizer_stats());
  }
  if (repaired) {
    LogSanitized(window, "WM_COMMAND");
  }
  return argv;
}

// ---- WM_NORMAL_HINTS -----------------------------------------------------------

bool SetWmNormalHints(Display* dpy, WindowId window, const xproto::SizeHints& hints) {
  std::vector<uint8_t> data;
  PutU32(&data, hints.flags);
  PutI32(&data, hints.x);
  PutI32(&data, hints.y);
  PutI32(&data, hints.width);
  PutI32(&data, hints.height);
  PutI32(&data, hints.min_width);
  PutI32(&data, hints.min_height);
  PutI32(&data, hints.max_width);
  PutI32(&data, hints.max_height);
  PutI32(&data, hints.width_inc);
  PutI32(&data, hints.height_inc);
  AtomId prop = dpy->InternAtom(xproto::kAtomWmNormalHints);
  AtomId type = dpy->InternAtom("WM_SIZE_HINTS");
  return dpy->ChangeProperty(window, prop, type, 32, xserver::PropMode::kReplace, data);
}

std::optional<xproto::SizeHints> GetWmNormalHints(Display* dpy, WindowId window) {
  auto rec = dpy->GetProperty(window, dpy->InternAtom(xproto::kAtomWmNormalHints));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  if (rec->data.empty()) {
    return std::nullopt;
  }
  // Tolerant decode: a property truncated mid-struct keeps the fields that
  // made it across and defaults the rest (hostile or buggy clients must not
  // strip a window of all hints just by sending a short property).
  Reader reader(rec->data);
  xproto::SizeHints hints;
  const xproto::SizeHints defaults;
  hints.flags = reader.U32Or(0);
  hints.x = reader.I32Or(defaults.x);
  hints.y = reader.I32Or(defaults.y);
  hints.width = reader.I32Or(defaults.width);
  hints.height = reader.I32Or(defaults.height);
  hints.min_width = reader.I32Or(defaults.min_width);
  hints.min_height = reader.I32Or(defaults.min_height);
  hints.max_width = reader.I32Or(defaults.max_width);
  hints.max_height = reader.I32Or(defaults.max_height);
  hints.width_inc = reader.I32Or(defaults.width_inc);
  hints.height_inc = reader.I32Or(defaults.height_inc);
  bool repaired = false;
  if (reader.truncated() || reader.exhausted()) {
    ++dpy->mutable_sanitizer_stats()->truncated_decodes;
    repaired = true;
  }
  repaired |= xproto::SanitizeSizeHints(&hints, dpy->mutable_sanitizer_stats());
  if (repaired) {
    LogSanitized(window, "WM_NORMAL_HINTS");
  }
  return hints;
}

// ---- WM_HINTS --------------------------------------------------------------------

bool SetWmHints(Display* dpy, WindowId window, const xproto::WmHints& hints) {
  std::vector<uint8_t> data;
  PutU32(&data, hints.flags);
  PutU32(&data, hints.input ? 1 : 0);
  PutU32(&data, static_cast<uint32_t>(hints.initial_state));
  PutU32(&data, hints.icon_window);
  PutI32(&data, hints.icon_position.x);
  PutI32(&data, hints.icon_position.y);
  // The icon pixmap id is modeled as a named bitmap appended as bytes.
  for (char c : hints.icon_pixmap_name) {
    data.push_back(static_cast<uint8_t>(c));
  }
  AtomId prop = dpy->InternAtom(xproto::kAtomWmHints);
  AtomId type = dpy->InternAtom("WM_HINTS");
  return dpy->ChangeProperty(window, prop, type, 8, xserver::PropMode::kReplace, data);
}

std::optional<xproto::WmHints> GetWmHints(Display* dpy, WindowId window) {
  auto rec = dpy->GetProperty(window, dpy->InternAtom(xproto::kAtomWmHints));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  if (rec->data.empty()) {
    return std::nullopt;
  }
  // Tolerant decode, mirroring GetWmNormalHints: keep the decoded prefix.
  Reader reader(rec->data);
  xproto::WmHints hints;
  const xproto::WmHints defaults;
  hints.flags = reader.U32Or(0);
  hints.input = reader.U32Or(defaults.input ? 1 : 0) != 0;
  hints.initial_state = static_cast<xproto::WmState>(
      reader.U32Or(static_cast<uint32_t>(defaults.initial_state)));
  hints.icon_window = reader.U32Or(defaults.icon_window);
  hints.icon_position.x = reader.I32Or(defaults.icon_position.x);
  hints.icon_position.y = reader.I32Or(defaults.icon_position.y);
  hints.icon_pixmap_name = reader.Rest();
  bool repaired = false;
  if (reader.truncated() || reader.exhausted()) {
    ++dpy->mutable_sanitizer_stats()->truncated_decodes;
    repaired = true;
  }
  repaired |= xproto::SanitizeWmHints(&hints, dpy->mutable_sanitizer_stats());
  repaired |= xproto::SanitizeClientString(&hints.icon_pixmap_name,
                                           xproto::kMaxIconNameBytes,
                                           dpy->mutable_sanitizer_stats());
  if (repaired) {
    LogSanitized(window, "WM_HINTS");
  }
  return hints;
}

// ---- WM_STATE ----------------------------------------------------------------------

bool SetWmState(Display* dpy, WindowId window, xproto::WmState state, WindowId icon_window) {
  std::vector<uint8_t> data;
  PutU32(&data, static_cast<uint32_t>(state));
  PutU32(&data, icon_window);
  AtomId prop = dpy->InternAtom(xproto::kAtomWmState);
  return dpy->ChangeProperty(window, prop, prop, 32, xserver::PropMode::kReplace, data);
}

std::optional<WmStateValue> GetWmState(Display* dpy, WindowId window) {
  auto rec = dpy->GetProperty(window, dpy->InternAtom(xproto::kAtomWmState));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  Reader reader(rec->data);
  WmStateValue out;
  out.state = static_cast<xproto::WmState>(reader.U32());
  out.icon_window = reader.U32();
  if (!reader.ok()) {
    return std::nullopt;
  }
  return out;
}

// ---- WM_PROTOCOLS ---------------------------------------------------------------------

bool SetWmProtocols(Display* dpy, WindowId window,
                    const std::vector<std::string>& protocols) {
  std::vector<uint8_t> data;
  for (const std::string& protocol : protocols) {
    PutU32(&data, dpy->InternAtom(protocol));
  }
  AtomId prop = dpy->InternAtom(xproto::kAtomWmProtocols);
  AtomId type = dpy->InternAtom("ATOM");
  return dpy->ChangeProperty(window, prop, type, 32, xserver::PropMode::kReplace, data);
}

std::optional<std::vector<std::string>> GetWmProtocols(Display* dpy, WindowId window) {
  auto rec = dpy->GetProperty(window, dpy->InternAtom(xproto::kAtomWmProtocols));
  if (!rec.has_value() || rec->format != 32) {
    return std::nullopt;
  }
  Reader reader(rec->data);
  std::vector<std::string> out;
  while (!reader.AtEnd()) {
    AtomId atom = reader.U32();
    if (!reader.ok()) {
      return std::nullopt;
    }
    std::optional<std::string> name = dpy->GetAtomName(atom);
    if (name.has_value()) {
      out.push_back(*name);
    }
  }
  return out;
}

// ---- Client messages ---------------------------------------------------------------------

bool RequestIconify(Display* dpy, WindowId window, int screen) {
  xproto::ClientMessageEvent message;
  message.window = window;
  message.message_type = dpy->InternAtom("WM_CHANGE_STATE");
  message.format = 32;
  message.data[0] = static_cast<uint32_t>(xproto::WmState::kIconic);
  return dpy->SendEvent(dpy->RootWindow(screen),
                        xproto::kSubstructureRedirectMask | xproto::kSubstructureNotifyMask,
                        xproto::Event{message});
}

bool SendDeleteWindow(Display* dpy, WindowId window) {
  xproto::ClientMessageEvent message;
  message.window = window;
  message.message_type = dpy->InternAtom(xproto::kAtomWmProtocols);
  message.format = 32;
  message.data[0] = dpy->InternAtom(xproto::kAtomWmDeleteWindow);
  return dpy->SendEvent(window, 0, xproto::Event{message});
}

bool SendSyntheticConfigureNotify(Display* dpy, WindowId window,
                                  const xbase::Rect& root_relative_geometry) {
  xproto::ConfigureNotifyEvent notify;
  notify.event_window = window;
  notify.window = window;
  notify.geometry = root_relative_geometry;
  notify.synthetic = true;
  return dpy->SendEvent(window, xproto::kStructureNotifyMask, xproto::Event{notify});
}

}  // namespace xlib
