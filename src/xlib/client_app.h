// A simulated X client application (xclock, xterm, oclock, ...).
//
// Owns a Display connection and one top-level window with the standard ICCCM
// properties set, mirroring how a toolkit-built client presents itself to a
// window manager.  Used by the examples, tests and benchmarks as the
// workload the window manager manages.
#ifndef SRC_XLIB_CLIENT_APP_H_
#define SRC_XLIB_CLIENT_APP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/xlib/display.h"
#include "src/xlib/icccm.h"
#include "src/xproto/hints.h"

namespace xlib {

struct ClientAppConfig {
  std::string name = "xclock";              // WM_NAME.
  xproto::WmClass wm_class{"xclock", "XClock"};
  std::vector<std::string> command{"xclock"};  // WM_COMMAND (argv).
  std::string machine = "localhost";           // WM_CLIENT_MACHINE.
  int screen = 0;
  xbase::Rect geometry{0, 0, 100, 100};
  uint32_t size_hint_flags = xproto::kPSize;  // kUSPosition / kPPosition etc.
  std::optional<xproto::WmState> initial_state;
  std::string icon_name;         // WM_ICON_NAME (defaults to `name`).
  std::string icon_pixmap_name;  // Named built-in bitmap, "" = none.
  bool shaped = false;           // oclock-style circular shape.
};

class ClientApp {
 public:
  ClientApp(xserver::Server* server, const ClientAppConfig& config);
  ~ClientApp() = default;

  ClientApp(const ClientApp&) = delete;
  ClientApp& operator=(const ClientApp&) = delete;

  Display& display() { return display_; }
  xproto::WindowId window() const { return window_; }
  const ClientAppConfig& config() const { return config_; }

  // Maps the top-level window (goes through the WM's SubstructureRedirect).
  void Map();
  void Unmap();

  // Asks the WM to iconify (ICCCM WM_CHANGE_STATE client message).
  void RequestIconify();

  // Requests a configure through the WM redirect.
  void RequestMoveResize(const xbase::Rect& geometry);

  // Drains this client's event queue, tracking the synthetic/real
  // ConfigureNotify and ReparentNotify state a toolkit would track.
  void ProcessEvents();

  // What the client believes its root-relative position is, from the last
  // (synthetic or real) ConfigureNotify it processed.  This is the value
  // popup-menu placement would use (paper §6.3.1).
  xbase::Point believed_root_position() const { return believed_root_position_; }
  xproto::WindowId current_parent() const { return current_parent_; }
  int reparent_count() const { return reparent_count_; }
  int configure_notify_count() const { return configure_notify_count_; }
  bool saw_delete_window() const { return saw_delete_window_; }

  // Where the client would place a popup, per the SWM_ROOT property protocol
  // if present (OI-toolkit behaviour) or the real root otherwise.
  xproto::WindowId EffectiveRootForPopups();

 private:
  Display display_;
  ClientAppConfig config_;
  xproto::WindowId window_ = xproto::kNone;
  xbase::Point believed_root_position_;
  xproto::WindowId current_parent_ = xproto::kNone;
  int reparent_count_ = 0;
  int configure_notify_count_ = 0;
  bool saw_delete_window_ = false;
};

}  // namespace xlib

#endif  // SRC_XLIB_CLIENT_APP_H_
