// ICCCM property codecs: encode/decode the client↔WM communication
// properties (paper §6.3, §7) against the byte-valued property store.
#ifndef SRC_XLIB_ICCCM_H_
#define SRC_XLIB_ICCCM_H_

#include <optional>
#include <string>
#include <vector>

#include "src/xlib/display.h"
#include "src/xproto/hints.h"

namespace xlib {

// WM_NAME / WM_ICON_NAME --------------------------------------------------
bool SetWmName(Display* dpy, xproto::WindowId window, const std::string& name);
std::optional<std::string> GetWmName(Display* dpy, xproto::WindowId window);
bool SetWmIconName(Display* dpy, xproto::WindowId window, const std::string& name);
std::optional<std::string> GetWmIconName(Display* dpy, xproto::WindowId window);

// WM_CLASS (instance NUL class NUL) ----------------------------------------
bool SetWmClass(Display* dpy, xproto::WindowId window, const xproto::WmClass& wm_class);
std::optional<xproto::WmClass> GetWmClass(Display* dpy, xproto::WindowId window);

// WM_COMMAND (argv, NUL-terminated strings) --------------------------------
bool SetWmCommand(Display* dpy, xproto::WindowId window,
                  const std::vector<std::string>& argv);
std::optional<std::vector<std::string>> GetWmCommand(Display* dpy, xproto::WindowId window);

// WM_CLIENT_MACHINE ----------------------------------------------------------
bool SetWmClientMachine(Display* dpy, xproto::WindowId window, const std::string& machine);
std::optional<std::string> GetWmClientMachine(Display* dpy, xproto::WindowId window);

// WM_TRANSIENT_FOR (ICCCM §4.1.2.6) ------------------------------------------
// The getter sanitizes self-references to kNone; deeper cycle-breaking across
// chains of transient windows is the window manager's job (it knows the set
// of managed windows).
bool SetTransientForHint(Display* dpy, xproto::WindowId window, xproto::WindowId owner);
std::optional<xproto::WindowId> GetTransientForHint(Display* dpy, xproto::WindowId window);

// WM_NORMAL_HINTS (XSizeHints) -----------------------------------------------
bool SetWmNormalHints(Display* dpy, xproto::WindowId window, const xproto::SizeHints& hints);
std::optional<xproto::SizeHints> GetWmNormalHints(Display* dpy, xproto::WindowId window);

// WM_HINTS (XWMHints) ----------------------------------------------------------
bool SetWmHints(Display* dpy, xproto::WindowId window, const xproto::WmHints& hints);
std::optional<xproto::WmHints> GetWmHints(Display* dpy, xproto::WindowId window);

// WM_STATE (set by the window manager; read by session managers) ---------------
bool SetWmState(Display* dpy, xproto::WindowId window, xproto::WmState state,
                xproto::WindowId icon_window);
struct WmStateValue {
  xproto::WmState state = xproto::WmState::kWithdrawn;
  xproto::WindowId icon_window = xproto::kNone;
};
std::optional<WmStateValue> GetWmState(Display* dpy, xproto::WindowId window);

// WM_PROTOCOLS ------------------------------------------------------------------
bool SetWmProtocols(Display* dpy, xproto::WindowId window,
                    const std::vector<std::string>& protocols);
std::optional<std::vector<std::string>> GetWmProtocols(Display* dpy, xproto::WindowId window);

// ICCCM §4.1.4 WM_CHANGE_STATE: how a client asks the WM to iconify it.
bool RequestIconify(Display* dpy, xproto::WindowId window, int screen);

// ICCCM §4.2.8 WM_DELETE_WINDOW message from WM to client.
bool SendDeleteWindow(Display* dpy, xproto::WindowId window);

// Synthetic ConfigureNotify with root-relative coordinates (ICCCM §4.1.5);
// sent by the WM when it moves a frame without resizing the client.
bool SendSyntheticConfigureNotify(Display* dpy, xproto::WindowId window,
                                  const xbase::Rect& root_relative_geometry);

}  // namespace xlib

#endif  // SRC_XLIB_ICCCM_H_
