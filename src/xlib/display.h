// Client-side library over the server simulator — the Xlib substitute.
//
// A Display is one client connection: it owns a client id, forwards requests
// to the in-process server, and drains its own event queue.  The call
// surface intentionally mirrors Xlib (CreateSimpleWindow, SelectInput,
// InternAtom, ChangeProperty, NextEvent, ...) so the window-manager code
// above reads like real X client code.
#ifndef SRC_XLIB_DISPLAY_H_
#define SRC_XLIB_DISPLAY_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/xproto/error.h"
#include "src/xproto/events.h"
#include "src/xproto/sanitize.h"
#include "src/xproto/transport.h"
#include "src/xproto/types.h"
#include "src/xserver/server.h"

namespace xlib {

class Display {
 public:
  // Connects to the in-process server.  `client_machine` models the host
  // this client runs on (clients "are not constrained to be run on the same
  // system that is actually running the X server", paper §1).
  explicit Display(xserver::Server* server, std::string client_machine = "localhost");

  // Connects to an out-of-process server over its listening socket
  // (docs/PROTOCOL.md "Out-of-process operation"; '@'-prefixed paths name
  // the abstract namespace).  The constructor performs the QueryScreens
  // handshake; check Connected() before use.  Every request travels the
  // wire — there is no direct-call fast path and no Server pointer, so
  // server() must not be called on a remote display.
  explicit Display(const std::string& socket_path, std::string client_machine = "remote");

  // Remote display from $SWM_SOCKET (the conventional handoff from a server
  // that forked us).  nullptr when the variable is unset or the handshake
  // failed.
  static std::unique_ptr<Display> FromEnv(std::string client_machine = "remote");

  ~Display();

  Display(const Display&) = delete;
  Display& operator=(const Display&) = delete;

  xserver::Server& server() { return *server_; }
  const xserver::Server& server() const { return *server_; }
  xproto::ClientId client_id() const { return client_; }
  const std::string& client_machine() const { return machine_; }

  // True for displays constructed over a socket (no in-process Server).
  bool remote() const { return endpoint_ != nullptr; }
  // In-process displays are always connected; remote ones only after the
  // QueryScreens handshake succeeded and while the socket stays open.
  bool Connected() const {
    return remote() ? endpoint_->open() && !screens_.empty() : true;
  }
  // Remote socket fd for poll(2)/epoll waits; -1 in-process.
  int PollFd() const { return remote() ? endpoint_->PollFd() : -1; }

  // ---- Error handling ------------------------------------------------------
  // XSetErrorHandler-style: the handler runs synchronously when the server
  // raises an error against this connection.  Returns the previous handler;
  // pass nullptr to restore the default (which logs a warning).
  using XErrorHandler = std::function<void(const xproto::XError&)>;
  XErrorHandler SetErrorHandler(XErrorHandler handler);
  // Errors raised against this connection so far.
  uint64_t ErrorCount() const {
    return remote() ? remote_errors_ : server_->ErrorCount(client_);
  }
  // Per-connection request sequence number — requests issued so far.
  uint64_t RequestCount() const {
    return remote() ? remote_sequence_ : server_->SequenceNumber(client_);
  }
  // The most recent error, if any.
  const std::optional<xproto::XError>& LastError() const { return last_error_; }

  // ---- Wire mode (docs/PROTOCOL.md) ----------------------------------------
  // When enabled, every request this Display issues — void requests *and*
  // reply-bearing queries (GetGeometry, QueryTree, InternAtom, GetProperty,
  // ...) — is encoded to X11 wire bytes, routed through
  // Server::DispatchBytes, and for queries the answer is decoded back out
  // of the reply frame the dispatch emitted: the full serialize → parse →
  // dispatch → encode-reply → decode-reply round trip an out-of-process
  // client exercises.  The handful of calls with no wire encoding
  // (ShapeSetMask, pointer/focus introspection) fall back to direct calls
  // and are counted in wire_stats().wire_fallbacks.  Off by default:
  // direct calls are the fast path.
  void set_wire_mode(bool enable) { wire_mode_ = enable; }
  bool wire_mode() const { return wire_mode_; }

  struct WireStats {
    uint64_t wire_requests = 0;      // Requests encoded and byte-routed.
    uint64_t wire_replies = 0;       // Reply frames decoded back.
    uint64_t wire_fallbacks = 0;     // Wire-mode calls with no wire encoding.
    uint64_t reply_parse_errors = 0; // Reply frames that failed to decode.
  };
  const WireStats& wire_stats() const { return wire_stats_; }

  // ---- ICCCM sanitizer (docs/ROBUSTNESS.md) --------------------------------
  // What the sanitizing decoders in xlib/icccm repaired on this connection.
  // Hostile clients show up here, not as crashes.
  const xproto::SanitizerStats& sanitizer_stats() const { return sanitizer_stats_; }
  xproto::SanitizerStats* mutable_sanitizer_stats() { return &sanitizer_stats_; }

  // ---- Screens -----------------------------------------------------------
  // Remote displays answer from the screen table the QueryScreens handshake
  // cached — screen geometry is immutable for the life of a connection.
  int ScreenCount() const {
    return remote() ? static_cast<int>(screens_.size()) : server_->ScreenCount();
  }
  xproto::WindowId RootWindow(int screen = 0) const {
    if (remote()) {
      return ScreenKnown(screen) ? screens_[screen].root : xproto::kNone;
    }
    return server_->RootWindow(screen);
  }
  xbase::Size DisplaySize(int screen = 0) const {
    if (remote()) {
      return ScreenKnown(screen) ? screens_[screen].size : xbase::Size{};
    }
    return server_->screen(screen).size;
  }
  bool IsMonochrome(int screen = 0) const {
    if (remote()) {
      return ScreenKnown(screen) && screens_[screen].monochrome;
    }
    return server_->screen(screen).monochrome;
  }

  // ---- Windows -----------------------------------------------------------
  xproto::WindowId CreateWindow(xproto::WindowId parent, const xbase::Rect& geometry,
                                int border_width = 0, bool override_redirect = false,
                                xproto::WindowClass window_class =
                                    xproto::WindowClass::kInputOutput);
  bool DestroyWindow(xproto::WindowId window);
  bool MapWindow(xproto::WindowId window);
  bool MapRaised(xproto::WindowId window);
  bool UnmapWindow(xproto::WindowId window);
  bool ReparentWindow(xproto::WindowId window, xproto::WindowId parent,
                      const xbase::Point& position);
  bool ConfigureWindow(xproto::WindowId window, uint16_t value_mask,
                       const xserver::ConfigureValues& values);
  bool MoveWindow(xproto::WindowId window, const xbase::Point& position);
  bool ResizeWindow(xproto::WindowId window, const xbase::Size& size);
  bool MoveResizeWindow(xproto::WindowId window, const xbase::Rect& geometry);
  bool RaiseWindow(xproto::WindowId window);
  bool LowerWindow(xproto::WindowId window);
  bool SelectInput(xproto::WindowId window, uint32_t event_mask);
  bool AddToSaveSet(xproto::WindowId window);
  bool RemoveFromSaveSet(xproto::WindowId window);

  std::optional<xserver::WindowAttributes> GetWindowAttributes(xproto::WindowId window) const;
  std::optional<xbase::Rect> GetGeometry(xproto::WindowId window) const;
  std::optional<xserver::QueryTreeReply> QueryTree(xproto::WindowId window) const;
  std::optional<xbase::Point> TranslateCoordinates(xproto::WindowId src, xproto::WindowId dst,
                                                   const xbase::Point& point) const;

  // ---- Atoms & properties --------------------------------------------------
  xproto::AtomId InternAtom(const std::string& name);
  std::optional<std::string> GetAtomName(xproto::AtomId atom) const;

  bool ChangeProperty(xproto::WindowId window, xproto::AtomId property, xproto::AtomId type,
                      int format, xserver::PropMode mode, const std::vector<uint8_t>& data);
  std::optional<xserver::PropertyRec> GetProperty(xproto::WindowId window,
                                                  xproto::AtomId property) const;
  bool DeleteProperty(xproto::WindowId window, xproto::AtomId property);

  // Typed helpers (property names interned on the fly).
  bool SetStringProperty(xproto::WindowId window, const std::string& name,
                         const std::string& value);
  std::optional<std::string> GetStringProperty(xproto::WindowId window,
                                               const std::string& name) const;
  bool AppendStringProperty(xproto::WindowId window, const std::string& name,
                            const std::string& value);
  bool SetCardinalProperty(xproto::WindowId window, const std::string& name,
                           const std::vector<uint32_t>& values);
  std::optional<std::vector<uint32_t>> GetCardinalProperty(xproto::WindowId window,
                                                           const std::string& name) const;
  bool SetWindowIdProperty(xproto::WindowId window, const std::string& name,
                           xproto::WindowId value);
  std::optional<xproto::WindowId> GetWindowIdProperty(xproto::WindowId window,
                                                      const std::string& name) const;

  // ---- Events --------------------------------------------------------------
  bool SendEvent(xproto::WindowId destination, uint32_t event_mask, xproto::Event event);
  std::optional<xproto::Event> NextEvent();
  size_t Pending() const;
  // Drains the queue calling `handler` for each event; returns count handled.
  template <typename Handler>
  int DrainEvents(Handler&& handler) {
    int n = 0;
    while (std::optional<xproto::Event> event = NextEvent()) {
      handler(*event);
      ++n;
    }
    return n;
  }

  // ---- Focus ---------------------------------------------------------------
  bool SetInputFocus(xproto::WindowId window);
  xproto::WindowId GetInputFocus() const;

  // ---- Pointer -------------------------------------------------------------
  void WarpPointer(int screen, const xbase::Point& root_pos) {
    if (server_ == nullptr) {
      WireFallback("WarpPointer");
      return;
    }
    server_->WarpPointer(screen, root_pos);
  }
  xserver::PointerState QueryPointer() const;
  bool GrabButton(xproto::WindowId window, int button, uint32_t modifiers,
                  uint32_t event_mask);
  bool UngrabButton(xproto::WindowId window, int button, uint32_t modifiers);

  // ---- SHAPE ----------------------------------------------------------------
  bool ShapeSetMask(xproto::WindowId window, const xbase::Bitmap& mask);
  bool ShapeSetRegion(xproto::WindowId window, xbase::Region region);
  bool ShapeClear(xproto::WindowId window);
  bool ShapeSelect(xproto::WindowId window, bool enable);
  bool IsShaped(xproto::WindowId window) const;

  // ---- Drawing ---------------------------------------------------------------
  bool SetWindowBackground(xproto::WindowId window, char background);
  bool SetCursor(xproto::WindowId window, const std::string& name);
  bool ClearWindow(xproto::WindowId window);
  bool Draw(xproto::WindowId window, xserver::DrawOp op);

 private:
  // Wire-mode funnel: encodes `request` and dispatches the bytes.  Returns
  // true when the one frame parsed and executed cleanly.
  bool Issue(xproto::Request request);
  // Same funnel for CreateWindow (the id comes back via DispatchResult).
  xproto::WindowId IssueCreate(xproto::CreateWindowRequest request);
  // Query funnel: dispatches the encoded request and decodes the reply frame
  // it produced.  nullopt when the server raised an X error instead.
  std::optional<xproto::Reply> RoundTrip(xproto::Request request) const;
  // Accounting for wire-mode calls that have no wire encoding and must go
  // direct (logged every 64th per call site, counted always).
  void WireFallback(const char* what) const;

  bool ScreenKnown(int screen) const {
    return screen >= 0 && screen < static_cast<int>(screens_.size());
  }
  // ---- Remote transport (socket-connected displays) ------------------------
  // Fire-and-forget void request: queue, flush, opportunistically drain any
  // inbound frames already waiting.  Errors surface asynchronously, as in
  // real Xlib.
  bool RemoteIssue(const xproto::Request& request);
  // Blocking (bounded) query round trip over the socket.
  std::optional<xproto::Reply> RemoteRoundTrip(const xproto::Request& request);
  // CreateWindow + QueryClientWindows: the wire substitute for the
  // in-process DispatchResult::last_created_window.
  xproto::WindowId RemoteCreate(const xproto::CreateWindowRequest& request);
  // Dispatches one inbound frame: errors hit the error handler, events join
  // the local queue, a reply with sequence == want_sequence lands in
  // *reply_out.  Returns true when the frame settles the round trip
  // `want_sequence` identifies (matching reply or matching error); pass
  // want_sequence < 0 when not waiting.
  bool HandleRemoteFrame(std::span<const uint8_t> frame, int want_sequence,
                         std::optional<xproto::Reply>* reply_out);
  // Non-blocking drain of whatever the socket has (events, stray errors).
  void DrainRemote();

  xserver::Server* server_;
  xproto::ClientId client_;
  std::string machine_;
  bool wire_mode_ = false;
  mutable WireStats wire_stats_;
  XErrorHandler error_handler_;
  std::optional<xproto::XError> last_error_;
  xproto::SanitizerStats sanitizer_stats_;

  // Remote-mode state (null/empty for in-process displays).
  std::unique_ptr<xproto::WireClientEndpoint> endpoint_;
  std::vector<xserver::ScreenInfo> screens_;
  uint64_t remote_sequence_ = 0;  // Local mirror of the server's per-client count.
  uint64_t remote_errors_ = 0;
  std::deque<xproto::Event> remote_events_;
};

}  // namespace xlib

#endif  // SRC_XLIB_DISPLAY_H_
