#include "src/xlib/display.h"

#include <poll.h>

#include <cstdlib>

#include "src/base/logging.h"
#include "src/base/poller.h"

namespace xlib {

using xproto::AtomId;
using xproto::WindowId;

namespace {

// Wall-clock bound on a remote query round trip.  A healthy server answers
// in microseconds; blowing this means the server died or wedged, and the
// caller gets nullopt (the same shape a server-raised error produces).
constexpr int64_t kRemoteRoundTripMs = 5000;

}  // namespace

Display::Display(xserver::Server* server, std::string client_machine)
    : server_(server), machine_(std::move(client_machine)) {
  client_ = server_->Connect(machine_);
  server_->SetErrorCallback(client_, [this](const xproto::XError& error) {
    last_error_ = error;
    if (error_handler_) {
      error_handler_(error);
    } else {
      XB_LOG(Warning) << "X error: " << xproto::ErrorText(error);
    }
  });
}

Display::Display(const std::string& socket_path, std::string client_machine)
    : server_(nullptr), client_(0), machine_(std::move(client_machine)) {
  // Remote displays have no direct-call path: everything is wire.
  wire_mode_ = true;
  std::unique_ptr<xproto::ByteChannel> channel = xproto::ConnectSocket(socket_path);
  if (channel == nullptr) {
    XB_LOG(Warning) << "display: cannot connect to " << socket_path;
    // Leave endpoint_ null-but-remote impossible: park a closed endpoint so
    // remote() stays true and every call fails soft instead of touching a
    // null server_.
    endpoint_ = std::make_unique<xproto::WireClientEndpoint>(nullptr);
    return;
  }
  endpoint_ = std::make_unique<xproto::WireClientEndpoint>(std::move(channel));
  // Connection setup: learn the screen table.  Failure (timeout, dead
  // socket) leaves screens_ empty and Connected() false.
  std::optional<xproto::Reply> reply = RemoteRoundTrip(xproto::QueryScreensRequest{});
  if (reply.has_value()) {
    if (const auto* r = std::get_if<xproto::ScreensReply>(&*reply)) {
      int number = 0;
      for (const auto& s : r->screens) {
        xserver::ScreenInfo info;
        info.number = number++;
        info.root = s.root;
        info.size = xbase::Size{s.width, s.height};
        info.monochrome = s.monochrome;
        screens_.push_back(info);
      }
    }
  }
  if (screens_.empty()) {
    XB_LOG(Warning) << "display: QueryScreens handshake failed on " << socket_path;
  }
}

std::unique_ptr<Display> Display::FromEnv(std::string client_machine) {
  const char* path = std::getenv("SWM_SOCKET");
  if (path == nullptr || *path == '\0') {
    return nullptr;
  }
  auto display = std::make_unique<Display>(std::string(path), std::move(client_machine));
  if (!display->Connected()) {
    return nullptr;
  }
  return display;
}

bool Display::HandleRemoteFrame(std::span<const uint8_t> frame, int want_sequence,
                                std::optional<xproto::Reply>* reply_out) {
  if (frame.empty()) {
    return false;
  }
  xproto::ParseError parse_error;
  if (frame[0] == 0) {  // Error frame.
    xproto::XError error;
    if (xproto::DecodeError(frame, &error, &parse_error) == 0) {
      ++wire_stats_.reply_parse_errors;
      return false;
    }
    ++remote_errors_;
    last_error_ = error;
    if (error_handler_) {
      error_handler_(error);
    } else {
      XB_LOG(Warning) << "X error: " << xproto::ErrorText(error);
    }
    return want_sequence >= 0 &&
           (error.sequence & 0xffff) == static_cast<uint64_t>(want_sequence);
  }
  if (frame[0] == 1) {  // Reply frame.
    xproto::Reply reply;
    uint16_t sequence = 0;
    if (xproto::DecodeReply(frame, &reply, &parse_error, &sequence) == 0) {
      ++wire_stats_.reply_parse_errors;
      XB_LOG(Warning) << "reply decode failed: " << parse_error.detail;
      return false;
    }
    if (want_sequence >= 0 && sequence == static_cast<uint16_t>(want_sequence)) {
      ++wire_stats_.wire_replies;
      *reply_out = std::move(reply);
      return true;
    }
    // A reply nobody is waiting for: every query consumes its reply before
    // returning, so this is a stale leftover.  Drop it.
    return false;
  }
  // Event frame.
  xproto::Event event;
  if (xproto::DecodeEvent(frame, &event, &parse_error) == 0) {
    ++wire_stats_.reply_parse_errors;
    return false;
  }
  remote_events_.push_back(std::move(event));
  return false;
}

void Display::DrainRemote() {
  if (endpoint_ == nullptr) {
    return;
  }
  endpoint_->Flush();
  endpoint_->Poll();
  std::optional<xproto::Reply> unused;
  while (std::optional<std::vector<uint8_t>> frame = endpoint_->NextFrame()) {
    HandleRemoteFrame(*frame, /*want_sequence=*/-1, &unused);
  }
}

bool Display::RemoteIssue(const xproto::Request& request) {
  if (endpoint_ == nullptr || !endpoint_->open()) {
    return false;
  }
  ++wire_stats_.wire_requests;
  ++remote_sequence_;
  endpoint_->QueueRequest(request);
  // Fire-and-forget, as in real Xlib: a failure surfaces later as an X
  // error frame.  The opportunistic drain keeps the inbound stream moving.
  endpoint_->Flush();
  DrainRemote();
  return endpoint_->open();
}

std::optional<xproto::Reply> Display::RemoteRoundTrip(const xproto::Request& request) {
  if (endpoint_ == nullptr || !endpoint_->open()) {
    return std::nullopt;
  }
  ++wire_stats_.wire_requests;
  uint64_t sequence = ++remote_sequence_;
  int want = static_cast<int>(sequence & 0xffff);
  endpoint_->QueueRequest(request);
  int64_t deadline = xbase::EventLoop::NowMs() + kRemoteRoundTripMs;
  std::optional<xproto::Reply> reply;
  for (;;) {
    endpoint_->Flush();
    endpoint_->Poll();
    while (std::optional<std::vector<uint8_t>> frame = endpoint_->NextFrame()) {
      if (HandleRemoteFrame(*frame, want, &reply)) {
        return reply;  // Matching reply, or nullopt if the server errored.
      }
    }
    if (!endpoint_->open()) {
      return std::nullopt;
    }
    int64_t remaining = deadline - xbase::EventLoop::NowMs();
    if (remaining <= 0) {
      XB_LOG(Warning) << "display: remote round trip timed out (seq " << sequence << ")";
      return std::nullopt;
    }
    struct pollfd pfd = {};
    pfd.fd = endpoint_->PollFd();
    pfd.events = POLLIN;
    if (endpoint_->queued_bytes() > 0) {
      pfd.events |= POLLOUT;
    }
    ::poll(&pfd, 1, static_cast<int>(remaining > 50 ? 50 : remaining));
  }
}

WindowId Display::RemoteCreate(const xproto::CreateWindowRequest& request) {
  uint64_t create_sequence = remote_sequence_ + 1;
  if (!RemoteIssue(request)) {
    return xproto::kNone;
  }
  // The query round trip is the synchronization point: any error the create
  // raised is on the stream ahead of this reply.
  std::optional<xproto::Reply> reply = RemoteRoundTrip(xproto::QueryClientWindowsRequest{});
  if (last_error_.has_value() &&
      (last_error_->sequence & 0xffff) == (create_sequence & 0xffff)) {
    return xproto::kNone;
  }
  if (!reply.has_value()) {
    return xproto::kNone;
  }
  const auto* r = std::get_if<xproto::ClientWindowsReply>(&*reply);
  if (r == nullptr || r->windows.empty()) {
    return xproto::kNone;
  }
  // Ids are minted monotonically and the reply is ascending: the newest
  // window — ours — is last.
  return r->windows.back();
}

bool Display::Issue(xproto::Request request) {
  if (remote()) {
    return RemoteIssue(request);
  }
  ++wire_stats_.wire_requests;
  xserver::Server::DispatchResult result =
      server_->DispatchBytes(client_, xproto::EncodeRequestBytes(request));
  return result.requests_dispatched == 1 && result.requests_failed == 0 &&
         result.parse_errors == 0;
}

xproto::WindowId Display::IssueCreate(xproto::CreateWindowRequest request) {
  if (remote()) {
    return RemoteCreate(request);
  }
  ++wire_stats_.wire_requests;
  xserver::Server::DispatchResult result =
      server_->DispatchBytes(client_, xproto::EncodeRequestBytes(request));
  return result.last_created_window;
}

std::optional<xproto::Reply> Display::RoundTrip(xproto::Request request) const {
  if (remote()) {
    return const_cast<Display*>(this)->RemoteRoundTrip(request);
  }
  ++wire_stats_.wire_requests;
  xserver::Server::DispatchResult result =
      server_->DispatchBytes(client_, xproto::EncodeRequestBytes(request));
  if (result.reply_bytes.empty()) {
    return std::nullopt;  // The server raised an X error instead of replying.
  }
  xproto::Reply reply;
  xproto::ParseError error;
  if (xproto::DecodeReply(result.reply_bytes, &reply, &error) == 0) {
    ++wire_stats_.reply_parse_errors;
    XB_LOG(Warning) << "reply decode failed: " << error.detail;
    return std::nullopt;
  }
  ++wire_stats_.wire_replies;
  return reply;
}

void Display::WireFallback(const char* what) const {
  if (!wire_mode_) {
    return;
  }
  ++wire_stats_.wire_fallbacks;
  XB_LOG_EVERY_N(Warning, std::string("wire-fallback-") + what, 64)
      << "wire mode: " << what << " has no wire encoding; falling back to a direct call";
}

Display::XErrorHandler Display::SetErrorHandler(XErrorHandler handler) {
  XErrorHandler previous = std::move(error_handler_);
  error_handler_ = std::move(handler);
  return previous;
}

Display::~Display() {
  if (remote()) {
    // Closing the socket is our disconnect: the server's readiness loop sees
    // EOF, drains, and sweeps this client's windows.
    endpoint_->Close();
    return;
  }
  if (server_->HasClient(client_)) {
    server_->Disconnect(client_);
  }
}

WindowId Display::CreateWindow(WindowId parent, const xbase::Rect& geometry, int border_width,
                               bool override_redirect, xproto::WindowClass window_class) {
  if (wire_mode_) {
    return IssueCreate({.parent = parent,
                        .geometry = geometry,
                        .border_width = border_width,
                        .window_class = window_class,
                        .override_redirect = override_redirect});
  }
  return server_->CreateWindow(client_, parent, geometry, border_width, window_class,
                               override_redirect);
}

bool Display::DestroyWindow(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::DestroyWindowRequest{.window = window});
  }
  return server_->DestroyWindow(client_, window);
}

bool Display::MapWindow(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::MapWindowRequest{.window = window});
  }
  return server_->MapWindow(client_, window);
}

bool Display::MapRaised(WindowId window) {
  if (wire_mode_) {
    RaiseWindow(window);
    return MapWindow(window);
  }
  server_->RaiseWindow(client_, window);
  return server_->MapWindow(client_, window);
}

bool Display::UnmapWindow(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::UnmapWindowRequest{.window = window});
  }
  return server_->UnmapWindow(client_, window);
}

bool Display::ReparentWindow(WindowId window, WindowId parent, const xbase::Point& position) {
  if (wire_mode_) {
    return Issue(
        xproto::ReparentWindowRequest{.window = window, .parent = parent, .position = position});
  }
  return server_->ReparentWindow(client_, window, parent, position);
}

bool Display::ConfigureWindow(WindowId window, uint16_t value_mask,
                              const xserver::ConfigureValues& values) {
  if (wire_mode_) {
    return Issue(xproto::ConfigureWindowRequest{.window = window,
                                                .value_mask = value_mask,
                                                .geometry = values.geometry,
                                                .border_width = values.border_width,
                                                .sibling = values.sibling,
                                                .stack_mode = values.stack_mode});
  }
  return server_->ConfigureWindow(client_, window, value_mask, values);
}

bool Display::MoveWindow(WindowId window, const xbase::Point& position) {
  if (wire_mode_) {
    xserver::ConfigureValues values;
    values.geometry.x = position.x;
    values.geometry.y = position.y;
    return ConfigureWindow(window, xproto::kConfigX | xproto::kConfigY, values);
  }
  return server_->MoveWindow(client_, window, position);
}

bool Display::ResizeWindow(WindowId window, const xbase::Size& size) {
  if (wire_mode_) {
    xserver::ConfigureValues values;
    values.geometry.width = size.width;
    values.geometry.height = size.height;
    return ConfigureWindow(window, xproto::kConfigWidth | xproto::kConfigHeight, values);
  }
  return server_->ResizeWindow(client_, window, size);
}

bool Display::MoveResizeWindow(WindowId window, const xbase::Rect& geometry) {
  if (wire_mode_) {
    xserver::ConfigureValues values;
    values.geometry = geometry;
    return ConfigureWindow(window,
                           xproto::kConfigX | xproto::kConfigY | xproto::kConfigWidth |
                               xproto::kConfigHeight,
                           values);
  }
  return server_->MoveResizeWindow(client_, window, geometry);
}

bool Display::RaiseWindow(WindowId window) {
  if (wire_mode_) {
    xserver::ConfigureValues values;
    values.stack_mode = xproto::StackMode::kAbove;
    return ConfigureWindow(window, xproto::kConfigStackMode, values);
  }
  return server_->RaiseWindow(client_, window);
}

bool Display::LowerWindow(WindowId window) {
  if (wire_mode_) {
    xserver::ConfigureValues values;
    values.stack_mode = xproto::StackMode::kBelow;
    return ConfigureWindow(window, xproto::kConfigStackMode, values);
  }
  return server_->LowerWindow(client_, window);
}

bool Display::SelectInput(WindowId window, uint32_t event_mask) {
  if (wire_mode_) {
    return Issue(xproto::SelectInputRequest{.window = window, .event_mask = event_mask});
  }
  return server_->SelectInput(client_, window, event_mask);
}

bool Display::AddToSaveSet(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::ChangeSaveSetRequest{.window = window, .add = true});
  }
  return server_->ChangeSaveSet(client_, window, /*add=*/true);
}

bool Display::RemoveFromSaveSet(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::ChangeSaveSetRequest{.window = window, .add = false});
  }
  return server_->ChangeSaveSet(client_, window, /*add=*/false);
}

std::optional<xserver::WindowAttributes> Display::GetWindowAttributes(WindowId window) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply =
        RoundTrip(xproto::GetWindowAttributesRequest{.window = window});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    const auto* r = std::get_if<xproto::AttributesReply>(&*reply);
    if (r == nullptr) {
      return std::nullopt;
    }
    xserver::WindowAttributes attrs;
    attrs.window_class = r->window_class;
    attrs.map_state = r->map_state;
    attrs.override_redirect = r->override_redirect;
    attrs.all_event_masks = r->all_event_masks;
    attrs.border_width = r->border_width;
    return attrs;
  }
  return server_->GetWindowAttributes(window);
}

std::optional<xbase::Rect> Display::GetGeometry(WindowId window) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply =
        RoundTrip(xproto::GetGeometryRequest{.window = window});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    const auto* r = std::get_if<xproto::GeometryReply>(&*reply);
    return r != nullptr ? std::optional<xbase::Rect>(r->geometry) : std::nullopt;
  }
  return server_->GetGeometry(window);
}

std::optional<xserver::QueryTreeReply> Display::QueryTree(WindowId window) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply = RoundTrip(xproto::QueryTreeRequest{.window = window});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    auto* r = std::get_if<xproto::TreeReply>(&*reply);
    if (r == nullptr) {
      return std::nullopt;
    }
    xserver::QueryTreeReply tree;
    tree.root = r->root;
    tree.parent = r->parent;
    tree.children = std::move(r->children);
    return tree;
  }
  return server_->QueryTree(window);
}

std::optional<xbase::Point> Display::TranslateCoordinates(WindowId src, WindowId dst,
                                                          const xbase::Point& point) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply = RoundTrip(
        xproto::TranslateCoordinatesRequest{.src = src, .dst = dst, .point = point});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    const auto* r = std::get_if<xproto::CoordinatesReply>(&*reply);
    return r != nullptr ? std::optional<xbase::Point>(r->position) : std::nullopt;
  }
  return server_->TranslateCoordinates(src, dst, point);
}

AtomId Display::InternAtom(const std::string& name) {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply = RoundTrip(xproto::InternAtomRequest{.name = name});
    if (reply.has_value()) {
      if (const auto* r = std::get_if<xproto::AtomReply>(&*reply)) {
        return r->atom;
      }
    }
    return xproto::kAtomNone;
  }
  return server_->InternAtom(name);
}

std::optional<std::string> Display::GetAtomName(AtomId atom) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply = RoundTrip(xproto::GetAtomNameRequest{.atom = atom});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    auto* r = std::get_if<xproto::AtomNameReply>(&*reply);
    return r != nullptr ? std::optional<std::string>(std::move(r->name)) : std::nullopt;
  }
  return server_->GetAtomName(atom);
}

bool Display::ChangeProperty(WindowId window, AtomId property, AtomId type, int format,
                             xserver::PropMode mode, const std::vector<uint8_t>& data) {
  if (wire_mode_) {
    return Issue(xproto::ChangePropertyRequest{
        .window = window,
        .property = property,
        .type = type,
        .format = format,
        .mode = static_cast<uint8_t>(mode),
        .data = data});
  }
  return server_->ChangeProperty(client_, window, property, type, format, mode, data);
}

std::optional<xserver::PropertyRec> Display::GetProperty(WindowId window,
                                                         AtomId property) const {
  if (wire_mode_) {
    std::optional<xproto::Reply> reply =
        RoundTrip(xproto::GetPropertyRequest{.window = window, .property = property});
    if (!reply.has_value()) {
      return std::nullopt;
    }
    auto* r = std::get_if<xproto::PropertyReply>(&*reply);
    if (r == nullptr || !r->found) {
      return std::nullopt;
    }
    xserver::PropertyRec rec;
    rec.type = r->type;
    rec.format = r->format;
    rec.data = std::move(r->data);
    return rec;
  }
  return server_->GetProperty(window, property);
}

bool Display::DeleteProperty(WindowId window, AtomId property) {
  if (wire_mode_) {
    return Issue(xproto::DeletePropertyRequest{.window = window, .property = property});
  }
  return server_->DeleteProperty(client_, window, property);
}

bool Display::SetStringProperty(WindowId window, const std::string& name,
                                const std::string& value) {
  AtomId prop = InternAtom(name);
  AtomId type = InternAtom("STRING");
  std::vector<uint8_t> data(value.begin(), value.end());
  return ChangeProperty(window, prop, type, 8, xserver::PropMode::kReplace, data);
}

std::optional<std::string> Display::GetStringProperty(WindowId window,
                                                      const std::string& name) const {
  // Routed through this->InternAtom / this->GetProperty so wire mode covers
  // the typed helpers too.
  auto rec = GetProperty(window, const_cast<Display*>(this)->InternAtom(name));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  return std::string(rec->data.begin(), rec->data.end());
}

bool Display::AppendStringProperty(WindowId window, const std::string& name,
                                   const std::string& value) {
  AtomId prop = InternAtom(name);
  AtomId type = InternAtom("STRING");
  std::vector<uint8_t> data(value.begin(), value.end());
  return ChangeProperty(window, prop, type, 8, xserver::PropMode::kAppend, data);
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  out->push_back(static_cast<uint8_t>(value & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 24) & 0xff));
}

std::optional<std::vector<uint32_t>> GetU32s(const xserver::PropertyRec& rec) {
  if (rec.format != 32 || rec.data.size() % 4 != 0) {
    return std::nullopt;
  }
  std::vector<uint32_t> out;
  for (size_t i = 0; i < rec.data.size(); i += 4) {
    out.push_back(static_cast<uint32_t>(rec.data[i]) |
                  (static_cast<uint32_t>(rec.data[i + 1]) << 8) |
                  (static_cast<uint32_t>(rec.data[i + 2]) << 16) |
                  (static_cast<uint32_t>(rec.data[i + 3]) << 24));
  }
  return out;
}

}  // namespace

bool Display::SetCardinalProperty(WindowId window, const std::string& name,
                                  const std::vector<uint32_t>& values) {
  AtomId prop = InternAtom(name);
  AtomId type = InternAtom("CARDINAL");
  std::vector<uint8_t> data;
  for (uint32_t v : values) {
    PutU32(&data, v);
  }
  return ChangeProperty(window, prop, type, 32, xserver::PropMode::kReplace, data);
}

std::optional<std::vector<uint32_t>> Display::GetCardinalProperty(
    WindowId window, const std::string& name) const {
  auto rec = GetProperty(window, const_cast<Display*>(this)->InternAtom(name));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  return GetU32s(*rec);
}

bool Display::SetWindowIdProperty(WindowId window, const std::string& name, WindowId value) {
  AtomId prop = InternAtom(name);
  AtomId type = InternAtom("WINDOW");
  std::vector<uint8_t> data;
  PutU32(&data, value);
  return ChangeProperty(window, prop, type, 32, xserver::PropMode::kReplace, data);
}

std::optional<WindowId> Display::GetWindowIdProperty(WindowId window,
                                                     const std::string& name) const {
  auto rec = GetProperty(window, const_cast<Display*>(this)->InternAtom(name));
  if (!rec.has_value()) {
    return std::nullopt;
  }
  auto values = GetU32s(*rec);
  if (!values.has_value() || values->empty()) {
    return std::nullopt;
  }
  return (*values)[0];
}

bool Display::SendEvent(WindowId destination, uint32_t event_mask, xproto::Event event) {
  if (wire_mode_) {
    return Issue(xproto::SendEventRequest{
        .destination = destination, .event_mask = event_mask, .event = std::move(event)});
  }
  return server_->SendEvent(client_, destination, event_mask, std::move(event));
}

bool Display::SetInputFocus(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::SetInputFocusRequest{.window = window});
  }
  return server_->SetInputFocus(client_, window);
}

std::optional<xproto::Event> Display::NextEvent() {
  if (remote()) {
    DrainRemote();
    if (remote_events_.empty()) {
      return std::nullopt;
    }
    xproto::Event event = std::move(remote_events_.front());
    remote_events_.pop_front();
    return event;
  }
  return server_->NextEvent(client_);
}

size_t Display::Pending() const {
  if (remote()) {
    const_cast<Display*>(this)->DrainRemote();
    return remote_events_.size();
  }
  return server_->PendingEvents(client_);
}

bool Display::GrabButton(WindowId window, int button, uint32_t modifiers,
                         uint32_t event_mask) {
  if (wire_mode_) {
    return Issue(xproto::GrabButtonRequest{.window = window,
                                           .button = button,
                                           .modifiers = modifiers,
                                           .event_mask = event_mask});
  }
  return server_->GrabButton(client_, window, button, modifiers, event_mask);
}

bool Display::UngrabButton(WindowId window, int button, uint32_t modifiers) {
  if (wire_mode_) {
    return Issue(xproto::UngrabButtonRequest{
        .window = window, .button = button, .modifiers = modifiers});
  }
  return server_->UngrabButton(client_, window, button, modifiers);
}

xproto::WindowId Display::GetInputFocus() const {
  WireFallback("GetInputFocus");
  return server_ != nullptr ? server_->GetInputFocus() : xproto::kNone;
}

xserver::PointerState Display::QueryPointer() const {
  WireFallback("QueryPointer");
  return server_ != nullptr ? server_->QueryPointer() : xserver::PointerState{};
}

bool Display::IsShaped(WindowId window) const {
  WireFallback("IsShaped");
  return server_ != nullptr && server_->IsShaped(window);
}

bool Display::ShapeSetMask(WindowId window, const xbase::Bitmap& mask) {
  WireFallback("ShapeSetMask");
  return server_ != nullptr && server_->ShapeSetMask(client_, window, mask);
}

bool Display::ShapeSetRegion(WindowId window, xbase::Region region) {
  if (wire_mode_) {
    return Issue(xproto::ShapeRegionRequest{.window = window, .rects = region.rects()});
  }
  return server_->ShapeSetRegion(client_, window, std::move(region));
}

bool Display::ShapeClear(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::ShapeClearRequest{.window = window});
  }
  return server_->ShapeClear(client_, window);
}

bool Display::ShapeSelect(WindowId window, bool enable) {
  if (wire_mode_) {
    return Issue(xproto::ShapeSelectRequest{.window = window, .enable = enable});
  }
  return server_->ShapeSelect(client_, window, enable);
}

bool Display::SetWindowBackground(WindowId window, char background) {
  if (wire_mode_) {
    return Issue(xproto::SetWindowBackgroundRequest{.window = window, .background = background});
  }
  return server_->SetWindowBackground(client_, window, background);
}

bool Display::SetCursor(WindowId window, const std::string& name) {
  if (wire_mode_) {
    return Issue(xproto::SetCursorRequest{.window = window, .name = name});
  }
  return server_->SetCursor(client_, window, name);
}

bool Display::ClearWindow(WindowId window) {
  if (wire_mode_) {
    return Issue(xproto::ClearWindowRequest{.window = window});
  }
  return server_->ClearWindow(client_, window);
}

bool Display::Draw(WindowId window, xserver::DrawOp op) {
  if (wire_mode_) {
    xproto::DrawRequest request;
    request.window = window;
    request.kind = static_cast<uint8_t>(op.kind);
    request.rect = op.rect;
    request.fill = op.fill;
    request.text = op.text;
    if (!op.bitmap.IsEmpty()) {
      request.bitmap_width = op.bitmap.width();
      request.bitmap_height = op.bitmap.height();
      request.bitmap_cells.reserve(static_cast<size_t>(request.bitmap_width) *
                                   request.bitmap_height);
      for (int y = 0; y < request.bitmap_height; ++y) {
        for (int x = 0; x < request.bitmap_width; ++x) {
          request.bitmap_cells.push_back(op.bitmap.Get(x, y) ? 1 : 0);
        }
      }
    }
    return Issue(std::move(request));
  }
  return server_->Draw(client_, window, std::move(op));
}

}  // namespace xlib
