#include "src/base/thread_pool.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xbase {

ThreadPool::ThreadPool(int threads) : thread_count_(std::max(1, threads)) {
  threads_.reserve(static_cast<size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

int ThreadPool::RunTasks(const std::function<void(int, int)>& body, int count, int worker) {
  int executed = 0;
  for (;;) {
    int task = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (task >= count) {
      return executed;
    }
    body(task, worker);
    ++executed;
  }
}

void ThreadPool::ParallelFor(int count, const std::function<void(int, int)>& body) {
  if (count <= 0) {
    return;
  }
  if (thread_count_ == 1 || count == 1) {
    for (int task = 0; task < count; ++task) {
      body(task, 0);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    XB_CHECK(body_ == nullptr);  // Nested/concurrent ParallelFor is not supported.
    body_ = &body;
    count_ = count;
    completed_ = 0;
    next_ticket_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  int executed = RunTasks(body, count, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  completed_ += executed;
  done_cv_.wait(lock, [this] { return completed_ == count_ && active_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerMain(int worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int, int)>* body = nullptr;
    int count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (body_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      body = body_;
      count = count_;
      ++active_;
    }
    int executed = RunTasks(*body, count, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += executed;
      --active_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace xbase
