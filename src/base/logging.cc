#include "src/base/logging.h"

#include <atomic>

namespace xbase {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};
std::atomic<int> g_error_count{0};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= LogSeverity::kWarning) {
    g_error_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (severity_ >= g_min_severity.load(std::memory_order_relaxed)) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

int LogErrorCount() { return g_error_count.load(std::memory_order_relaxed); }

}  // namespace xbase
