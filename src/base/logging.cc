#include "src/base/logging.h"

#include <atomic>
#include <map>
#include <mutex>

namespace xbase {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};
std::atomic<int> g_error_count{0};

std::mutex g_throttle_mutex;
std::map<std::string, int>& ThrottleCounts() {
  static auto* counts = new std::map<std::string, int>();
  return *counts;
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= LogSeverity::kWarning) {
    g_error_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (severity_ >= g_min_severity.load(std::memory_order_relaxed)) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

int LogErrorCount() { return g_error_count.load(std::memory_order_relaxed); }

bool ShouldLogEveryN(const std::string& key, int n) {
  if (n <= 1) {
    return true;
  }
  std::lock_guard<std::mutex> lock(g_throttle_mutex);
  int count = ThrottleCounts()[key]++;
  return count % n == 0;
}

void ResetLogThrottle() {
  std::lock_guard<std::mutex> lock(g_throttle_mutex);
  ThrottleCounts().clear();
}

int LogThrottleCount(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_throttle_mutex);
  auto it = ThrottleCounts().find(key);
  return it == ThrottleCounts().end() ? 0 : it->second;
}

}  // namespace xbase
