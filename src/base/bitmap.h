// 1-bit-deep images: icon glyphs, button images and SHAPE masks.
#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/region.h"

namespace xbase {

class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  bool IsEmpty() const { return width_ <= 0 || height_ <= 0; }

  bool Get(int x, int y) const;
  void Set(int x, int y, bool value);

  void Fill(bool value);
  void FillRect(const Rect& r, bool value);

  // Number of set pixels.
  int64_t PopCount() const;

  // The set of set pixels as a banded region — this is how the server turns
  // a shape mask into a bounding region.
  Region ToRegion() const;

  // Parses a trivially structured ASCII art literal: rows of '#'/'.'
  // separated by '\n'; all rows must have equal length.
  static std::optional<Bitmap> FromAscii(const std::string& art);
  std::string ToAscii() const;

  friend bool operator==(const Bitmap&, const Bitmap&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> bits_;  // Row-major, one byte per pixel for simplicity.
};

// Built-in images referenced by the paper / swm templates.
const Bitmap& XLogo32();        // Default icon image ("xlogo32 bitmap file").
const Bitmap& RoundedMask16();  // Small rounded-corner shape mask.
const Bitmap& CircleMask(int diameter);  // oclock-style circular shape.

}  // namespace xbase

#endif  // SRC_BASE_BITMAP_H_
