#include "src/base/region.h"

#include <algorithm>
#include <sstream>

namespace xbase {
namespace {

enum class OpKind { kUnion, kIntersect, kSubtract };

// A maximal run of rectangles sharing one (y, height) band in a canonical
// rect list.  Canonical form guarantees every rect with the same y has the
// same height, so a band is identified by the y of its first rect.
struct BandCursor {
  const Rect* rects = nullptr;
  size_t count = 0;
  size_t begin = 0;
  size_t end = 0;
  int y0 = 0;
  int y1 = 0;

  explicit BandCursor(const std::vector<Rect>& source)
      : rects(source.data()), count(source.size()) {
    Load();
  }

  bool valid() const { return begin < count; }

  void Load() {
    if (!valid()) {
      return;
    }
    y0 = rects[begin].y;
    y1 = rects[begin].Bottom();
    end = begin + 1;
    while (end < count && rects[end].y == y0) {
      ++end;
    }
  }

  void Advance() {
    begin = end;
    Load();
  }
};

// ---- Per-slab x-interval combination ----------------------------------------
// Each helper appends `Rect{_, y, _, h}` entries to `out` for one horizontal
// slab.  Inputs are disjoint, sorted, non-adjacent interval runs (band
// slices of canonical regions); outputs preserve that invariant.

void AppendCopy(const Rect* it, const Rect* last, int y, int h, std::vector<Rect>* out) {
  for (; it != last; ++it) {
    out->push_back(Rect{it->x, y, it->width, h});
  }
}

void AppendUnion(const Rect* a, const Rect* a_end, const Rect* b, const Rect* b_end,
                 int y, int h, std::vector<Rect>* out) {
  int left = 0;
  int right = 0;
  bool open = false;
  while (a != a_end || b != b_end) {
    const Rect* next;
    if (b == b_end || (a != a_end && a->x <= b->x)) {
      next = a++;
    } else {
      next = b++;
    }
    if (!open) {
      left = next->x;
      right = next->Right();
      open = true;
    } else if (next->x <= right) {
      right = std::max(right, next->Right());
    } else {
      out->push_back(Rect{left, y, right - left, h});
      left = next->x;
      right = next->Right();
    }
  }
  if (open) {
    out->push_back(Rect{left, y, right - left, h});
  }
}

void AppendIntersect(const Rect* a, const Rect* a_end, const Rect* b, const Rect* b_end,
                     int y, int h, std::vector<Rect>* out) {
  while (a != a_end && b != b_end) {
    int left = std::max(a->x, b->x);
    int right = std::min(a->Right(), b->Right());
    if (left < right) {
      out->push_back(Rect{left, y, right - left, h});
    }
    if (a->Right() < b->Right()) {
      ++a;
    } else {
      ++b;
    }
  }
}

void AppendSubtract(const Rect* a, const Rect* a_end, const Rect* b, const Rect* b_end,
                    int y, int h, std::vector<Rect>* out) {
  for (; a != a_end; ++a) {
    int pos = a->x;
    int right = a->Right();
    while (b != b_end && b->Right() <= pos) {
      ++b;
    }
    const Rect* hole = b;
    while (hole != b_end && hole->x < right) {
      if (hole->x > pos) {
        out->push_back(Rect{pos, y, hole->x - pos, h});
      }
      pos = std::max(pos, hole->Right());
      if (pos >= right) {
        break;
      }
      ++hole;
    }
    if (pos < right) {
      out->push_back(Rect{pos, y, right - pos, h});
    }
  }
}

// Tries to merge the band just appended at [band_begin, out.size()) into the
// previous band: same y seam and identical x-interval structure coalesce
// vertically, which is what keeps canonical form unique.
void CoalesceBands(std::vector<Rect>* out, size_t prev_begin, size_t band_begin) {
  size_t band_end = out->size();
  if (band_begin == band_end || prev_begin == band_begin) {
    return;
  }
  size_t prev_count = band_begin - prev_begin;
  if (prev_count != band_end - band_begin) {
    return;
  }
  const Rect& prev = (*out)[prev_begin];
  const Rect& cur = (*out)[band_begin];
  if (prev.Bottom() != cur.y) {
    return;
  }
  for (size_t i = 0; i < prev_count; ++i) {
    const Rect& p = (*out)[prev_begin + i];
    const Rect& c = (*out)[band_begin + i];
    if (p.x != c.x || p.width != c.width) {
      return;
    }
  }
  int grow = (*out)[band_begin].height;
  for (size_t i = 0; i < prev_count; ++i) {
    (*out)[prev_begin + i].height += grow;
  }
  out->resize(band_begin);
}

// One linear sweep over both operands' bands.  `out` must not alias either
// input; the in-place entry points below route through pooled scratch.
void CombineRects(const std::vector<Rect>& a, const std::vector<Rect>& b, OpKind op,
                  std::vector<Rect>* out) {
  out->clear();
  BandCursor ca(a);
  BandCursor cb(b);
  size_t prev_begin = 0;
  bool have_prev = false;
  int y = 0;
  if (ca.valid() && cb.valid()) {
    y = std::min(ca.y0, cb.y0);
  } else if (ca.valid()) {
    y = ca.y0;
  } else if (cb.valid()) {
    y = cb.y0;
  }
  while (ca.valid() || cb.valid()) {
    // Next slab edge: the nearest band top/bottom above y.
    int next = 0;
    bool have_next = false;
    auto consider = [&](int edge) {
      if (edge > y && (!have_next || edge < next)) {
        next = edge;
        have_next = true;
      }
    };
    if (ca.valid()) {
      consider(ca.y0);
      consider(ca.y1);
    }
    if (cb.valid()) {
      consider(cb.y0);
      consider(cb.y1);
    }
    bool in_a = ca.valid() && ca.y0 <= y;
    bool in_b = cb.valid() && cb.y0 <= y;
    size_t band_begin = out->size();
    int h = next - y;
    const Rect* a_begin = ca.rects + ca.begin;
    const Rect* a_end = ca.rects + ca.end;
    const Rect* b_begin = cb.rects + cb.begin;
    const Rect* b_end = cb.rects + cb.end;
    switch (op) {
      case OpKind::kUnion:
        if (in_a && in_b) {
          AppendUnion(a_begin, a_end, b_begin, b_end, y, h, out);
        } else if (in_a) {
          AppendCopy(a_begin, a_end, y, h, out);
        } else if (in_b) {
          AppendCopy(b_begin, b_end, y, h, out);
        }
        break;
      case OpKind::kIntersect:
        if (in_a && in_b) {
          AppendIntersect(a_begin, a_end, b_begin, b_end, y, h, out);
        }
        break;
      case OpKind::kSubtract:
        if (in_a && in_b) {
          AppendSubtract(a_begin, a_end, b_begin, b_end, y, h, out);
        } else if (in_a) {
          AppendCopy(a_begin, a_end, y, h, out);
        }
        break;
    }
    if (out->size() != band_begin) {
      if (have_prev) {
        // Merging leaves prev_begin pointing at the (now taller) prior
        // band; an empty slab in between is harmless because the seam
        // check compares prev.Bottom() against the new band's y.
        CoalesceBands(out, prev_begin, band_begin);
      }
      if (out->size() > band_begin) {
        prev_begin = band_begin;
      }
      have_prev = true;
    }
    y = next;
    if (ca.valid() && ca.y1 <= y) {
      ca.Advance();
    }
    if (cb.valid() && cb.y1 <= y) {
      cb.Advance();
    }
  }
}

// Pooled scratch for the in-place operations: one vector per thread, its
// capacity reused across calls (and across frames by the schedulers that
// hold long-lived damage Regions).
std::vector<Rect>& OpScratch() {
  thread_local std::vector<Rect> scratch;
  return scratch;
}

std::vector<Rect>& RectScratch() {
  thread_local std::vector<Rect> one(1);
  return one;
}

// Divide-and-conquer union canonicalizes arbitrary rect soup through the
// same sweep as every other operation.
std::vector<Rect> CanonicalUnion(const Rect* rects, size_t count) {
  std::vector<Rect> out;
  if (count == 0) {
    return out;
  }
  if (count == 1) {
    out.push_back(rects[0]);
    return out;
  }
  std::vector<Rect> left = CanonicalUnion(rects, count / 2);
  std::vector<Rect> right = CanonicalUnion(rects + count / 2, count - count / 2);
  CombineRects(left, right, OpKind::kUnion, &out);
  return out;
}

}  // namespace

Region::Region(const Rect& rect) {
  if (!rect.IsEmpty()) {
    rects_.push_back(rect);
  }
}

Region::Region(std::vector<Rect> rects) : rects_(std::move(rects)) { Canonicalize(); }

void Region::Canonicalize() {
  rects_.erase(std::remove_if(rects_.begin(), rects_.end(),
                              [](const Rect& r) { return r.IsEmpty(); }),
               rects_.end());
  if (rects_.size() <= 1) {
    return;
  }
  rects_ = CanonicalUnion(rects_.data(), rects_.size());
}

int64_t Region::Area() const {
  int64_t area = 0;
  for (const Rect& r : rects_) {
    area += r.size().Area();
  }
  return area;
}

Rect Region::Bounds() const {
  Rect bounds;
  for (const Rect& r : rects_) {
    bounds = bounds.Union(r);
  }
  return bounds;
}

bool Region::Contains(const Point& p) const {
  for (const Rect& r : rects_) {
    if (r.y > p.y) {
      return false;  // Bands are sorted by y; nothing below can cover p.
    }
    if (r.Contains(p)) {
      return true;
    }
  }
  return false;
}

bool Region::ContainsRect(const Rect& r) const {
  if (r.IsEmpty()) {
    return true;
  }
  // Rows [r.y, r.Bottom()) must be covered gaplessly; within a band the
  // intervals are non-adjacent, so full coverage requires a single interval
  // spanning [r.x, r.Right()).
  int y = r.y;
  size_t i = 0;
  while (y < r.Bottom()) {
    while (i < rects_.size() && rects_[i].Bottom() <= y) {
      ++i;
    }
    if (i == rects_.size() || rects_[i].y > y) {
      return false;  // Row y is uncovered.
    }
    int band_y = rects_[i].y;
    bool covered = false;
    for (size_t j = i; j < rects_.size() && rects_[j].y == band_y; ++j) {
      if (rects_[j].x <= r.x && rects_[j].Right() >= r.Right()) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
    y = rects_[i].Bottom();
  }
  return true;
}

bool Region::IntersectsRect(const Rect& r) const {
  if (r.IsEmpty()) {
    return false;
  }
  for (const Rect& mine : rects_) {
    if (mine.y >= r.Bottom()) {
      return false;
    }
    if (mine.Intersects(r)) {
      return true;
    }
  }
  return false;
}

bool Region::Intersects(const Region& other) const {
  // Allocation-free band sweep with early exit on the first overlap.
  BandCursor ca(rects_);
  BandCursor cb(other.rects_);
  while (ca.valid() && cb.valid()) {
    if (ca.y1 <= cb.y0) {
      ca.Advance();
      continue;
    }
    if (cb.y1 <= ca.y0) {
      cb.Advance();
      continue;
    }
    const Rect* a = ca.rects + ca.begin;
    const Rect* a_end = ca.rects + ca.end;
    const Rect* b = cb.rects + cb.begin;
    const Rect* b_end = cb.rects + cb.end;
    while (a != a_end && b != b_end) {
      if (std::max(a->x, b->x) < std::min(a->Right(), b->Right())) {
        return true;
      }
      if (a->Right() < b->Right()) {
        ++a;
      } else {
        ++b;
      }
    }
    if (ca.y1 <= cb.y1) {
      ca.Advance();
    } else {
      cb.Advance();
    }
  }
  return false;
}

Region Region::Union(const Region& other) const {
  Region out;
  CombineRects(rects_, other.rects_, OpKind::kUnion, &out.rects_);
  return out;
}

Region Region::Intersect(const Region& other) const {
  Region out;
  CombineRects(rects_, other.rects_, OpKind::kIntersect, &out.rects_);
  return out;
}

Region Region::Subtract(const Region& other) const {
  Region out;
  CombineRects(rects_, other.rects_, OpKind::kSubtract, &out.rects_);
  return out;
}

Region Region::Translated(int dx, int dy) const {
  Region out;
  out.rects_ = rects_;
  for (Rect& r : out.rects_) {
    r.x += dx;
    r.y += dy;
  }
  return out;
}

void Region::SetRect(const Rect& rect) {
  rects_.clear();
  if (!rect.IsEmpty()) {
    rects_.push_back(rect);
  }
}

void Region::UnionRect(const Rect& rect) {
  if (rect.IsEmpty()) {
    return;
  }
  if (rects_.empty()) {
    rects_.push_back(rect);
    return;
  }
  // Already covered by one band rect: the common case once a tree root's
  // damage has grown to its full bounds.
  for (const Rect& mine : rects_) {
    if (mine.y > rect.y) {
      break;
    }
    if (mine.Contains(rect)) {
      return;
    }
  }
  const Rect& last = rects_.back();
  if (rect.y > last.Bottom()) {
    // Strictly below every band: appending keeps canonical form.
    rects_.push_back(rect);
    return;
  }
  std::vector<Rect>& one = RectScratch();
  one.resize(1);
  one[0] = rect;
  std::vector<Rect>& scratch = OpScratch();
  CombineRects(rects_, one, OpKind::kUnion, &scratch);
  rects_.swap(scratch);
}

void Region::UnionWith(const Region& other) {
  if (&other == this || other.IsEmpty()) {
    return;
  }
  if (IsEmpty()) {
    rects_ = other.rects_;
    return;
  }
  if (other.rects_.size() == 1) {
    UnionRect(other.rects_[0]);
    return;
  }
  std::vector<Rect>& scratch = OpScratch();
  CombineRects(rects_, other.rects_, OpKind::kUnion, &scratch);
  rects_.swap(scratch);
}

void Region::IntersectWith(const Region& other) {
  if (&other == this || IsEmpty()) {
    return;
  }
  if (other.IsEmpty()) {
    rects_.clear();
    return;
  }
  std::vector<Rect>& scratch = OpScratch();
  CombineRects(rects_, other.rects_, OpKind::kIntersect, &scratch);
  rects_.swap(scratch);
}

void Region::IntersectRect(const Rect& rect) {
  if (IsEmpty()) {
    return;
  }
  if (rect.IsEmpty()) {
    rects_.clear();
    return;
  }
  std::vector<Rect>& one = RectScratch();
  one.resize(1);
  one[0] = rect;
  std::vector<Rect>& scratch = OpScratch();
  CombineRects(rects_, one, OpKind::kIntersect, &scratch);
  rects_.swap(scratch);
}

void Region::SubtractWith(const Region& other) {
  if (IsEmpty() || other.IsEmpty()) {
    return;
  }
  if (&other == this) {
    rects_.clear();
    return;
  }
  std::vector<Rect>& scratch = OpScratch();
  CombineRects(rects_, other.rects_, OpKind::kSubtract, &scratch);
  rects_.swap(scratch);
}

std::string Region::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << rects_[i];
  }
  os << "}";
  return os.str();
}

}  // namespace xbase
