#include "src/base/region.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace xbase {
namespace {

struct Interval {
  int left;
  int right;  // exclusive
  friend bool operator==(const Interval&, const Interval&) = default;
};

// Merges overlapping/adjacent intervals in place; input must be sorted by left.
void MergeIntervals(std::vector<Interval>* intervals) {
  if (intervals->empty()) {
    return;
  }
  std::vector<Interval> merged;
  merged.push_back((*intervals)[0]);
  for (size_t i = 1; i < intervals->size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = (*intervals)[i];
    if (cur.left <= last.right) {
      last.right = std::max(last.right, cur.right);
    } else {
      merged.push_back(cur);
    }
  }
  *intervals = std::move(merged);
}

// Returns merged x-intervals of all rects that fully cover the band [y0, y1).
// Rects are assumed to either cover the band or miss it entirely (guaranteed
// when y0/y1 are consecutive breakpoints of the rect set).
std::vector<Interval> BandIntervals(const std::vector<Rect>& rects, int y0) {
  std::vector<Interval> out;
  for (const Rect& r : rects) {
    if (r.y <= y0 && r.Bottom() > y0) {
      out.push_back({r.x, r.Right()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Interval& a, const Interval& b) { return a.left < b.left; });
  MergeIntervals(&out);
  return out;
}

std::vector<Interval> SubtractIntervals(const std::vector<Interval>& a,
                                        const std::vector<Interval>& b) {
  std::vector<Interval> out;
  size_t bi = 0;
  for (Interval cur : a) {
    while (bi < b.size() && b[bi].right <= cur.left) {
      ++bi;
    }
    size_t j = bi;
    int pos = cur.left;
    while (j < b.size() && b[j].left < cur.right) {
      if (b[j].left > pos) {
        out.push_back({pos, b[j].left});
      }
      pos = std::max(pos, b[j].right);
      if (pos >= cur.right) {
        break;
      }
      ++j;
    }
    if (pos < cur.right) {
      out.push_back({pos, cur.right});
    }
  }
  return out;
}

std::vector<Interval> IntersectIntervals(const std::vector<Interval>& a,
                                         const std::vector<Interval>& b) {
  std::vector<Interval> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    int left = std::max(a[i].left, b[j].left);
    int right = std::min(a[i].right, b[j].right);
    if (left < right) {
      out.push_back({left, right});
    }
    if (a[i].right < b[j].right) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<Interval> UnionIntervals(std::vector<Interval> a, const std::vector<Interval>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end(),
            [](const Interval& x, const Interval& y) { return x.left < y.left; });
  MergeIntervals(&a);
  return a;
}

// Rebuilds canonical banded rects from per-band interval computation.
// `op` maps (intervals-of-a-at-band, intervals-of-b-at-band) -> intervals.
template <typename Op>
std::vector<Rect> BandCombine(const std::vector<Rect>& a, const std::vector<Rect>& b, Op op) {
  std::set<int> ys;
  for (const Rect& r : a) {
    ys.insert(r.y);
    ys.insert(r.Bottom());
  }
  for (const Rect& r : b) {
    ys.insert(r.y);
    ys.insert(r.Bottom());
  }
  std::vector<Rect> out;
  // Previous band's intervals plus its y-range, for vertical coalescing.
  std::vector<Interval> prev_intervals;
  int prev_y0 = 0;
  int prev_y1 = 0;
  bool have_prev = false;

  auto flush_prev = [&]() {
    for (const Interval& iv : prev_intervals) {
      out.push_back(Rect::FromCorners(iv.left, prev_y0, iv.right, prev_y1));
    }
    have_prev = false;
  };

  int band_start = 0;
  bool first = true;
  for (int y : ys) {
    if (!first) {
      std::vector<Interval> ivs = op(BandIntervals(a, band_start), BandIntervals(b, band_start));
      if (!ivs.empty()) {
        if (have_prev && prev_y1 == band_start && prev_intervals == ivs) {
          prev_y1 = y;  // Coalesce with previous band.
        } else {
          if (have_prev) {
            flush_prev();
          }
          prev_intervals = std::move(ivs);
          prev_y0 = band_start;
          prev_y1 = y;
          have_prev = true;
        }
      } else if (have_prev) {
        flush_prev();
      }
    }
    band_start = y;
    first = false;
  }
  if (have_prev) {
    flush_prev();
  }
  return out;
}

}  // namespace

Region::Region(const Rect& rect) {
  if (!rect.IsEmpty()) {
    rects_.push_back(rect);
  }
}

Region::Region(std::vector<Rect> rects) : rects_(std::move(rects)) { Canonicalize(); }

void Region::Canonicalize() {
  rects_.erase(std::remove_if(rects_.begin(), rects_.end(),
                              [](const Rect& r) { return r.IsEmpty(); }),
               rects_.end());
  if (rects_.size() <= 1) {
    return;
  }
  // Union with the empty region re-bands arbitrary input.
  rects_ = BandCombine(rects_, {}, [](std::vector<Interval> a, const std::vector<Interval>&) {
    return a;
  });
}

int64_t Region::Area() const {
  int64_t area = 0;
  for (const Rect& r : rects_) {
    area += r.size().Area();
  }
  return area;
}

Rect Region::Bounds() const {
  Rect bounds;
  for (const Rect& r : rects_) {
    bounds = bounds.Union(r);
  }
  return bounds;
}

bool Region::Contains(const Point& p) const {
  for (const Rect& r : rects_) {
    if (r.Contains(p)) {
      return true;
    }
  }
  return false;
}

bool Region::ContainsRect(const Rect& r) const {
  if (r.IsEmpty()) {
    return true;
  }
  return Region(r).Subtract(*this).IsEmpty();
}

bool Region::Intersects(const Region& other) const { return !Intersect(other).IsEmpty(); }

Region Region::Union(const Region& other) const {
  Region out;
  out.rects_ = BandCombine(rects_, other.rects_, UnionIntervals);
  return out;
}

Region Region::Intersect(const Region& other) const {
  Region out;
  out.rects_ = BandCombine(rects_, other.rects_, IntersectIntervals);
  return out;
}

Region Region::Subtract(const Region& other) const {
  Region out;
  out.rects_ = BandCombine(rects_, other.rects_, SubtractIntervals);
  return out;
}

Region Region::Translated(int dx, int dy) const {
  Region out;
  out.rects_ = rects_;
  for (Rect& r : out.rects_) {
    r.x += dx;
    r.y += dy;
  }
  return out;
}

std::string Region::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << rects_[i];
  }
  os << "}";
  return os.str();
}

}  // namespace xbase
