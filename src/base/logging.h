// Minimal logging and invariant-checking support used throughout the tree.
//
// Style note: hot paths report recoverable failures through return values
// (bool / std::optional); CHECK is reserved for programming errors where
// continuing would corrupt state.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace xbase {

enum class LogSeverity {
  kInfo,
  kWarning,
  kError,
  kFatal,
};

// Accumulates a log line and emits it (to stderr) on destruction.  Fatal
// messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Global minimum severity; messages below it are swallowed.  Tests raise this
// to keep output quiet.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Total number of kWarning/kError messages emitted; used by failure-injection
// tests to assert that bad input was diagnosed rather than ignored.
int LogErrorCount();

}  // namespace xbase

#define XB_LOG(severity)                                                                 \
  ::xbase::LogMessage(::xbase::LogSeverity::k##severity, __FILE__, __LINE__).stream()

#define XB_CHECK(cond)                                                                   \
  if (!(cond)) XB_LOG(Fatal) << "Check failed: " #cond " "

#define XB_CHECK_EQ(a, b) XB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_NE(a, b) XB_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_LE(a, b) XB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_LT(a, b) XB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_GE(a, b) XB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SRC_BASE_LOGGING_H_
