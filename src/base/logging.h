// Minimal logging and invariant-checking support used throughout the tree.
//
// Style note: hot paths report recoverable failures through return values
// (bool / std::optional); CHECK is reserved for programming errors where
// continuing would corrupt state.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace xbase {

enum class LogSeverity {
  kInfo,
  kWarning,
  kError,
  kFatal,
};

// Accumulates a log line and emits it (to stderr) on destruction.  Fatal
// messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Global minimum severity; messages below it are swallowed.  Tests raise this
// to keep output quiet.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Total number of kWarning/kError messages emitted; used by failure-injection
// tests to assert that bad input was diagnosed rather than ignored.
int LogErrorCount();

// Per-source log dedupe: returns true for the 1st, (n+1)th, (2n+1)th, ...
// occurrence of `key`, so a repeated diagnosis (a hostile client re-sending
// the same malformed property, swmcmd garbage in a loop) logs once and then
// once per N instead of once per occurrence.  Keys are arbitrary strings —
// callers bake in the source site and the offender (window id, say).
// Occurrences are counted even when the call returns false, so the throttle
// itself is cheap and state is bounded by the number of distinct keys.
bool ShouldLogEveryN(const std::string& key, int n);
// Drops all throttle state (tests; also keeps long-lived processes bounded
// if a caller knows its keys went stale, e.g. after unmanaging a window).
void ResetLogThrottle();
// Occurrences recorded for a key so far (0 if never seen).
int LogThrottleCount(const std::string& key);

}  // namespace xbase

#define XB_LOG(severity)                                                                 \
  ::xbase::LogMessage(::xbase::LogSeverity::k##severity, __FILE__, __LINE__).stream()

// Rate-limited logging: emits the first occurrence for `key` and then one per
// `n`.  Spam paths (sanitizer rejections, malformed swmcmd commands) use this
// so one hostile client cannot flood stderr.  The statement after the macro
// is the usual `<<` chain; when throttled the chain is not evaluated.
#define XB_LOG_EVERY_N(severity, key, n)                                                 \
  if (::xbase::ShouldLogEveryN((key), (n))) XB_LOG(severity)

#define XB_CHECK(cond)                                                                   \
  if (!(cond)) XB_LOG(Fatal) << "Check failed: " #cond " "

#define XB_CHECK_EQ(a, b) XB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_NE(a, b) XB_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_LE(a, b) XB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_LT(a, b) XB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define XB_CHECK_GE(a, b) XB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SRC_BASE_LOGGING_H_
