#include "src/base/poller.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include "src/base/logging.h"

namespace xbase {

namespace {

// The timerfd shares the epoll instance with connection fds; this reserved
// key keeps it out of the fd-keyed dispatch.
constexpr uint64_t kTimerKey = ~0ull;

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) {
    mask |= EPOLLIN;
  }
  if (want_write) {
    mask |= EPOLLOUT;
  }
  return mask;
}

}  // namespace

Poller::Poller() : epoll_fd_(epoll_create1(EPOLL_CLOEXEC)) {
  if (epoll_fd_ < 0) {
    XB_LOG(Error) << "poller: epoll_create1: " << strerror(errno);
  }
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

bool Poller::Add(int fd, uint64_t key, bool want_read, bool want_write) {
  struct epoll_event ev = {};
  ev.events = EpollMask(want_read, want_write);
  ev.data.u64 = key;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    XB_LOG(Error) << "poller: epoll_ctl(ADD, " << fd << "): " << strerror(errno);
    return false;
  }
  return true;
}

bool Poller::Modify(int fd, uint64_t key, bool want_read, bool want_write) {
  struct epoll_event ev = {};
  ev.events = EpollMask(want_read, want_write);
  ev.data.u64 = key;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    XB_LOG(Error) << "poller: epoll_ctl(MOD, " << fd << "): " << strerror(errno);
    return false;
  }
  return true;
}

bool Poller::Remove(int fd) {
  return epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0;
}

int Poller::Wait(int timeout_ms, std::vector<Event>* out) {
  struct epoll_event events[64];
  int n;
  do {
    n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    XB_LOG(Error) << "poller: epoll_wait: " << strerror(errno);
    return 0;
  }
  for (int i = 0; i < n; ++i) {
    Event event;
    event.key = events[i].data.u64;
    event.readable = (events[i].events & EPOLLIN) != 0;
    event.writable = (events[i].events & EPOLLOUT) != 0;
    event.closed = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    out->push_back(event);
  }
  return n;
}

EventLoop::EventLoop() {
  timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) {
    XB_LOG(Error) << "poller: timerfd_create: " << strerror(errno);
    return;
  }
  poller_.Add(timer_fd_, kTimerKey, /*want_read=*/true, /*want_write=*/false);
}

EventLoop::~EventLoop() {
  if (timer_fd_ >= 0) {
    ::close(timer_fd_);
  }
}

bool EventLoop::ok() const { return poller_.ok() && timer_fd_ >= 0; }

bool EventLoop::WatchFd(int fd, FdCallback callback, bool want_read,
                        bool want_write) {
  if (fd < 0 || watches_.count(fd) != 0) {
    return false;
  }
  if (!poller_.Add(fd, static_cast<uint64_t>(fd), want_read, want_write)) {
    return false;
  }
  watches_[fd] = Watch{std::move(callback), want_read, want_write};
  return true;
}

bool EventLoop::ModifyFd(int fd, bool want_read, bool want_write) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    return false;
  }
  if (it->second.want_read == want_read && it->second.want_write == want_write) {
    return true;
  }
  if (!poller_.Modify(fd, static_cast<uint64_t>(fd), want_read, want_write)) {
    return false;
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  return true;
}

void EventLoop::UnwatchFd(int fd) {
  if (watches_.erase(fd) != 0) {
    poller_.Remove(fd);
  }
}

EventLoop::TimerId EventLoop::AddTimer(int64_t delay_ms, TimerCallback callback) {
  TimerId id = next_timer_id_++;
  int64_t deadline = NowMs() + (delay_ms < 0 ? 0 : delay_ms);
  timers_[id] = std::move(callback);
  heap_.push(TimerEntry{deadline, id});
  if (heap_.top().id == id) {
    RearmTimerFd();
  }
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  if (timers_.erase(id) != 0) {
    ++stats_.timers_canceled;
  }
}

void EventLoop::RearmTimerFd() {
  // Skip heap entries whose timers were cancelled before arming.
  while (!heap_.empty() && timers_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
  struct itimerspec spec = {};
  if (!heap_.empty()) {
    int64_t deadline = heap_.top().deadline_ms;
    // A deadline in the past must still fire: 0/0 would disarm the timer,
    // so clamp to the smallest representable interval.
    int64_t delay = deadline - NowMs();
    if (delay <= 0) {
      spec.it_value.tv_nsec = 1;
    } else {
      spec.it_value.tv_sec = delay / 1000;
      spec.it_value.tv_nsec = (delay % 1000) * 1000000;
    }
  }
  if (timerfd_settime(timer_fd_, 0, &spec, nullptr) != 0) {
    XB_LOG(Error) << "poller: timerfd_settime: " << strerror(errno);
  }
}

int EventLoop::FireDueTimers() {
  int fired = 0;
  int64_t now = NowMs();
  while (!heap_.empty() && heap_.top().deadline_ms <= now) {
    TimerEntry entry = heap_.top();
    heap_.pop();
    auto it = timers_.find(entry.id);
    if (it == timers_.end()) {
      continue;  // Cancelled.
    }
    TimerCallback callback = std::move(it->second);
    timers_.erase(it);
    ++stats_.timers_fired;
    ++fired;
    callback();
    now = NowMs();
  }
  RearmTimerFd();
  return fired;
}

int EventLoop::PollOnce(int timeout_ms) {
  scratch_.clear();
  ++stats_.polls;
  poller_.Wait(timeout_ms, &scratch_);
  int dispatched = 0;
  for (const Poller::Event& event : scratch_) {
    if (event.key == kTimerKey) {
      uint64_t expirations = 0;
      ssize_t n;
      do {
        n = ::read(timer_fd_, &expirations, sizeof(expirations));
      } while (n < 0 && errno == EINTR);
      dispatched += FireDueTimers();
      continue;
    }
    auto it = watches_.find(static_cast<int>(event.key));
    if (it == watches_.end()) {
      continue;  // Unwatched by an earlier callback in this batch.
    }
    // Copy: the callback may UnwatchFd its own fd, destroying the Watch.
    FdCallback callback = it->second.callback;
    ++stats_.fd_events;
    ++dispatched;
    callback(event);
  }
  // Deadlines can lapse while fd callbacks run; don't make them wait for
  // the next epoll wakeup.
  dispatched += FireDueTimers();
  return dispatched;
}

bool EventLoop::RunUntil(const std::function<bool()>& done, int64_t budget_ms) {
  int64_t deadline = NowMs() + budget_ms;
  while (!done()) {
    int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      return done();
    }
    PollOnce(static_cast<int>(remaining > 50 ? 50 : remaining));
  }
  return true;
}

int64_t EventLoop::NowMs() {
  struct timespec ts = {};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

}  // namespace xbase
