// Character-cell canvas used as the simulated framebuffer.
//
// The paper's figures are screenshots; this reproduction renders windows,
// decorations and the Virtual Desktop panner as deterministic ASCII art so
// the figures can be regenerated and diffed in tests.  One canvas cell
// corresponds to one simulated pixel.
//
// Drawing is span-based: every operation precomputes its clip intersection
// once (clip regions are y-x banded rect lists, so the intersection is a
// handful of rectangles) and then writes whole rows with std::fill /
// std::copy instead of testing bounds and clip per pixel.  `cells_written()`
// counts the cells each operation actually touched, which is how tests and
// benches assert that damage-clipped repaints cost what the damage covers
// rather than what the window covers.
#ifndef SRC_BASE_CANVAS_H_
#define SRC_BASE_CANVAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/geometry.h"
#include "src/base/region.h"

namespace xbase {

class Canvas {
 public:
  Canvas() = default;
  Canvas(int width, int height, char background = ' ');

  int width() const { return width_; }
  int height() const { return height_; }
  Size size() const { return {width_, height_}; }

  char At(int x, int y) const;
  void Put(int x, int y, char c);

  void Clear(char background = ' ');
  void FillRect(const Rect& r, char c);
  // Single-cell border drawn just inside `r` using box-drawing ASCII
  // (+, -, |); degenerate rects are skipped.
  void DrawBorder(const Rect& r, char horizontal = '-', char vertical = '|',
                  char corner = '+');
  void DrawText(int x, int y, const std::string& text);
  // Text centered horizontally within [x, x+width).
  void DrawTextCentered(int x, int width, int y, const std::string& text);
  void DrawBitmap(int x, int y, const Bitmap& bm, char on = '#');
  // Copies `r` (clamped to both canvases) out of `src` row-wise.  Ignores
  // the clip: this is the parallel painter's copyback of finished worker
  // tiles, not a drawing op.
  void CopyRectFrom(const Canvas& src, const Rect& r);

  // Restricts all subsequent drawing to the region (canvas coordinates).
  // An empty clip means "no clipping".
  void SetClip(const Region& clip) { clip_ = clip; }
  void ClearClip() { clip_ = Region(); }

  // Cells written by drawing operations since construction (or the last
  // ResetCellsWritten).  A cell overdrawn by two ops counts twice: the
  // counter measures raster work, not coverage.
  uint64_t cells_written() const { return cells_written_; }
  void ResetCellsWritten() { cells_written_ = 0; }

  std::string ToString() const;

 private:
  bool Clipped(int x, int y) const;
  // Row [x0, x1) × {y}, already clamped to the canvas, no clip test.
  void FillRowRaw(int x0, int x1, int y, char c);
  void CopyRowRaw(int x0, int y, const char* src, int count);
  // Applies `fn(x0, x1, y)` to every maximal span of `r` ∩ canvas ∩ clip.
  template <typename Fn>
  void ForEachSpan(const Rect& r, Fn&& fn);

  int width_ = 0;
  int height_ = 0;
  std::vector<char> cells_;
  Region clip_;
  uint64_t cells_written_ = 0;
};

}  // namespace xbase

#endif  // SRC_BASE_CANVAS_H_
