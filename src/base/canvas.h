// Character-cell canvas used as the simulated framebuffer.
//
// The paper's figures are screenshots; this reproduction renders windows,
// decorations and the Virtual Desktop panner as deterministic ASCII art so
// the figures can be regenerated and diffed in tests.  One canvas cell
// corresponds to one simulated pixel.
#ifndef SRC_BASE_CANVAS_H_
#define SRC_BASE_CANVAS_H_

#include <string>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/geometry.h"
#include "src/base/region.h"

namespace xbase {

class Canvas {
 public:
  Canvas() = default;
  Canvas(int width, int height, char background = ' ');

  int width() const { return width_; }
  int height() const { return height_; }
  Size size() const { return {width_, height_}; }

  char At(int x, int y) const;
  void Put(int x, int y, char c);

  void Clear(char background = ' ');
  void FillRect(const Rect& r, char c);
  // Single-cell border drawn just inside `r` using box-drawing ASCII
  // (+, -, |); degenerate rects are skipped.
  void DrawBorder(const Rect& r, char horizontal = '-', char vertical = '|',
                  char corner = '+');
  void DrawText(int x, int y, const std::string& text);
  // Text centered horizontally within [x, x+width).
  void DrawTextCentered(int x, int width, int y, const std::string& text);
  void DrawBitmap(int x, int y, const Bitmap& bm, char on = '#');

  // Restricts all subsequent drawing to the region (canvas coordinates).
  // An empty clip means "no clipping".
  void SetClip(const Region& clip) { clip_ = clip; }
  void ClearClip() { clip_ = Region(); }

  std::string ToString() const;

 private:
  bool Clipped(int x, int y) const;

  int width_ = 0;
  int height_ = 0;
  std::vector<char> cells_;
  Region clip_;
};

}  // namespace xbase

#endif  // SRC_BASE_CANVAS_H_
