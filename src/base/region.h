// Pixel-region algebra in the style of the X server's banded regions.
// Regions are maintained in canonical y-x banded form: rectangles are
// non-overlapping, sorted by (y, x), and vertically adjacent bands with
// identical x-interval sets are coalesced.  Canonical form makes equality
// comparison structural.
//
// Used for the SHAPE extension (bounding shapes), exposure computation,
// clip/damage bookkeeping in the renderer, and the frame scheduler's
// per-root damage accumulation.
//
// The binary operations run a single linear sweep over both operands'
// bands (O(|a| + |b|) rectangles, no intermediate sets), and the in-place
// forms (UnionWith / UnionRect / ...) write through pooled per-thread
// scratch storage, so a Region reused across frames performs steady-state
// operations without allocating.  The pooling is thread-local, which keeps
// the parallel painter's per-worker clip arithmetic race-free.
#ifndef SRC_BASE_REGION_H_
#define SRC_BASE_REGION_H_

#include <string>
#include <vector>

#include "src/base/geometry.h"

namespace xbase {

class Region {
 public:
  Region() = default;
  explicit Region(const Rect& rect);
  explicit Region(std::vector<Rect> rects);  // Arbitrary input; canonicalized.

  static Region FromRects(const std::vector<Rect>& rects) { return Region(rects); }

  bool IsEmpty() const { return rects_.empty(); }
  const std::vector<Rect>& rects() const { return rects_; }
  size_t RectCount() const { return rects_.size(); }

  // Total covered area in pixels.
  int64_t Area() const;

  // Tight bounding box (empty Rect for an empty region).
  Rect Bounds() const;

  bool Contains(const Point& p) const;
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Region& other) const;
  bool IntersectsRect(const Rect& r) const;

  Region Union(const Region& other) const;
  Region Intersect(const Region& other) const;
  Region Subtract(const Region& other) const;
  Region Translated(int dx, int dy) const;

  // ---- In-place forms (pooled scratch; capacity is retained) ---------------
  // Empties the region but keeps its rectangle storage for reuse.
  void Clear() { rects_.clear(); }
  // Replaces the contents with a single rectangle (empty rect clears).
  void SetRect(const Rect& rect);
  // Folds one rectangle into the region.  The common damage-accumulation
  // cases — first rect, rect already covered, rect strictly below every
  // band — append or return without running the band sweep.
  void UnionRect(const Rect& rect);
  void UnionWith(const Region& other);
  void IntersectWith(const Region& other);
  void IntersectRect(const Rect& rect);
  void SubtractWith(const Region& other);

  friend bool operator==(const Region&, const Region&) = default;

  std::string ToString() const;

 private:
  void Canonicalize();

  std::vector<Rect> rects_;
};

}  // namespace xbase

#endif  // SRC_BASE_REGION_H_
