// Pixel-region algebra in the style of the X server's banded regions.
// Regions are maintained in canonical y-x banded form: rectangles are
// non-overlapping, sorted by (y, x), and vertically adjacent bands with
// identical x-interval sets are coalesced.  Canonical form makes equality
// comparison structural.
//
// Used for the SHAPE extension (bounding shapes), exposure computation and
// the panner's visible-area bookkeeping.
#ifndef SRC_BASE_REGION_H_
#define SRC_BASE_REGION_H_

#include <string>
#include <vector>

#include "src/base/geometry.h"

namespace xbase {

class Region {
 public:
  Region() = default;
  explicit Region(const Rect& rect);
  explicit Region(std::vector<Rect> rects);  // Arbitrary input; canonicalized.

  static Region FromRects(const std::vector<Rect>& rects) { return Region(rects); }

  bool IsEmpty() const { return rects_.empty(); }
  const std::vector<Rect>& rects() const { return rects_; }
  size_t RectCount() const { return rects_.size(); }

  // Total covered area in pixels.
  int64_t Area() const;

  // Tight bounding box (empty Rect for an empty region).
  Rect Bounds() const;

  bool Contains(const Point& p) const;
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Region& other) const;

  Region Union(const Region& other) const;
  Region Intersect(const Region& other) const;
  Region Subtract(const Region& other) const;
  Region Translated(int dx, int dy) const;

  friend bool operator==(const Region&, const Region&) = default;

  std::string ToString() const;

 private:
  void Canonicalize();

  std::vector<Rect> rects_;
};

}  // namespace xbase

#endif  // SRC_BASE_REGION_H_
