#include "src/base/interner.h"

#include <cstring>

namespace xbase {

namespace {
constexpr size_t kInitialCapacity = 256;  // Must be a power of two.
constexpr uint64_t kMix = 0x9E3779B97F4A7C15ull;  // 2^64 / phi.
}  // namespace

SymbolInterner::SymbolInterner()
    : slots_(kInitialCapacity), mask_(kInitialCapacity - 1) {}

uint64_t SymbolInterner::HashOf(std::string_view text, uint64_t word0) {
  // Word-at-a-time multiply-xorshift.  Resource components are mostly
  // under 8 bytes, so this is one multiply where a byte-loop hash would
  // chain a multiply per character — and the hash sits on the critical
  // path of every query-boundary interning.  `word0` is the caller's
  // already-loaded FirstWord(text).
  uint64_t h = kMix ^ text.size();
  h = (h ^ word0) * kMix;
  h ^= h >> 32;
  if (text.size() > 8) {
    const char* p = text.data() + 8;
    size_t n = text.size() - 8;
    uint64_t word;
    while (n >= 8) {
      std::memcpy(&word, p, 8);
      h = (h ^ word) * kMix;
      h ^= h >> 32;
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      word = 0;
      std::memcpy(&word, p, n);
      h = (h ^ word) * kMix;
      h ^= h >> 32;
    }
  }
  return h | 1;  // Cannot collide with the empty-slot hash pattern of 0.
}

Symbol SymbolInterner::Intern(std::string_view text) {
  uint64_t word0 = FirstWord(text);
  uint64_t hash = HashOf(text, word0);
  for (size_t i = hash & mask_;; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.symbol == kNoSymbol) {
      if (names_.size() * 4 >= slots_.size() * 3) {  // 75% load factor.
        Grow();
        return Intern(text);  // Re-probe against the regrown table.
      }
      slot.hash = hash;
      slot.word0 = word0;
      slot.size = static_cast<uint32_t>(text.size());
      slot.symbol = static_cast<Symbol>(names_.size());
      names_.emplace_back(text);
      return slot.symbol;
    }
    if (slot.hash == hash && slot.size == text.size() && slot.word0 == word0 &&
        (text.size() <= 8 ||
         std::memcmp(names_[slot.symbol].data() + 8, text.data() + 8,
                     text.size() - 8) == 0)) {
      return slot.symbol;
    }
  }
}

void SymbolInterner::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.symbol == kNoSymbol) {
      continue;
    }
    size_t i = slot.hash & mask_;
    while (slots_[i].symbol != kNoSymbol) {
      i = (i + 1) & mask_;
    }
    slots_[i] = slot;
  }
}

SymbolInterner& SymbolInterner::Global() {
  static SymbolInterner interner;
  return interner;
}

}  // namespace xbase
