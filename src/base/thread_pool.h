// Fixed-size worker pool for data-parallel painting.
//
// The pool runs one batch at a time: ParallelFor hands every worker (plus
// the calling thread, which participates as worker 0) an atomic ticket
// dispenser over [0, count) and blocks until all tasks have executed.  The
// body receives both the task index and the worker index, so callers can
// give each worker private scratch state (e.g. a per-worker canvas tile)
// and keep the pixel path lock-free.
//
// With `threads <= 1` no OS threads are created and ParallelFor degenerates
// to a plain serial loop on the caller — the serial and parallel paths run
// the identical body, which is what the painter's determinism tests rely
// on.
#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xbase {

class ThreadPool {
 public:
  // `threads` counts the caller: a pool of 4 spawns 3 OS threads.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return thread_count_; }

  // Invokes body(task_index, worker_index) for every task_index in
  // [0, count), distributing tasks dynamically across workers.  Worker
  // indices are in [0, thread_count()); the caller runs as worker 0.
  // Blocks until every task has finished.  Not reentrant: the body must
  // not call ParallelFor on the same pool.
  void ParallelFor(int count, const std::function<void(int task, int worker)>& body);

 private:
  void WorkerMain(int worker_index);
  // Pulls tickets for the current batch; returns tasks executed.
  int RunTasks(const std::function<void(int, int)>& body, int count, int worker);

  const int thread_count_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers: a new batch (or shutdown).
  std::condition_variable done_cv_;  // Caller: batch fully drained.
  // Batch state.  `generation_` tells a waking worker whether the batch is
  // new to it; `active_` counts workers currently inside a batch so the
  // caller cannot recycle the batch slots under a straggler.
  const std::function<void(int, int)>* body_ = nullptr;  // Guarded by mu_.
  int count_ = 0;                                        // Guarded by mu_.
  std::atomic<int> next_ticket_{0};
  int completed_ = 0;  // Guarded by mu_.
  int active_ = 0;     // Guarded by mu_.
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace xbase

#endif  // SRC_BASE_THREAD_POOL_H_
