// Readiness-driven I/O core (docs/PROTOCOL.md "Out-of-process operation"):
// a thin epoll wrapper plus an event loop that dispatches fd callbacks and
// one-shot timers from a timerfd-backed deadline heap.  This replaces the
// test harnesses' explicit Pump() spinning for out-of-process clients: the
// loop sleeps in epoll_wait and only touches connections the kernel says
// are ready.  Single-threaded by design — all callbacks run on the caller
// of PollOnce/RunUntil.
#ifndef SRC_BASE_POLLER_H_
#define SRC_BASE_POLLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace xbase {

// Wraps one epoll instance.  Add/Modify/Remove never throw; they return
// false (and log) on kernel refusal.  Wait retries EINTR internally so a
// signal delivery (SIGCHLD from a dying client, say) never surfaces as a
// spurious failure.
class Poller {
 public:
  struct Event {
    uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    // EPOLLHUP/EPOLLERR: the fd is dead; a read will return EOF or an error.
    bool closed = false;
  };

  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool ok() const { return epoll_fd_ >= 0; }

  bool Add(int fd, uint64_t key, bool want_read, bool want_write);
  bool Modify(int fd, uint64_t key, bool want_read, bool want_write);
  bool Remove(int fd);

  // Appends ready events to `out`.  timeout_ms < 0 blocks indefinitely;
  // 0 polls.  Returns the number of events appended (0 on timeout).
  int Wait(int timeout_ms, std::vector<Event>* out);

 private:
  int epoll_fd_ = -1;
};

// An fd + timer event loop over a Poller.  Timers are one-shot, identified
// by the id AddTimer returns, and backed by a single timerfd armed to the
// earliest pending deadline — expiry costs one epoll wakeup regardless of
// how many connections carry deadlines.
class EventLoop {
 public:
  using FdCallback = std::function<void(const Poller::Event&)>;
  using TimerCallback = std::function<void()>;
  using TimerId = uint64_t;

  struct Stats {
    uint64_t polls = 0;
    uint64_t fd_events = 0;
    uint64_t timers_fired = 0;
    uint64_t timers_canceled = 0;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool ok() const;

  // Watches `fd` (not owned; unwatch before closing it).  The callback runs
  // on every readiness edge and may Watch/Unwatch/AddTimer freely, including
  // unwatching its own fd.
  bool WatchFd(int fd, FdCallback callback, bool want_read = true,
               bool want_write = false);
  bool ModifyFd(int fd, bool want_read, bool want_write);
  void UnwatchFd(int fd);

  // Schedules `callback` once, `delay_ms` from now (0 fires on the next
  // PollOnce).  Returns an id for CancelTimer; ids are never reused.
  TimerId AddTimer(int64_t delay_ms, TimerCallback callback);
  void CancelTimer(TimerId id);

  // Waits up to timeout_ms (-1 = until activity) and dispatches every ready
  // fd callback and due timer.  Returns the number of callbacks dispatched.
  int PollOnce(int timeout_ms);

  // Polls until done() returns true or budget_ms elapses.  Returns done()'s
  // final verdict — false means the budget expired first.
  bool RunUntil(const std::function<bool()>& done, int64_t budget_ms);

  // Monotonic milliseconds (CLOCK_MONOTONIC); the clock deadlines live on.
  static int64_t NowMs();

  const Stats& stats() const { return stats_; }
  size_t watch_count() const { return watches_.size(); }
  size_t pending_timers() const { return timers_.size(); }

 private:
  struct Watch {
    FdCallback callback;
    bool want_read = true;
    bool want_write = false;
  };
  struct TimerEntry {
    int64_t deadline_ms = 0;
    TimerId id = 0;
    bool operator>(const TimerEntry& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms
                                              : id > other.id;
    }
  };

  void RearmTimerFd();
  int FireDueTimers();

  Poller poller_;
  int timer_fd_ = -1;
  std::map<int, Watch> watches_;
  // Heap of (deadline, id); cancelled ids stay in the heap and are skipped
  // lazily — `timers_` (id -> callback) is the source of truth.
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>>
      heap_;
  std::map<TimerId, TimerCallback> timers_;
  TimerId next_timer_id_ = 1;
  Stats stats_;
  std::vector<Poller::Event> scratch_;
};

}  // namespace xbase

#endif  // SRC_BASE_POLLER_H_
