// Integer 2-D geometry primitives shared by the protocol simulator, toolkit
// and window manager.  Coordinates follow X conventions: y grows downward,
// rectangles are half-open in neither axis (width/height are extents).
#ifndef SRC_BASE_GEOMETRY_H_
#define SRC_BASE_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

namespace xbase {

struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

struct Size {
  int width = 0;
  int height = 0;

  friend bool operator==(const Size&, const Size&) = default;
  bool IsEmpty() const { return width <= 0 || height <= 0; }
  int64_t Area() const { return static_cast<int64_t>(width) * height; }
};

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  static Rect FromCorners(int left, int top, int right, int bottom) {
    return Rect{left, top, right - left, bottom - top};
  }

  int Left() const { return x; }
  int Top() const { return y; }
  int Right() const { return x + width; }    // exclusive
  int Bottom() const { return y + height; }  // exclusive

  Point origin() const { return {x, y}; }
  Size size() const { return {width, height}; }

  bool IsEmpty() const { return width <= 0 || height <= 0; }

  bool Contains(const Point& p) const {
    return p.x >= x && p.x < Right() && p.y >= y && p.y < Bottom();
  }

  bool Contains(const Rect& r) const {
    return !r.IsEmpty() && r.x >= x && r.y >= y && r.Right() <= Right() && r.Bottom() <= Bottom();
  }

  bool Intersects(const Rect& r) const {
    return !IsEmpty() && !r.IsEmpty() && r.x < Right() && x < r.Right() && r.y < Bottom() &&
           y < r.Bottom();
  }

  Rect Intersection(const Rect& r) const {
    int left = std::max(x, r.x);
    int top = std::max(y, r.y);
    int right = std::min(Right(), r.Right());
    int bottom = std::min(Bottom(), r.Bottom());
    if (right <= left || bottom <= top) {
      return Rect{};
    }
    return FromCorners(left, top, right, bottom);
  }

  // Smallest rectangle covering both; empty inputs are ignored.
  Rect Union(const Rect& r) const {
    if (IsEmpty()) {
      return r;
    }
    if (r.IsEmpty()) {
      return *this;
    }
    return FromCorners(std::min(x, r.x), std::min(y, r.y), std::max(Right(), r.Right()),
                       std::max(Bottom(), r.Bottom()));
  }

  Rect Translated(int dx, int dy) const { return Rect{x + dx, y + dy, width, height}; }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Size& s);
std::ostream& operator<<(std::ostream& os, const Rect& r);

// Result of parsing an X geometry string such as "120x120+1010+359",
// "=80x24", "+10-20", or "100x50".  Negative offsets (XNegative set) are
// relative to the right/bottom edge as in XParseGeometry(3).
struct GeometrySpec {
  std::optional<int> width;
  std::optional<int> height;
  std::optional<int> x;
  std::optional<int> y;
  bool x_negative = false;
  bool y_negative = false;

  friend bool operator==(const GeometrySpec&, const GeometrySpec&) = default;

  // Resolves the spec against a parent of the given size, using fallback
  // size for missing components.  Mirrors XGeometry(3) placement.
  Rect Resolve(const Size& parent, const Size& fallback) const;

  std::string ToString() const;
};

// Parses an X geometry string.  Returns nullopt on malformed input.
std::optional<GeometrySpec> ParseGeometry(const std::string& text);

}  // namespace xbase

#endif  // SRC_BASE_GEOMETRY_H_
