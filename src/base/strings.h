// Small string helpers shared across modules (no locale dependence).
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xbase {

std::string TrimWhitespace(std::string_view s);

// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on any run of whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string ToLowerAscii(std::string_view s);

// Strict decimal integer parse (optional leading '-'); nullopt on junk.
std::optional<int> ParseInt(std::string_view s);

// Strict hexadecimal parse accepting an optional "0x" prefix.
std::optional<uint64_t> ParseHex(std::string_view s);

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep);

// Splits a command line into argv honoring double quotes and backslash
// escapes (the subset needed to round-trip WM_COMMAND strings).
std::vector<std::string> ShellSplit(std::string_view s);

// Inverse of ShellSplit: quotes arguments containing whitespace or quotes.
std::string ShellJoin(const std::vector<std::string>& argv);

}  // namespace xbase

#endif  // SRC_BASE_STRINGS_H_
