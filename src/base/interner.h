// Symbol interning (the Xrm "quark" idea): maps strings to dense uint32
// ids so hot paths compare and hash integers instead of strings.  The
// resource database keys its trie on symbols and the OI toolkit caches
// interned query paths, so a whole attribute lookup allocates nothing.
#ifndef SRC_BASE_INTERNER_H_
#define SRC_BASE_INTERNER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace xbase {

using Symbol = uint32_t;

// Never returned by Intern(); Find() uses it for "not interned".  A query
// component that was never interned cannot equal any stored component.
inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

// An append-only string table with open-addressing lookup.  Symbols are
// dense, starting at 0, and never invalidated.  Not thread-safe (the
// simulation is single-threaded, like a real X client).
class SymbolInterner {
 public:
  SymbolInterner();

  // Returns the symbol for `text`, creating one if needed.
  Symbol Intern(std::string_view text);

  // Returns the existing symbol for `text`, or kNoSymbol.  Never grows the
  // table — use for query-side components that may be arbitrary strings.
  // Inline: it sits on the critical path of every string-keyed resource
  // query.  Components of 8 bytes or fewer verify with two register
  // compares (slot caches size + first word) — no string-table load.
  Symbol Find(std::string_view text) const {
    uint64_t word0 = FirstWord(text);
    uint64_t hash = HashOf(text, word0);
    for (size_t i = hash & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.symbol == kNoSymbol) {
        return kNoSymbol;
      }
      if (slot.hash == hash && slot.size == text.size() && slot.word0 == word0 &&
          (text.size() <= 8 ||
           std::memcmp(names_[slot.symbol].data() + 8, text.data() + 8,
                       text.size() - 8) == 0)) {
        return slot.symbol;
      }
    }
  }

  // The interned text.  The reference is invalidated by the next Intern().
  const std::string& NameOf(Symbol symbol) const { return names_[symbol]; }

  size_t size() const { return names_.size(); }

  // The process-wide interner all resource databases and toolkits share;
  // sharing is what makes symbols comparable across instances.
  static SymbolInterner& Global();

 private:
  struct Slot {
    uint64_t hash = 0;
    uint64_t word0 = 0;         // First <=8 bytes, zero-padded.
    Symbol symbol = kNoSymbol;  // kNoSymbol marks an empty slot.
    uint32_t size = 0;          // Byte length of the interned text.
  };

  // The text's first <=8 bytes packed into a word with fixed-size
  // (possibly overlapping) loads — no variable-length copy.  For a given
  // size the packing is injective, so (size, word0) fully identifies a
  // short component; it only needs to be deterministic, and Intern and
  // Find share it.
  static uint64_t FirstWord(std::string_view text) {
    const char* p = text.data();
    const size_t n = text.size() < 8 ? text.size() : 8;
    if (n >= 4) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + n - 4, 4);
      return lo | static_cast<uint64_t>(hi) << (8 * (n - 4));
    }
    if (n == 0) {
      return 0;
    }
    return static_cast<uint8_t>(p[0]) |
           static_cast<uint64_t>(static_cast<uint8_t>(p[n >> 1])) << (8 * (n >> 1)) |
           static_cast<uint64_t>(static_cast<uint8_t>(p[n - 1])) << (8 * (n - 1));
  }

  static uint64_t HashOf(std::string_view text, uint64_t word0);
  void Grow();

  std::vector<Slot> slots_;  // Power-of-two open-addressing table.
  std::vector<std::string> names_;
  size_t mask_ = 0;
};

}  // namespace xbase

#endif  // SRC_BASE_INTERNER_H_
