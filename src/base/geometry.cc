#include "src/base/geometry.h"

#include <cctype>
#include <sstream>

namespace xbase {

std::string Rect::ToString() const {
  std::ostringstream os;
  os << width << "x" << height << "+" << x << "+" << y;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Size& s) {
  return os << s.width << "x" << s.height;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) { return os << r.ToString(); }

Rect GeometrySpec::Resolve(const Size& parent, const Size& fallback) const {
  Rect out;
  out.width = width.value_or(fallback.width);
  out.height = height.value_or(fallback.height);
  int px = x.value_or(0);
  int py = y.value_or(0);
  out.x = x_negative ? parent.width - out.width + px : px;
  out.y = y_negative ? parent.height - out.height + py : py;
  return out;
}

std::string GeometrySpec::ToString() const {
  std::ostringstream os;
  if (width && height) {
    os << *width << "x" << *height;
  }
  if (x && y) {
    os << (x_negative ? "-" : "+") << std::abs(*x) << (y_negative ? "-" : "+") << std::abs(*y);
  }
  return os.str();
}

namespace {

// Parses an unsigned decimal run; returns nullopt if none present.
std::optional<int> ParseUnsigned(const std::string& s, size_t* pos) {
  size_t start = *pos;
  long value = 0;
  while (*pos < s.size() && std::isdigit(static_cast<unsigned char>(s[*pos]))) {
    value = value * 10 + (s[*pos] - '0');
    if (value > 1000000000) {
      return std::nullopt;
    }
    ++(*pos);
  }
  if (*pos == start) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

}  // namespace

std::optional<GeometrySpec> ParseGeometry(const std::string& text) {
  GeometrySpec spec;
  size_t pos = 0;
  if (pos < text.size() && text[pos] == '=') {
    ++pos;  // XParseGeometry accepts a leading '='.
  }
  if (pos < text.size() && text[pos] != '+' && text[pos] != '-') {
    std::optional<int> w = ParseUnsigned(text, &pos);
    if (!w) {
      return std::nullopt;
    }
    if (pos >= text.size() || (text[pos] != 'x' && text[pos] != 'X')) {
      return std::nullopt;
    }
    ++pos;
    std::optional<int> h = ParseUnsigned(text, &pos);
    if (!h) {
      return std::nullopt;
    }
    spec.width = w;
    spec.height = h;
  }
  if (pos < text.size()) {
    if (text[pos] != '+' && text[pos] != '-') {
      return std::nullopt;
    }
    spec.x_negative = text[pos] == '-';
    ++pos;
    std::optional<int> vx = ParseUnsigned(text, &pos);
    if (!vx) {
      return std::nullopt;
    }
    spec.x = spec.x_negative ? -*vx : *vx;
    if (pos >= text.size() || (text[pos] != '+' && text[pos] != '-')) {
      return std::nullopt;
    }
    spec.y_negative = text[pos] == '-';
    ++pos;
    std::optional<int> vy = ParseUnsigned(text, &pos);
    if (!vy) {
      return std::nullopt;
    }
    spec.y = spec.y_negative ? -*vy : *vy;
  }
  if (pos != text.size()) {
    return std::nullopt;
  }
  if (!spec.width && !spec.x) {
    return std::nullopt;  // Entirely empty string.
  }
  return spec;
}

}  // namespace xbase
