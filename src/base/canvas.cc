#include "src/base/canvas.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xbase {

Canvas::Canvas(int width, int height, char background) : width_(width), height_(height) {
  XB_CHECK_GE(width, 0);
  XB_CHECK_GE(height, 0);
  cells_.assign(static_cast<size_t>(width) * height, background);
}

char Canvas::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return '\0';
  }
  return cells_[static_cast<size_t>(y) * width_ + x];
}

bool Canvas::Clipped(int x, int y) const {
  return !clip_.IsEmpty() && !clip_.Contains({x, y});
}

void Canvas::Put(int x, int y, char c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_ || Clipped(x, y)) {
    return;
  }
  cells_[static_cast<size_t>(y) * width_ + x] = c;
}

void Canvas::Clear(char background) {
  std::fill(cells_.begin(), cells_.end(), background);
}

void Canvas::FillRect(const Rect& r, char c) {
  for (int y = std::max(0, r.y); y < std::min(height_, r.Bottom()); ++y) {
    for (int x = std::max(0, r.x); x < std::min(width_, r.Right()); ++x) {
      Put(x, y, c);
    }
  }
}

void Canvas::DrawBorder(const Rect& r, char horizontal, char vertical, char corner) {
  if (r.width < 1 || r.height < 1) {
    return;
  }
  for (int x = r.x; x < r.Right(); ++x) {
    Put(x, r.y, horizontal);
    Put(x, r.Bottom() - 1, horizontal);
  }
  for (int y = r.y; y < r.Bottom(); ++y) {
    Put(r.x, y, vertical);
    Put(r.Right() - 1, y, vertical);
  }
  Put(r.x, r.y, corner);
  Put(r.Right() - 1, r.y, corner);
  Put(r.x, r.Bottom() - 1, corner);
  Put(r.Right() - 1, r.Bottom() - 1, corner);
}

void Canvas::DrawText(int x, int y, const std::string& text) {
  for (size_t i = 0; i < text.size(); ++i) {
    Put(x + static_cast<int>(i), y, text[i]);
  }
}

void Canvas::DrawTextCentered(int x, int width, int y, const std::string& text) {
  int tx = x + std::max(0, (width - static_cast<int>(text.size())) / 2);
  DrawText(tx, y, text);
}

void Canvas::DrawBitmap(int x, int y, const Bitmap& bm, char on) {
  for (int by = 0; by < bm.height(); ++by) {
    for (int bx = 0; bx < bm.width(); ++bx) {
      if (bm.Get(bx, by)) {
        Put(x + bx, y + by, on);
      }
    }
  }
}

std::string Canvas::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.push_back(cells_[static_cast<size_t>(y) * width_ + x]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace xbase
