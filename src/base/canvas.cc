#include "src/base/canvas.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xbase {

Canvas::Canvas(int width, int height, char background) : width_(width), height_(height) {
  XB_CHECK_GE(width, 0);
  XB_CHECK_GE(height, 0);
  cells_.assign(static_cast<size_t>(width) * height, background);
}

char Canvas::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return '\0';
  }
  return cells_[static_cast<size_t>(y) * width_ + x];
}

bool Canvas::Clipped(int x, int y) const {
  return !clip_.IsEmpty() && !clip_.Contains({x, y});
}

void Canvas::Put(int x, int y, char c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_ || Clipped(x, y)) {
    return;
  }
  cells_[static_cast<size_t>(y) * width_ + x] = c;
  ++cells_written_;
}

void Canvas::Clear(char background) {
  std::fill(cells_.begin(), cells_.end(), background);
}

void Canvas::FillRowRaw(int x0, int x1, int y, char c) {
  char* row = cells_.data() + static_cast<size_t>(y) * width_;
  std::fill(row + x0, row + x1, c);
  cells_written_ += static_cast<uint64_t>(x1 - x0);
}

void Canvas::CopyRowRaw(int x0, int y, const char* src, int count) {
  char* row = cells_.data() + static_cast<size_t>(y) * width_;
  std::copy(src, src + count, row + x0);
  cells_written_ += static_cast<uint64_t>(count);
}

// The clip intersection is computed once per operation: each banded clip
// rect contributes at most one span run per row it covers, so the inner
// loops below never test bounds or clip per pixel.
template <typename Fn>
void Canvas::ForEachSpan(const Rect& r, Fn&& fn) {
  Rect clamped = r.Intersection(Rect{0, 0, width_, height_});
  if (clamped.IsEmpty()) {
    return;
  }
  if (clip_.IsEmpty()) {
    for (int y = clamped.y; y < clamped.Bottom(); ++y) {
      fn(clamped.x, clamped.Right(), y);
    }
    return;
  }
  for (const Rect& band : clip_.rects()) {
    if (band.y >= clamped.Bottom()) {
      break;  // Clip rects are sorted by y.
    }
    Rect part = band.Intersection(clamped);
    if (part.IsEmpty()) {
      continue;
    }
    for (int y = part.y; y < part.Bottom(); ++y) {
      fn(part.x, part.Right(), y);
    }
  }
}

void Canvas::FillRect(const Rect& r, char c) {
  ForEachSpan(r, [&](int x0, int x1, int y) { FillRowRaw(x0, x1, y, c); });
}

void Canvas::DrawBorder(const Rect& r, char horizontal, char vertical, char corner) {
  if (r.width < 1 || r.height < 1) {
    return;
  }
  // Same overdraw order as per-pixel drawing: horizontals, then verticals
  // (which own the column cells), then the four corner cells.
  FillRect(Rect{r.x, r.y, r.width, 1}, horizontal);
  FillRect(Rect{r.x, r.Bottom() - 1, r.width, 1}, horizontal);
  FillRect(Rect{r.x, r.y, 1, r.height}, vertical);
  FillRect(Rect{r.Right() - 1, r.y, 1, r.height}, vertical);
  Put(r.x, r.y, corner);
  Put(r.Right() - 1, r.y, corner);
  Put(r.x, r.Bottom() - 1, corner);
  Put(r.Right() - 1, r.Bottom() - 1, corner);
}

void Canvas::DrawText(int x, int y, const std::string& text) {
  Rect row{x, y, static_cast<int>(text.size()), 1};
  ForEachSpan(row, [&](int x0, int x1, int span_y) {
    CopyRowRaw(x0, span_y, text.data() + (x0 - x), x1 - x0);
  });
}

void Canvas::DrawTextCentered(int x, int width, int y, const std::string& text) {
  int tx = x + std::max(0, (width - static_cast<int>(text.size())) / 2);
  DrawText(tx, y, text);
}

void Canvas::DrawBitmap(int x, int y, const Bitmap& bm, char on) {
  Rect bounds{x, y, bm.width(), bm.height()};
  ForEachSpan(bounds, [&](int x0, int x1, int span_y) {
    char* row = cells_.data() + static_cast<size_t>(span_y) * width_;
    int by = span_y - y;
    for (int cx = x0; cx < x1; ++cx) {
      if (bm.Get(cx - x, by)) {
        row[cx] = on;
        ++cells_written_;
      }
    }
  });
}

void Canvas::CopyRectFrom(const Canvas& src, const Rect& r) {
  Rect clamped = r.Intersection(Rect{0, 0, width_, height_})
                     .Intersection(Rect{0, 0, src.width_, src.height_});
  if (clamped.IsEmpty()) {
    return;
  }
  for (int y = clamped.y; y < clamped.Bottom(); ++y) {
    const char* from = src.cells_.data() + static_cast<size_t>(y) * src.width_;
    CopyRowRaw(clamped.x, y, from + clamped.x, clamped.width);
  }
}

std::string Canvas::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.push_back(cells_[static_cast<size_t>(y) * width_ + x]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace xbase
