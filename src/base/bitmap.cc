#include "src/base/bitmap.h"

#include <map>
#include <sstream>

#include "src/base/logging.h"

namespace xbase {

Bitmap::Bitmap(int width, int height) : width_(width), height_(height) {
  XB_CHECK_GE(width, 0);
  XB_CHECK_GE(height, 0);
  bits_.assign(static_cast<size_t>(width) * height, 0);
}

bool Bitmap::Get(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return false;
  }
  return bits_[static_cast<size_t>(y) * width_ + x] != 0;
}

void Bitmap::Set(int x, int y, bool value) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return;
  }
  bits_[static_cast<size_t>(y) * width_ + x] = value ? 1 : 0;
}

void Bitmap::Fill(bool value) {
  std::fill(bits_.begin(), bits_.end(), value ? 1 : 0);
}

void Bitmap::FillRect(const Rect& r, bool value) {
  for (int y = std::max(0, r.y); y < std::min(height_, r.Bottom()); ++y) {
    for (int x = std::max(0, r.x); x < std::min(width_, r.Right()); ++x) {
      bits_[static_cast<size_t>(y) * width_ + x] = value ? 1 : 0;
    }
  }
}

int64_t Bitmap::PopCount() const {
  int64_t n = 0;
  for (uint8_t b : bits_) {
    n += b;
  }
  return n;
}

Region Bitmap::ToRegion() const {
  // Emit one rect per maximal horizontal run; Region canonicalization bands
  // and coalesces them.
  std::vector<Rect> rects;
  for (int y = 0; y < height_; ++y) {
    int run_start = -1;
    for (int x = 0; x <= width_; ++x) {
      bool set = x < width_ && Get(x, y);
      if (set && run_start < 0) {
        run_start = x;
      } else if (!set && run_start >= 0) {
        rects.push_back(Rect{run_start, y, x - run_start, 1});
        run_start = -1;
      }
    }
  }
  return Region(std::move(rects));
}

std::optional<Bitmap> Bitmap::FromAscii(const std::string& art) {
  std::vector<std::string> rows;
  std::string row;
  std::istringstream is(art);
  while (std::getline(is, row)) {
    if (!row.empty()) {
      rows.push_back(row);
    }
  }
  if (rows.empty()) {
    return Bitmap();
  }
  size_t width = rows[0].size();
  Bitmap bm(static_cast<int>(width), static_cast<int>(rows.size()));
  for (size_t y = 0; y < rows.size(); ++y) {
    if (rows[y].size() != width) {
      return std::nullopt;
    }
    for (size_t x = 0; x < width; ++x) {
      char c = rows[y][x];
      if (c != '#' && c != '.') {
        return std::nullopt;
      }
      bm.Set(static_cast<int>(x), static_cast<int>(y), c == '#');
    }
  }
  return bm;
}

std::string Bitmap::ToAscii() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.push_back(Get(x, y) ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

const Bitmap& XLogo32() {
  // A 32x32 rendition of the classic X logo: two crossing diagonal strokes.
  static const Bitmap* logo = [] {
    auto* bm = new Bitmap(32, 32);
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        int d1 = std::abs(x - y);
        int d2 = std::abs(x + y - 31);
        if (d1 <= 3 || d2 <= 3) {
          bm->Set(x, y, true);
        }
      }
    }
    return bm;
  }();
  return *logo;
}

const Bitmap& RoundedMask16() {
  static const Bitmap* mask = [] {
    auto* bm = new Bitmap(16, 16);
    bm->Fill(true);
    // Clip the four corner pixels.
    for (int corner = 0; corner < 4; ++corner) {
      int cx = (corner & 1) ? 15 : 0;
      int cy = (corner & 2) ? 15 : 0;
      bm->Set(cx, cy, false);
      bm->Set(cx + ((corner & 1) ? -1 : 1), cy, false);
      bm->Set(cx, cy + ((corner & 2) ? -1 : 1), false);
    }
    return bm;
  }();
  return *mask;
}

const Bitmap& CircleMask(int diameter) {
  static std::map<int, Bitmap>* cache = new std::map<int, Bitmap>();
  auto it = cache->find(diameter);
  if (it != cache->end()) {
    return it->second;
  }
  Bitmap bm(diameter, diameter);
  double r = diameter / 2.0;
  for (int y = 0; y < diameter; ++y) {
    for (int x = 0; x < diameter; ++x) {
      double dx = x + 0.5 - r;
      double dy = y + 0.5 - r;
      if (dx * dx + dy * dy <= r * r) {
        bm.Set(x, y, true);
      }
    }
  }
  return cache->emplace(diameter, std::move(bm)).first->second;
}

}  // namespace xbase
