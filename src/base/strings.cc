#include "src/base/strings.h"

#include <cctype>

namespace xbase {

std::string TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<int> ParseInt(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  bool negative = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    i = 1;
    if (s.size() == 1) {
      return std::nullopt;
    }
  }
  long value = 0;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      return std::nullopt;
    }
    value = value * 10 + (s[i] - '0');
    if (value > 2147483647L) {
      return std::nullopt;
    }
  }
  return negative ? -static_cast<int>(value) : static_cast<int>(value);
}

std::optional<uint64_t> ParseHex(std::string_view s) {
  if (StartsWith(s, "0x") || StartsWith(s, "0X")) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 16) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + static_cast<uint64_t>(digit);
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> ShellSplit(std::string_view s) {
  std::vector<std::string> argv;
  std::string cur;
  bool in_word = false;
  bool in_quote = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      cur.push_back(s[++i]);
      in_word = true;
    } else if (c == '"') {
      in_quote = !in_quote;
      in_word = true;  // "" is a valid empty argument.
    } else if (!in_quote && std::isspace(static_cast<unsigned char>(c))) {
      if (in_word) {
        argv.push_back(cur);
        cur.clear();
        in_word = false;
      }
    } else {
      cur.push_back(c);
      in_word = true;
    }
  }
  if (in_word) {
    argv.push_back(cur);
  }
  return argv;
}

std::string ShellJoin(const std::vector<std::string>& argv) {
  std::vector<std::string> quoted;
  quoted.reserve(argv.size());
  for (const std::string& arg : argv) {
    bool needs_quote = arg.empty();
    std::string escaped;
    for (char c : arg) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        needs_quote = true;
      }
      if (c == '"' || c == '\\') {
        escaped.push_back('\\');
      }
      escaped.push_back(c);
    }
    quoted.push_back(needs_quote ? "\"" + escaped + "\"" : escaped);
  }
  return JoinStrings(quoted, " ");
}

}  // namespace xbase
