#include "src/swm/scrollbars.h"

#include <algorithm>

#include "src/swm/vdesk.h"
#include "src/swm/wm.h"

namespace swm {

DesktopScrollbars::DesktopScrollbars(WindowManager* wm, int screen)
    : wm_(wm), screen_(screen) {
  xlib::Display& dpy = wm_->display();
  xbase::Size view = dpy.DisplaySize(screen_);
  // Children of the real root: stuck to the glass like sticky windows.
  horizontal_ = dpy.CreateWindow(dpy.RootWindow(screen_),
                                 xbase::Rect{0, view.height - 1, view.width - 1, 1});
  vertical_ = dpy.CreateWindow(dpy.RootWindow(screen_),
                               xbase::Rect{view.width - 1, 0, 1, view.height - 1});
  for (xproto::WindowId window : {horizontal_, vertical_}) {
    dpy.SetWindowBackground(window, ':');
    dpy.SelectInput(window, xproto::kButtonPressMask | xproto::kButtonReleaseMask |
                                xproto::kPointerMotionMask);
    dpy.MapWindow(window);
    dpy.RaiseWindow(window);
  }
  Update();
}

DesktopScrollbars::~DesktopScrollbars() {
  xlib::Display& dpy = wm_->display();
  for (xproto::WindowId window : {horizontal_, vertical_}) {
    if (window != xproto::kNone && dpy.server().WindowExists(window)) {
      dpy.DestroyWindow(window);
    }
  }
}

void DesktopScrollbars::DrawBar(xproto::WindowId window, int track_length,
                                int desktop_extent, int viewport_extent, int offset,
                                bool horizontal) {
  xlib::Display& dpy = wm_->display();
  dpy.ClearWindow(window);
  if (desktop_extent <= 0 || track_length <= 0) {
    return;
  }
  int thumb_length =
      std::max(1, track_length * viewport_extent / desktop_extent);
  int thumb_pos = track_length * offset / desktop_extent;
  thumb_pos = std::clamp(thumb_pos, 0, std::max(0, track_length - thumb_length));
  xserver::DrawOp thumb;
  thumb.kind = xserver::DrawOp::Kind::kFillRect;
  thumb.rect = horizontal ? xbase::Rect{thumb_pos, 0, thumb_length, 1}
                          : xbase::Rect{0, thumb_pos, 1, thumb_length};
  thumb.fill = '#';
  dpy.Draw(window, thumb);
}

void DesktopScrollbars::Update() {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return;
  }
  xbase::Size view = desk->viewport();
  DrawBar(horizontal_, view.width - 1, desk->size().width, view.width,
          desk->offset().x, /*horizontal=*/true);
  DrawBar(vertical_, view.height - 1, desk->size().height, view.height,
          desk->offset().y, /*horizontal=*/false);
}

int DesktopScrollbars::TrackToDesktopX(int track_pos) const {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  xbase::Size view = desk->viewport();
  int track = view.width - 1;
  if (track <= 0) {
    return 0;
  }
  return track_pos * desk->size().width / track - view.width / 2;
}

int DesktopScrollbars::TrackToDesktopY(int track_pos) const {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  xbase::Size view = desk->viewport();
  int track = view.height - 1;
  if (track <= 0) {
    return 0;
  }
  return track_pos * desk->size().height / track - view.height / 2;
}

bool DesktopScrollbars::HandleButton(const xproto::ButtonEvent& event) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return false;
  }
  if (event.window == horizontal_) {
    if (event.press && event.button == 1) {
      dragging_horizontal_ = true;
      desk->PanTo({TrackToDesktopX(event.pos.x), desk->offset().y});
      wm_->DesktopViewChanged(screen_);
    } else if (!event.press) {
      dragging_horizontal_ = false;
    }
    return true;
  }
  if (event.window == vertical_) {
    if (event.press && event.button == 1) {
      dragging_vertical_ = true;
      desk->PanTo({desk->offset().x, TrackToDesktopY(event.pos.y)});
      wm_->DesktopViewChanged(screen_);
    } else if (!event.press) {
      dragging_vertical_ = false;
    }
    return true;
  }
  return false;
}

bool DesktopScrollbars::HandleMotion(const xproto::MotionEvent& event) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return false;
  }
  if (dragging_horizontal_ && event.window == horizontal_) {
    desk->PanTo({TrackToDesktopX(event.pos.x), desk->offset().y});
    wm_->DesktopViewChanged(screen_);
    return true;
  }
  if (dragging_vertical_ && event.window == vertical_) {
    desk->PanTo({desk->offset().x, TrackToDesktopY(event.pos.y)});
    wm_->DesktopViewChanged(screen_);
    return true;
  }
  return event.window == horizontal_ || event.window == vertical_;
}

}  // namespace swm
