// Client side of the swmcmd protocol (paper §4.5): "a way to execute window
// manager commands by typing them into a shell" — the command string is
// written to a property on the root window, which swm interprets.
#ifndef SRC_SWM_SWMCMD_H_
#define SRC_SWM_SWMCMD_H_

#include <string>

#include "src/xlib/display.h"

namespace swm {

// Appends a command (e.g. "f.raise" or "f.iconify(XClock)") to the
// SWM_COMMAND property on the root window of `screen`.  The running swm
// picks it up via PropertyNotify.  Returns false if the property write
// failed.
bool SendSwmCommand(xlib::Display* display, int screen, const std::string& command);

}  // namespace swm

#endif  // SRC_SWM_SWMCMD_H_
