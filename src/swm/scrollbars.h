// Desktop scrollbars (paper §6): "This large root window can be panned
// using scrollbars, a two dimensional panner object, or window manager
// functions."
//
// Two thin bars stuck to the glass along the right and bottom display
// edges, with proportional thumbs showing the viewport's position within
// the Virtual Desktop.  Clicking or dragging in a bar pans that axis.
// Enabled by the resource `swm*scrollbars: True` (requires a virtual
// desktop).
#ifndef SRC_SWM_SCROLLBARS_H_
#define SRC_SWM_SCROLLBARS_H_

#include "src/xlib/display.h"
#include "src/xproto/events.h"

namespace swm {

class WindowManager;

class DesktopScrollbars {
 public:
  DesktopScrollbars(WindowManager* wm, int screen);
  ~DesktopScrollbars();

  DesktopScrollbars(const DesktopScrollbars&) = delete;
  DesktopScrollbars& operator=(const DesktopScrollbars&) = delete;

  xproto::WindowId horizontal() const { return horizontal_; }
  xproto::WindowId vertical() const { return vertical_; }

  // Redraws both thumbs from the current desktop offset.
  void Update();

  // Pointer handling; returns true when the event was consumed.
  bool HandleButton(const xproto::ButtonEvent& event);
  bool HandleMotion(const xproto::MotionEvent& event);

  // The desktop x (or y) that corresponds to a click at track position
  // `track_pos`, centering the viewport there.
  int TrackToDesktopX(int track_pos) const;
  int TrackToDesktopY(int track_pos) const;

 private:
  void DrawBar(xproto::WindowId window, int track_length, int desktop_extent,
               int viewport_extent, int offset, bool horizontal);

  WindowManager* wm_;
  int screen_;
  xproto::WindowId horizontal_ = xproto::kNone;  // Bottom edge.
  xproto::WindowId vertical_ = xproto::kNone;    // Right edge.
  bool dragging_horizontal_ = false;
  bool dragging_vertical_ = false;
};

}  // namespace swm

#endif  // SRC_SWM_SCROLLBARS_H_
