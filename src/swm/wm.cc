#include "src/swm/wm.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/swm/panner.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/scrollbars.h"
#include "src/swm/templates.h"
#include "src/xlib/icccm.h"
#include "src/xproto/hints.h"

namespace swm {

namespace {

std::string Capitalized(const std::string& s) {
  if (s.empty()) {
    return s;
  }
  std::string out = s;
  out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

}  // namespace

// Accumulated offset of an object's window within its tree root's window.
static xbase::Point OffsetWithinTree(const oi::Object* object) {
  xbase::Point offset{0, 0};
  const oi::Object* cur = object;
  while (cur != nullptr && cur->parent() != nullptr) {
    offset.x += cur->geometry().x;
    offset.y += cur->geometry().y;
    cur = cur->parent();
  }
  return offset;
}

xbase::Rect ManagedClient::FrameGeometry() const {
  return frame != nullptr ? frame->geometry() : xbase::Rect{};
}

xbase::Point ManagedClient::ClientDesktopPosition() const {
  if (frame == nullptr || client_panel == nullptr) {
    return {};
  }
  xbase::Point offset = OffsetWithinTree(client_panel);
  return {frame->geometry().x + offset.x, frame->geometry().y + offset.y};
}

WindowManager::WindowManager(xserver::Server* server, Options options)
    : server_(server),
      display_(server, "localhost"),
      aux_display_(server, "localhost"),
      options_(std::move(options)) {
  display_.SetErrorHandler([this](const xproto::XError& error) { OnXError(error); });
  aux_display_.SetErrorHandler([this](const xproto::XError& error) { OnXError(error); });
  LoadResources();
  // Layout policy (docs/POLICIES.md): resource-selected, floating default.
  std::string policy_name = "floating";
  if (std::optional<std::string> configured =
          db_.Get("swm.layout.policy", "Swm.Layout.Policy")) {
    policy_name = xbase::TrimWhitespace(*configured);
  }
  policy_ = CreateLayoutPolicy(policy_name, this);
  if (policy_ == nullptr) {
    XB_LOG(Warning) << "swm: unknown layout policy '" << policy_name
                    << "'; using floating";
    policy_ = CreateLayoutPolicy("floating", this);
  }
}

void WindowManager::OnXError(const xproto::XError& error) {
  ++x_errors_;
  // An error flood repeats one line thousands of times; log every Nth
  // occurrence per (request, code) pair instead.
  XB_LOG_EVERY_N(Warning,
                 "swm:xerror:" + xproto::RequestCodeName(error.request) + ":" +
                     xproto::ErrorCodeName(error.code),
                 32)
      << "swm: " << xproto::ErrorText(error);
  // The handler runs synchronously inside the failed request, so it must not
  // mutate management state; it records the window for HealSuspects, which
  // the event loop runs once the stack has unwound.  Charging the ledger is
  // pure bookkeeping: a client whose windows keep raising errors drains its
  // misbehavior budget like any other flood.
  if (error.resource_id != xproto::kNone) {
    if (clients_.count(error.resource_id) != 0) {
      ledger_.Charge(error.resource_id, ledger_.policy().error_cost);
    }
    if (error.code == xproto::ErrorCode::kBadWindow ||
        error.code == xproto::ErrorCode::kBadMatch) {
      suspect_windows_.push_back(error.resource_id);
    }
  }
}

void WindowManager::HealSuspects() {
  std::vector<xproto::WindowId> suspects;
  suspects.swap(suspect_windows_);
  bool any_dead = false;
  for (xproto::WindowId window : suspects) {
    if (server_->WindowExists(window)) {
      continue;  // Transient error (BadMatch on a live window, say).
    }
    any_dead = true;
    if (clients_.count(window) != 0) {
      XB_LOG(Warning) << "swm: healing — window " << window
                      << " died without DestroyNotify; unmanaging";
      UnmanageWindow(window, /*reparent_back=*/false);
      ++healed_count_;
    }
  }
  if (!any_dead) {
    return;
  }
  // The error may have named a frame slot or icon window rather than the
  // client window itself: sweep every managed client for liveness.
  std::vector<xproto::WindowId> dead;
  for (const auto& [window, client] : clients_) {
    if (!server_->WindowExists(window)) {
      dead.push_back(window);
    }
  }
  for (xproto::WindowId window : dead) {
    XB_LOG(Warning) << "swm: healing — managed window " << window
                    << " found dead during sweep; unmanaging";
    UnmanageWindow(window, /*reparent_back=*/false);
    ++healed_count_;
  }
}

WindowManager::~WindowManager() {
  in_teardown_ = true;  // Unmanaging everything must not trigger reflows.
  // Hand the session to whoever manages these clients next (restart
  // recovery, docs/ROBUSTNESS.md): the successor's TakeRestartInfo restores
  // geometry, icon position, iconic and sticky state.
  if (started_) {
    PersistSessionState();
  }
  // Withdraw management: reparent all clients back to their roots so that a
  // successor window manager finds them intact.
  std::vector<xproto::WindowId> windows;
  for (const auto& [window, client] : clients_) {
    windows.push_back(window);
  }
  for (xproto::WindowId window : windows) {
    bool exists = server_->WindowExists(window);
    // Re-map iconified clients: a successor's ManageExistingWindows skips
    // unmapped windows, and the restart record carries their iconic state.
    if (exists) {
      auto it = clients_.find(window);
      if (it != clients_.end() && !it->second->is_internal &&
          it->second->state == xproto::WmState::kIconic) {
        display_.MapWindow(window);
      }
    }
    UnmanageWindow(window, exists);
  }
  // Screens (toolkits, vdesks, panners) tear down before the displays
  // disconnect below.
  screens_.clear();
}

void WindowManager::LoadResources() {
  // Template under user resources: the user "can include and then override
  // defaults in a standard template file" (paper §3).
  xrdb::ResourceDatabase user;
  user.LoadFromString(options_.resources);
  std::string template_name = options_.template_name;
  if (std::optional<std::string> chosen = user.Get("swm.template", "Swm.Template")) {
    template_name = xbase::TrimWhitespace(*chosen);
  }
  std::optional<std::string> template_text = TemplateText(template_name);
  if (!template_text.has_value()) {
    XB_LOG(Warning) << "swm: unknown template '" << template_name << "', using default";
    template_text = TemplateText("default");
  }
  db_.LoadFromString(*template_text);
  // Internal defaults that templates may override.
  db_.Put("swm*SwmPanner*sticky", "True");
  db_.Put("swm*SwmPanner*decoration", "swmPannerFrame");
  db_.Put("swm*panel.swmPannerFrame", "button name +C+0 panel client +0+1");
  db_.LoadFromString(options_.resources);
}

xserver::ConnectionLimits WindowManager::TransportLimits() const {
  xserver::ConnectionLimits limits;  // Defaults: idle disabled, stall 5000ms.
  auto read_ms = [this](const char* name, const char* cls, int64_t fallback) {
    std::optional<std::string> value = db_.Get(name, cls);
    if (!value.has_value()) {
      return fallback;
    }
    std::optional<int> parsed = xbase::ParseInt(xbase::TrimWhitespace(*value));
    if (!parsed.has_value() || *parsed < 0) {
      XB_LOG(Warning) << "swm: bad " << name << " value '" << *value
                      << "', using " << fallback;
      return fallback;
    }
    return static_cast<int64_t>(*parsed);
  };
  limits.read_idle_ms = read_ms("swm.transport.idleMs", "Swm.Transport.IdleMs",
                                limits.read_idle_ms);
  limits.write_stall_ms = read_ms("swm.transport.stallMs", "Swm.Transport.StallMs",
                                  limits.write_stall_ms);
  return limits;
}

bool WindowManager::Start() {
  XB_CHECK(!started_);
  // Claim window management on every screen; failure means another window
  // manager holds SubstructureRedirect.
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    uint32_t mask = xproto::kSubstructureRedirectMask | xproto::kSubstructureNotifyMask |
                    xproto::kPropertyChangeMask | xproto::kButtonPressMask |
                    xproto::kButtonReleaseMask | xproto::kKeyPressMask;
    if (!display_.SelectInput(display_.RootWindow(screen), mask)) {
      XB_LOG(Error) << "swm: another window manager is running on screen " << screen;
      return false;
    }
  }
  started_ = true;
  server_->SetPaintThreads(options_.paint_threads);
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    InitScreen(screen);
  }
  // Restart persistence: a predecessor's runtime policy selection rides
  // SWM_RESTART_INFO (read by InitScreen above) and outranks the
  // swm.layout.policy resource default — adopted before any client manages.
  if (restart_policy_name_.has_value()) {
    if (!SetLayoutPolicy(*restart_policy_name_)) {
      XB_LOG(Warning) << "swm: restart info names unknown layout policy '"
                      << *restart_policy_name_ << "'; keeping " << policy_->name();
    }
    restart_policy_name_.reset();
  }
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    ManageExistingWindows(screen);
  }
  ProcessEvents();
  return true;
}

void WindowManager::InitScreen(int screen) {
  ScreenState state;
  state.number = screen;
  state.toolkit = std::make_unique<oi::Toolkit>(&display_, &db_, screen);
  std::string screen_name = "screen" + std::to_string(screen);
  std::string visual_name = display_.IsMonochrome(screen) ? "monochrome" : "color";
  state.toolkit->SetResourcePrefix({"swm", visual_name, screen_name},
                                   {"Swm", Capitalized(visual_name),
                                    Capitalized(screen_name)});
  state.toolkit->SetActionHandler(
      [this](const xtb::FunctionCall& function, const oi::ActionContext& context) {
        ExecuteFunction(function, context);
      });
  state.toolkit->frame_scheduler().SetImmediateRender(options_.immediate_render);
  state.toolkit->frame_scheduler().SetLayoutObserver(
      [this](oi::Object* root) { OnTreeLaidOut(root); });

  // Virtual Desktop (paper §6): resource value is "WIDTHxHEIGHT".
  std::optional<std::string> vdesk_spec = ScreenResource(screen, "virtualDesktop");
  if (vdesk_spec.has_value()) {
    std::optional<xbase::GeometrySpec> parsed = xbase::ParseGeometry(
        xbase::TrimWhitespace(*vdesk_spec));
    if (parsed.has_value() && parsed->width.has_value()) {
      int count = 1;
      if (std::optional<std::string> count_res =
              ScreenResource(screen, "virtualDesktops")) {
        count = std::clamp(
            xbase::ParseInt(xbase::TrimWhitespace(*count_res)).value_or(1), 1, 32);
      }
      // The `virtualDesktops` count creates several desktops (the paper's
      // §6.3.1 multiple-desktops extension); only the active one is mapped.
      for (int i = 0; i < count; ++i) {
        state.vdesks.push_back(std::make_unique<VirtualDesktop>(
            &display_, screen, xbase::Size{*parsed->width, *parsed->height}));
        if (i != 0) {
          display_.UnmapWindow(state.vdesks.back()->window());
        }
      }
    } else {
      XB_LOG(Warning) << "swm: bad virtualDesktop geometry '" << *vdesk_spec << "'";
    }
  }

  screens_.push_back(std::move(state));
  ScreenState& installed = screens_.back();

  // Session restart table (paper §7): read and clear the root property.
  RestartTable table = TakeRestartInfo(&display_, screen);
  for (const SwmHintsRecord& record : table.records()) {
    restart_table_.Add(record);
  }
  if (table.policy_name().has_value()) {
    restart_policy_name_ = table.policy_name();
  }

  // Panner (paper §6.1) — requires the Virtual Desktop.
  if (installed.vdesk() != nullptr) {
    bool want_panner = true;
    if (std::optional<std::string> panner_res = ScreenResource(screen, "panner")) {
      std::string lower = xbase::ToLowerAscii(xbase::TrimWhitespace(*panner_res));
      want_panner = lower == "true" || lower == "yes" || lower == "on";
    }
    if (want_panner) {
      int scale = 16;
      if (std::optional<std::string> scale_res = ScreenResource(screen, "pannerScale")) {
        scale = xbase::ParseInt(xbase::TrimWhitespace(*scale_res)).value_or(16);
      }
      installed.panner = std::make_unique<Panner>(this, screen, std::max(1, scale));
      installed.panner->Map();
    }
  }

  // Desktop scrollbars (§6's first panning method); off by default.
  if (installed.vdesk() != nullptr) {
    if (std::optional<std::string> res = ScreenResource(screen, "scrollbars")) {
      std::string lower = xbase::ToLowerAscii(xbase::TrimWhitespace(*res));
      if (lower == "true" || lower == "yes" || lower == "on") {
        installed.scrollbars = std::make_unique<DesktopScrollbars>(this, screen);
      }
    }
  }

  CreateIconHolders(screen);
  CreateRootPanels(screen);
  CreateRootIcons(screen);
}

void WindowManager::ManageExistingWindows(int screen) {
  std::optional<xserver::QueryTreeReply> tree =
      display_.QueryTree(display_.RootWindow(screen));
  if (!tree.has_value()) {
    return;
  }
  ScreenState& state = screens_[screen];
  for (xproto::WindowId child : tree->children) {
    bool is_desktop_window = false;
    for (const auto& desk : state.vdesks) {
      if (child == desk->window()) {
        is_desktop_window = true;
      }
    }
    if (is_desktop_window) {
      continue;
    }
    // Never manage swm's own windows (root icons, icon holders, frames).
    const xserver::WindowRec* rec = server_->FindWindowForTest(child);
    if (rec != nullptr && rec->owner == display_.client_id()) {
      continue;
    }
    std::optional<xserver::WindowAttributes> attrs = display_.GetWindowAttributes(child);
    if (!attrs.has_value() || attrs->override_redirect ||
        attrs->map_state == xproto::MapState::kUnmapped) {
      continue;
    }
    if (FindClient(child) == nullptr) {
      ManageWindow(child, screen);
    }
  }
}

// ---- Resource helpers ---------------------------------------------------------

std::optional<std::string> WindowManager::ScreenResource(int screen,
                                                         const std::string& resource) const {
  return ScreenResource(screen, {}, {}, resource);
}

std::optional<std::string> WindowManager::ScreenResource(
    int screen, const std::vector<std::string>& extra_names,
    const std::vector<std::string>& extra_classes, const std::string& resource) const {
  std::string screen_name = "screen" + std::to_string(screen);
  std::string visual_name = display_.IsMonochrome(screen) ? "monochrome" : "color";
  std::vector<std::string> names{"swm", visual_name, screen_name};
  std::vector<std::string> classes{"Swm", Capitalized(visual_name), Capitalized(screen_name)};
  names.insert(names.end(), extra_names.begin(), extra_names.end());
  classes.insert(classes.end(), extra_classes.begin(), extra_classes.end());
  names.push_back(resource);
  classes.push_back(Capitalized(resource));
  return db_.Get(names, classes);
}

std::optional<std::string> WindowManager::ClientResource(const ManagedClient& client,
                                                         const std::string& resource) const {
  // "swm recognizes if a client window is shaped and adds the string shaped
  // to the beginning of the resource strings" (§5); likewise "sticky" (§6.2).
  std::vector<std::string> extra_names;
  std::vector<std::string> extra_classes;
  if (client.sticky) {
    extra_names.push_back("sticky");
    extra_classes.push_back("Sticky");
  }
  if (client.shaped) {
    extra_names.push_back("shaped");
    extra_classes.push_back("Shaped");
  }
  if (!client.wm_class.clazz.empty() || !client.wm_class.instance.empty()) {
    extra_names.push_back(client.wm_class.clazz);
    extra_names.push_back(client.wm_class.instance);
    extra_classes.push_back(client.wm_class.clazz);
    extra_classes.push_back(client.wm_class.instance);
  }
  return ScreenResource(client.screen, extra_names, extra_classes, resource);
}

std::optional<std::string> WindowManager::PanelDefinition(int screen,
                                                          const std::string& name) const {
  return ScreenResource(screen, {"panel"}, {"Panel"}, name);
}

// ---- Introspection -----------------------------------------------------------------

oi::Toolkit& WindowManager::toolkit(int screen) {
  XB_CHECK_GE(screen, 0);
  XB_CHECK_LT(screen, static_cast<int>(screens_.size()));
  return *screens_[screen].toolkit;
}

VirtualDesktop* WindowManager::vdesk(int screen) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return nullptr;
  }
  return screens_[screen].vdesk();
}

int WindowManager::DesktopCount(int screen) const {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return 0;
  }
  return static_cast<int>(screens_[screen].vdesks.size());
}

int WindowManager::ActiveDesktop(int screen) const {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return 0;
  }
  return screens_[screen].active_vdesk;
}

bool WindowManager::SwitchDesktop(int screen, int index) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return false;
  }
  ScreenState& state = screens_[screen];
  if (index < 0 || index >= static_cast<int>(state.vdesks.size()) ||
      index == state.active_vdesk) {
    return false;
  }
  // Hide the current desktop (its windows become unviewable with it), show
  // the target.  Sticky windows live on the real root and stay visible.
  display_.UnmapWindow(state.vdesks[static_cast<size_t>(state.active_vdesk)]->window());
  state.active_vdesk = index;
  VirtualDesktop* desk = state.vdesk();
  display_.MapWindow(desk->window());
  display_.LowerWindow(desk->window());
  DesktopViewChanged(screen);
  return true;
}

Panner* WindowManager::panner(int screen) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return nullptr;
  }
  return screens_[screen].panner.get();
}

DesktopScrollbars* WindowManager::scrollbars(int screen) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return nullptr;
  }
  return screens_[screen].scrollbars.get();
}

void WindowManager::DesktopViewChanged(int screen) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return;
  }
  ScreenState& state = screens_[screen];
  if (state.panner != nullptr) {
    state.panner->Update();
  }
  if (state.scrollbars != nullptr) {
    state.scrollbars->Update();
  }
  // Policies react to the viewport move (slot policies keep their layout
  // glued to the visible view; floating re-anchors its cascade cursor).
  if (started_ && !in_teardown_ && policy_ != nullptr) {
    policy_->OnViewportChange(screen);
  }
}

size_t WindowManager::ClientCount() const { return clients_.size(); }

ManagedClient* WindowManager::FindClient(xproto::WindowId client_window) {
  auto it = clients_.find(client_window);
  return it == clients_.end() ? nullptr : it->second.get();
}

std::vector<ManagedClient*> WindowManager::Clients() {
  std::vector<ManagedClient*> out;
  out.reserve(clients_.size());
  for (const auto& [window, client] : clients_) {
    out.push_back(client.get());
  }
  return out;
}

std::vector<IconHolder*> WindowManager::icon_holders(int screen) {
  std::vector<IconHolder*> out;
  if (screen >= 0 && screen < static_cast<int>(screens_.size())) {
    for (const auto& holder : screens_[screen].icon_holders) {
      out.push_back(holder.get());
    }
  }
  return out;
}

ManagedClient* WindowManager::FindClientByAnyWindow(xproto::WindowId window) {
  if (window == xproto::kNone) {
    return nullptr;
  }
  if (ManagedClient* direct = FindClient(window)) {
    return direct;
  }
  // A decoration/icon object window?
  for (ScreenState& state : screens_) {
    oi::Object* object = state.toolkit->FindObject(window);
    if (object != nullptr) {
      const oi::Object* root = object;
      while (root->parent() != nullptr) {
        root = root->parent();
      }
      auto it = tree_owner_.find(root);
      if (it != tree_owner_.end()) {
        return FindClient(it->second);
      }
      return nullptr;
    }
  }
  // A frame window or descendant of one (e.g. the client's own subwindows):
  // walk up the tree looking for a client window.
  xproto::WindowId cur = window;
  while (cur != xproto::kNone) {
    if (ManagedClient* client = FindClient(cur)) {
      return client;
    }
    std::optional<xserver::QueryTreeReply> tree = display_.QueryTree(cur);
    if (!tree.has_value()) {
      return nullptr;
    }
    cur = tree->parent;
  }
  return nullptr;
}

int WindowManager::ScreenOf(xproto::WindowId window) const {
  int screen = server_->ScreenOfWindow(window);
  return screen < 0 ? 0 : screen;
}

xproto::WindowId WindowManager::FrameParent(int screen, bool sticky) {
  ScreenState& state = screens_[screen];
  if (!sticky && state.vdesk() != nullptr) {
    return state.vdesk()->window();
  }
  return display_.RootWindow(screen);
}

// ---- Simple window operations ------------------------------------------------------

void WindowManager::MoveFrameTo(ManagedClient* client, const xbase::Point& parent_pos) {
  if (client == nullptr || client->frame == nullptr) {
    return;
  }
  xbase::Rect geometry = client->frame->geometry();
  geometry.x = parent_pos.x;
  geometry.y = parent_pos.y;
  client->frame->SetGeometry(geometry);
  SendSyntheticConfigure(client);
  if (Panner* p = panner(client->screen)) {
    p->Update();
  }
}

void WindowManager::ResizeClient(ManagedClient* client, xbase::Size client_size) {
  if (client == nullptr || client->frame == nullptr || client->client_panel == nullptr) {
    return;
  }
  client_size = client->size_hints.Constrain(client_size);
  display_.ResizeWindow(client->window, client_size);
  client->client_panel->SetSizeOverride(client_size);
  // Shapes and the synthetic configure below read laid-out geometry, so
  // this flush is synchronous even mid-batch.  Only objects the layout
  // actually resized repaint; title buttons that merely moved keep their
  // display lists.  Corner handles are re-pinned by the layout observer.
  FlushFrames();
  client->frame->ApplyShape();
  ApplyClientShapeToFrame(client);
  SendSyntheticConfigure(client);
  if (client->is_internal) {
    Panner* p = panner(client->screen);
    if (p != nullptr && client->window == p->window()) {
      p->OnResized(client_size);
    }
  }
  if (Panner* p = panner(client->screen)) {
    p->Update();
  }
}

void WindowManager::RaiseClient(ManagedClient* client) {
  if (client != nullptr && client->frame != nullptr) {
    display_.RaiseWindow(client->frame->window());
    if (!in_teardown_ && policy_ != nullptr && !client->is_internal) {
      policy_->OnStackingChange(client, /*raised=*/true);
    }
  }
}

void WindowManager::LowerClient(ManagedClient* client) {
  if (client != nullptr && client->frame != nullptr) {
    display_.LowerWindow(client->frame->window());
    if (!in_teardown_ && policy_ != nullptr && !client->is_internal) {
      policy_->OnStackingChange(client, /*raised=*/false);
    }
  }
}

void WindowManager::SaveGeometry(ManagedClient* client) {
  if (client != nullptr && client->frame != nullptr) {
    client->saved_frame_geometry = client->frame->geometry();
  }
}

void WindowManager::RestoreGeometry(ManagedClient* client) {
  if (client == nullptr || !client->saved_frame_geometry.has_value() ||
      client->client_panel == nullptr) {
    return;
  }
  xbase::Rect saved = *client->saved_frame_geometry;
  client->saved_frame_geometry.reset();
  // Restore the client size implied by the saved frame size.
  xbase::Point client_offset = OffsetWithinTree(client->client_panel);
  xbase::Size frame_size = client->frame->geometry().size();
  xbase::Size client_size = client->client_panel->geometry().size();
  xbase::Size new_client{saved.width - (frame_size.width - client_size.width),
                         saved.height - (frame_size.height - client_size.height)};
  (void)client_offset;
  MoveFrameTo(client, saved.origin());
  ResizeClient(client, new_client);
}

void WindowManager::Zoom(ManagedClient* client) {
  if (client == nullptr || client->frame == nullptr || client->client_panel == nullptr) {
    return;
  }
  // f.zoom expands to the full size of the screen (the visible viewport).
  ScreenState& state = screens_[client->screen];
  xbase::Size view = display_.DisplaySize(client->screen);
  xbase::Point origin{0, 0};
  if (!client->sticky && state.vdesk() != nullptr) {
    origin = state.vdesk()->offset();
  }
  xbase::Size frame_size = client->frame->geometry().size();
  xbase::Size client_size = client->client_panel->geometry().size();
  xbase::Size decoration{frame_size.width - client_size.width,
                         frame_size.height - client_size.height};
  MoveFrameTo(client, origin);
  ResizeClient(client, {view.width - decoration.width, view.height - decoration.height});
}

void WindowManager::CloseClient(ManagedClient* client) {
  if (client == nullptr) {
    return;
  }
  // Politely via WM_DELETE_WINDOW when supported, else disconnect-kill.
  std::optional<std::vector<std::string>> protocols =
      xlib::GetWmProtocols(&display_, client->window);
  bool supports_delete =
      protocols.has_value() &&
      std::find(protocols->begin(), protocols->end(),
                xproto::kAtomWmDeleteWindow) != protocols->end();
  if (supports_delete) {
    xlib::SendDeleteWindow(&display_, client->window);
  } else {
    display_.DestroyWindow(client->window);
  }
}

bool WindowManager::SetLayoutPolicy(const std::string& name) {
  std::unique_ptr<LayoutPolicy> policy = CreateLayoutPolicy(name, this);
  if (policy == nullptr) {
    return false;
  }
  policy_ = std::move(policy);
  // Full re-layout under the new regime; the frames flush at the caller's
  // batch boundary (or right here when invoked outside ProcessEvents).
  for (ScreenState& state : screens_) {
    policy_->Relayout(state.number);
  }
  MaybeFlushFrames();
  return true;
}

void WindowManager::ReloadResources() {
  // Start from scratch so removed user entries really disappear; the
  // toolkits keep pointing at db_ (same object, moved-into), and the
  // generation bump from the reload's Puts invalidates their caches.
  db_ = xrdb::ResourceDatabase();
  LoadResources();
  for (const auto& [window, client] : clients_) {
    if (client->frame != nullptr) {
      client->frame->RefreshAttributes();
      client->frame->InvalidateTree(oi::kPaintDirty);
    }
    if (client->icon != nullptr) {
      client->icon->RefreshAttributes();
    }
  }
  for (ScreenState& state : screens_) {
    for (const auto& tree : state.root_panel_trees) {
      tree->RefreshAttributes();
      tree->InvalidateTree(oi::kPaintDirty);
    }
    for (const auto& icon : state.root_icons) {
      icon->RefreshAttributes();
    }
    // Menus memoize their item list at first popup; drop them so the next
    // f.menu rebuilds from the reloaded database.
    for (auto& [name, menu] : state.menus) {
      if (menu->popped_up()) {
        menu->Popdown();
      }
    }
    state.menus.clear();
  }
  MaybeFlushFrames();
}

void WindowManager::RefreshAll() {
  for (const auto& [window, client] : clients_) {
    if (client->frame != nullptr) {
      client->frame->InvalidateTree(oi::kPaintDirty);
    }
    if (client->icon != nullptr && client->state == xproto::WmState::kIconic) {
      client->icon->InvalidateTree(oi::kPaintDirty);
    }
  }
  for (ScreenState& state : screens_) {
    if (state.panner != nullptr) {
      state.panner->Update();
    }
    for (const auto& icon : state.root_icons) {
      icon->InvalidateTree(oi::kPaintDirty);
    }
  }
  MaybeFlushFrames();
}

void WindowManager::FlushFrames() {
  for (ScreenState& state : screens_) {
    state.toolkit->FlushFrame();
  }
}

void WindowManager::MaybeFlushFrames() {
  if (frame_hold_depth_ == 0) {
    FlushFrames();
  }
}

void WindowManager::OnTreeLaidOut(oi::Object* root) {
  auto it = tree_owner_.find(root);
  if (it == tree_owner_.end()) {
    return;
  }
  ManagedClient* client = FindClient(it->second);
  if (client != nullptr && client->frame.get() == root) {
    PositionResizeCorners(client);
  }
}

void WindowManager::SendSyntheticConfigure(ManagedClient* client) {
  if (client == nullptr || client->frame == nullptr) {
    return;
  }
  // Coordinates are relative to the client's *effective* root (the Virtual
  // Desktop for normal windows) — the companion of the SWM_ROOT property.
  std::optional<xbase::Rect> geometry = display_.GetGeometry(client->window);
  if (!geometry.has_value()) {
    return;
  }
  xbase::Point pos = client->ClientDesktopPosition();
  xlib::SendSyntheticConfigureNotify(
      &display_, client->window,
      xbase::Rect{pos.x, pos.y, geometry->width, geometry->height});
}

void WindowManager::ApplyClientShapeToFrame(ManagedClient* client) {
  if (client == nullptr || !client->shaped || client->frame == nullptr ||
      client->client_panel == nullptr) {
    return;
  }
  // Only when the decoration opted into shaping (e.g. the shapeit panel's
  // `shape: True`): the frame's shape becomes the union of its opaque
  // children with the client's own shape in place of the client rectangle.
  if (!client->frame->BoolAttribute("shape") &&
      !client->frame->Attribute("shapeMask").has_value()) {
    return;
  }
  std::optional<xbase::Region> client_shape = server_->GetShape(client->window);
  if (!client_shape.has_value()) {
    return;
  }
  xbase::Point offset = OffsetWithinTree(client->client_panel);
  xbase::Region shape = client_shape->Translated(offset.x, offset.y);
  for (const std::unique_ptr<oi::Object>& child : client->frame->children()) {
    if (child.get() == client->client_panel || child->floating()) {
      continue;
    }
    shape = shape.Union(xbase::Region(child->geometry()));
  }
  display_.ShapeSetRegion(client->frame->window(), std::move(shape));
}

void WindowManager::UpdateSwmRootProperty(ManagedClient* client) {
  // Paper §6.3.1: "When swm reparents a window it places a property on the
  // window indicating the window ID of its root window [...] updated
  // whenever the root window for a client changes."
  ScreenState& state = screens_[client->screen];
  xproto::WindowId effective_root =
      (!client->sticky && state.vdesk() != nullptr) ? state.vdesk()->window()
                                                  : display_.RootWindow(client->screen);
  display_.SetWindowIdProperty(client->window, xproto::kAtomSwmRoot, effective_root);
}

}  // namespace swm
