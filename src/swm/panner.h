// The Virtual Desktop panner (paper §6.1, Figure 3).
//
// "The panner shows a miniature representation of all windows currently on
// the Virtual Desktop.  It also displays an outline indicating your current
// position within the desktop."  Button 1 pans; button 2 on a miniature
// window starts a move of the real window (finishing inside or outside the
// panner); the panner itself is reparented and managed like any client, and
// resizing it resizes the underlying Virtual Desktop.
#ifndef SRC_SWM_PANNER_H_
#define SRC_SWM_PANNER_H_

#include <memory>

#include "src/xlib/client_app.h"
#include "src/xlib/display.h"

namespace swm {

class WindowManager;
struct ManagedClient;

class Panner {
 public:
  // `scale` is the desktop-pixels-per-panner-cell factor (resource
  // swm*panner.scale, default 16): desktop size == panner size * scale.
  Panner(WindowManager* wm, int screen, int scale);
  ~Panner();

  Panner(const Panner&) = delete;
  Panner& operator=(const Panner&) = delete;

  // The panner's client window (owned by the WM's aux connection and
  // managed/reparented like a normal client).
  xproto::WindowId window() const { return app_->window(); }
  int scale() const { return scale_; }
  int screen() const { return screen_; }

  // Maps the client window (kicks off normal management).
  void Map();

  // Redraws the miniature: desktop outline, one box per non-sticky managed
  // window, and the viewport position outline.
  void Update();

  // Event handling; return true when the event was consumed.
  bool HandleButton(const xproto::ButtonEvent& event);
  bool HandleMotion(const xproto::MotionEvent& event);

  // Called when the panner's client window got resized: resizes the
  // Virtual Desktop to panner-size * scale (paper: "The act of resizing
  // the panner object causes the underlying Virtual Desktop window to
  // resize").
  void OnResized(const xbase::Size& new_size);

  // Coordinate mapping between panner cells and desktop pixels.
  xbase::Point PannerToDesktop(const xbase::Point& p) const;
  xbase::Point DesktopToPanner(const xbase::Point& p) const;

  bool dragging_window() const { return drag_window_ != xproto::kNone; }

 private:
  WindowManager* wm_;
  int screen_;
  int scale_;
  std::unique_ptr<xlib::ClientApp> app_;
  bool panning_ = false;
  xproto::WindowId drag_window_ = xproto::kNone;  // Miniature-move in progress.
  xbase::Point drag_offset_;  // Pointer offset inside the miniature box.
};

}  // namespace swm

#endif  // SRC_SWM_PANNER_H_
