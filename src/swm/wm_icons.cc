// Icons: icon appearance panels (paper §4.1.2), placement, and icon holder
// panels (§4.1.5).
#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/swm/panner.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/wm.h"
#include "src/xlib/icccm.h"

namespace swm {

namespace {

const xbase::Bitmap& NamedBitmap(const std::string& name) {
  if (name == "rounded") {
    return xbase::RoundedMask16();
  }
  if (name == "circle") {
    return xbase::CircleMask(16);
  }
  // "the iconimage button will contain the image of the xlogo32 bitmap
  // file" by default (paper §4.1.2).
  return xbase::XLogo32();
}

}  // namespace

void WindowManager::BuildIcon(ManagedClient* client) {
  if (client->icon != nullptr) {
    return;
  }
  ScreenState& state = screens_[client->screen];
  std::string icon_panel_name = "swmIcon";
  if (std::optional<std::string> configured = ClientResource(*client, "icon")) {
    icon_panel_name = xbase::TrimWhitespace(*configured);
  }
  int screen = client->screen;
  auto lookup = [this, screen](const std::string& name) {
    return PanelDefinition(screen, name);
  };
  IconHolder* holder = HolderFor(*client);
  xproto::WindowId parent =
      holder != nullptr ? holder->window() : FrameParent(client->screen, client->sticky);

  std::vector<std::string> prefix_names;
  std::vector<std::string> prefix_classes;
  if (!client->wm_class.clazz.empty()) {
    prefix_names = {client->wm_class.clazz, client->wm_class.instance};
    prefix_classes = prefix_names;
  }
  std::unique_ptr<oi::Panel> icon =
      state.toolkit->BuildPanelTree(icon_panel_name, parent, lookup, prefix_names,
                                    prefix_classes);
  if (icon == nullptr) {
    // Fallback: a bare one-button icon.
    icon = state.toolkit->CreatePanel(nullptr, parent, icon_panel_name);
    auto image = state.toolkit->CreateButton(icon.get(), icon->window(), "iconimage");
    image->SetPosition(oi::ObjectPosition{oi::HAlign::kCenter, 0, 0});
    icon->AddChild(std::move(image));
  }

  // Populate the magic objects (paper §4.1.2): `iconimage` shows the
  // client's icon pixmap, or — if the client "has specified its own icon
  // window" — that window is reparented into the slot; `iconname` shows
  // WM_ICON_NAME.
  if (oi::Object* image_obj = icon->FindDescendant("iconimage")) {
    bool has_icon_window = (client->wm_hints.flags & xproto::kIconWindowHint) != 0 &&
                           server_->WindowExists(client->wm_hints.icon_window);
    if (has_icon_window) {
      std::optional<xbase::Rect> icon_win_geometry =
          display_.GetGeometry(client->wm_hints.icon_window);
      image_obj->SetSizeOverride(icon_win_geometry->size());
      display_.ReparentWindow(client->wm_hints.icon_window, image_obj->window(),
                              {0, 0});
      display_.MapWindow(client->wm_hints.icon_window);
      client->uses_icon_window = true;
    } else if (image_obj->type() == oi::ObjectType::kButton) {
      std::string pixmap_name = client->wm_hints.icon_pixmap_name;
      static_cast<oi::Button*>(image_obj)->SetImage(NamedBitmap(pixmap_name));
    }
  }
  if (oi::Object* name_obj = icon->FindDescendant("iconname")) {
    if (name_obj->type() == oi::ObjectType::kButton) {
      static_cast<oi::Button*>(name_obj)->SetLabel(client->icon_name);
    } else if (name_obj->type() == oi::ObjectType::kText) {
      static_cast<oi::TextObject*>(name_obj)->SetText(client->icon_name);
    }
  }
  // Flush the freshly built (all-dirty) icon tree: PlaceIcon's slot math
  // reads the laid-out geometry, and the flush also paints the icon — the
  // old DoLayout()-only path left icons built while already iconic laid out
  // but never rendered.
  state.toolkit->FlushFrame();
  tree_owner_[icon.get()] = client->window;
  client->icon = std::move(icon);
  client->icon_holder = holder;
}

IconHolder* WindowManager::HolderFor(const ManagedClient& client) {
  if (client.is_internal) {
    return nullptr;
  }
  ScreenState& state = screens_[client.screen];
  // Class-specific holders first, then any catch-all holder.
  for (const std::unique_ptr<IconHolder>& holder : state.icon_holders) {
    if (!holder->class_filter().empty() && holder->Accepts(client.wm_class)) {
      return holder.get();
    }
  }
  for (const std::unique_ptr<IconHolder>& holder : state.icon_holders) {
    if (holder->class_filter().empty()) {
      return holder.get();
    }
  }
  return nullptr;
}

void WindowManager::PlaceIcon(ManagedClient* client) {
  if (client->icon == nullptr) {
    return;
  }
  if (client->icon_holder != nullptr) {
    client->icon_holder->AddIcon(client);
    return;
  }
  if (!client->icon_position_set) {
    // Next free slot along the bottom of the current viewport.
    ScreenState& state = screens_[client->screen];
    xbase::Size view = display_.DisplaySize(client->screen);
    int occupied = 0;
    for (ManagedClient* other : Clients()) {
      if (other != client && other->state == xproto::WmState::kIconic &&
          other->icon_holder == nullptr && other->screen == client->screen) {
        ++occupied;
      }
    }
    int slot_width = client->icon->geometry().width + 4;
    xbase::Point viewport_pos{4 + occupied * slot_width,
                              view.height - client->icon->geometry().height - 2};
    client->icon_position = viewport_pos;
    if (!client->sticky && state.vdesk() != nullptr) {
      client->icon_position = state.vdesk()->ScreenToDesktop(viewport_pos);
    }
    client->icon_position_set = true;
  }
  client->icon->SetGeometry(xbase::Rect{client->icon_position.x, client->icon_position.y,
                                        client->icon->geometry().width,
                                        client->icon->geometry().height});
  display_.MapWindow(client->icon->window());
  client->icon->Show();
}

void WindowManager::Iconify(ManagedClient* client) {
  if (client == nullptr || client->state == xproto::WmState::kIconic) {
    return;
  }
  BuildIcon(client);
  if (client->frame != nullptr) {
    display_.UnmapWindow(client->frame->window());
  }
  const xserver::WindowRec* rec = server_->FindWindowForTest(client->window);
  if (rec != nullptr && rec->mapped) {
    ++client->ignore_unmaps;
    display_.UnmapWindow(client->window);
  }
  client->state = xproto::WmState::kIconic;
  PlaceIcon(client);
  xlib::SetWmState(&display_, client->window, xproto::WmState::kIconic,
                   client->icon != nullptr ? client->icon->window() : xproto::kNone);
  if (Panner* p = panner(client->screen)) {
    p->Update();
  }
  if (!in_teardown_ && policy_ != nullptr && !client->is_internal) {
    policy_->OnIconicChange(client);
  }
}

void WindowManager::Deiconify(ManagedClient* client) {
  if (client == nullptr || client->state != xproto::WmState::kIconic) {
    return;
  }
  if (client->icon != nullptr) {
    if (client->icon_holder != nullptr) {
      client->icon_holder->RemoveIcon(client);
    } else {
      // Remember the free-floating icon's position for next time and for
      // session saving.
      client->icon_position = client->icon->geometry().origin();
      client->icon_position_set = true;
      display_.UnmapWindow(client->icon->window());
    }
  }
  client->state = xproto::WmState::kNormal;
  if (client->frame != nullptr) {
    display_.MapWindow(client->frame->window());
  }
  display_.MapWindow(client->window);
  xlib::SetWmState(&display_, client->window, xproto::WmState::kNormal, xproto::kNone);
  if (Panner* p = panner(client->screen)) {
    p->Update();
  }
  if (!in_teardown_ && policy_ != nullptr && !client->is_internal) {
    policy_->OnIconicChange(client);
  }
}

// ---- IconHolder ----------------------------------------------------------------

IconHolder::IconHolder(WindowManager* wm, int screen, std::string name)
    : wm_(wm), screen_(screen), name_(std::move(name)) {
  auto attr = [&](const std::string& resource) {
    return wm_->ScreenResource(screen_, {"iconHolder", name_}, {"IconHolder", name_},
                               resource);
  };
  if (std::optional<std::string> geometry = attr("geometry")) {
    if (std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(
            xbase::TrimWhitespace(*geometry))) {
      configured_geometry_ = spec->Resolve(wm_->display().DisplaySize(screen_),
                                           configured_geometry_.size());
    }
  }
  if (std::optional<std::string> filter = attr("class")) {
    class_filter_ = xbase::TrimWhitespace(*filter);
  }
  auto bool_attr = [&](const std::string& resource) {
    std::optional<std::string> value = attr(resource);
    if (!value.has_value()) {
      return false;
    }
    std::string lower = xbase::ToLowerAscii(xbase::TrimWhitespace(*value));
    return lower == "true" || lower == "yes" || lower == "on";
  };
  hide_when_empty_ = bool_attr("hideWhenEmpty");
  size_to_fit_ = bool_attr("sizeToFit");

  window_ = wm_->display().CreateWindow(wm_->FrameParent(screen_, /*sticky=*/false),
                                        configured_geometry_);
  wm_->display().SetWindowBackground(window_, ':');
  if (!hide_when_empty_) {
    wm_->display().MapWindow(window_);
  }
}

IconHolder::~IconHolder() {
  if (wm_->display().server().WindowExists(window_)) {
    wm_->display().DestroyWindow(window_);
  }
}

void IconHolder::ScrollBy(int dy) {
  if (size_to_fit_) {
    return;  // Size-to-fit holders show everything; nothing to scroll.
  }
  int max_scroll = std::max(0, content_height_ - configured_geometry_.height);
  scroll_offset_ = std::clamp(scroll_offset_ + dy, 0, max_scroll);
  Relayout();
}

bool IconHolder::Accepts(const xproto::WmClass& wm_class) const {
  return class_filter_.empty() || wm_class.clazz == class_filter_ ||
         wm_class.instance == class_filter_;
}

void IconHolder::AddIcon(ManagedClient* client) {
  if (std::find(icons_.begin(), icons_.end(), client) == icons_.end()) {
    icons_.push_back(client);
  }
  client->icon_holder = this;
  Relayout();
}

void IconHolder::RemoveIcon(ManagedClient* client) {
  std::erase(icons_, client);
  if (client->icon != nullptr) {
    wm_->display().UnmapWindow(client->icon->window());
  }
  client->icon_holder = nullptr;
  Relayout();
}

void IconHolder::Relayout() {
  xlib::Display& dpy = wm_->display();
  if (icons_.empty() && hide_when_empty_) {
    dpy.UnmapWindow(window_);
    return;
  }
  // Rows of icons packed inside the holder width, shifted by the scroll
  // offset (the §4.1.5 "scrolling window").
  int x = 1;
  int y = 1;
  int row_height = 0;
  int max_right = 1;
  int width = configured_geometry_.width;
  for (ManagedClient* client : icons_) {
    if (client->icon == nullptr) {
      continue;
    }
    xbase::Size size = client->icon->geometry().size();
    if (x > 1 && x + size.width + 1 > width) {
      x = 1;
      y += row_height + 1;
      row_height = 0;
    }
    client->icon->SetGeometry(
        xbase::Rect{x, y - scroll_offset_, size.width, size.height});
    dpy.MapWindow(client->icon->window());
    client->icon->Show();
    x += size.width + 1;
    row_height = std::max(row_height, size.height);
    max_right = std::max(max_right, x);
  }
  int content_bottom = y + row_height + 1;
  content_height_ = content_bottom;
  if (size_to_fit_) {
    // "sizing to fit all the icons rather than presenting a scrolling
    // window" (paper §4.1.5).
    dpy.MoveResizeWindow(window_, xbase::Rect{configured_geometry_.x,
                                              configured_geometry_.y,
                                              std::max(width, max_right),
                                              std::max(4, content_bottom)});
  } else {
    dpy.MoveResizeWindow(window_, configured_geometry_);
  }
  dpy.MapWindow(window_);
}

}  // namespace swm
