// Built-in template configurations (paper §3): "Several template files are
// supplied with swm to get the user up and running quickly.  Among the
// template files are emulations for both the OPEN LOOK and OSF/Motif window
// managers."  Templates are resource-file text; users include one and
// override entries.
#ifndef SRC_SWM_TEMPLATES_H_
#define SRC_SWM_TEMPLATES_H_

#include <optional>
#include <string>
#include <vector>

namespace swm {

// Template names: "default", "openlook", "motif".
std::vector<std::string> TemplateNames();
std::optional<std::string> TemplateText(const std::string& name);

// Writes all templates as .ad files into a directory (the "supplied with
// swm" files); returns the number written.
int WriteTemplateFiles(const std::string& directory);

}  // namespace swm

#endif  // SRC_SWM_TEMPLATES_H_
