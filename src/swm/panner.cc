#include "src/swm/panner.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/swm/vdesk.h"
#include "src/swm/wm.h"

namespace swm {

Panner::Panner(WindowManager* wm, int screen, int scale)
    : wm_(wm), screen_(screen), scale_(scale) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  XB_CHECK(desk != nullptr);
  xbase::Size desk_size = desk->size();
  xbase::Size panner_size{std::max(4, desk_size.width / scale_),
                          std::max(3, desk_size.height / scale_)};
  xbase::Size view = wm_->display().DisplaySize(screen_);

  // The panner is a client window owned by the WM's aux connection, so it
  // is reparented, decorated and manageable "just like any other client
  // window" (paper §6.1).
  xlib::ClientAppConfig config;
  config.name = "Virtual Desktop";
  config.wm_class = {"panner", "SwmPanner"};
  config.command = {};  // Internal: not session-restarted.
  config.screen = screen_;
  config.geometry = xbase::Rect{view.width - panner_size.width - 4,
                                view.height - panner_size.height - 4,
                                panner_size.width, panner_size.height};
  config.size_hint_flags = xproto::kUSPosition | xproto::kUSSize;
  app_ = std::make_unique<xlib::ClientApp>(&wm_->display().server(), config);
  wm_->RegisterInternalWindow(app_->window());

  // The WM listens for pointer interactions on the panner client window.
  wm_->display().SelectInput(app_->window(),
                             xproto::kButtonPressMask | xproto::kButtonReleaseMask |
                                 xproto::kPointerMotionMask);
}

Panner::~Panner() = default;

void Panner::Map() {
  app_->Map();
  Update();
}

xbase::Point Panner::PannerToDesktop(const xbase::Point& p) const {
  return {p.x * scale_, p.y * scale_};
}

xbase::Point Panner::DesktopToPanner(const xbase::Point& p) const {
  return {p.x / scale_, p.y / scale_};
}

void Panner::Update() {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return;
  }
  xlib::Display& dpy = wm_->display();
  xproto::WindowId window = app_->window();
  std::optional<xbase::Rect> geometry = dpy.GetGeometry(window);
  if (!geometry.has_value()) {
    return;
  }
  dpy.ClearWindow(window);

  // "The panner shows a miniature representation of all windows currently
  // on the Virtual Desktop."  With multiple desktops, only the active one.
  for (ManagedClient* client : wm_->Clients()) {
    if (client->screen != screen_ || client->sticky ||
        client->state != xproto::WmState::kNormal || client->frame == nullptr) {
      continue;
    }
    if (client->window == app_->window()) {
      continue;
    }
    std::optional<xserver::QueryTreeReply> tree =
        dpy.QueryTree(client->frame->window());
    if (!tree.has_value() || tree->parent != desk->window()) {
      continue;
    }
    xbase::Rect frame = client->frame->geometry();
    xbase::Point top_left = DesktopToPanner(frame.origin());
    xserver::DrawOp box;
    box.kind = xserver::DrawOp::Kind::kFillRect;
    box.rect = xbase::Rect{top_left.x, top_left.y, std::max(1, frame.width / scale_),
                           std::max(1, frame.height / scale_)};
    box.fill = 'o';
    dpy.Draw(window, box);
  }

  // "It also displays an outline indicating your current position."
  xbase::Point view_origin = DesktopToPanner(desk->offset());
  xbase::Size view = desk->viewport();
  xserver::DrawOp outline;
  outline.kind = xserver::DrawOp::Kind::kBorder;
  outline.rect = xbase::Rect{view_origin.x, view_origin.y,
                             std::max(2, view.width / scale_),
                             std::max(2, view.height / scale_)};
  dpy.Draw(window, outline);
}

bool Panner::HandleButton(const xproto::ButtonEvent& event) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return false;
  }
  if (event.press) {
    if (event.button == 1) {
      // Button 1 moves the position outline: pan so the pressed point is
      // the viewport center.
      panning_ = true;
      xbase::Point desktop = PannerToDesktop(event.pos);
      xbase::Size view = desk->viewport();
      desk->PanTo({desktop.x - view.width / 2, desktop.y - view.height / 2});
      wm_->DesktopViewChanged(screen_);
      return true;
    }
    if (event.button == 2) {
      // Button 2 over a miniature window starts a move of that window.
      xbase::Point desktop = PannerToDesktop(event.pos);
      for (ManagedClient* client : wm_->Clients()) {
        if (client->screen != screen_ || client->sticky ||
            client->state != xproto::WmState::kNormal || client->frame == nullptr ||
            client->window == app_->window()) {
          continue;
        }
        if (client->frame->geometry().Contains(desktop)) {
          drag_window_ = client->window;
          drag_offset_ = {desktop.x - client->frame->geometry().x,
                          desktop.y - client->frame->geometry().y};
          return true;
        }
      }
      return true;  // Press in empty panner area: consumed, no drag.
    }
    return false;
  }

  // Releases.
  if (event.button == 1 && panning_) {
    panning_ = false;
    return true;
  }
  if (event.button == 2 && drag_window_ != xproto::kNone) {
    ManagedClient* client = wm_->FindClient(drag_window_);
    drag_window_ = xproto::kNone;
    if (client == nullptr || client->frame == nullptr) {
      return true;
    }
    // Released inside the panner: drop at the miniature position.  Released
    // outside: a full-size outline move — drop at the pointer's desktop
    // position (paper §6.1).
    std::optional<xbase::Rect> panner_geometry = wm_->display().GetGeometry(app_->window());
    xbase::Rect local{0, 0, panner_geometry.has_value() ? panner_geometry->width : 0,
                      panner_geometry.has_value() ? panner_geometry->height : 0};
    if (local.Contains(event.pos)) {
      xbase::Point desktop = PannerToDesktop(event.pos);
      wm_->MoveFrameTo(client, {desktop.x - drag_offset_.x, desktop.y - drag_offset_.y});
    } else {
      xbase::Point desktop = desk->ScreenToDesktop(event.root_pos);
      wm_->MoveFrameTo(client, desktop);
    }
    Update();
    return true;
  }
  return false;
}

bool Panner::HandleMotion(const xproto::MotionEvent& event) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return false;
  }
  if (panning_) {
    xbase::Point desktop = PannerToDesktop(event.pos);
    xbase::Size view = desk->viewport();
    desk->PanTo({desktop.x - view.width / 2, desktop.y - view.height / 2});
    wm_->DesktopViewChanged(screen_);
    return true;
  }
  if (drag_window_ != xproto::kNone) {
    return true;  // Outline tracking only; the drop happens on release.
  }
  return false;
}

void Panner::OnResized(const xbase::Size& new_size) {
  VirtualDesktop* desk = wm_->vdesk(screen_);
  if (desk == nullptr) {
    return;
  }
  desk->Resize({new_size.width * scale_, new_size.height * scale_});
  Update();
}

}  // namespace swm
