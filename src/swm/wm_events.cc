// Event handling: redirect requests, client state changes, swmcmd property
// commands, interactive drags and pending target selection.
#include <algorithm>
#include <map>
#include <tuple>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/swm/panner.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/scrollbars.h"
#include "src/swm/wm.h"
#include "src/xlib/icccm.h"

namespace swm {

namespace {

// swmcmd flood control: anyone can append to the root property, so one
// ProcessEvents call executes at most this many commands (the rest are
// dropped with a warning) and reads at most this many bytes of payload.
constexpr int kMaxSwmCommandsPerDrain = 64;
constexpr size_t kMaxSwmCommandBytes = 4096;

// The window whose client is responsible for an event — request events name
// the client window, notify events the event window.
xproto::WindowId CulpritWindow(const xproto::Event& event) {
  if (const auto* map_request = std::get_if<xproto::MapRequestEvent>(&event)) {
    return map_request->window;
  }
  if (const auto* configure = std::get_if<xproto::ConfigureRequestEvent>(&event)) {
    return configure->window;
  }
  if (const auto* circulate = std::get_if<xproto::CirculateRequestEvent>(&event)) {
    return circulate->window;
  }
  return xproto::EventWindow(event);
}

}  // namespace

void WindowManager::ProcessEvents() {
  swmcmd_budget_ = kMaxSwmCommandsPerDrain;
  swmcmd_budget_warned_ = false;
  // Quarantine time tick: refill misbehavior budgets, and apply the single
  // coalesced ConfigureRequest each paroled window earned during quarantine.
  for (xproto::WindowId paroled : ledger_.Tick()) {
    auto pending = quarantine_pending_configure_.find(paroled);
    if (pending != quarantine_pending_configure_.end()) {
      xproto::ConfigureRequestEvent request = pending->second;
      quarantine_pending_configure_.erase(pending);
      if (FindClient(paroled) != nullptr) {
        HandleConfigureRequest(request);
      }
    }
    if (FindClient(paroled) != nullptr) {
      // Property updates were skipped during quarantine; pick up whatever
      // values the storm settled on by replaying one notify per ICCCM atom.
      for (const char* atom : {xproto::kAtomWmName, xproto::kAtomWmIconName,
                               xproto::kAtomWmNormalHints, xproto::kAtomWmHints,
                               xproto::kAtomWmCommand}) {
        xproto::PropertyNotifyEvent notify;
        notify.window = paroled;
        notify.atom = display_.InternAtom(atom);
        notify.state = xproto::PropertyState::kNewValue;
        HandlePropertyNotify(notify);
      }
    }
  }
  // Dispatch runs under a frame hold: handlers invalidate objects instead of
  // painting, and each settle iteration flushes the accumulated damage as
  // one frame (the retained pipeline's batch boundary).
  FrameHold hold(this);
  // Events can cascade (managing a window produces more events for us), so
  // loop until the queue settles.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Drain the whole pending batch before dispatching anything: coalescing
    // can only spot redundant ConfigureNotify/Expose pairs across the batch.
    std::vector<xproto::Event> batch;
    while (std::optional<xproto::Event> event = display_.NextEvent()) {
      batch.push_back(std::move(*event));
    }
    CoalesceEventBatch(&batch);
    for (const xproto::Event& event : batch) {
      progressed = true;
      ++events_dispatched_;
      if (ManagedClient* culprit = FindClientByAnyWindow(CulpritWindow(event))) {
        ++events_dispatched_by_client_[culprit->window];
      }
      if (options_.self_heal) {
        // The barrier: one failed dispatch must not take down the WM (or
        // leave the remaining queue unprocessed).  X errors don't throw —
        // they go through OnXError — so this catches toolkit/dispatch bugs.
        try {
          HandleEvent(event);
        } catch (const std::exception& e) {
          ++dispatch_errors_;
          XB_LOG(Error) << "swm: event dispatch failed (" << e.what()
                        << "); dropping event and continuing";
        } catch (...) {
          ++dispatch_errors_;
          XB_LOG(Error) << "swm: event dispatch failed; dropping event and continuing";
        }
      } else {
        HandleEvent(event);
      }
    }
    // One frame per batch: lay out dirty subtrees, paint each damaged
    // object once.  The flush's own layout may emit new ConfigureNotify /
    // Expose events; they form the next iteration's batch and settle
    // because repainting without a geometry change emits nothing.
    FlushFrames();
    if (options_.self_heal && !suspect_windows_.empty()) {
      HealSuspects();
      progressed = true;
    }
    // f.restart's resource reload runs only once no binding dispatch is on
    // the stack (it replaces every object's bindings), and its renders may
    // cascade new events — hence inside the settle loop.
    if (resource_reload_pending_) {
      resource_reload_pending_ = false;
      ReloadResources();
      progressed = true;
    }
  }
}

// Drops events the batch itself makes redundant: only the last
// ConfigureNotify per (event_window, window, synthetic) key matters — each
// carries the complete current geometry — and Expose rectangles for one
// window merge into a single event covering their bounding box.  The damage
// region keeps paints tight; coalescing keeps dispatch count low.
void WindowManager::CoalesceEventBatch(std::vector<xproto::Event>* batch) {
  struct ConfigureKey {
    xproto::WindowId event_window;
    xproto::WindowId window;
    bool synthetic;
    bool operator<(const ConfigureKey& other) const {
      return std::tie(event_window, window, synthetic) <
             std::tie(other.event_window, other.window, other.synthetic);
    }
  };
  std::map<ConfigureKey, size_t> last_configure;
  std::map<xproto::WindowId, size_t> last_expose;
  for (size_t i = 0; i < batch->size(); ++i) {
    if (const auto* configure =
            std::get_if<xproto::ConfigureNotifyEvent>(&(*batch)[i])) {
      last_configure[{configure->event_window, configure->window,
                      configure->synthetic}] = i;
    } else if (const auto* expose = std::get_if<xproto::ExposeEvent>(&(*batch)[i])) {
      last_expose[expose->window] = i;
    }
  }

  std::map<xproto::WindowId, xbase::Rect> merged_areas;
  std::vector<xproto::Event> kept;
  kept.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    xproto::Event& event = (*batch)[i];
    if (const auto* configure = std::get_if<xproto::ConfigureNotifyEvent>(&event)) {
      ConfigureKey key{configure->event_window, configure->window,
                       configure->synthetic};
      if (last_configure[key] != i) {
        ++events_coalesced_;
        continue;
      }
    } else if (auto* expose = std::get_if<xproto::ExposeEvent>(&event)) {
      // Accumulate the running bounding box; only the final event survives,
      // carrying the union and count 0.
      auto [it, inserted] = merged_areas.try_emplace(expose->window, expose->area);
      if (!inserted) {
        xbase::Rect& merged = it->second;
        int right = std::max(merged.x + merged.width, expose->area.x + expose->area.width);
        int bottom =
            std::max(merged.y + merged.height, expose->area.y + expose->area.height);
        merged.x = std::min(merged.x, expose->area.x);
        merged.y = std::min(merged.y, expose->area.y);
        merged.width = right - merged.x;
        merged.height = bottom - merged.y;
      }
      if (last_expose[expose->window] != i) {
        ++events_coalesced_;
        continue;
      }
      expose->area = it->second;
      expose->count = 0;
    }
    kept.push_back(std::move(event));
  }
  *batch = std::move(kept);
}

void WindowManager::HandleEvent(const xproto::Event& event) {
  if (HandleDrag(event)) {
    return;
  }
  if (HandlePendingSelection(event)) {
    return;
  }

  // Panner interactions get first refusal on pointer events.
  if (const auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
    for (ScreenState& state : screens_) {
      if (state.panner != nullptr && (button->window == state.panner->window() ||
                                      state.panner->dragging_window())) {
        if (state.panner->HandleButton(*button)) {
          return;
        }
      }
    }
  }
  if (const auto* motion = std::get_if<xproto::MotionEvent>(&event)) {
    for (ScreenState& state : screens_) {
      if (state.panner != nullptr && (motion->window == state.panner->window() ||
                                      state.panner->dragging_window())) {
        if (state.panner->HandleMotion(*motion)) {
          return;
        }
      }
    }
  }

  if (const auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
    for (ScreenState& state : screens_) {
      if (state.scrollbars != nullptr && state.scrollbars->HandleButton(*button)) {
        return;
      }
    }
  }
  if (const auto* motion = std::get_if<xproto::MotionEvent>(&event)) {
    for (ScreenState& state : screens_) {
      if (state.scrollbars != nullptr && state.scrollbars->HandleMotion(*motion)) {
        return;
      }
    }
  }

  if (const auto* map_request = std::get_if<xproto::MapRequestEvent>(&event)) {
    HandleMapRequest(*map_request);
    return;
  }
  if (const auto* configure = std::get_if<xproto::ConfigureRequestEvent>(&event)) {
    HandleConfigureRequest(*configure);
    return;
  }
  if (const auto* unmap = std::get_if<xproto::UnmapNotifyEvent>(&event)) {
    HandleUnmapNotify(*unmap);
    return;
  }
  if (const auto* destroy = std::get_if<xproto::DestroyNotifyEvent>(&event)) {
    HandleDestroyNotify(*destroy);
    return;
  }
  if (const auto* property = std::get_if<xproto::PropertyNotifyEvent>(&event)) {
    HandlePropertyNotify(*property);
    return;
  }
  if (const auto* message = std::get_if<xproto::ClientMessageEvent>(&event)) {
    HandleClientMessage(*message);
    return;
  }
  if (const auto* shape = std::get_if<xproto::ShapeNotifyEvent>(&event)) {
    // A client became shaped/unshaped at runtime: re-decorate so the
    // "shaped" resource prefix applies (§5).
    if (ManagedClient* client = FindClient(shape->window)) {
      bool shaped = display_.IsShaped(shape->window);
      if (client->shaped != shaped) {
        client->shaped = shaped;
        ReDecorate(client);
      }
    }
    return;
  }

  // Everything else is toolkit-object traffic (bindings, exposure).
  for (ScreenState& state : screens_) {
    if (state.toolkit->DispatchEvent(event)) {
      return;
    }
  }
}

void WindowManager::HandleMapRequest(const xproto::MapRequestEvent& event) {
  ManagedClient* existing = FindClient(event.window);
  if (existing != nullptr) {
    // Mapping an iconified window deiconifies it (ICCCM).
    if (existing->state == xproto::WmState::kIconic) {
      Deiconify(existing);
    } else {
      display_.MapWindow(event.window);
    }
    return;
  }
  ManageWindow(event.window, ScreenOf(event.parent));
}

void WindowManager::HandleConfigureRequest(const xproto::ConfigureRequestEvent& event) {
  ManagedClient* client = FindClient(event.window);
  if (client != nullptr && !client->is_internal &&
      ledger_.Charge(event.window, ledger_.policy().configure_cost)) {
    // Quarantined: coalesce.  Only the latest request is kept; it is applied
    // once at parole, so the decoration stays intact and the flood costs the
    // rest of the desktop nothing.
    quarantine_pending_configure_[event.window] = event;
    ledger_.NoteDropped();
    return;
  }
  if (client == nullptr) {
    // Not managed (yet): forward the configuration unchanged.
    xserver::ConfigureValues values;
    values.geometry = event.geometry;
    values.border_width = event.border_width;
    values.sibling = event.sibling;
    values.stack_mode = event.stack_mode;
    display_.ConfigureWindow(event.window, event.value_mask, values);
    return;
  }
  if (!client->is_internal && policy_->OnConfigureRequest(client, event)) {
    // The layout policy owns this window's geometry and has answered the
    // request itself (typically by reasserting the slot).
    return;
  }
  // Size change: constrain and re-layout the decoration around it.
  std::optional<xbase::Rect> current = display_.GetGeometry(event.window);
  if (!current.has_value()) {
    return;
  }
  xbase::Size new_size = current->size();
  if (event.value_mask & xproto::kConfigWidth) {
    new_size.width = event.geometry.width;
  }
  if (event.value_mask & xproto::kConfigHeight) {
    new_size.height = event.geometry.height;
  }
  if (new_size != current->size()) {
    ResizeClient(client, new_size);
  }
  // Position change: requested coordinates are interpreted in the client's
  // effective-root space (desktop coordinates for non-sticky windows).
  if (event.value_mask & (xproto::kConfigX | xproto::kConfigY)) {
    xbase::Point desired = client->ClientDesktopPosition();
    if (event.value_mask & xproto::kConfigX) {
      desired.x = event.geometry.x;
    }
    if (event.value_mask & xproto::kConfigY) {
      desired.y = event.geometry.y;
    }
    xbase::Point client_offset{
        client->ClientDesktopPosition().x - client->frame->geometry().x,
        client->ClientDesktopPosition().y - client->frame->geometry().y};
    MoveFrameTo(client, {desired.x - client_offset.x, desired.y - client_offset.y});
  }
  if (event.value_mask & xproto::kConfigStackMode) {
    if (event.stack_mode == xproto::StackMode::kAbove) {
      RaiseClient(client);
    } else if (event.stack_mode == xproto::StackMode::kBelow) {
      LowerClient(client);
    }
  }
  SendSyntheticConfigure(client);
}

void WindowManager::HandleUnmapNotify(const xproto::UnmapNotifyEvent& event) {
  ManagedClient* client = FindClient(event.window);
  if (client == nullptr || event.event_window != event.window) {
    return;
  }
  if (client->ignore_unmaps > 0) {
    --client->ignore_unmaps;
    return;
  }
  // The client unmapped its own window: ICCCM withdrawal.
  UnmanageWindow(event.window, /*reparent_back=*/true);
}

void WindowManager::HandleDestroyNotify(const xproto::DestroyNotifyEvent& event) {
  if (FindClient(event.window) != nullptr) {
    UnmanageWindow(event.window, /*reparent_back=*/false);
  }
}

void WindowManager::HandlePropertyNotify(const xproto::PropertyNotifyEvent& event) {
  // swmcmd channel (paper §4.5): commands arrive as a root-window property.
  // Senders append (newline-separated) so concurrent swmcmds don't clobber
  // each other; one read drains every queued command before the delete.
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    if (event.window == display_.RootWindow(screen)) {
      if (event.atom == display_.InternAtom(xproto::kAtomSwmCommand) &&
          event.state == xproto::PropertyState::kNewValue) {
        std::optional<std::string> text =
            display_.GetStringProperty(event.window, xproto::kAtomSwmCommand);
        display_.DeleteProperty(event.window,
                                display_.InternAtom(xproto::kAtomSwmCommand));
        if (text.has_value()) {
          // A sender writes "command\n"; a property observed mid-write can
          // end without the newline.  Only complete (newline-terminated)
          // lines execute; an unterminated tail is buffered and prepended to
          // the next read, so a partial write never runs as a half-command.
          std::string payload = std::move(swmcmd_partial_[screen]) + *text;
          swmcmd_partial_[screen].clear();
          if (payload.size() > kMaxSwmCommandBytes) {
            XB_LOG_EVERY_N(Warning, "swm:swmcmd-payload-cap", 16)
                << "swm: SWM_COMMAND payload of " << payload.size()
                << " bytes exceeds cap; truncating to " << kMaxSwmCommandBytes;
            payload.resize(kMaxSwmCommandBytes);
          }
          size_t last_newline = payload.rfind('\n');
          if (last_newline == std::string::npos) {
            swmcmd_partial_[screen] = std::move(payload);
            return;
          }
          if (last_newline + 1 != payload.size()) {
            swmcmd_partial_[screen] = payload.substr(last_newline + 1);
            payload.resize(last_newline + 1);
          }
          for (const std::string& line : xbase::Split(payload, '\n')) {
            std::string command = xbase::TrimWhitespace(line);
            if (command.empty()) {
              continue;
            }
            if (swmcmd_budget_ <= 0) {
              if (!swmcmd_budget_warned_) {
                swmcmd_budget_warned_ = true;
                XB_LOG(Warning) << "swm: swmcmd rate limit reached; "
                                   "dropping remaining commands";
              }
              break;
            }
            --swmcmd_budget_;
            ExecuteCommandString(command, screen);
          }
        }
      }
      return;
    }
  }

  ManagedClient* client = FindClient(event.window);
  if (client == nullptr || event.state != xproto::PropertyState::kNewValue) {
    return;
  }
  if (!client->is_internal &&
      ledger_.Charge(event.window, ledger_.policy().property_cost)) {
    // Property storm from a quarantined window: skip the re-read entirely
    // (each one costs a round trip plus decoration updates).  Parole-time
    // RefreshClientProperties picks up whatever value the storm settled on.
    ledger_.NoteDropped();
    return;
  }
  std::optional<std::string> atom_name = display_.GetAtomName(event.atom);
  if (!atom_name.has_value()) {
    return;
  }
  if (*atom_name == xproto::kAtomWmName) {
    client->name = xlib::GetWmName(&display_, client->window).value_or("");
    if (client->name_object != nullptr) {
      if (client->name_object->type() == oi::ObjectType::kButton) {
        static_cast<oi::Button*>(client->name_object)->SetLabel(client->name);
      } else if (client->name_object->type() == oi::ObjectType::kText) {
        static_cast<oi::TextObject*>(client->name_object)->SetText(client->name);
      }
    }
  } else if (*atom_name == xproto::kAtomWmIconName) {
    client->icon_name =
        xlib::GetWmIconName(&display_, client->window).value_or(client->name);
    if (client->icon != nullptr) {
      oi::Object* icon_name_obj = client->icon->FindDescendant("iconname");
      if (icon_name_obj != nullptr &&
          icon_name_obj->type() == oi::ObjectType::kButton) {
        static_cast<oi::Button*>(icon_name_obj)->SetLabel(client->icon_name);
      }
    }
  } else if (*atom_name == xproto::kAtomWmNormalHints) {
    client->size_hints =
        xlib::GetWmNormalHints(&display_, client->window).value_or(xproto::SizeHints{});
  } else if (*atom_name == xproto::kAtomWmHints) {
    client->wm_hints =
        xlib::GetWmHints(&display_, client->window).value_or(xproto::WmHints{});
  } else if (*atom_name == xproto::kAtomWmCommand) {
    std::optional<std::vector<std::string>> argv =
        xlib::GetWmCommand(&display_, client->window);
    client->command = argv.has_value() ? xbase::JoinStrings(*argv, " ") : "";
  }
}

void WindowManager::HandleClientMessage(const xproto::ClientMessageEvent& event) {
  if (event.message_type == display_.InternAtom("WM_CHANGE_STATE") &&
      event.data[0] == static_cast<uint32_t>(xproto::WmState::kIconic)) {
    if (ManagedClient* client = FindClient(event.window)) {
      Iconify(client);
    }
  }
}

// ---- Interactive move/resize drags -----------------------------------------------

bool WindowManager::HandleDrag(const xproto::Event& event) {
  if (drag_.mode == DragState::Mode::kNone) {
    return false;
  }
  ManagedClient* client = FindClient(drag_.client_window);
  if (client == nullptr || client->frame == nullptr) {
    drag_.mode = DragState::Mode::kNone;
    return false;
  }
  // §6.1's reverse direction: "when the window move was started on a client
  // window and the pointer is moved into the panner", the drop lands at the
  // miniature position — i.e. anywhere on the desktop.
  auto panner_target = [&](const xbase::Point& root_pos)
      -> std::optional<xbase::Point> {
    Panner* p = panner(client->screen);
    if (p == nullptr || drag_.mode != DragState::Mode::kMove) {
      return std::nullopt;
    }
    if (!server_->IsViewable(p->window())) {
      return std::nullopt;
    }
    xbase::Point origin = server_->RootPosition(p->window());
    std::optional<xbase::Rect> geometry = display_.GetGeometry(p->window());
    if (!geometry.has_value()) {
      return std::nullopt;
    }
    xbase::Rect on_screen{origin.x, origin.y, geometry->width, geometry->height};
    if (!on_screen.Contains(root_pos)) {
      return std::nullopt;
    }
    return p->PannerToDesktop({root_pos.x - origin.x, root_pos.y - origin.y});
  };
  auto apply = [&](const xbase::Point& root_pos) {
    int dx = root_pos.x - drag_.start_pointer.x;
    int dy = root_pos.y - drag_.start_pointer.y;
    if (drag_.mode == DragState::Mode::kMove) {
      if (std::optional<xbase::Point> desktop = panner_target(root_pos)) {
        MoveFrameTo(client, *desktop);
        return;
      }
      MoveFrameTo(client, {drag_.start_frame.x + dx, drag_.start_frame.y + dy});
    } else {
      xbase::Size frame_size = client->frame->geometry().size();
      xbase::Size client_size = client->client_panel->geometry().size();
      xbase::Size decoration{frame_size.width - client_size.width,
                             frame_size.height - client_size.height};
      xbase::Size target{std::max(1, drag_.start_frame.width + dx - decoration.width),
                         std::max(1, drag_.start_frame.height + dy - decoration.height)};
      ResizeClient(client, target);
    }
  };
  if (const auto* motion = std::get_if<xproto::MotionEvent>(&event)) {
    apply(motion->root_pos);
    return true;
  }
  if (const auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
    if (!button->press) {
      apply(button->root_pos);
      drag_.mode = DragState::Mode::kNone;
    }
    return true;
  }
  return false;
}

// ---- Pending interactive target selection -------------------------------------------

bool WindowManager::HandlePendingSelection(const xproto::Event& event) {
  if (!pending_.active) {
    return false;
  }
  const auto* button = std::get_if<xproto::ButtonEvent>(&event);
  if (button == nullptr || !button->press) {
    return false;
  }
  // A press on the root (or desktop) cancels / terminates the selection.
  xproto::WindowId target_window =
      button->subwindow != xproto::kNone ? button->subwindow : button->window;
  ManagedClient* client = FindClientByAnyWindow(target_window);
  bool on_root = false;
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    ScreenState& state = screens_[screen];
    if (target_window == display_.RootWindow(screen)) {
      on_root = true;
    }
    for (const auto& desk : state.vdesks) {
      if (target_window == desk->window()) {
        on_root = true;
      }
    }
  }
  if (client == nullptr) {
    if (on_root || !pending_.multiple) {
      pending_.active = false;
      for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
        display_.SetCursor(display_.RootWindow(screen), "");
      }
    }
    return true;
  }
  std::vector<xtb::FunctionCall> functions = pending_.functions;
  if (!pending_.multiple) {
    pending_.active = false;
    for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
      display_.SetCursor(display_.RootWindow(screen), "");
    }
  }
  oi::ActionContext context;
  context.root_pos = button->root_pos;
  context.button = button->button;
  for (const xtb::FunctionCall& function : functions) {
    ApplyWindowFunction(function.name, client, function, context);
  }
  return true;
}

}  // namespace swm
