#include "src/swm/session.h"

#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/xproto/hints.h"

namespace swm {

namespace {

std::string StateName(xproto::WmState state) {
  return state == xproto::WmState::kIconic ? "IconicState" : "NormalState";
}

std::optional<xproto::WmState> StateFromName(const std::string& name) {
  if (name == "NormalState") {
    return xproto::WmState::kNormal;
  }
  if (name == "IconicState") {
    return xproto::WmState::kIconic;
  }
  return std::nullopt;
}

}  // namespace

std::string SwmHintsRecord::Encode() const {
  std::ostringstream os;
  os << "swmhints -geometry " << geometry.ToString();
  if (icon_position.has_value()) {
    os << " -icongeometry +" << icon_position->x << "+" << icon_position->y;
  }
  os << " -state " << StateName(state);
  if (sticky) {
    os << " -sticky";
  }
  if (!icon_on_root) {
    os << " -iconheld";
  }
  if (!machine.empty()) {
    os << " -host " << machine;
  }
  os << " -cmd " << xbase::ShellJoin({command});
  return os.str();
}

std::optional<SwmHintsRecord> SwmHintsRecord::Parse(const std::string& line) {
  std::vector<std::string> argv = xbase::ShellSplit(line);
  if (argv.empty() || argv[0] != "swmhints") {
    return std::nullopt;
  }
  SwmHintsRecord record;
  bool have_geometry = false;
  bool have_command = false;
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argv.size()) {
        return std::nullopt;
      }
      return argv[++i];
    };
    if (flag == "-geometry") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(*value);
      if (!spec.has_value() || !spec->width || !spec->x) {
        return std::nullopt;
      }
      record.geometry = {spec->x.value_or(0), spec->y.value_or(0), *spec->width,
                         *spec->height};
      have_geometry = true;
    } else if (flag == "-icongeometry") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(*value);
      if (!spec.has_value() || !spec->x) {
        return std::nullopt;
      }
      record.icon_position = xbase::Point{*spec->x, spec->y.value_or(0)};
    } else if (flag == "-state") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xproto::WmState> state = StateFromName(*value);
      if (!state.has_value()) {
        return std::nullopt;
      }
      record.state = *state;
    } else if (flag == "-sticky") {
      record.sticky = true;
    } else if (flag == "-iconheld") {
      record.icon_on_root = false;
    } else if (flag == "-host") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      record.machine = *value;
    } else if (flag == "-cmd") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      record.command = *value;
      have_command = true;
    } else {
      // Unknown flag: swallow a value if one follows, for forward compat.
      XB_LOG(Warning) << "swmhints: unknown flag " << flag;
    }
  }
  if (!have_geometry || !have_command) {
    return std::nullopt;
  }
  return record;
}

std::optional<SwmHintsRecord> RestartTable::MatchAndConsume(const std::string& command,
                                                            const std::string& machine) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->command != command) {
      continue;
    }
    if (!it->machine.empty() && !machine.empty() && it->machine != machine) {
      continue;
    }
    SwmHintsRecord record = *it;
    records_.erase(it);
    return record;
  }
  return std::nullopt;
}

RestartTable RestartTable::FromPropertyText(const std::string& text) {
  RestartTable table;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::string trimmed = xbase::TrimWhitespace(line);
    if (trimmed.empty()) {
      continue;
    }
    std::optional<SwmHintsRecord> record = SwmHintsRecord::Parse(trimmed);
    if (record.has_value()) {
      table.Add(std::move(*record));
    } else {
      XB_LOG(Warning) << "swm: malformed restart record skipped: " << trimmed;
    }
  }
  return table;
}

std::string RestartTable::ToPropertyText() const {
  std::string out;
  for (const SwmHintsRecord& record : records_) {
    out += record.Encode();
    out += '\n';
  }
  return out;
}

bool AppendSwmHints(xlib::Display* display, int screen, const SwmHintsRecord& record) {
  return display->AppendStringProperty(display->RootWindow(screen),
                                       xproto::kAtomSwmRestartInfo, record.Encode() + "\n");
}

RestartTable TakeRestartInfo(xlib::Display* display, int screen) {
  xproto::WindowId root = display->RootWindow(screen);
  std::optional<std::string> text =
      display->GetStringProperty(root, xproto::kAtomSwmRestartInfo);
  if (!text.has_value()) {
    return RestartTable();
  }
  display->DeleteProperty(root, display->InternAtom(xproto::kAtomSwmRestartInfo));
  return RestartTable::FromPropertyText(*text);
}

std::string ExpandRemoteStartup(const std::string& templ, const std::string& host,
                                const std::string& command) {
  std::string out;
  for (size_t i = 0; i < templ.size(); ++i) {
    if (templ[i] == '%' && i + 1 < templ.size()) {
      char c = templ[++i];
      if (c == 'h') {
        out += host;
      } else if (c == 'c') {
        out += command;
      } else if (c == '%') {
        out += '%';
      } else {
        out += '%';
        out += c;
      }
    } else {
      out += templ[i];
    }
  }
  return out;
}

std::string GeneratePlacesFile(const std::vector<SwmHintsRecord>& records,
                               const std::string& remote_startup_template) {
  std::ostringstream os;
  os << "#!/bin/sh\n";
  os << "# Generated by swm f.places -- suitable as an .xinitrc replacement.\n";
  for (const SwmHintsRecord& record : records) {
    os << record.Encode() << "\n";
    if (!record.machine.empty() && record.machine != "localhost") {
      std::string templ = remote_startup_template.empty() ? "rsh %h %c"
                                                          : remote_startup_template;
      os << ExpandRemoteStartup(templ, record.machine, record.command) << " &\n";
    } else {
      os << record.command << " &\n";
    }
  }
  os << "exec swm\n";
  return os.str();
}

std::vector<SwmHintsRecord> ParsePlacesFile(const std::string& text) {
  std::vector<SwmHintsRecord> records;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::string trimmed = xbase::TrimWhitespace(line);
    if (xbase::StartsWith(trimmed, "swmhints ")) {
      std::optional<SwmHintsRecord> record = SwmHintsRecord::Parse(trimmed);
      if (record.has_value()) {
        records.push_back(std::move(*record));
      }
    }
  }
  return records;
}

}  // namespace swm
