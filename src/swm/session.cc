#include "src/swm/session.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/xproto/hints.h"

namespace swm {

namespace {

std::string StateName(xproto::WmState state) {
  return state == xproto::WmState::kIconic ? "IconicState" : "NormalState";
}

std::optional<xproto::WmState> StateFromName(const std::string& name) {
  if (name == "NormalState") {
    return xproto::WmState::kNormal;
  }
  if (name == "IconicState") {
    return xproto::WmState::kIconic;
  }
  return std::nullopt;
}

// Bounds on SWM_RESTART_INFO (anyone can append to a root property, so the
// parser must not be a memory amplifier): total text, per-line length, and
// record count are all capped; excess is dropped with a throttled warning.
constexpr size_t kMaxRestartText = 256 * 1024;
constexpr size_t kMaxRestartLine = 4096;
constexpr size_t kMaxRestartRecords = 256;

}  // namespace

std::string SwmHintsRecord::Encode() const {
  std::ostringstream os;
  os << "swmhints -geometry " << geometry.ToString();
  if (icon_position.has_value()) {
    os << " -icongeometry +" << icon_position->x << "+" << icon_position->y;
  }
  os << " -state " << StateName(state);
  if (sticky) {
    os << " -sticky";
  }
  if (!icon_on_root) {
    os << " -iconheld";
  }
  if (!machine.empty()) {
    os << " -host " << machine;
  }
  os << " -cmd " << xbase::ShellJoin({command});
  return os.str();
}

std::optional<SwmHintsRecord> SwmHintsRecord::Parse(const std::string& line) {
  std::vector<std::string> argv = xbase::ShellSplit(line);
  if (argv.empty() || argv[0] != "swmhints") {
    return std::nullopt;
  }
  SwmHintsRecord record;
  bool have_geometry = false;
  bool have_command = false;
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argv.size()) {
        return std::nullopt;
      }
      return argv[++i];
    };
    if (flag == "-geometry") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(*value);
      if (!spec.has_value() || !spec->width || !spec->x) {
        return std::nullopt;
      }
      record.geometry = {spec->x.value_or(0), spec->y.value_or(0), *spec->width,
                         *spec->height};
      // Bounds: a forged record must not smuggle insane geometry past the
      // ICCCM sanitizer (it never passes through a property decoder).
      record.geometry.x =
          std::clamp(record.geometry.x, -xproto::kMaxCoordinate, xproto::kMaxCoordinate);
      record.geometry.y =
          std::clamp(record.geometry.y, -xproto::kMaxCoordinate, xproto::kMaxCoordinate);
      record.geometry.width = std::clamp(record.geometry.width, 1, xproto::kMaxCoordinate);
      record.geometry.height = std::clamp(record.geometry.height, 1, xproto::kMaxCoordinate);
      have_geometry = true;
    } else if (flag == "-icongeometry") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(*value);
      if (!spec.has_value() || !spec->x) {
        return std::nullopt;
      }
      record.icon_position = xbase::Point{
          std::clamp(*spec->x, -xproto::kMaxCoordinate, xproto::kMaxCoordinate),
          std::clamp(spec->y.value_or(0), -xproto::kMaxCoordinate,
                     xproto::kMaxCoordinate)};
    } else if (flag == "-state") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      std::optional<xproto::WmState> state = StateFromName(*value);
      if (!state.has_value()) {
        return std::nullopt;
      }
      record.state = *state;
    } else if (flag == "-sticky") {
      record.sticky = true;
    } else if (flag == "-iconheld") {
      record.icon_on_root = false;
    } else if (flag == "-host") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      record.machine = *value;
    } else if (flag == "-cmd") {
      std::optional<std::string> value = next();
      if (!value.has_value()) {
        return std::nullopt;
      }
      record.command = *value;
      have_command = true;
    } else {
      // Unknown flag: swallow a value if one follows, for forward compat.
      XB_LOG_EVERY_N(Warning, "swmhints:unknown-flag:" + flag, 16)
          << "swmhints: unknown flag " << flag;
    }
  }
  if (!have_geometry || !have_command) {
    return std::nullopt;
  }
  return record;
}

std::optional<SwmHintsRecord> RestartTable::MatchAndConsume(const std::string& command,
                                                            const std::string& machine) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->command != command) {
      continue;
    }
    if (!it->machine.empty() && !machine.empty() && it->machine != machine) {
      continue;
    }
    SwmHintsRecord record = *it;
    records_.erase(it);
    return record;
  }
  return std::nullopt;
}

RestartTable RestartTable::FromPropertyText(const std::string& text) {
  RestartTable table;
  std::string bounded = text;
  if (bounded.size() > kMaxRestartText) {
    XB_LOG_EVERY_N(Warning, "swm:restart-text-cap", 16)
        << "swm: SWM_RESTART_INFO of " << text.size()
        << " bytes exceeds cap; truncating to " << kMaxRestartText;
    bounded.resize(kMaxRestartText);
    // Drop the now-partial trailing line rather than parse half a record.
    size_t last_newline = bounded.find_last_of('\n');
    bounded.resize(last_newline == std::string::npos ? 0 : last_newline);
  }
  std::istringstream stream(bounded);
  std::string line;
  while (std::getline(stream, line)) {
    if (table.size() >= kMaxRestartRecords) {
      XB_LOG_EVERY_N(Warning, "swm:restart-record-cap", 16)
          << "swm: restart table full (" << kMaxRestartRecords
          << " records); dropping the rest";
      break;
    }
    if (line.size() > kMaxRestartLine) {
      XB_LOG_EVERY_N(Warning, "swm:restart-line-cap", 16)
          << "swm: restart record of " << line.size() << " bytes skipped";
      continue;
    }
    std::string trimmed = xbase::TrimWhitespace(line);
    if (trimmed.empty()) {
      continue;
    }
    if (xbase::StartsWith(trimmed, "policy ")) {
      // Layout-policy adoption line; last one wins.  Validated against the
      // registered policy names by the consumer, not here.
      table.policy_name_ = xbase::TrimWhitespace(trimmed.substr(7));
      continue;
    }
    std::optional<SwmHintsRecord> record = SwmHintsRecord::Parse(trimmed);
    if (record.has_value()) {
      table.Add(std::move(*record));
    } else {
      // A storm of garbage records repeats this line; log every Nth.
      XB_LOG_EVERY_N(Warning, "swm:restart-malformed", 16)
          << "swm: malformed restart record skipped: "
          << trimmed.substr(0, 128);
    }
  }
  return table;
}

std::string RestartTable::ToPropertyText() const {
  std::string out;
  for (const SwmHintsRecord& record : records_) {
    out += record.Encode();
    out += '\n';
  }
  if (policy_name_.has_value()) {
    out += "policy " + *policy_name_ + '\n';
  }
  return out;
}

bool AppendSwmHints(xlib::Display* display, int screen, const SwmHintsRecord& record) {
  return display->AppendStringProperty(display->RootWindow(screen),
                                       xproto::kAtomSwmRestartInfo, record.Encode() + "\n");
}

bool AppendSwmPolicy(xlib::Display* display, int screen, const std::string& name) {
  return display->AppendStringProperty(display->RootWindow(screen),
                                       xproto::kAtomSwmRestartInfo,
                                       "policy " + name + "\n");
}

RestartTable TakeRestartInfo(xlib::Display* display, int screen) {
  xproto::WindowId root = display->RootWindow(screen);
  std::optional<std::string> text =
      display->GetStringProperty(root, xproto::kAtomSwmRestartInfo);
  if (!text.has_value()) {
    return RestartTable();
  }
  display->DeleteProperty(root, display->InternAtom(xproto::kAtomSwmRestartInfo));
  return RestartTable::FromPropertyText(*text);
}

std::string ExpandRemoteStartup(const std::string& templ, const std::string& host,
                                const std::string& command) {
  std::string out;
  for (size_t i = 0; i < templ.size(); ++i) {
    if (templ[i] == '%' && i + 1 < templ.size()) {
      char c = templ[++i];
      if (c == 'h') {
        out += host;
      } else if (c == 'c') {
        out += command;
      } else if (c == '%') {
        out += '%';
      } else {
        out += '%';
        out += c;
      }
    } else {
      out += templ[i];
    }
  }
  return out;
}

std::string GeneratePlacesFile(const std::vector<SwmHintsRecord>& records,
                               const std::string& remote_startup_template) {
  std::ostringstream os;
  os << "#!/bin/sh\n";
  os << "# Generated by swm f.places -- suitable as an .xinitrc replacement.\n";
  for (const SwmHintsRecord& record : records) {
    os << record.Encode() << "\n";
    if (!record.machine.empty() && record.machine != "localhost") {
      std::string templ = remote_startup_template.empty() ? "rsh %h %c"
                                                          : remote_startup_template;
      os << ExpandRemoteStartup(templ, record.machine, record.command) << " &\n";
    } else {
      os << record.command << " &\n";
    }
  }
  os << "exec swm\n";
  return os.str();
}

std::vector<SwmHintsRecord> ParsePlacesFile(const std::string& text) {
  std::vector<SwmHintsRecord> records;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::string trimmed = xbase::TrimWhitespace(line);
    if (xbase::StartsWith(trimmed, "swmhints ")) {
      std::optional<SwmHintsRecord> record = SwmHintsRecord::Parse(trimmed);
      if (record.has_value()) {
        records.push_back(std::move(*record));
      }
    }
  }
  return records;
}

}  // namespace swm
