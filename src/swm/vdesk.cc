#include "src/swm/vdesk.h"

#include <algorithm>

#include "src/base/logging.h"

namespace swm {

VirtualDesktop::VirtualDesktop(xlib::Display* display, int screen, xbase::Size size)
    : display_(display), screen_(screen) {
  xbase::Size viewport_size = display_->DisplaySize(screen);
  size_.width = std::clamp(size.width, viewport_size.width, xproto::kMaxCoordinate);
  size_.height = std::clamp(size.height, viewport_size.height, xproto::kMaxCoordinate);
  if (size.width > xproto::kMaxCoordinate || size.height > xproto::kMaxCoordinate) {
    XB_LOG(Warning) << "virtual desktop clamped to " << xproto::kMaxCoordinate
                    << " (requested " << size << ")";
  }
  window_ = display_->CreateWindow(display_->RootWindow(screen),
                                   xbase::Rect{0, 0, size_.width, size_.height});
  display_->SetWindowBackground(window_, '.');
  // Clients discover the virtual root via __SWM_VROOT.
  display_->SetWindowIdProperty(window_, xproto::kAtomSwmVroot, window_);
  display_->LowerWindow(window_);
  display_->MapWindow(window_);
}

VirtualDesktop::~VirtualDesktop() {
  if (display_->server().WindowExists(window_)) {
    display_->DestroyWindow(window_);
  }
}

xbase::Size VirtualDesktop::viewport() const { return display_->DisplaySize(screen_); }

bool VirtualDesktop::PanTo(xbase::Point target) {
  xbase::Size view = viewport();
  xbase::Point clamped{std::clamp(target.x, 0, std::max(0, size_.width - view.width)),
                       std::clamp(target.y, 0, std::max(0, size_.height - view.height))};
  if (clamped == offset_) {
    return false;
  }
  offset_ = clamped;
  // Panning = moving the desktop window to the opposite offset.  Client
  // windows get no ConfigureNotify because they have not moved with respect
  // to their (virtual) root — exactly the paper's §6.3.1 situation.
  display_->MoveWindow(window_, {-offset_.x, -offset_.y});
  return true;
}

void VirtualDesktop::Resize(xbase::Size new_size) {
  xbase::Size view = viewport();
  size_.width = std::clamp(new_size.width, view.width, xproto::kMaxCoordinate);
  size_.height = std::clamp(new_size.height, view.height, xproto::kMaxCoordinate);
  display_->ResizeWindow(window_, size_);
  PanTo(offset_);  // Re-clamp the offset against the new size.
}

bool VirtualDesktop::IsVisible(const xbase::Rect& desktop_rect) const {
  xbase::Size view = viewport();
  return desktop_rect.Intersects(
      xbase::Rect{offset_.x, offset_.y, view.width, view.height});
}

}  // namespace swm
