// Window manager functions (paper §4.4.1): f.* commands reachable from
// object bindings, menus and the swmcmd property channel, with the five
// invocation modes —
//   f.iconify            current window
//   f.iconify(multiple)  prompt for windows repeatedly
//   f.iconify(blob)      all windows whose class matches
//   f.iconify(#$)        the window under the pointer
//   f.iconify(#0x1234)   an explicit window id
#include <algorithm>
#include <fstream>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/swm/panner.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/wm.h"
#include "src/xlib/icccm.h"

namespace swm {

namespace {

// Functions that operate on a window and accept a target argument.
bool IsWindowFunction(const std::string& name) {
  static const char* kNames[] = {
      "f.raise",   "f.lower",   "f.move",    "f.resize",  "f.iconify",
      "f.deiconify", "f.zoom",  "f.save",    "f.restore", "f.stick",
      "f.unstick", "f.delete",  "f.destroy", "f.identify", "f.focus",
  };
  for (const char* candidate : kNames) {
    if (name == candidate) {
      return true;
    }
  }
  return false;
}

}  // namespace

int WindowManager::ScreenOfContext(const oi::ActionContext& context) const {
  if (context.object != nullptr) {
    return ScreenOf(context.object->window());
  }
  return server_->QueryPointer().screen;
}

std::vector<ManagedClient*> WindowManager::ResolveTargets(
    const xtb::FunctionCall& function, const oi::ActionContext& context,
    bool needs_window) {
  std::vector<ManagedClient*> targets;
  if (!needs_window) {
    return targets;
  }

  if (!function.args.empty()) {
    const std::string& arg = function.args[0];
    if (arg == "multiple") {
      // Prompt for windows, repeatedly, until the root is clicked.
      pending_.active = true;
      pending_.multiple = true;
      xtb::FunctionCall pending_function = function;
      pending_function.args.clear();
      pending_.functions = {std::move(pending_function)};
      for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
        display_.SetCursor(display_.RootWindow(screen), "question_arrow");
      }
      return targets;
    }
    if (arg == "#$") {
      // The window under the mouse.
      xserver::PointerState pointer = server_->QueryPointer();
      if (ManagedClient* client = FindClientByAnyWindow(pointer.window)) {
        targets.push_back(client);
      }
      return targets;
    }
    if (xbase::StartsWith(arg, "#")) {
      // A particular window id: #0x1234.
      std::optional<uint64_t> id = xbase::ParseHex(arg.substr(1));
      if (id.has_value()) {
        if (ManagedClient* client =
                FindClientByAnyWindow(static_cast<xproto::WindowId>(*id))) {
          targets.push_back(client);
        } else {
          XB_LOG(Warning) << function.name << ": no managed window " << arg;
        }
      } else {
        XB_LOG(Warning) << function.name << ": bad window id " << arg;
      }
      return targets;
    }
    // All windows whose class (or instance) matches the argument.
    for (ManagedClient* client : Clients()) {
      if (client->wm_class.clazz == arg || client->wm_class.instance == arg) {
        targets.push_back(client);
      }
    }
    return targets;
  }

  // No argument: the current window — the client owning the object the
  // binding fired on, or the client a popped-up menu belongs to.
  ManagedClient* current = nullptr;
  if (context.object != nullptr) {
    current = FindClientByAnyWindow(context.object->window());
  }
  if (current == nullptr && menu_context_client_ != nullptr) {
    current = menu_context_client_;
  }
  if (current != nullptr) {
    targets.push_back(current);
    return targets;
  }
  // No current window (root panel button, bare swmcmd): prompt — "the
  // pointer would be changed to a question mark" (paper §4.5).  Further
  // targetless functions of the same command join the pending list so all
  // of them apply to the window eventually selected.
  if (pending_.active) {
    pending_.functions.push_back(function);
  } else {
    pending_.active = true;
    pending_.multiple = false;
    pending_.functions = {function};
  }
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    display_.SetCursor(display_.RootWindow(screen), "question_arrow");
  }
  return targets;
}

void WindowManager::ApplyWindowFunction(const std::string& name, ManagedClient* client,
                                        const xtb::FunctionCall& function,
                                        const oi::ActionContext& context) {
  (void)function;
  if (client == nullptr) {
    return;
  }
  if (name == "f.raise") {
    RaiseClient(client);
  } else if (name == "f.lower") {
    LowerClient(client);
  } else if (name == "f.iconify") {
    if (client->state == xproto::WmState::kIconic) {
      Deiconify(client);
    } else {
      Iconify(client);
    }
  } else if (name == "f.deiconify") {
    Deiconify(client);
  } else if (name == "f.zoom") {
    Zoom(client);
  } else if (name == "f.save") {
    SaveGeometry(client);
  } else if (name == "f.restore") {
    RestoreGeometry(client);
  } else if (name == "f.stick") {
    SetSticky(client, !client->sticky);  // Interactive stick/unstick toggle.
  } else if (name == "f.unstick") {
    SetSticky(client, false);
  } else if (name == "f.move") {
    if (context.button != 0 && client->frame != nullptr) {
      drag_.mode = DragState::Mode::kMove;
      drag_.client_window = client->window;
      drag_.start_pointer = context.root_pos;
      drag_.start_frame = client->frame->geometry();
    }
  } else if (name == "f.resize") {
    if (context.button != 0 && client->frame != nullptr) {
      drag_.mode = DragState::Mode::kResize;
      drag_.client_window = client->window;
      drag_.start_pointer = context.root_pos;
      drag_.start_frame = client->frame->geometry();
    }
  } else if (name == "f.delete") {
    CloseClient(client);
  } else if (name == "f.destroy") {
    display_.DestroyWindow(client->window);
  } else if (name == "f.focus") {
    RaiseClient(client);
    if (client->state == xproto::WmState::kIconic) {
      Deiconify(client);
    }
    display_.SetInputFocus(client->window);
  } else if (name == "f.identify") {
    XB_LOG(Info) << "swm: window 0x" << std::hex << client->window << std::dec << " \""
                 << client->name << "\" class " << client->wm_class.clazz << "."
                 << client->wm_class.instance;
  }
}

void WindowManager::ExecuteFunction(const xtb::FunctionCall& function,
                                    const oi::ActionContext& context) {
  // Functions invalidate objects rather than painting; flush on every exit
  // path so direct callers (swmcmd tests, bindings outside ProcessEvents)
  // still see their effects.  Inside ProcessEvents the frame hold makes
  // this a no-op and the batch flush takes over.
  struct FlushOnExit {
    WindowManager* wm;
    ~FlushOnExit() { wm->MaybeFlushFrames(); }
  } flush_on_exit{this};
  const std::string& name = function.name;
  int screen = ScreenOfContext(context);

  if (IsWindowFunction(name)) {
    std::vector<ManagedClient*> targets =
        ResolveTargets(function, context, /*needs_window=*/true);
    for (ManagedClient* client : targets) {
      ApplyWindowFunction(name, client, function, context);
    }
    // A menu item acted: pop the menu down.
    if (menu_context_client_ != nullptr || !targets.empty()) {
      PopdownMenus(screen);
    }
    return;
  }

  if (name == "f.menu") {
    if (function.args.empty()) {
      XB_LOG(Warning) << "f.menu requires a menu name";
      return;
    }
    ManagedClient* for_client =
        context.object != nullptr ? FindClientByAnyWindow(context.object->window())
                                  : nullptr;
    PopupMenu(function.args[0], screen, context.root_pos, for_client);
    return;
  }
  if (name == "f.warpVertical" || name == "f.warpvertical") {
    int delta = function.args.empty()
                    ? 0
                    : xbase::ParseInt(function.args[0]).value_or(0);
    xserver::PointerState pointer = server_->QueryPointer();
    display_.WarpPointer(pointer.screen,
                         {pointer.root_pos.x, pointer.root_pos.y + delta});
    return;
  }
  if (name == "f.warpHorizontal" || name == "f.warphorizontal") {
    int delta = function.args.empty()
                    ? 0
                    : xbase::ParseInt(function.args[0]).value_or(0);
    xserver::PointerState pointer = server_->QueryPointer();
    display_.WarpPointer(pointer.screen,
                         {pointer.root_pos.x + delta, pointer.root_pos.y});
    return;
  }
  if (name == "f.pan") {
    if (function.args.size() == 2) {
      if (VirtualDesktop* desk = vdesk(screen)) {
        desk->PanBy(xbase::ParseInt(function.args[0]).value_or(0),
                    xbase::ParseInt(function.args[1]).value_or(0));
        DesktopViewChanged(screen);
      }
    }
    return;
  }
  if (name == "f.panTo" || name == "f.panto") {
    if (function.args.size() == 2) {
      if (VirtualDesktop* desk = vdesk(screen)) {
        desk->PanTo({xbase::ParseInt(function.args[0]).value_or(0),
                     xbase::ParseInt(function.args[1]).value_or(0)});
        DesktopViewChanged(screen);
      }
    }
    return;
  }
  if (name == "f.circleUp" || name == "f.circleup") {
    // Raise the lowest mapped frame to the top (twm-style circulation).
    xproto::WindowId parent = FrameParent(screen, /*sticky=*/false);
    std::optional<xserver::QueryTreeReply> tree = display_.QueryTree(parent);
    if (tree.has_value()) {
      for (xproto::WindowId child : tree->children) {  // Bottom-most first.
        ManagedClient* client = FindClientByAnyWindow(child);
        if (client != nullptr && client->state == xproto::WmState::kNormal &&
            !client->is_internal) {
          RaiseClient(client);
          break;
        }
      }
    }
    return;
  }
  if (name == "f.circleDown" || name == "f.circledown") {
    // Push the topmost mapped frame to the bottom.
    xproto::WindowId parent = FrameParent(screen, /*sticky=*/false);
    std::optional<xserver::QueryTreeReply> tree = display_.QueryTree(parent);
    if (tree.has_value()) {
      for (auto it = tree->children.rbegin(); it != tree->children.rend(); ++it) {
        ManagedClient* client = FindClientByAnyWindow(*it);
        if (client != nullptr && client->state == xproto::WmState::kNormal &&
            !client->is_internal) {
          LowerClient(client);
          break;
        }
      }
    }
    return;
  }
  if (name == "f.desktop") {
    if (!function.args.empty()) {
      SwitchDesktop(screen, xbase::ParseInt(function.args[0]).value_or(0));
    }
    return;
  }
  if (name == "f.nextDesktop" || name == "f.nextdesktop") {
    int count = DesktopCount(screen);
    if (count > 1) {
      SwitchDesktop(screen, (ActiveDesktop(screen) + 1) % count);
    }
    return;
  }
  if (name == "f.refresh") {
    RefreshAll();
    return;
  }
  if (name == "f.exec" || name == "!") {
    if (!function.args.empty()) {
      // The simulation records rather than spawns processes.
      executed_commands_.push_back(xbase::JoinStrings(function.args, ","));
    }
    return;
  }
  if (name == "f.places") {
    last_places_ = GeneratePlaces();
    if (!function.args.empty()) {
      std::ofstream out(function.args[0]);
      if (out) {
        out << last_places_;
      } else {
        XB_LOG(Warning) << "f.places: cannot write " << function.args[0];
      }
    }
    return;
  }
  if (name == "f.quit") {
    quit_requested_ = true;
    return;
  }
  if (name == "f.restart") {
    restart_requested_ = true;
    // The in-place half of a restart: re-read the template and user
    // resources.  Deferred to ProcessEvents — doing it here would replace
    // the bindings list the dispatcher is iterating.
    resource_reload_pending_ = true;
    return;
  }
  if (name == "f.setButtonLabel" || name == "f.setbuttonlabel") {
    // Dynamic appearance change (paper §4.2): applies to the button the
    // binding fired on.
    if (context.object != nullptr &&
        context.object->type() == oi::ObjectType::kButton && !function.args.empty()) {
      static_cast<oi::Button*>(context.object)->SetLabel(function.args[0]);
    }
    return;
  }
  if (name == "f.setButtonImage" || name == "f.setbuttonimage") {
    if (context.object != nullptr &&
        context.object->type() == oi::ObjectType::kButton && !function.args.empty()) {
      auto* button = static_cast<oi::Button*>(context.object);
      if (function.args[0] == "xlogo") {
        button->SetImage(xbase::XLogo32());
      } else if (function.args[0] == "none") {
        button->ClearImage();
      }
    }
    return;
  }
  if (name == "f.policy") {
    // Runtime layout-policy switch; the whole population re-lays out.
    const std::string requested = function.args.empty() ? "" : function.args[0];
    if (!SetLayoutPolicy(requested)) {
      XB_LOG(Warning) << "f.policy: '" << requested << "' is not a layout policy";
    }
    return;
  }
  if (name == "f.nop") {
    return;
  }
  XB_LOG(Warning) << "swm: unknown function " << name;
}

bool WindowManager::ExecuteCommandString(const std::string& text, int screen) {
  // swmcmd (paper §4.5): "By writing a special property on the root window,
  // swm interprets its contents and executes commands."
  std::string trimmed = xbase::TrimWhitespace(text);
  std::vector<std::string> words = xbase::SplitWhitespace(trimmed);
  if (!words.empty() && !xbase::StartsWith(words[0], "f.") && words[0] != "!") {
    // The function-list grammar only admits f.* names; bare layout verbs
    // ("policy tiling", xswm's "close"/"last") are routed before parsing.
    if (words[0] == "policy") {
      bool switched = words.size() == 2 && SetLayoutPolicy(words[1]);
      if (!switched) {
        XB_LOG(Warning) << "swmcmd: '" << trimmed.substr(0, 128)
                        << "' names no layout policy";
      }
      return switched;
    }
    if (policy_ != nullptr && policy_->HandleCommand(words, screen)) {
      MaybeFlushFrames();
      return true;
    }
  }
  std::optional<std::vector<xtb::FunctionCall>> functions =
      xtb::ParseFunctionList(trimmed);
  if (!functions.has_value()) {
    // A malformed-command flood (hostile swmcmd sender) repeats this line;
    // log every Nth occurrence instead of each one.
    XB_LOG_EVERY_N(Warning, "swmcmd:malformed", 16)
        << "swmcmd: malformed command '" << text.substr(0, 128) << "'";
    return false;
  }
  oi::ActionContext context;
  context.root_pos = server_->QueryPointer().root_pos;
  for (const xtb::FunctionCall& function : *functions) {
    ExecuteFunction(function, context);
  }
  return true;
}

void WindowManager::PopupMenu(const std::string& name, int screen,
                              const xbase::Point& root_pos, ManagedClient* for_client) {
  ScreenState& state = screens_[screen];
  auto it = state.menus.find(name);
  if (it == state.menus.end()) {
    std::unique_ptr<oi::Menu> menu =
        state.toolkit->CreateMenu(display_.RootWindow(screen), name);
    std::optional<std::string> items = menu->Attribute("items");
    if (!items.has_value()) {
      XB_LOG(Warning) << "f.menu: no items for menu '" << name << "'";
      return;
    }
    for (const std::string& item : xbase::SplitWhitespace(*items)) {
      menu->AddItem(item, "");
    }
    it = state.menus.emplace(name, std::move(menu)).first;
  }
  menu_context_client_ = for_client;
  it->second->PopupAt(root_pos);
}

void WindowManager::PopdownMenus(int screen) {
  if (screen < 0 || screen >= static_cast<int>(screens_.size())) {
    return;
  }
  for (auto& [name, menu] : screens_[screen].menus) {
    if (menu->popped_up()) {
      menu->Popdown();
    }
  }
  menu_context_client_ = nullptr;
}

SwmHintsRecord WindowManager::SessionRecordFor(ManagedClient* client) {
  SwmHintsRecord record;
  std::optional<xbase::Rect> geometry = display_.GetGeometry(client->window);
  xbase::Point pos = client->ClientDesktopPosition();
  record.geometry = xbase::Rect{std::max(0, pos.x), std::max(0, pos.y),
                                geometry.has_value() ? geometry->width : 1,
                                geometry.has_value() ? geometry->height : 1};
  if (client->icon_position_set || client->state == xproto::WmState::kIconic) {
    record.icon_position = client->icon_position;
  }
  record.state = client->state == xproto::WmState::kIconic ? xproto::WmState::kIconic
                                                           : xproto::WmState::kNormal;
  record.sticky = client->sticky;
  record.icon_on_root = client->icon_holder == nullptr;
  record.command = client->command;
  record.machine = client->machine;
  return record;
}

void WindowManager::PersistSessionState() {
  // One swmhints record per restartable client, appended to the same root
  // property the swmhints program uses, so a successor WindowManager on this
  // server restores geometry, icon position, iconic and sticky state
  // (docs/ROBUSTNESS.md "Restart recovery").
  for (ManagedClient* client : Clients()) {
    if (client->is_internal || client->command.empty()) {
      continue;
    }
    AppendSwmHints(&display_, client->screen, SessionRecordFor(client));
  }
  // Unconsumed records (clients that never reappeared this session) ride
  // along unchanged so they still apply after the next restart.
  for (const SwmHintsRecord& record : restart_table_.records()) {
    AppendSwmHints(&display_, 0, record);
  }
  // The active layout policy rides the same property so the successor
  // re-adopts it before managing anything.
  AppendSwmPolicy(&display_, 0, policy_->name());
}

std::string WindowManager::GeneratePlaces() {
  std::vector<SwmHintsRecord> records;
  for (ManagedClient* client : Clients()) {
    if (client->is_internal) {
      continue;
    }
    if (client->command.empty()) {
      XB_LOG(Warning) << "f.places: client \"" << client->name
                      << "\" has no WM_COMMAND and cannot be restarted";
      continue;
    }
    records.push_back(SessionRecordFor(client));
  }
  std::string remote_template;
  if (std::optional<std::string> res = ScreenResource(0, "remoteStartup")) {
    remote_template = *res;
  }
  return GeneratePlacesFile(records, remote_template);
}

}  // namespace swm
