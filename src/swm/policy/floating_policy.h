// The default policy: swm's classic manual placement (docs/POLICIES.md).
// New windows honor session geometry and US/PPosition hints, else cascade
// across the visible viewport; clients keep full control of their geometry.
// This policy is a behavioral no-op relative to the pre-policy WindowManager
// (tests/policy_noop_test.cc pins that with a golden server fingerprint).
#ifndef SRC_SWM_POLICY_FLOATING_POLICY_H_
#define SRC_SWM_POLICY_FLOATING_POLICY_H_

#include "src/swm/policy/layout_policy.h"

namespace swm {

class FloatingPolicy : public LayoutPolicy {
 public:
  using LayoutPolicy::LayoutPolicy;

  const char* name() const override { return "floating"; }

  xbase::Point PlaceNew(ManagedClient* client, const xbase::Rect& client_geometry,
                        const std::optional<SwmHintsRecord>& session) override {
    return PlaceFloating(client, client_geometry, session);
  }

  // After a pan the old cascade point may be far outside the new view;
  // re-anchor so the next window lands visibly.
  void OnViewportChange(int screen) override { ResetCascade(screen); }
};

}  // namespace swm

#endif  // SRC_SWM_POLICY_FLOATING_POLICY_H_
