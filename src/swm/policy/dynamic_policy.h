// Dynamic reflow policy (docs/POLICIES.md), after "A Dynamic Take on Window
// Management": the eligible population is kept in a near-square grid that
// re-balances itself on every change — manage, unmanage, iconify/deiconify
// and viewport pan all trigger a reflow of the survivors.  Grid cell
// boundaries are proportional (i·W/cols), so the viewport is covered
// exactly regardless of divisibility; ICCCM hints are honored per cell.
#ifndef SRC_SWM_POLICY_DYNAMIC_POLICY_H_
#define SRC_SWM_POLICY_DYNAMIC_POLICY_H_

#include <vector>

#include "src/swm/policy/layout_policy.h"

namespace swm {

class DynamicPolicy : public LayoutPolicy {
 public:
  using LayoutPolicy::LayoutPolicy;

  const char* name() const override { return "dynamic"; }

  xbase::Point PlaceNew(ManagedClient* client, const xbase::Rect& client_geometry,
                        const std::optional<SwmHintsRecord>& session) override;
  void OnManage(ManagedClient* client) override;
  void OnUnmanage(xproto::WindowId window, int screen) override;
  bool OnConfigureRequest(ManagedClient* client,
                          const xproto::ConfigureRequestEvent& event) override;
  void OnViewportChange(int screen) override;
  void OnIconicChange(ManagedClient* client) override;
  void Relayout(int screen) override;

  // The near-square grid cells for `count` windows, row-major — exposed for
  // tests (pure geometry, no WM access).
  static std::vector<xbase::Rect> GridSlots(xbase::Size view, size_t count);
};

}  // namespace swm

#endif  // SRC_SWM_POLICY_DYNAMIC_POLICY_H_
