#include "src/swm/policy/tiling_policy.h"

#include <algorithm>

#include "src/swm/wm.h"

namespace swm {

std::vector<xbase::Rect> TilingPolicy::SplitSlots(xbase::Size view, size_t count) {
  std::vector<xbase::Rect> slots;
  slots.reserve(count);
  xbase::Rect rest{0, 0, view.width, view.height};
  bool vertical = true;  // The first cut divides the width.
  for (size_t i = 0; i < count; ++i) {
    xbase::Rect slot = rest;
    if (i + 1 < count) {
      if (vertical) {
        slot.width = std::max(1, rest.width / 2);
        rest.x += slot.width;
        rest.width = std::max(1, rest.width - slot.width);
      } else {
        slot.height = std::max(1, rest.height / 2);
        rest.y += slot.height;
        rest.height = std::max(1, rest.height - slot.height);
      }
      vertical = !vertical;
    }
    slots.push_back(slot);
  }
  return slots;
}

std::vector<ManagedClient*> TilingPolicy::OrderedClients(int screen) {
  std::vector<ManagedClient*> eligible = SlotClients(screen);
  // Keep manage order for clients we have seen; adopt the rest (runtime
  // switch, deiconify) at the end in id order; drop stale entries.
  std::vector<ManagedClient*> ordered;
  ordered.reserve(eligible.size());
  std::vector<xproto::WindowId> fresh_order;
  fresh_order.reserve(eligible.size());
  for (xproto::WindowId window : order_) {
    auto it = std::find_if(eligible.begin(), eligible.end(),
                           [&](ManagedClient* c) { return c->window == window; });
    if (it != eligible.end()) {
      ordered.push_back(*it);
      fresh_order.push_back(window);
    }
  }
  for (ManagedClient* client : eligible) {
    if (std::find(fresh_order.begin(), fresh_order.end(), client->window) ==
        fresh_order.end()) {
      ordered.push_back(client);
      fresh_order.push_back(client->window);
    }
  }
  order_ = std::move(fresh_order);
  return ordered;
}

xbase::Point TilingPolicy::PlaceNew(ManagedClient* client,
                                    const xbase::Rect& client_geometry,
                                    const std::optional<SwmHintsRecord>& session) {
  if (!SlotManaged(*client)) {
    return PlaceFloating(client, client_geometry, session);
  }
  return ViewportOrigin(client->screen, client->sticky);  // Relayout refines.
}

void TilingPolicy::OnManage(ManagedClient* client) {
  if (!SlotManaged(*client)) {
    return;
  }
  order_.push_back(client->window);
  Relayout(client->screen);
}

void TilingPolicy::OnUnmanage(xproto::WindowId window, int screen) {
  order_.erase(std::remove(order_.begin(), order_.end(), window), order_.end());
  Relayout(screen);
}

bool TilingPolicy::OnConfigureRequest(ManagedClient* client,
                                      const xproto::ConfigureRequestEvent& event) {
  return DenySlotConfigure(client, event);
}

void TilingPolicy::OnViewportChange(int screen) {
  ResetCascade(screen);
  Relayout(screen);  // Tiles follow the viewport.
}

void TilingPolicy::OnIconicChange(ManagedClient* client) {
  // An iconified window leaves the tiling (SlotManaged excludes it); a
  // deiconified one reclaims its place.  Either way, survivors reflow.
  Relayout(client->screen);
}

void TilingPolicy::Relayout(int screen) {
  std::vector<ManagedClient*> clients = OrderedClients(screen);
  if (clients.empty()) {
    return;
  }
  std::vector<xbase::Rect> slots = SplitSlots(ViewportSize(screen), clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    ApplySlot(clients[i], slots[i]);
  }
}

}  // namespace swm
