#include "src/swm/policy/layout_policy.h"

#include <algorithm>

#include "src/swm/policy/dynamic_policy.h"
#include "src/swm/policy/floating_policy.h"
#include "src/swm/policy/maximize_policy.h"
#include "src/swm/policy/tiling_policy.h"
#include "src/swm/vdesk.h"
#include "src/swm/wm.h"

namespace swm {

bool LayoutPolicy::SlotManaged(const ManagedClient& client) const {
  return !client.is_internal && !client.sticky &&
         client.transient_for == xproto::kNone &&
         client.state == xproto::WmState::kNormal && client.frame != nullptr &&
         client.client_panel != nullptr;
}

std::vector<ManagedClient*> LayoutPolicy::SlotClients(int screen) const {
  std::vector<ManagedClient*> out;
  for (ManagedClient* client : wm_->Clients()) {  // clients_ map: id order.
    if (client->screen == screen && SlotManaged(*client)) {
      out.push_back(client);
    }
  }
  return out;
}

xbase::Size LayoutPolicy::ViewportSize(int screen) const {
  return wm_->display().DisplaySize(screen);
}

xbase::Point LayoutPolicy::ViewportOrigin(int screen, bool sticky) const {
  VirtualDesktop* desk = wm_->vdesk(screen);
  if (sticky || desk == nullptr) {
    return {0, 0};
  }
  return desk->offset();
}

void LayoutPolicy::ApplySlot(ManagedClient* client, const xbase::Rect& slot) {
  if (client == nullptr || client->frame == nullptr ||
      client->client_panel == nullptr) {
    return;
  }
  xbase::Size frame_size = client->frame->geometry().size();
  xbase::Size panel_size = client->client_panel->geometry().size();
  xbase::Size decoration{frame_size.width - panel_size.width,
                         frame_size.height - panel_size.height};
  xbase::Size desired{std::max(1, slot.width - decoration.width),
                      std::max(1, slot.height - decoration.height)};
  // ResizeClient runs WM_NORMAL_HINTS Constrain (min/max/increments), lays
  // the decoration out around the result and re-shapes.
  wm_->ResizeClient(client, desired);
  // The decoration above was measured on the pre-slot frame, which a narrow
  // client pads out to the title bar's minimum width — overstating the
  // decoration and leaving the grant short.  If the client got exactly what
  // we asked for (hints did not bind), re-derive the decoration from the
  // post-resize frame and correct once.
  xbase::Size granted = client->client_panel->geometry().size();
  xbase::Size placed = client->frame->geometry().size();
  if (granted == desired &&
      (placed.width != slot.width || placed.height != slot.height)) {
    desired = {std::max(1, slot.width - (placed.width - granted.width)),
               std::max(1, slot.height - (placed.height - granted.height))};
    wm_->ResizeClient(client, desired);
  }
  // Hints may have held the client below the slot (a max-size-hinted client
  // keeps its hinted size): center the frame within its slot.
  placed = client->frame->geometry().size();
  xbase::Point origin = ViewportOrigin(client->screen, client->sticky);
  wm_->MoveFrameTo(client,
                   {origin.x + slot.x + std::max(0, (slot.width - placed.width) / 2),
                    origin.y + slot.y + std::max(0, (slot.height - placed.height) / 2)});
}

xbase::Point LayoutPolicy::PlaceFloating(
    ManagedClient* client, const xbase::Rect& client_geometry,
    const std::optional<SwmHintsRecord>& session) {
  int screen = client->screen;
  // Offset of the client panel within its frame (decoration border/title).
  xbase::Rect frame_geometry = client->FrameGeometry();
  xbase::Point desktop_pos = client->ClientDesktopPosition();
  xbase::Point client_offset{desktop_pos.x - frame_geometry.x,
                             desktop_pos.y - frame_geometry.y};
  xbase::Point desktop_offset = ViewportOrigin(screen, client->sticky);

  // Desired *client* position, in the frame parent's coordinate space
  // (desktop coordinates for normal windows, viewport for sticky ones).
  xbase::Point client_pos;
  if (session.has_value()) {
    client_pos = session->geometry.origin();
  } else if (client->size_hints.HasUserPosition()) {
    // USPosition is an absolute desktop location, "even if the coordinates
    // on the desktop are not currently visible" (§6.3.2).
    client_pos = {client->size_hints.x, client->size_hints.y};
    if (client->sticky) {
      client_pos = {client_pos.x - desktop_offset.x, client_pos.y - desktop_offset.y};
    }
  } else if (client->size_hints.HasProgramPosition()) {
    // PPosition is relative to the currently visible portion of the desktop.
    client_pos = {client->size_hints.x, client->size_hints.y};
    if (!client->sticky) {
      client_pos = {client_pos.x + desktop_offset.x, client_pos.y + desktop_offset.y};
    }
  } else {
    // Default placement: a cascade within the visible viewport.
    xbase::Size view = ViewportSize(screen);
    auto [it, inserted] = cascade_cursor_.try_emplace(screen, xbase::Point{8, 8});
    xbase::Point cursor = it->second;
    if (cursor.x + client_geometry.width > view.width ||
        cursor.y + client_geometry.height > view.height) {
      // The window doesn't fit at the cascade point (larger than what's left
      // of the viewport, or larger than the viewport itself): clamp to (8,8)
      // instead of walking it off-screen.
      cursor = {8, 8};
      it->second = cursor;
    }
    it->second.x += 24;
    it->second.y += 24;
    if (it->second.x + client_geometry.width > view.width ||
        it->second.y + client_geometry.height > view.height) {
      it->second = {8, 8};
    }
    client_pos = cursor;
    if (!client->sticky) {
      client_pos = {client_pos.x + desktop_offset.x, client_pos.y + desktop_offset.y};
    }
  }
  return {client_pos.x - client_offset.x, client_pos.y - client_offset.y};
}

bool LayoutPolicy::DenySlotConfigure(ManagedClient* client,
                                     const xproto::ConfigureRequestEvent& event) {
  if (!SlotManaged(*client)) {
    return false;  // Transients, sticky windows etc. keep floating handling.
  }
  // Stacking modes are honored — stacking is not geometry.
  if (event.value_mask & xproto::kConfigStackMode) {
    if (event.stack_mode == xproto::StackMode::kAbove) {
      wm_->RaiseClient(client);
    } else if (event.stack_mode == xproto::StackMode::kBelow) {
      wm_->LowerClient(client);
    }
  }
  // Geometry is slot-owned: re-assert the layout, which ends in a synthetic
  // ConfigureNotify telling the client its actual geometry (ICCCM denial).
  Relayout(client->screen);
  return true;
}

std::unique_ptr<LayoutPolicy> CreateLayoutPolicy(const std::string& name,
                                                 WindowManager* wm) {
  if (name == "floating") {
    return std::make_unique<FloatingPolicy>(wm);
  }
  if (name == "maximize") {
    return std::make_unique<MaximizePolicy>(wm);
  }
  if (name == "tiling") {
    return std::make_unique<TilingPolicy>(wm);
  }
  if (name == "dynamic") {
    return std::make_unique<DynamicPolicy>(wm);
  }
  return nullptr;
}

const std::vector<std::string>& LayoutPolicyNames() {
  static const std::vector<std::string> kNames = {"floating", "maximize",
                                                  "tiling", "dynamic"};
  return kNames;
}

}  // namespace swm
