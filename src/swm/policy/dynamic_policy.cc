#include "src/swm/policy/dynamic_policy.h"

#include <vector>

#include "src/swm/wm.h"

namespace swm {

std::vector<xbase::Rect> DynamicPolicy::GridSlots(xbase::Size view, size_t count) {
  std::vector<xbase::Rect> slots;
  slots.reserve(count);
  if (count == 0) {
    return slots;
  }
  size_t cols = 1;
  while (cols * cols < count) {
    ++cols;
  }
  size_t rows = (count + cols - 1) / cols;
  for (size_t i = 0; i < count; ++i) {
    size_t row = i / cols;
    size_t col = i % cols;
    // The last row may be short: its cells widen to cover the full width.
    size_t row_cells = (row + 1 == rows) ? count - row * cols : cols;
    int x0 = static_cast<int>(col * static_cast<size_t>(view.width) / row_cells);
    int x1 = static_cast<int>((col + 1) * static_cast<size_t>(view.width) / row_cells);
    int y0 = static_cast<int>(row * static_cast<size_t>(view.height) / rows);
    int y1 = static_cast<int>((row + 1) * static_cast<size_t>(view.height) / rows);
    slots.push_back(
        {x0, y0, std::max(1, x1 - x0), std::max(1, y1 - y0)});
  }
  return slots;
}

xbase::Point DynamicPolicy::PlaceNew(ManagedClient* client,
                                     const xbase::Rect& client_geometry,
                                     const std::optional<SwmHintsRecord>& session) {
  if (!SlotManaged(*client)) {
    return PlaceFloating(client, client_geometry, session);
  }
  return ViewportOrigin(client->screen, client->sticky);  // Relayout refines.
}

void DynamicPolicy::OnManage(ManagedClient* client) {
  if (SlotManaged(*client)) {
    Relayout(client->screen);
  }
}

void DynamicPolicy::OnUnmanage(xproto::WindowId window, int screen) {
  (void)window;
  Relayout(screen);  // Survivors reflow into the vacated space.
}

bool DynamicPolicy::OnConfigureRequest(ManagedClient* client,
                                       const xproto::ConfigureRequestEvent& event) {
  return DenySlotConfigure(client, event);
}

void DynamicPolicy::OnViewportChange(int screen) {
  ResetCascade(screen);
  Relayout(screen);  // The grid follows the viewport.
}

void DynamicPolicy::OnIconicChange(ManagedClient* client) {
  Relayout(client->screen);
}

void DynamicPolicy::Relayout(int screen) {
  std::vector<ManagedClient*> clients = SlotClients(screen);
  if (clients.empty()) {
    return;
  }
  std::vector<xbase::Rect> slots = GridSlots(ViewportSize(screen), clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    ApplySlot(clients[i], slots[i]);
  }
}

}  // namespace swm
