// xswm-style maximize-all policy (docs/POLICIES.md): every eligible window
// fills the visible viewport; the newest/raised window is focused; a
// most-recently-used stack backs xswm's remote-control verbs, which ride
// the swmcmd channel here:
//   swmcmd close   — politely close the focused window (WM_DELETE_WINDOW
//                    when supported, destroy otherwise)
//   swmcmd last    — raise and focus the previously focused window
// Transients, sticky windows and icons keep floating semantics; max-size
// hints are honored (the client centers in the viewport).
#ifndef SRC_SWM_POLICY_MAXIMIZE_POLICY_H_
#define SRC_SWM_POLICY_MAXIMIZE_POLICY_H_

#include <vector>

#include "src/swm/policy/layout_policy.h"

namespace swm {

class MaximizePolicy : public LayoutPolicy {
 public:
  using LayoutPolicy::LayoutPolicy;

  const char* name() const override { return "maximize"; }

  xbase::Point PlaceNew(ManagedClient* client, const xbase::Rect& client_geometry,
                        const std::optional<SwmHintsRecord>& session) override;
  void OnManage(ManagedClient* client) override;
  void OnUnmanage(xproto::WindowId window, int screen) override;
  bool OnConfigureRequest(ManagedClient* client,
                          const xproto::ConfigureRequestEvent& event) override;
  void OnViewportChange(int screen) override;
  void OnStackingChange(ManagedClient* client, bool raised) override;
  void OnIconicChange(ManagedClient* client) override;
  void Relayout(int screen) override;
  bool HandleCommand(const std::vector<std::string>& words, int screen) override;

  // Focus order, oldest first; back() is the focused window.
  const std::vector<xproto::WindowId>& focus_order() const { return mru_; }

 private:
  // Moves the client to the top of the MRU stack and gives it input focus.
  void Touch(ManagedClient* client);
  void Drop(xproto::WindowId window);
  // The client currently considered focused (input focus if managed by this
  // policy, else the MRU top).
  ManagedClient* FocusedClient();

  std::vector<xproto::WindowId> mru_;
};

}  // namespace swm

#endif  // SRC_SWM_POLICY_MAXIMIZE_POLICY_H_
