// Classic recursive-split tiling (docs/POLICIES.md): the viewport is halved
// window by window in manage order, alternating vertical/horizontal cuts —
// the first window keeps the left half, the second the top of the right
// half, and so on (a spiral).  Clients do not control their own geometry;
// ICCCM min/max/increment hints are honored, centering short windows in
// their slots.  Transients/sticky windows float; iconified windows release
// their slot and the survivors reflow.
#ifndef SRC_SWM_POLICY_TILING_POLICY_H_
#define SRC_SWM_POLICY_TILING_POLICY_H_

#include <vector>

#include "src/swm/policy/layout_policy.h"

namespace swm {

class TilingPolicy : public LayoutPolicy {
 public:
  using LayoutPolicy::LayoutPolicy;

  const char* name() const override { return "tiling"; }

  xbase::Point PlaceNew(ManagedClient* client, const xbase::Rect& client_geometry,
                        const std::optional<SwmHintsRecord>& session) override;
  void OnManage(ManagedClient* client) override;
  void OnUnmanage(xproto::WindowId window, int screen) override;
  bool OnConfigureRequest(ManagedClient* client,
                          const xproto::ConfigureRequestEvent& event) override;
  void OnViewportChange(int screen) override;
  void OnIconicChange(ManagedClient* client) override;
  void Relayout(int screen) override;

  // The recursive-split slots for `count` windows within `view` — exposed
  // for tests (pure geometry, no WM access).
  static std::vector<xbase::Rect> SplitSlots(xbase::Size view, size_t count);

 private:
  // Clients in manage order (adopting unseen ones in id order).
  std::vector<ManagedClient*> OrderedClients(int screen);

  std::vector<xproto::WindowId> order_;  // Manage order, survivors only.
};

}  // namespace swm

#endif  // SRC_SWM_POLICY_TILING_POLICY_H_
