// Pluggable layout policy (docs/POLICIES.md).
//
// swm's thesis is that the window manager is a *policy-free shell*: the
// paper keeps appearance and behaviour in the resource database, and this
// interface does the same for placement/geometry policy.  Every layout
// decision the WindowManager makes — where a new window lands, what happens
// to a client ConfigureRequest, how survivors reflow after an unmanage, how
// the population reacts to a viewport pan — is delegated to the active
// LayoutPolicy.  Policies are selected with the `swm.layout.policy`
// resource, switched at runtime with `swmcmd policy <name>` (full
// re-layout), and persisted across WM restart on SWM_RESTART_INFO.
//
// Contract:
//  - Policies express geometry exclusively through the WindowManager's
//    public mutators (ResizeClient / MoveFrameTo / Raise / Lower / Iconify).
//    Those invalidate retained-mode objects; policies never paint.
//  - swm's own windows (root panels, panner) are never policy-managed;
//    sticky windows, transients and iconified clients keep floating
//    semantics under every policy (SlotManaged below).
//  - ResizeClient runs WM_NORMAL_HINTS constraints, so a slot-granting
//    policy may get back a smaller window than the slot; ApplySlot centers
//    the frame in its slot in that case (ICCCM min/max/increment hints).
#ifndef SRC_SWM_POLICY_LAYOUT_POLICY_H_
#define SRC_SWM_POLICY_LAYOUT_POLICY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/geometry.h"
#include "src/swm/session.h"
#include "src/xproto/events.h"
#include "src/xproto/types.h"

namespace swm {

class WindowManager;
struct ManagedClient;

class LayoutPolicy {
 public:
  explicit LayoutPolicy(WindowManager* wm) : wm_(wm) {}
  virtual ~LayoutPolicy() = default;

  LayoutPolicy(const LayoutPolicy&) = delete;
  LayoutPolicy& operator=(const LayoutPolicy&) = delete;

  virtual const char* name() const = 0;

  // Frame position (frame-parent coordinates) for a client being managed.
  // The frame tree is built and laid out; the client window is not yet
  // reparented.  `client_geometry` is the constrained client size at origin.
  virtual xbase::Point PlaceNew(ManagedClient* client,
                                const xbase::Rect& client_geometry,
                                const std::optional<SwmHintsRecord>& session) = 0;

  // A client finished managing (decorated, placed, mapped).  Reflow here.
  virtual void OnManage(ManagedClient* client) { (void)client; }

  // A client left management (withdrawn, destroyed, healed).  The window id
  // is already gone from the WindowManager's tables.
  virtual void OnUnmanage(xproto::WindowId window, int screen) {
    (void)window;
    (void)screen;
  }

  // A managed, non-internal client sent a ConfigureRequest.  Return true to
  // consume it (the policy owns the geometry); false hands it to the default
  // floating-style handler.  Quarantine parole replays land here too.
  virtual bool OnConfigureRequest(ManagedClient* client,
                                  const xproto::ConfigureRequestEvent& event) {
    (void)client;
    (void)event;
    return false;
  }

  // The visible viewport moved (pan, scrollbars, desktop switch).
  virtual void OnViewportChange(int screen) { (void)screen; }

  // A non-internal client was raised/lowered (f.raise, f.focus,
  // ConfigureRequest stack modes).  Focus-tracking policies observe this.
  virtual void OnStackingChange(ManagedClient* client, bool raised) {
    (void)client;
    (void)raised;
  }

  // A non-internal client was iconified or deiconified (client->state holds
  // the new state); slot policies give up / reclaim the slot.
  virtual void OnIconicChange(ManagedClient* client) { (void)client; }

  // Re-applies the policy to every eligible client on `screen` — called
  // after a runtime policy switch so the new regime takes over wholesale.
  virtual void Relayout(int screen) { (void)screen; }

  // Bare (non-"f.") swmcmd verbs, pre-split into words; return true if the
  // policy consumed the command (xswm's `close` / `last` under maximize).
  virtual bool HandleCommand(const std::vector<std::string>& words, int screen) {
    (void)words;
    (void)screen;
    return false;
  }

 protected:
  // True when this client's geometry belongs to a slot-granting policy:
  // a normal-state, non-internal, non-sticky, non-transient client.
  bool SlotManaged(const ManagedClient& client) const;
  // Eligible clients on a screen, in window-id (manage-stable) order.
  std::vector<ManagedClient*> SlotClients(int screen) const;

  // The visible viewport: size, and its origin in frame-parent coordinates
  // (the desktop offset for non-sticky clients, {0,0} otherwise).
  xbase::Size ViewportSize(int screen) const;
  xbase::Point ViewportOrigin(int screen, bool sticky) const;

  // Resizes the client toward the slot interior (decoration subtracted,
  // WM_NORMAL_HINTS constraints applied by ResizeClient) and positions the
  // frame, centered when hints held the window below the slot size.  `slot`
  // is in viewport coordinates.
  void ApplySlot(ManagedClient* client, const xbase::Rect& slot);

  // The classic swm placement: session geometry, then US/PPosition hints,
  // then a cascade across the visible viewport.  The cascade clamps windows
  // that no longer fit at the cursor back to (8,8) rather than walking them
  // off-screen, and ResetCascade() re-anchors it after a viewport change.
  xbase::Point PlaceFloating(ManagedClient* client,
                             const xbase::Rect& client_geometry,
                             const std::optional<SwmHintsRecord>& session);
  void ResetCascade(int screen) { cascade_cursor_.erase(screen); }

  // Shared ConfigureRequest treatment for slot-granting policies: honor
  // stacking modes, deny geometry by re-asserting the client's slot.
  bool DenySlotConfigure(ManagedClient* client,
                         const xproto::ConfigureRequestEvent& event);

  WindowManager* wm_;

 private:
  std::map<int, xbase::Point> cascade_cursor_;  // Per-screen, default (8,8).
};

// Factory: "floating", "maximize", "tiling", "dynamic".  Unknown → nullptr.
std::unique_ptr<LayoutPolicy> CreateLayoutPolicy(const std::string& name,
                                                 WindowManager* wm);
const std::vector<std::string>& LayoutPolicyNames();

}  // namespace swm

#endif  // SRC_SWM_POLICY_LAYOUT_POLICY_H_
