#include "src/swm/policy/maximize_policy.h"

#include <algorithm>

#include "src/swm/wm.h"

namespace swm {

xbase::Point MaximizePolicy::PlaceNew(ManagedClient* client,
                                      const xbase::Rect& client_geometry,
                                      const std::optional<SwmHintsRecord>& session) {
  if (!SlotManaged(*client)) {
    return PlaceFloating(client, client_geometry, session);
  }
  // The slot is the whole viewport; OnManage's ApplySlot refines centering.
  return ViewportOrigin(client->screen, client->sticky);
}

void MaximizePolicy::OnManage(ManagedClient* client) {
  if (!SlotManaged(*client)) {
    return;
  }
  xbase::Size view = ViewportSize(client->screen);
  ApplySlot(client, {0, 0, view.width, view.height});
  // xswm: the newest window is on top and focused (via OnStackingChange).
  wm_->RaiseClient(client);
}

void MaximizePolicy::OnUnmanage(xproto::WindowId window, int screen) {
  (void)screen;
  bool was_focused = !mru_.empty() && mru_.back() == window;
  Drop(window);
  if (was_focused && !mru_.empty()) {
    // Reveal and focus the previous window — xswm's close behaviour.
    if (ManagedClient* next = wm_->FindClient(mru_.back())) {
      wm_->RaiseClient(next);
    }
  }
}

bool MaximizePolicy::OnConfigureRequest(ManagedClient* client,
                                        const xproto::ConfigureRequestEvent& event) {
  return DenySlotConfigure(client, event);
}

void MaximizePolicy::OnViewportChange(int screen) {
  ResetCascade(screen);
  Relayout(screen);  // Maximized frames follow the viewport across pans.
}

void MaximizePolicy::OnStackingChange(ManagedClient* client, bool raised) {
  if (raised && SlotManaged(*client)) {
    Touch(client);
  }
}

void MaximizePolicy::OnIconicChange(ManagedClient* client) {
  if (client->state == xproto::WmState::kIconic) {
    bool was_focused = !mru_.empty() && mru_.back() == client->window;
    Drop(client->window);
    if (was_focused && !mru_.empty()) {
      if (ManagedClient* next = wm_->FindClient(mru_.back())) {
        wm_->RaiseClient(next);
      }
    }
  } else if (SlotManaged(*client)) {
    // Deiconified: re-assert the slot (hints may have changed while iconic)
    // and make it the focused window.
    xbase::Size view = ViewportSize(client->screen);
    ApplySlot(client, {0, 0, view.width, view.height});
    wm_->RaiseClient(client);
  }
}

void MaximizePolicy::Relayout(int screen) {
  xbase::Size view = ViewportSize(screen);
  for (ManagedClient* client : SlotClients(screen)) {
    ApplySlot(client, {0, 0, view.width, view.height});
  }
  // Adopt clients this policy has never seen (runtime switch): id order.
  for (ManagedClient* client : SlotClients(screen)) {
    if (std::find(mru_.begin(), mru_.end(), client->window) == mru_.end()) {
      mru_.push_back(client->window);
    }
  }
  if (!mru_.empty()) {
    if (ManagedClient* top = wm_->FindClient(mru_.back())) {
      wm_->RaiseClient(top);
    }
  }
}

bool MaximizePolicy::HandleCommand(const std::vector<std::string>& words,
                                   int screen) {
  (void)screen;
  if (words.size() != 1) {
    return false;
  }
  if (words[0] == "close") {
    if (ManagedClient* focused = FocusedClient()) {
      wm_->CloseClient(focused);
    }
    return true;
  }
  if (words[0] == "last") {
    if (mru_.size() >= 2) {
      if (ManagedClient* previous = wm_->FindClient(mru_[mru_.size() - 2])) {
        if (previous->state == xproto::WmState::kIconic) {
          wm_->Deiconify(previous);
        }
        wm_->RaiseClient(previous);  // → Touch: now the focused window.
      }
    }
    return true;
  }
  return false;
}

void MaximizePolicy::Touch(ManagedClient* client) {
  Drop(client->window);
  mru_.push_back(client->window);
  wm_->display().SetInputFocus(client->window);
}

void MaximizePolicy::Drop(xproto::WindowId window) {
  mru_.erase(std::remove(mru_.begin(), mru_.end(), window), mru_.end());
}

ManagedClient* MaximizePolicy::FocusedClient() {
  if (ManagedClient* focused = wm_->FindClient(wm_->display().GetInputFocus())) {
    if (SlotManaged(*focused)) {
      return focused;
    }
  }
  return mru_.empty() ? nullptr : wm_->FindClient(mru_.back());
}

}  // namespace swm
