// Per-client quarantine (docs/ROBUSTNESS.md "Input hardening and
// quarantine").
//
// A hostile or buggy client can flood the WM with PropertyNotify storms,
// ConfigureRequest floods, or requests that raise X errors.  The ledger
// keeps a token bucket per client window: misbehavior drains tokens, every
// ProcessEvents batch (the WM's time tick — there is no real clock in the
// simulator) refills some.  A window that drains its bucket is quarantined:
// the WM coalesces/drops its requests while keeping its decoration intact,
// and paroles it automatically after a quiet period.
#ifndef SRC_SWM_QUARANTINE_H_
#define SRC_SWM_QUARANTINE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/xproto/types.h"

namespace swm {

struct QuarantinePolicy {
  // Bucket capacity: how much burst misbehavior a client may bank.
  int budget = 96;
  // Tokens restored at each ProcessEvents batch boundary.
  int refill_per_tick = 24;
  // Consecutive quiet ticks (no charges) before a quarantined window is
  // paroled.
  int parole_ticks = 3;
  // Costs per offence.
  int property_cost = 1;
  int configure_cost = 1;
  int error_cost = 12;
};

class MisbehaviorLedger {
 public:
  explicit MisbehaviorLedger(QuarantinePolicy policy = {});

  // Deducts `cost` from the window's bucket.  Returns true when the window
  // is quarantined (whether this charge tripped it or it already was).
  bool Charge(xproto::WindowId window, int cost);

  bool IsQuarantined(xproto::WindowId window) const;

  // Batch boundary: refill every bucket, advance parole clocks.  Windows
  // whose parole completed this tick are returned (and released).
  std::vector<xproto::WindowId> Tick();

  // Drops all state for a window (unmanaged/destroyed).
  void Forget(xproto::WindowId window);

  // A request from a quarantined window was coalesced or dropped.
  void NoteDropped() { ++dropped_; }

  // ---- Introspection ------------------------------------------------------
  size_t quarantined_count() const;
  uint64_t quarantines_started() const { return quarantines_started_; }
  uint64_t dropped() const { return dropped_; }
  const QuarantinePolicy& policy() const { return policy_; }

 private:
  struct Entry {
    int tokens = 0;
    bool quarantined = false;
    int quiet_ticks = 0;
    bool charged_since_tick = false;
  };

  QuarantinePolicy policy_;
  std::map<xproto::WindowId, Entry> entries_;
  uint64_t quarantines_started_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace swm

#endif  // SRC_SWM_QUARANTINE_H_
