#include "src/swm/templates.h"

#include <filesystem>
#include <fstream>

#include "src/base/logging.h"

namespace swm {

namespace {

// The minimal look used when "no swm configuration resources have been
// specified, a default configuration can be loaded" (paper §3).
constexpr char kDefaultTemplate[] = R"(! swm default template
swm*panel.swmDefault: \
  button name +C+0 \
  panel client +0+1
swm*decoration: swmDefault
swm*panel.swmIcon: \
  button iconimage +C+0 \
  button iconname +C+1
swm*icon: swmIcon
swm*button.name.bindings: <Btn1> : f.raise\n\
Shift<Btn1> : f.lower\n\
<Btn2> : f.move\n\
<Btn3> : f.iconify
swm*button.iconimage.bindings: <Btn1> : f.deiconify
swm*button.iconname.bindings: <Btn1> : f.deiconify
)";

// The OpenLook+ emulation; the openLook decoration panel and Xicon icon
// panel definitions are verbatim from the paper (§4.1.1, §4.1.2, Fig. 1).
constexpr char kOpenLookTemplate[] = R"(! swm OpenLook+ template
Swm*panel.openLook: \
  button pulldown +0+0 \
  button name +C+0 \
  button nail -0+0 \
  panel client +0+1
Swm*panel.openLook.resizeCorners: True
Swm*panel.Xicon: \
  button iconimage +C+0 \
  button iconname +C+1
Swm*decoration: openLook
Swm*icon: Xicon
Swm*button.pulldown.label: v
Swm*button.pulldown.bindings: <Btn1> : f.menu(windowMenu)
Swm*button.nail.label: @
Swm*button.nail.bindings: <Btn1> : f.stick
Swm*button.name.bindings: <Btn1> : f.raise\n\
<Btn2> : f.save f.zoom\n\
<Btn3> : f.move\n\
<Key>Up : f.warpVertical(-50)\n\
<Key>Down : f.warpVertical(50)
Swm*menu.windowMenu.items: wmRaise wmLower wmIconify wmResize wmDelete
Swm*button.wmRaise.label: Raise
Swm*button.wmRaise.bindings: <Btn1> : f.raise
Swm*button.wmLower.label: Lower
Swm*button.wmLower.bindings: <Btn1> : f.lower
Swm*button.wmIconify.label: Close
Swm*button.wmIconify.bindings: <Btn1> : f.iconify
Swm*button.wmResize.label: Resize
Swm*button.wmResize.bindings: <Btn1> : f.resize
Swm*button.wmDelete.label: Quit
Swm*button.wmDelete.bindings: <Btn1> : f.delete
Swm*button.iconimage.bindings: <Btn1> : f.deiconify\n<Btn2> : f.move
Swm*button.iconname.bindings: <Btn1> : f.deiconify\n<Btn2> : f.move
! Shaped clients get an invisible decoration (paper §5).
Swm*shaped*decoration: shapeit
Swm*panel.shapeit: panel client +0+0
Swm*panel.shapeit*shape: True
! The paper's Figure 2 root panel (instantiate with swm*rootPanels: RootPanel).
Swm*panel.RootPanel: \
  button quit +0+0 \
  button restart +1+0 \
  button iconify +2+0 \
  button deiconify +3+0 \
  button move +0+1 \
  button resize +1+1 \
  button raise +2+1 \
  button lower +3+1
Swm*panel.RootPanel.button.quit.bindings: <Btn1> : f.quit
Swm*panel.RootPanel.button.restart.bindings: <Btn1> : f.restart
Swm*panel.RootPanel.button.iconify.bindings: <Btn1> : f.iconify
Swm*panel.RootPanel.button.deiconify.bindings: <Btn1> : f.deiconify
Swm*panel.RootPanel.button.move.bindings: <Btn1> : f.move
Swm*panel.RootPanel.button.resize.bindings: <Btn1> : f.resize
Swm*panel.RootPanel.button.raise.bindings: <Btn1> : f.raise
Swm*panel.RootPanel.button.lower.bindings: <Btn1> : f.lower
)";

constexpr char kMotifTemplate[] = R"(! swm OSF/Motif emulation template
Swm*panel.motif: \
  button menub +0+0 \
  button name +C+0 \
  button minimize -1+0 \
  button maximize -0+0 \
  panel client +0+1
Swm*decoration: motif
Swm*panel.motifIcon: \
  button iconimage +C+0 \
  button iconname +C+1
Swm*icon: motifIcon
Swm*button.menub.label: =
Swm*button.menub.bindings: <Btn1> : f.menu(windowMenu)
Swm*button.minimize.label: _
Swm*button.minimize.bindings: <Btn1> : f.iconify
Swm*button.maximize.label: ^
Swm*button.maximize.bindings: <Btn1> : f.save f.zoom
Swm*button.name.bindings: <Btn1> : f.raise\n<Btn2> : f.move\nShift<Btn1> : f.lower
Swm*menu.windowMenu.items: wmRestore wmMove wmIconify wmDelete
Swm*button.wmRestore.label: Restore
Swm*button.wmRestore.bindings: <Btn1> : f.restore
Swm*button.wmMove.label: Move
Swm*button.wmMove.bindings: <Btn1> : f.move
Swm*button.wmIconify.label: Minimize
Swm*button.wmIconify.bindings: <Btn1> : f.iconify
Swm*button.wmDelete.label: Close
Swm*button.wmDelete.bindings: <Btn1> : f.delete
Swm*button.iconimage.bindings: <Btn1> : f.deiconify
Swm*button.iconname.bindings: <Btn1> : f.deiconify
)";

}  // namespace

std::vector<std::string> TemplateNames() { return {"default", "openlook", "motif"}; }

std::optional<std::string> TemplateText(const std::string& name) {
  if (name == "default") {
    return std::string(kDefaultTemplate);
  }
  if (name == "openlook") {
    return std::string(kOpenLookTemplate);
  }
  if (name == "motif") {
    return std::string(kMotifTemplate);
  }
  return std::nullopt;
}

int WriteTemplateFiles(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  int written = 0;
  for (const std::string& name : TemplateNames()) {
    std::string path = directory + "/" + name + ".ad";
    std::ofstream out(path);
    if (!out) {
      XB_LOG(Warning) << "cannot write template " << path;
      continue;
    }
    out << *TemplateText(name);
    ++written;
  }
  return written;
}

}  // namespace swm
