// swm — the window manager shell (the paper's primary contribution).
//
// A policy-free reparenting window manager: decorations, icons, root panels
// and their behaviour are described entirely by resource-database panel
// definitions and Xt-syntax bindings; the Virtual Desktop makes the root
// window larger than the display; session state survives server restarts.
#ifndef SRC_SWM_WM_H_
#define SRC_SWM_WM_H_

#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/oi/toolkit.h"
#include "src/swm/quarantine.h"
#include "src/swm/session.h"
#include "src/swm/vdesk.h"
#include "src/xlib/display.h"
#include "src/xrdb/database.h"
#include "src/xserver/connection.h"

namespace swm {

class WindowManager;
class Panner;
class IconHolder;
class DesktopScrollbars;
class LayoutPolicy;

// Per-managed-window state.
struct ManagedClient {
  xproto::WindowId window = xproto::kNone;  // The client's window.
  int screen = 0;

  // ICCCM properties at manage time (name/icon name tracked live).
  std::string name;
  std::string icon_name;
  xproto::WmClass wm_class;
  std::string command;  // WM_COMMAND argv joined with spaces.
  std::string machine;  // WM_CLIENT_MACHINE.
  xproto::SizeHints size_hints;
  xproto::WmHints wm_hints;
  // WM_TRANSIENT_FOR owner; self-references and cycles are broken to kNone
  // at manage time (docs/ROBUSTNESS.md "Input hardening").
  xproto::WindowId transient_for = xproto::kNone;

  bool shaped = false;
  bool sticky = false;
  bool is_internal = false;  // swm's own windows (root panels, panner).
  xproto::WmState state = xproto::WmState::kNormal;

  // Decoration.
  std::string decoration_name;
  std::unique_ptr<oi::Panel> frame;      // Tree root; frame->window() is the frame.
  oi::Panel* client_panel = nullptr;     // The `client` sub-panel.
  oi::Object* name_object = nullptr;     // The `name` button/text, if any.

  // Icon state.
  std::unique_ptr<oi::Panel> icon;       // Icon appearance tree (lazy).
  xbase::Point icon_position;
  bool icon_position_set = false;
  IconHolder* icon_holder = nullptr;
  // True when the client supplied its own icon window (WM_HINTS
  // IconWindowHint); it is reparented into the iconimage slot and must be
  // given back on unmanage.
  bool uses_icon_window = false;

  // f.save / f.zoom bookkeeping (frame geometry in parent coordinates).
  std::optional<xbase::Rect> saved_frame_geometry;

  bool restored_from_session = false;
  int ignore_unmaps = 0;  // Unmaps caused by swm itself (iconify etc).

  // Frame geometry relative to its parent (vdesk for normal windows, real
  // root for sticky windows).
  xbase::Rect FrameGeometry() const;
  // Client window position in desktop coordinates (== viewport coordinates
  // for sticky windows).
  xbase::Point ClientDesktopPosition() const;
};

// An icon holder panel (paper §4.1.5): a scrolling/size-to-fit container for
// icons, optionally restricted to one client class and hidden when empty.
class IconHolder {
 public:
  IconHolder(WindowManager* wm, int screen, std::string name);
  ~IconHolder();

  const std::string& name() const { return name_; }
  xproto::WindowId window() const { return window_; }
  const std::string& class_filter() const { return class_filter_; }
  bool hide_when_empty() const { return hide_when_empty_; }
  bool size_to_fit() const { return size_to_fit_; }

  bool Accepts(const xproto::WmClass& wm_class) const;
  void AddIcon(ManagedClient* client);
  void RemoveIcon(ManagedClient* client);
  const std::vector<ManagedClient*>& icons() const { return icons_; }
  // Lays the contained icons out in rows and shows/hides/resizes itself.
  void Relayout();

  // §4.1.5's "optional scrolling window": scrolls the icon rows within a
  // fixed-size holder.  No-op for size-to-fit holders.
  void ScrollBy(int dy);
  int scroll_offset() const { return scroll_offset_; }
  int content_height() const { return content_height_; }

 private:
  WindowManager* wm_;
  int screen_;
  std::string name_;
  xproto::WindowId window_ = xproto::kNone;
  xbase::Rect configured_geometry_{0, 0, 40, 12};
  std::string class_filter_;  // Empty accepts everything.
  bool hide_when_empty_ = false;
  bool size_to_fit_ = false;
  int scroll_offset_ = 0;
  int content_height_ = 0;
  std::vector<ManagedClient*> icons_;
};

// Interactive drag state (f.move / f.resize with the pointer).
struct DragState {
  enum class Mode { kNone, kMove, kResize };
  Mode mode = Mode::kNone;
  xproto::WindowId client_window = xproto::kNone;
  xbase::Point start_pointer;       // Root coordinates at drag start.
  xbase::Rect start_frame;          // Frame geometry at drag start.
};

// Pending interactive target selection: a function executed without a
// current window changes the pointer to a question mark and applies to the
// next window clicked (f.iconify with no argument from a root panel, or a
// bare `swmcmd f.raise`).  With (multiple), stays armed until a click on
// the root.
struct PendingSelection {
  bool active = false;
  bool multiple = false;
  // All functions awaiting a target ("swmcmd f.iconify f.raise" applies
  // both to the selected window).
  std::vector<xtb::FunctionCall> functions;
};

class WindowManager {
 public:
  struct Options {
    // Extra resource text merged over the selected template.
    std::string resources;
    // Built-in template preloaded under the user resources ("default",
    // "openlook", "motif"); the resource `swm*template` in `resources`
    // overrides this choice.
    std::string template_name = "default";
    // Self-healing (docs/ROBUSTNESS.md): an error/exception barrier around
    // event dispatch, mid-manage rollback, and the suspect-window sweep
    // that unmanages clients whose windows died without a DestroyNotify.
    // Disable only to demonstrate the failure modes it prevents.
    bool self_heal = true;
    // Ablation escape hatch (docs/RENDERING.md): bypass the retained-mode
    // frame scheduler and lay out/repaint eagerly at every invalidation,
    // as the pre-pipeline code did.  Pixel output is identical; only the
    // amount of repeated work differs.  Used by the frame-pipeline bench
    // and the differential tests.
    bool immediate_render = false;
    // Worker threads for the server-side painter (docs/RENDERING.md).
    // <= 1 paints serially; higher values let independent damage bands and
    // screens rasterize concurrently.  Output is byte-identical for any
    // value — the pool only changes wall-clock, never pixels.
    int paint_threads = 1;
  };

  WindowManager(xserver::Server* server, Options options);
  ~WindowManager();

  WindowManager(const WindowManager&) = delete;
  WindowManager& operator=(const WindowManager&) = delete;

  // Selects SubstructureRedirect on every screen's root (returns false if
  // another WM is running), builds per-screen state (virtual desktop,
  // panner, root panels, icon holders, root icons), loads the session
  // restart table, and manages pre-existing client windows.
  bool Start();

  // Drains and handles all pending events.  Call after any client activity.
  void ProcessEvents();

  // ---- Introspection ---------------------------------------------------------
  xlib::Display& display() { return display_; }
  // The auxiliary "client-like" connection owning root-panel/panner
  // toplevels (so they get reparented and managed like normal clients).
  xlib::Display& display_aux() { return aux_display_; }
  const xrdb::ResourceDatabase& resources() const { return db_; }
  // Runtime mutation hook (swmcmd experiments, tests).  Every Put bumps the
  // database generation, which invalidates the toolkits' attribute caches —
  // see docs/RESOURCES.md "Lookup precedence, interning, and caching".
  xrdb::ResourceDatabase& mutable_resources() { return db_; }
  oi::Toolkit& toolkit(int screen);
  VirtualDesktop* vdesk(int screen);
  Panner* panner(int screen);
  DesktopScrollbars* scrollbars(int screen);
  // Refreshes the panner miniature and scrollbar thumbs after the desktop
  // offset or population changed.
  void DesktopViewChanged(int screen);

  // Multiple Virtual Desktops (§6.3.1's proposed extension; resource
  // `swm*virtualDesktops: N`).  New windows land on the active desktop;
  // switching hides every desktop but the target; sticky windows are
  // visible on all of them.
  int DesktopCount(int screen) const;
  int ActiveDesktop(int screen) const;
  bool SwitchDesktop(int screen, int index);  // f.desktop(n) / f.nextDesktop.
  size_t ClientCount() const;
  ManagedClient* FindClient(xproto::WindowId client_window);
  // Resolves a client from any related window: the client window, the
  // frame, a decoration object, or an icon window.
  ManagedClient* FindClientByAnyWindow(xproto::WindowId window);
  std::vector<ManagedClient*> Clients();
  std::vector<IconHolder*> icon_holders(int screen);
  const std::vector<std::string>& executed_commands() const { return executed_commands_; }
  // ---- Out-of-process transport (docs/PROTOCOL.md) -------------------------
  // Connection deadlines for hosting remote clients over a listening socket,
  // read from the resource database:
  //   swm.transport.idleMs  (Swm.Transport.IdleMs)  — read-idle deadline in
  //       milliseconds; a connection that sends no bytes for this long is
  //       closed with CloseReason::kReadIdle.  Default 0 (disabled).
  //   swm.transport.stallMs (Swm.Transport.StallMs) — write-stall deadline in
  //       milliseconds; a peer that refuses to drain queued replies for this
  //       long is closed with CloseReason::kWriteStalled.  Default 5000.
  // Negative or unparsable values fall back to the defaults.  Feed the result
  // into xserver::WireHostOptions::limits.
  xserver::ConnectionLimits TransportLimits() const;
  // ---- Robustness counters (docs/ROBUSTNESS.md) ----------------------------
  // X errors raised against either of swm's connections.
  uint64_t x_error_count() const { return x_errors_; }
  // Clients unmanaged because their window died without a DestroyNotify.
  uint64_t healed_count() const { return healed_count_; }
  // Exceptions caught by the event-dispatch barrier.
  uint64_t dispatch_error_count() const { return dispatch_errors_; }
  // ---- Quarantine (docs/ROBUSTNESS.md "Input hardening and quarantine") ----
  // The per-client misbehavior ledger: property storms, ConfigureRequest
  // floods and error-generating clients drain a token bucket; an exhausted
  // bucket quarantines the window (requests coalesced/dropped, decoration
  // kept) until a quiet period paroles it.
  const MisbehaviorLedger& ledger() const { return ledger_; }
  bool IsQuarantined(xproto::WindowId window) const {
    return ledger_.IsQuarantined(window);
  }
  // Events dispatched that were attributable to this client's windows —
  // the fairness metric a flooding neighbor must not distort.
  uint64_t events_dispatched_for(xproto::WindowId client_window) const {
    auto it = events_dispatched_by_client_.find(client_window);
    return it == events_dispatched_by_client_.end() ? 0 : it->second;
  }
  // ---- Frame-pipeline counters (docs/RENDERING.md) -------------------------
  // Events handled and events dropped by per-batch coalescing (redundant
  // ConfigureNotify snapshots, merged Expose rectangles).
  uint64_t events_dispatched() const { return events_dispatched_; }
  uint64_t events_coalesced() const { return events_coalesced_; }
  bool quit_requested() const { return quit_requested_; }
  bool restart_requested() const { return restart_requested_; }
  bool awaiting_target() const { return pending_.active; }
  RestartTable& restart_table() { return restart_table_; }

  // Marks a window as one of swm's own (panner, root panels): it is managed
  // like any client but excluded from session files and icon holders.
  void RegisterInternalWindow(xproto::WindowId window) {
    internal_windows_.insert(window);
  }

  // ---- Window management operations (also driven by bindings) -----------------
  ManagedClient* ManageWindow(xproto::WindowId window, int screen);
  // `reparent_back` restores the client to the root (withdrawal); false is
  // used when the window is already destroyed.
  void UnmanageWindow(xproto::WindowId window, bool reparent_back);
  void MoveFrameTo(ManagedClient* client, const xbase::Point& parent_pos);
  void ResizeClient(ManagedClient* client, xbase::Size client_size);
  void RaiseClient(ManagedClient* client);
  void LowerClient(ManagedClient* client);
  void Iconify(ManagedClient* client);
  void Deiconify(ManagedClient* client);
  void Zoom(ManagedClient* client);
  void SaveGeometry(ManagedClient* client);
  void RestoreGeometry(ManagedClient* client);
  void SetSticky(ManagedClient* client, bool sticky);
  // Politely closes a client: WM_DELETE_WINDOW when the client speaks the
  // protocol, destroy otherwise (f.delete and the maximize policy's `close`).
  void CloseClient(ManagedClient* client);

  // ---- Layout policy (docs/POLICIES.md) ------------------------------------
  // The active placement/geometry policy.  All layout decisions (PlaceNew,
  // ConfigureRequest treatment, reflow on manage/unmanage/viewport change)
  // delegate through it; `floating` reproduces the classic behaviour.
  LayoutPolicy& layout_policy() { return *policy_; }
  // Switches policies by name ("floating", "maximize", "tiling", "dynamic")
  // and re-lays out every screen.  False: unknown name (policy unchanged).
  // Reachable at runtime via `swmcmd policy <name>` or f.policy(name); the
  // selection persists across WM restart on SWM_RESTART_INFO.
  bool SetLayoutPolicy(const std::string& name);

  // ---- Function execution ------------------------------------------------------
  // Executes one bound function in a dispatch context.
  void ExecuteFunction(const xtb::FunctionCall& function, const oi::ActionContext& context);
  // Parses and executes an swmcmd-style command string (paper §4.5).
  bool ExecuteCommandString(const std::string& text, int screen);

  // ---- Session management --------------------------------------------------------
  // f.places: the .xinitrc-replacement text for the current session.
  std::string GeneratePlaces();
  // Writes the current session (one swmhints record per restartable client,
  // plus any unconsumed restart-table entries) back to SWM_RESTART_INFO.
  // The destructor calls this so a successor WindowManager on the same
  // server re-adopts every surviving client with state intact.
  void PersistSessionState();
  // The text produced by the most recent f.places execution.
  const std::string& last_places() const { return last_places_; }

  // Re-renders every frame/icon and the panner (f.refresh).
  void RefreshAll();

  // Lays out and paints every pending invalidation on all screens: one
  // retained-mode frame per toolkit.  Mutating operations flush at their
  // natural boundary; the event loop flushes once per drained batch.
  void FlushFrames();

  // Rebuilds the resource database from the template + user resources (the
  // in-place half of f.restart) and re-reads attributes of every live
  // decoration, icon and root panel.  Runtime Puts into
  // mutable_resources() do not survive this.  Not safe from inside a
  // binding callback (it replaces the bindings being dispatched); the
  // event loop defers it until the queue settles.
  void ReloadResources();

  // Resource helpers (public: the panner and icon holders use them).
  std::optional<std::string> ScreenResource(int screen, const std::string& resource) const;
  std::optional<std::string> ScreenResource(int screen,
                                            const std::vector<std::string>& extra_names,
                                            const std::vector<std::string>& extra_classes,
                                            const std::string& resource) const;
  std::optional<std::string> ClientResource(const ManagedClient& client,
                                            const std::string& resource) const;
  // Looks up a panel definition ("swm*panel.NAME") for a screen.
  std::optional<std::string> PanelDefinition(int screen, const std::string& name) const;

 private:
  friend class IconHolder;
  friend class Panner;

  struct ScreenState {
    int number = 0;
    std::unique_ptr<oi::Toolkit> toolkit;
    // One or more Virtual Desktops (the paper's §6.3.1 "multiple Virtual
    // Desktops" extension); vdesks[active_vdesk] is the mapped one.
    std::vector<std::unique_ptr<VirtualDesktop>> vdesks;
    int active_vdesk = 0;
    VirtualDesktop* vdesk() const {
      return vdesks.empty() ? nullptr : vdesks[static_cast<size_t>(active_vdesk)].get();
    }
    std::unique_ptr<Panner> panner;
    std::unique_ptr<DesktopScrollbars> scrollbars;
    std::vector<std::unique_ptr<IconHolder>> icon_holders;
    std::vector<std::unique_ptr<oi::Panel>> root_icons;
    std::vector<std::unique_ptr<oi::Panel>> root_panel_trees;
    std::map<std::string, std::unique_ptr<oi::Menu>> menus;
  };

  // ---- Startup ---------------------------------------------------------------
  void LoadResources();
  void InitScreen(int screen);
  void CreateRootPanels(int screen);
  void CreateRootIcons(int screen);
  void CreateIconHolders(int screen);
  void ManageExistingWindows(int screen);

  // ---- Manage helpers ----------------------------------------------------------
  std::string ChooseDecoration(const ManagedClient& client) const;
  std::unique_ptr<oi::Panel> BuildFrame(ManagedClient* client);
  // resizeCorners (paper §4.1.1): adds four floating corner handles bound
  // to f.resize, and keeps them pinned to the frame corners after layout.
  void SetupResizeCorners(ManagedClient* client, oi::Panel* frame);
  void PositionResizeCorners(ManagedClient* client);
  // For shaped clients, intersects the frame's shape with the client's own
  // shape so an oclock shows "without visible decoration" (§5).
  void ApplyClientShapeToFrame(ManagedClient* client);
  // Re-decorates in place (used when stickiness toggles: the resource
  // prefix changes, so the decoration may change; paper §6.2).
  void ReDecorate(ManagedClient* client);
  // The swmhints record describing one client's current state.
  SwmHintsRecord SessionRecordFor(ManagedClient* client);
  // Walks the transient_for chain through managed clients; returns kNone
  // (and counts transient_cycles_broken) when `owner` leads back to
  // `window` or into any cycle.
  xproto::WindowId BreakTransientCycle(xproto::WindowId window, xproto::WindowId owner);
  void UpdateSwmRootProperty(ManagedClient* client);
  void SendSyntheticConfigure(ManagedClient* client);
  // Window the frames of this client should parent on (vdesk or root).
  xproto::WindowId FrameParent(int screen, bool sticky);

  // ---- Icons ----------------------------------------------------------------------
  void BuildIcon(ManagedClient* client);
  void PlaceIcon(ManagedClient* client);
  IconHolder* HolderFor(const ManagedClient& client);

  // ---- Self-healing (docs/ROBUSTNESS.md) -----------------------------------
  // Error handler for both connections.  Runs synchronously mid-request, so
  // it only records: windows named by BadWindow/BadMatch become suspects.
  void OnXError(const xproto::XError& error);
  // Verifies each suspect's liveness and unmanages clients whose windows are
  // gone — the cleanup DestroyNotify would have triggered, had it arrived.
  void HealSuspects();

  // ---- Frame pipeline --------------------------------------------------------
  // Flushes unless an event batch holds frames for batch-end coalescing.
  void MaybeFlushFrames();
  // RAII scope: while held, MaybeFlushFrames defers to the batch-end
  // FlushFrames in ProcessEvents so one frame covers the whole batch.
  struct FrameHold {
    explicit FrameHold(WindowManager* wm) : wm_(wm) { ++wm_->frame_hold_depth_; }
    ~FrameHold() { --wm_->frame_hold_depth_; }
    WindowManager* wm_;
  };
  // Drops redundant ConfigureNotify snapshots (keep last per window) and
  // merges same-window Expose rectangles within one drained batch.
  void CoalesceEventBatch(std::vector<xproto::Event>* batch);
  // Layout observer installed on every toolkit's FrameScheduler: re-pins
  // floating resize corners after a client frame's layout pass.
  void OnTreeLaidOut(oi::Object* root);

  // ---- Event handling ----------------------------------------------------------------
  void HandleEvent(const xproto::Event& event);
  void HandleMapRequest(const xproto::MapRequestEvent& event);
  void HandleConfigureRequest(const xproto::ConfigureRequestEvent& event);
  void HandleUnmapNotify(const xproto::UnmapNotifyEvent& event);
  void HandleDestroyNotify(const xproto::DestroyNotifyEvent& event);
  void HandlePropertyNotify(const xproto::PropertyNotifyEvent& event);
  void HandleClientMessage(const xproto::ClientMessageEvent& event);
  bool HandleDrag(const xproto::Event& event);              // Returns true if consumed.
  bool HandlePendingSelection(const xproto::Event& event);  // Returns true if consumed.

  // ---- Function helpers -----------------------------------------------------------------
  std::vector<ManagedClient*> ResolveTargets(const xtb::FunctionCall& function,
                                             const oi::ActionContext& context,
                                             bool needs_window);
  void ApplyWindowFunction(const std::string& name, ManagedClient* client,
                           const xtb::FunctionCall& function,
                           const oi::ActionContext& context);
  void PopupMenu(const std::string& name, int screen, const xbase::Point& root_pos,
                 ManagedClient* for_client);
  void PopdownMenus(int screen);
  int ScreenOfContext(const oi::ActionContext& context) const;

  // The screen a managed/related window lives on.
  int ScreenOf(xproto::WindowId window) const;

  xserver::Server* server_;
  xlib::Display display_;      // The WM's own connection.
  xlib::Display aux_display_;  // "Client-like" connection owning root panels/panner
                               // toplevels so they are themselves reparented/managed.
  Options options_;
  xrdb::ResourceDatabase db_;

  std::vector<ScreenState> screens_;
  // The active layout policy (never null after construction); see
  // layout_policy() above.  `restart_policy_name_` carries a predecessor's
  // runtime selection from SWM_RESTART_INFO until Start adopts it.
  std::unique_ptr<LayoutPolicy> policy_;
  std::optional<std::string> restart_policy_name_;
  // Set for the destructor's unmanage-all sweep: policy reflow hooks are
  // skipped during teardown (each unmanage would trigger a full re-layout
  // of a population that is about to disappear anyway).
  bool in_teardown_ = false;
  std::map<xproto::WindowId, std::unique_ptr<ManagedClient>> clients_;
  std::set<xproto::WindowId> internal_windows_;
  // Maps decoration/icon tree roots to their client window.
  std::map<const oi::Object*, xproto::WindowId> tree_owner_;

  RestartTable restart_table_;
  DragState drag_;
  PendingSelection pending_;
  ManagedClient* menu_context_client_ = nullptr;
  std::vector<std::string> executed_commands_;
  std::string last_places_;
  bool quit_requested_ = false;
  bool restart_requested_ = false;
  bool resource_reload_pending_ = false;  // f.restart defers to ProcessEvents.
  bool started_ = false;
  int frame_hold_depth_ = 0;  // >0 while ProcessEvents batches invalidations.
  uint64_t events_dispatched_ = 0;
  uint64_t events_coalesced_ = 0;

  // Quarantine state (docs/ROBUSTNESS.md).
  MisbehaviorLedger ledger_;
  // Last ConfigureRequest from each quarantined window, applied at parole
  // (coalescing: a thousand-request flood becomes one configure).
  std::map<xproto::WindowId, xproto::ConfigureRequestEvent> quarantine_pending_configure_;
  std::map<xproto::WindowId, uint64_t> events_dispatched_by_client_;

  // Self-healing state.
  std::vector<xproto::WindowId> suspect_windows_;
  uint64_t x_errors_ = 0;
  uint64_t healed_count_ = 0;
  uint64_t dispatch_errors_ = 0;
  // swmcmd flood control: commands still allowed in this ProcessEvents call.
  int swmcmd_budget_ = 0;
  bool swmcmd_budget_warned_ = false;
  // Partial swmcmd write (no trailing newline yet) buffered per screen until
  // the sender's next append completes the line.  Shares the 4KB payload cap
  // with the drain, so a sender that never sends the newline can't grow it.
  std::map<int, std::string> swmcmd_partial_;
};

}  // namespace swm

#endif  // SRC_SWM_WM_H_
