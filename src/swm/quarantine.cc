#include "src/swm/quarantine.h"

#include <algorithm>

#include "src/base/logging.h"

namespace swm {

MisbehaviorLedger::MisbehaviorLedger(QuarantinePolicy policy) : policy_(policy) {}

bool MisbehaviorLedger::Charge(xproto::WindowId window, int cost) {
  Entry& entry = entries_.try_emplace(window, Entry{policy_.budget}).first->second;
  entry.charged_since_tick = true;
  entry.quiet_ticks = 0;
  entry.tokens -= cost;
  if (!entry.quarantined && entry.tokens < 0) {
    entry.quarantined = true;
    ++quarantines_started_;
    XB_LOG(Warning) << "swm: quarantining window " << window
                    << " (misbehavior budget exhausted); its requests will be "
                       "coalesced until it quiets down";
  }
  return entry.quarantined;
}

bool MisbehaviorLedger::IsQuarantined(xproto::WindowId window) const {
  auto it = entries_.find(window);
  return it != entries_.end() && it->second.quarantined;
}

std::vector<xproto::WindowId> MisbehaviorLedger::Tick() {
  std::vector<xproto::WindowId> paroled;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    entry.tokens = std::min(entry.tokens + policy_.refill_per_tick, policy_.budget);
    if (entry.quarantined) {
      if (!entry.charged_since_tick) {
        ++entry.quiet_ticks;
        if (entry.quiet_ticks >= policy_.parole_ticks) {
          entry.quarantined = false;
          entry.tokens = policy_.budget;
          paroled.push_back(it->first);
          XB_LOG(Info) << "swm: paroling window " << it->first
                       << " after quiet period";
        }
      }
    }
    entry.charged_since_tick = false;
    // A well-behaved window whose bucket refilled completely carries no
    // information: drop the entry so the ledger stays proportional to the
    // set of currently-misbehaving clients.
    if (!entry.quarantined && entry.tokens >= policy_.budget) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return paroled;
}

void MisbehaviorLedger::Forget(xproto::WindowId window) { entries_.erase(window); }

size_t MisbehaviorLedger::quarantined_count() const {
  size_t n = 0;
  for (const auto& [window, entry] : entries_) {
    if (entry.quarantined) {
      ++n;
    }
  }
  return n;
}

}  // namespace swm
