#include "src/swm/swmcmd.h"

#include "src/xproto/hints.h"

namespace swm {

bool SendSwmCommand(xlib::Display* display, int screen, const std::string& command) {
  // Append, don't replace: two swmcmds racing between the WM's reads would
  // otherwise lose the first command.  The WM splits on the newline and
  // drains every queued command in one read.
  return display->AppendStringProperty(display->RootWindow(screen),
                                       xproto::kAtomSwmCommand, command + "\n");
}

}  // namespace swm
