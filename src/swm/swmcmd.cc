#include "src/swm/swmcmd.h"

#include "src/xproto/hints.h"

namespace swm {

bool SendSwmCommand(xlib::Display* display, int screen, const std::string& command) {
  return display->SetStringProperty(display->RootWindow(screen), xproto::kAtomSwmCommand,
                                    command);
}

}  // namespace swm
