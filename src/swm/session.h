// Primitive session management (paper §7).
//
// Two-step approach: an `swmhints` program provides swm with hints about a
// client's previous state (encoded onto a root-window property), and swm
// interprets those hints when clients are reparented, matching on
// WM_COMMAND (and possibly WM_CLIENT_MACHINE) and restoring window size,
// location, icon location, icon-on-root, sticky state and normal/iconic
// state.  `f.places` writes a file suitable as an .xinitrc replacement.
#ifndef SRC_SWM_SESSION_H_
#define SRC_SWM_SESSION_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/base/geometry.h"
#include "src/xlib/display.h"
#include "src/xproto/types.h"

namespace swm {

// Everything one swmhints invocation communicates about one client.
struct SwmHintsRecord {
  xbase::Rect geometry;  // Window geometry in desktop coordinates.
  std::optional<xbase::Point> icon_position;
  xproto::WmState state = xproto::WmState::kNormal;
  bool sticky = false;
  bool icon_on_root = true;  // False: the icon lived in an icon holder.
  std::string command;       // The exact WM_COMMAND string.
  std::string machine;       // WM_CLIENT_MACHINE; "" means unknown/local.

  friend bool operator==(const SwmHintsRecord&, const SwmHintsRecord&) = default;

  // Serializes as an swmhints command line:
  //   swmhints -geometry 120x120+1010+359 -icongeometry +0+0
  //            -state NormalState -cmd "oclock -geom 100x100"
  std::string Encode() const;
  // Parses an swmhints command line (tolerates unknown flags).
  static std::optional<SwmHintsRecord> Parse(const std::string& line);
};

// The table swm builds at startup from the root property and consumes as
// clients get reparented.
class RestartTable {
 public:
  void Add(SwmHintsRecord record) { records_.push_back(std::move(record)); }

  // First-match-wins lookup by WM_COMMAND (+ machine when both known); the
  // matched entry is removed.  "The scheme outlined above breaks down if
  // two windows have identical WM_COMMAND properties" — duplicates are
  // consumed in order, which is the paper's observed behaviour.
  std::optional<SwmHintsRecord> MatchAndConsume(const std::string& command,
                                                const std::string& machine);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::deque<SwmHintsRecord>& records() const { return records_; }

  // A restarting swm may also record which layout policy was active, as a
  // bare "policy <name>" line riding the same property.
  const std::optional<std::string>& policy_name() const { return policy_name_; }
  void set_policy_name(std::string name) { policy_name_ = std::move(name); }

  // Property text is newline-separated encoded records.
  static RestartTable FromPropertyText(const std::string& text);
  std::string ToPropertyText() const;

 private:
  std::deque<SwmHintsRecord> records_;
  std::optional<std::string> policy_name_;
};

// What the swmhints *program* does: appends one record to the
// SWM_RESTART_INFO property on the screen's root window.
bool AppendSwmHints(xlib::Display* display, int screen, const SwmHintsRecord& record);

// Records the active layout policy alongside the restart records, so the
// next swm adopts it before managing anything.
bool AppendSwmPolicy(xlib::Display* display, int screen, const std::string& name);

// Reads and deletes the accumulated property (done by swm at startup).
RestartTable TakeRestartInfo(xlib::Display* display, int screen);

// Generates the .xinitrc-replacement text of f.places.  Remote clients use
// `remote_startup_template` with %h → host, %c → command (empty template
// falls back to a bare "rsh host command").
std::string GeneratePlacesFile(const std::vector<SwmHintsRecord>& records,
                               const std::string& remote_startup_template);

// Parses the swmhints lines back out of a places file.
std::vector<SwmHintsRecord> ParsePlacesFile(const std::string& text);

// Expands %h/%c (and %%) in a remote startup template.
std::string ExpandRemoteStartup(const std::string& templ, const std::string& host,
                                const std::string& command);

}  // namespace swm

#endif  // SRC_SWM_SESSION_H_
