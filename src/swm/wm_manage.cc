// Managing and decorating client windows: reparenting into resource-defined
// decoration panels, ICCCM state, placement on the Virtual Desktop, and the
// sticky/shaped resource-prefix machinery.
#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/swm/panner.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/wm.h"
#include "src/xlib/icccm.h"

namespace swm {

namespace {

// Chains longer than this are treated as a cycle even if the seen-set never
// repeats (a hostile client can mint fresh windows faster than we walk).
constexpr int kMaxTransientDepth = 64;

xbase::Point OffsetWithinTree(const oi::Object* object) {
  xbase::Point offset{0, 0};
  const oi::Object* cur = object;
  while (cur != nullptr && cur->parent() != nullptr) {
    offset.x += cur->geometry().x;
    offset.y += cur->geometry().y;
    cur = cur->parent();
  }
  return offset;
}

}  // namespace

xproto::WindowId WindowManager::BreakTransientCycle(xproto::WindowId window,
                                                    xproto::WindowId owner) {
  if (owner == xproto::kNone) {
    return xproto::kNone;
  }
  std::set<xproto::WindowId> seen{window};
  xproto::WindowId cur = owner;
  int depth = 0;
  while (cur != xproto::kNone && depth++ < kMaxTransientDepth) {
    if (!seen.insert(cur).second) {
      // A→B→…→A (or a cycle further down the chain the walk can never
      // escape): drop the hint rather than loop forever in any consumer.
      ++display_.mutable_sanitizer_stats()->transient_cycles_broken;
      XB_LOG_EVERY_N(Warning, "swm:transient-cycle:" + std::to_string(window),
                     1 << 30)
          << "swm: WM_TRANSIENT_FOR cycle through window " << window
          << "; breaking";
      return xproto::kNone;
    }
    ManagedClient* next = FindClient(cur);
    cur = next != nullptr ? next->transient_for : xproto::kNone;
  }
  if (depth > kMaxTransientDepth) {
    ++display_.mutable_sanitizer_stats()->transient_cycles_broken;
    return xproto::kNone;
  }
  return owner;
}

std::string WindowManager::ChooseDecoration(const ManagedClient& client) const {
  std::optional<std::string> decoration = ClientResource(client, "decoration");
  if (decoration.has_value()) {
    return xbase::TrimWhitespace(*decoration);
  }
  return "swmDefault";
}

std::unique_ptr<oi::Panel> WindowManager::BuildFrame(ManagedClient* client) {
  ScreenState& state = screens_[client->screen];
  oi::Toolkit& tk = *state.toolkit;
  int screen = client->screen;
  auto lookup = [this, screen](const std::string& name) {
    return PanelDefinition(screen, name);
  };

  // Specific-resource prefix: sticky/shaped markers plus WM_CLASS.
  std::vector<std::string> prefix_names;
  std::vector<std::string> prefix_classes;
  if (client->sticky) {
    prefix_names.push_back("sticky");
    prefix_classes.push_back("Sticky");
  }
  if (client->shaped) {
    prefix_names.push_back("shaped");
    prefix_classes.push_back("Shaped");
  }
  if (client->transient_for != xproto::kNone) {
    prefix_names.push_back("transient");
    prefix_classes.push_back("Transient");
  }
  if (!client->wm_class.clazz.empty() || !client->wm_class.instance.empty()) {
    prefix_names.push_back(client->wm_class.clazz);
    prefix_names.push_back(client->wm_class.instance);
    prefix_classes.push_back(client->wm_class.clazz);
    prefix_classes.push_back(client->wm_class.instance);
  }

  xproto::WindowId parent = FrameParent(client->screen, client->sticky);
  std::unique_ptr<oi::Panel> frame;
  if (PanelDefinition(client->screen, client->decoration_name).has_value()) {
    frame = tk.BuildPanelTree(client->decoration_name, parent, lookup, prefix_names,
                              prefix_classes);
  }
  if (frame == nullptr) {
    // Undecorated fallback: a bare container holding only the client panel.
    frame = tk.CreatePanel(nullptr, parent,
                           client->decoration_name.empty() ? "clientOnly"
                                                           : client->decoration_name);
    tk.SetTreePrefix(frame.get(), prefix_names, prefix_classes);
    auto client_panel = tk.CreatePanel(frame.get(), frame->window(), "client");
    client_panel->SetPosition(oi::ObjectPosition{oi::HAlign::kLeft, 0, 0});
    frame->AddChild(std::move(client_panel));
  }

  oi::Object* client_obj = frame->FindDescendant("client");
  if (client_obj == nullptr || client_obj->type() != oi::ObjectType::kPanel) {
    // "the decoration panel must contain a panel object called client";
    // tolerate broken user definitions by appending one.
    XB_LOG(Warning) << "decoration '" << client->decoration_name
                    << "' lacks a `client` panel; appending one";
    auto client_panel = tk.CreatePanel(frame.get(), frame->window(), "client");
    client_panel->SetPosition(oi::ObjectPosition{oi::HAlign::kLeft, 0, 99});
    client_obj = frame->AddChild(std::move(client_panel));
  }
  client->client_panel = static_cast<oi::Panel*>(client_obj);
  client->name_object = frame->FindDescendant("name");
  SetupResizeCorners(client, frame.get());
  return frame;
}

void WindowManager::SetupResizeCorners(ManagedClient* client, oi::Panel* frame) {
  // "Swm*panel.openLook.resizeCorners: True" (paper §4.1.1).
  if (!frame->BoolAttribute("resizeCorners")) {
    return;
  }
  oi::Toolkit& tk = *screens_[client->screen].toolkit;
  for (const char* name : {"resizeUL", "resizeUR", "resizeLL", "resizeLR"}) {
    std::unique_ptr<oi::Button> corner = tk.CreateButton(frame, frame->window(), name);
    corner->SetFloating(true);
    corner->SetLabel("");
    if (corner->bindings().empty()) {
      corner->SetBindings(xtb::ParseBindings("<Btn1> : f.resize").bindings);
    }
    frame->AddChild(std::move(corner));
  }
}

void WindowManager::PositionResizeCorners(ManagedClient* client) {
  if (client->frame == nullptr) {
    return;
  }
  xbase::Size frame_size = client->frame->geometry().size();
  const struct {
    const char* name;
    int x;
    int y;
  } corners[] = {{"resizeUL", 0, 0},
                 {"resizeUR", frame_size.width - 1, 0},
                 {"resizeLL", 0, frame_size.height - 1},
                 {"resizeLR", frame_size.width - 1, frame_size.height - 1}};
  for (const auto& corner : corners) {
    oi::Object* handle = client->frame->FindDescendant(corner.name);
    if (handle != nullptr && handle->floating()) {
      handle->SetGeometry(xbase::Rect{corner.x, corner.y, 1, 1});
      display_.RaiseWindow(handle->window());
    }
  }
}

ManagedClient* WindowManager::ManageWindow(xproto::WindowId window, int screen) {
  if (FindClient(window) != nullptr) {
    return FindClient(window);
  }
  std::optional<xserver::WindowAttributes> attrs = display_.GetWindowAttributes(window);
  if (!attrs.has_value() || attrs->override_redirect ||
      attrs->window_class == xproto::WindowClass::kInputOnly) {
    return nullptr;
  }
  const xserver::WindowRec* owner_rec = server_->FindWindowForTest(window);
  if (owner_rec != nullptr && owner_rec->owner == display_.client_id()) {
    return nullptr;  // Never manage swm's own windows.
  }
  std::optional<xbase::Rect> geometry = display_.GetGeometry(window);
  if (!geometry.has_value()) {
    return nullptr;
  }

  auto owned = std::make_unique<ManagedClient>();
  ManagedClient* client = owned.get();
  client->window = window;
  client->screen = screen;
  client->name = xlib::GetWmName(&display_, window).value_or("");
  client->icon_name = xlib::GetWmIconName(&display_, window).value_or(client->name);
  client->wm_class = xlib::GetWmClass(&display_, window).value_or(xproto::WmClass{});
  if (std::optional<std::vector<std::string>> argv = xlib::GetWmCommand(&display_, window)) {
    client->command = xbase::JoinStrings(*argv, " ");
  }
  client->machine = xlib::GetWmClientMachine(&display_, window).value_or("");
  client->size_hints =
      xlib::GetWmNormalHints(&display_, window).value_or(xproto::SizeHints{});
  client->wm_hints = xlib::GetWmHints(&display_, window).value_or(xproto::WmHints{});
  client->transient_for = BreakTransientCycle(
      window, xlib::GetTransientForHint(&display_, window).value_or(xproto::kNone));
  client->shaped = display_.IsShaped(window);
  const xserver::WindowRec* window_rec = server_->FindWindowForTest(window);
  client->is_internal = internal_windows_.count(window) != 0 ||
                        (window_rec != nullptr &&
                         window_rec->owner == aux_display_.client_id());

  // Session restore (paper §7): match by WM_COMMAND (+ machine).
  std::optional<SwmHintsRecord> session;
  if (!client->command.empty()) {
    session = restart_table_.MatchAndConsume(client->command, client->machine);
  }
  client->restored_from_session = session.has_value();

  // Stickiness: session state, else the sticky resource by class/instance.
  if (session.has_value()) {
    client->sticky = session->sticky;
  } else {
    std::optional<std::string> sticky_res = ClientResource(*client, "sticky");
    if (sticky_res.has_value()) {
      std::string lower = xbase::ToLowerAscii(xbase::TrimWhitespace(*sticky_res));
      client->sticky = lower == "true" || lower == "yes" || lower == "on";
    }
  }

  client->decoration_name = ChooseDecoration(*client);
  client->frame = BuildFrame(client);

  // Register before touching the window again: the client may destroy it at
  // any point from here on (it owns it), and an early registration makes the
  // rollback uniform — UnmanageWindow tears down whatever exists so far.
  tree_owner_[client->frame.get()] = window;
  clients_[window] = std::move(owned);
  auto died_mid_manage = [&]() {
    if (!options_.self_heal || server_->WindowExists(window)) {
      return false;
    }
    XB_LOG(Warning) << "swm: window " << window
                    << " destroyed mid-manage; rolling back";
    UnmanageWindow(window, /*reparent_back=*/false);
    return true;
  };
  if (died_mid_manage()) {
    return nullptr;
  }

  // Client size: session geometry wins, then the current window size, both
  // run through WM_NORMAL_HINTS constraints.
  xbase::Size client_size = session.has_value() ? session->geometry.size()
                                                : geometry->size();
  client_size = client->size_hints.Constrain(client_size);
  bool was_viewable = attrs->map_state == xproto::MapState::kViewable;
  if (was_viewable) {
    ++client->ignore_unmaps;  // Reparent of a mapped window unmaps it once.
  }
  display_.ResizeWindow(window, client_size);
  if (died_mid_manage()) {
    return nullptr;
  }
  client->client_panel->SetSizeOverride(client_size);
  // PlaceNew reads the laid-out frame geometry, so the freshly built
  // (all-dirty) tree flushes synchronously here; the layout observer pins
  // the resize corners.
  screens_[screen].toolkit->FlushFrame();

  // Placement is a policy decision (docs/POLICIES.md): floating runs the
  // classic session/hints/cascade logic; slot policies claim their slot.
  xbase::Point frame_pos = policy_->PlaceNew(
      client, xbase::Rect{0, 0, client_size.width, client_size.height}, session);
  client->frame->SetGeometry(xbase::Rect{frame_pos.x, frame_pos.y,
                                         client->frame->geometry().width,
                                         client->frame->geometry().height});

  if (client->name_object != nullptr) {
    // The special `name` object displays WM_NAME (paper §4.1.1).
    if (client->name_object->type() == oi::ObjectType::kButton) {
      static_cast<oi::Button*>(client->name_object)->SetLabel(client->name);
    } else if (client->name_object->type() == oi::ObjectType::kText) {
      static_cast<oi::TextObject*>(client->name_object)->SetText(client->name);
    }
    // The label change relayouts the title row; shapes below read geometry.
    screens_[screen].toolkit->FlushFrame();
  }

  display_.ReparentWindow(window, client->client_panel->window(), {0, 0});
  display_.AddToSaveSet(window);
  // Preserve any selection swm already holds on this window (the panner's
  // pointer-event selection, notably).
  display_.SelectInput(window, server_->SelectedInput(display_.client_id(), window) |
                                   xproto::kStructureNotifyMask |
                                   xproto::kPropertyChangeMask);
  display_.ShapeSelect(window, true);
  // The gap just crossed (reparent → SelectInput) is the one where a client
  // destroy produces no DestroyNotify for swm — check explicitly.
  if (died_mid_manage()) {
    return nullptr;
  }
  // Hold SubstructureRedirect on the client's new parent, so its own
  // configure/map requests keep coming to swm now that it is off the root.
  uint32_t panel_mask =
      server_->SelectedInput(display_.client_id(), client->client_panel->window());
  display_.SelectInput(client->client_panel->window(),
                       panel_mask | xproto::kSubstructureRedirectMask |
                           xproto::kSubstructureNotifyMask);

  // Shaped clients shape their decoration (§5).
  client->frame->ApplyShape();
  ApplyClientShapeToFrame(client);

  // Session icon position.
  if (session.has_value() && session->icon_position.has_value()) {
    client->icon_position = *session->icon_position;
    client->icon_position_set = true;
  } else if (client->wm_hints.flags & xproto::kIconPositionHint) {
    client->icon_position = client->wm_hints.icon_position;
    client->icon_position_set = true;
  }

  UpdateSwmRootProperty(client);
  if (died_mid_manage()) {
    return nullptr;
  }

  // Initial state: session, then WM_HINTS initial_state.
  xproto::WmState initial = xproto::WmState::kNormal;
  if (session.has_value()) {
    initial = session->state;
  } else if (client->wm_hints.flags & xproto::kStateHint) {
    initial = client->wm_hints.initial_state;
  }

  if (initial == xproto::WmState::kIconic) {
    client->state = xproto::WmState::kNormal;  // Iconify() flips it.
    Iconify(client);
  } else {
    client->state = xproto::WmState::kNormal;
    display_.MapWindow(client->frame->window());
    display_.MapWindow(window);
    xlib::SetWmState(&display_, window, xproto::WmState::kNormal, xproto::kNone);
  }
  MaybeFlushFrames();
  SendSyntheticConfigure(client);
  if (died_mid_manage()) {
    return nullptr;
  }
  if (Panner* p = panner(screen)) {
    p->Update();
  }
  if (!client->is_internal) {
    // The policy sees the fully built client last: slot policies reflow the
    // population around it (which may resize this very window).
    policy_->OnManage(client);
    if (died_mid_manage()) {
      return nullptr;
    }
  }
  return client;
}

void WindowManager::UnmanageWindow(xproto::WindowId window, bool reparent_back) {
  auto it = clients_.find(window);
  if (it == clients_.end()) {
    return;
  }
  ManagedClient* client = it->second.get();
  if (client->icon_holder != nullptr) {
    client->icon_holder->RemoveIcon(client);
    client->icon_holder = nullptr;
  }
  if (client->icon != nullptr) {
    // Give a client-supplied icon window back before its slot is destroyed.
    if (client->uses_icon_window &&
        server_->WindowExists(client->wm_hints.icon_window)) {
      display_.UnmapWindow(client->wm_hints.icon_window);
      display_.ReparentWindow(client->wm_hints.icon_window,
                              display_.RootWindow(client->screen), {0, 0});
    }
    tree_owner_.erase(client->icon.get());
    client->icon.reset();
  }
  if (client->frame != nullptr) {
    tree_owner_.erase(client->frame.get());
  }
  int screen = client->screen;
  if (reparent_back && server_->WindowExists(window)) {
    xbase::Point root_pos = server_->RootPosition(window);
    ++client->ignore_unmaps;
    display_.ReparentWindow(window, display_.RootWindow(client->screen), root_pos);
    display_.RemoveFromSaveSet(window);
    xlib::SetWmState(&display_, window, xproto::WmState::kWithdrawn, xproto::kNone);
  }
  bool was_internal = client->is_internal;
  client->frame.reset();  // Destroys the decoration tree windows.
  clients_.erase(it);
  ledger_.Forget(window);
  quarantine_pending_configure_.erase(window);
  if (Panner* p = panner(screen)) {
    p->Update();
  }
  if (!was_internal && !in_teardown_ && policy_ != nullptr) {
    // Survivors reflow into the vacated space (slot policies); the client
    // is fully gone from the tables by now.
    policy_->OnUnmanage(window, screen);
  }
}

void WindowManager::ReDecorate(ManagedClient* client) {
  if (client->frame == nullptr || client->client_panel == nullptr) {
    return;
  }
  // Preserve the on-glass position of the *client* across the rebuild.
  xbase::Point screen_pos = server_->RootPosition(client->window);
  std::optional<xbase::Rect> client_geometry = display_.GetGeometry(client->window);
  if (!client_geometry.has_value()) {
    return;
  }
  bool was_mapped = client->state == xproto::WmState::kNormal;

  tree_owner_.erase(client->frame.get());
  // Park the client on the root while the old tree is destroyed.
  ++client->ignore_unmaps;
  display_.ReparentWindow(client->window, display_.RootWindow(client->screen), screen_pos);
  client->frame.reset();

  client->decoration_name = ChooseDecoration(*client);
  client->frame = BuildFrame(client);
  tree_owner_[client->frame.get()] = client->window;

  client->client_panel->SetSizeOverride(client_geometry->size());
  if (client->name_object != nullptr &&
      client->name_object->type() == oi::ObjectType::kButton) {
    static_cast<oi::Button*>(client->name_object)->SetLabel(client->name);
  }
  // The repositioning below reads the laid-out frame geometry.
  screens_[client->screen].toolkit->FlushFrame();

  // New frame parent coordinates that keep the client at screen_pos.
  ScreenState& state = screens_[client->screen];
  xbase::Point client_offset = OffsetWithinTree(client->client_panel);
  xbase::Point parent_pos = screen_pos;
  if (!client->sticky && state.vdesk() != nullptr) {
    parent_pos = state.vdesk()->ScreenToDesktop(screen_pos);
  }
  client->frame->SetGeometry(xbase::Rect{parent_pos.x - client_offset.x,
                                         parent_pos.y - client_offset.y,
                                         client->frame->geometry().width,
                                         client->frame->geometry().height});
  ++client->ignore_unmaps;
  display_.ReparentWindow(client->window, client->client_panel->window(), {0, 0});
  uint32_t panel_mask =
      server_->SelectedInput(display_.client_id(), client->client_panel->window());
  display_.SelectInput(client->client_panel->window(),
                       panel_mask | xproto::kSubstructureRedirectMask |
                           xproto::kSubstructureNotifyMask);
  client->frame->ApplyShape();
  ApplyClientShapeToFrame(client);
  UpdateSwmRootProperty(client);
  if (was_mapped) {
    display_.MapWindow(client->frame->window());
    display_.MapWindow(client->window);
  }
  SendSyntheticConfigure(client);
  MaybeFlushFrames();
}

void WindowManager::SetSticky(ManagedClient* client, bool sticky) {
  if (client == nullptr || client->sticky == sticky) {
    return;
  }
  client->sticky = sticky;
  // The resource prefix changed ("sticky" marker), so the decoration may
  // change too — rebuild it, reparenting between root and virtual desktop.
  ReDecorate(client);
  if (Panner* p = panner(client->screen)) {
    p->Update();
  }
}

// ---- Root panels, root icons, icon holders ------------------------------------

void WindowManager::CreateRootPanels(int screen) {
  std::optional<std::string> list = ScreenResource(screen, "rootPanels");
  if (!list.has_value()) {
    return;
  }
  ScreenState& state = screens_[screen];
  for (const std::string& name : xbase::SplitWhitespace(*list)) {
    std::optional<std::string> definition = PanelDefinition(screen, name);
    if (!definition.has_value()) {
      XB_LOG(Warning) << "rootPanels: no panel definition '" << name << "'";
      continue;
    }
    // Root panels are treated like client windows: the content lives in a
    // toplevel owned by the aux (client-like) connection, so mapping it
    // goes through our own redirect and gets reparented/decorated.
    xproto::WindowId toplevel = aux_display_.CreateWindow(
        aux_display_.RootWindow(screen), xbase::Rect{0, 0, 10, 4});
    xlib::SetWmName(&aux_display_, toplevel, name);
    xlib::SetWmClass(&aux_display_, toplevel, {name, "SwmRootPanel"});

    auto lookup = [this, screen](const std::string& n) {
      return PanelDefinition(screen, n);
    };
    std::unique_ptr<oi::Panel> tree =
        state.toolkit->BuildPanelTree(name, toplevel, lookup);
    if (tree == nullptr) {
      aux_display_.DestroyWindow(toplevel);
      continue;
    }
    // Flush the freshly built (all-dirty) tree: the toplevel is sized from
    // the laid-out geometry before it maps.
    state.toolkit->FlushFrame();
    xbase::Size size = tree->geometry().size();
    aux_display_.ResizeWindow(toplevel, size);
    tree->Show();
    aux_display_.MapWindow(toplevel);  // -> MapRequest -> managed.
    state.root_panel_trees.push_back(std::move(tree));
  }
}

void WindowManager::CreateRootIcons(int screen) {
  std::optional<std::string> list = ScreenResource(screen, "rootIcons");
  if (!list.has_value()) {
    return;
  }
  ScreenState& state = screens_[screen];
  int cascade_x = 4;
  for (const std::string& name : xbase::SplitWhitespace(*list)) {
    auto lookup = [this, screen](const std::string& n) {
      return PanelDefinition(screen, n);
    };
    // Root icons are icon-appearance panels with no client; they sit
    // directly on the desktop and cannot be deiconified (paper §4.1.3).
    std::unique_ptr<oi::Panel> tree = state.toolkit->BuildPanelTree(
        name, FrameParent(screen, /*sticky=*/false), lookup);
    if (tree == nullptr) {
      XB_LOG(Warning) << "rootIcons: no panel definition '" << name << "'";
      continue;
    }
    // Root icons have no client to supply an icon pixmap: the iconimage
    // button defaults to the xlogo32 image like client icons do.
    if (oi::Object* image_obj = tree->FindDescendant("iconimage")) {
      if (image_obj->type() == oi::ObjectType::kButton &&
          !static_cast<oi::Button*>(image_obj)->has_image()) {
        static_cast<oi::Button*>(image_obj)->SetImage(xbase::XLogo32());
      }
    }
    state.toolkit->FlushFrame();
    xbase::Point pos{cascade_x, 4};
    if (std::optional<std::string> geo = ScreenResource(
            screen, {"rootIcon", name}, {"RootIcon", name}, "geometry")) {
      if (std::optional<xbase::GeometrySpec> spec = xbase::ParseGeometry(*geo)) {
        pos = {spec->x.value_or(pos.x), spec->y.value_or(pos.y)};
      }
    }
    tree->SetGeometry(xbase::Rect{pos.x, pos.y, tree->geometry().width,
                                  tree->geometry().height});
    cascade_x += tree->geometry().width + 4;
    tree->Show();
    state.toolkit->FlushFrame();
    display_.MapWindow(tree->window());
    state.root_icons.push_back(std::move(tree));
  }
}

void WindowManager::CreateIconHolders(int screen) {
  std::optional<std::string> list = ScreenResource(screen, "iconHolders");
  if (!list.has_value()) {
    return;
  }
  ScreenState& state = screens_[screen];
  for (const std::string& name : xbase::SplitWhitespace(*list)) {
    state.icon_holders.push_back(std::make_unique<IconHolder>(this, screen, name));
  }
}

}  // namespace swm
