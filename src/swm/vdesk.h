// The Virtual Desktop (paper §6): a window larger than the display that
// plays the role of the root window.  "Because the Virtual Desktop is an X
// window different from the actual root window, the size of the Virtual
// Desktop is limited only by the usable area of an X window, 32767 x 32767
// pixels."  Panning moves this window to negative offsets; sticky windows
// are children of the *real* root and therefore stay put.
#ifndef SRC_SWM_VDESK_H_
#define SRC_SWM_VDESK_H_

#include "src/xlib/display.h"
#include "src/xproto/hints.h"

namespace swm {

class VirtualDesktop {
 public:
  // Creates the desktop window as a child of the screen's root, maps and
  // lowers it, and stamps the __SWM_VROOT property so clients can discover
  // the virtual root.  `size` is clamped to the 32767 protocol limit.
  VirtualDesktop(xlib::Display* display, int screen, xbase::Size size);
  ~VirtualDesktop();

  VirtualDesktop(const VirtualDesktop&) = delete;
  VirtualDesktop& operator=(const VirtualDesktop&) = delete;

  xproto::WindowId window() const { return window_; }
  int screen() const { return screen_; }
  xbase::Size size() const { return size_; }
  xbase::Size viewport() const;  // The physical screen size.

  // Desktop coordinates of the viewport's top-left corner.
  xbase::Point offset() const { return offset_; }

  // Pans so that desktop position `target` is at the top-left of the
  // display, clamped to keep the viewport inside the desktop.  Returns true
  // if the offset changed.
  bool PanTo(xbase::Point target);
  bool PanBy(int dx, int dy) { return PanTo({offset_.x + dx, offset_.y + dy}); }

  // Resizes the desktop (the paper resizes it by resizing the panner).
  // Clamped to the viewport at minimum and 32767 at maximum.
  void Resize(xbase::Size new_size);

  xbase::Point DesktopToScreen(const xbase::Point& p) const {
    return {p.x - offset_.x, p.y - offset_.y};
  }
  xbase::Point ScreenToDesktop(const xbase::Point& p) const {
    return {p.x + offset_.x, p.y + offset_.y};
  }
  bool IsVisible(const xbase::Rect& desktop_rect) const;

 private:
  xlib::Display* display_;
  int screen_;
  xbase::Size size_;
  xbase::Point offset_{0, 0};
  xproto::WindowId window_ = xproto::kNone;
};

}  // namespace swm

#endif  // SRC_SWM_VDESK_H_
