// A minimal twm-style window manager written directly against the xlib
// layer, with a fixed, hard-coded decoration.
//
// This is the baseline for the paper's evaluation claim (§8): "swm, like
// any toolkit based window manager, has somewhat slower performance than a
// window manager written directly on top of Xlib".  It performs the same
// management operations (reparent, titlebar, move, raise/lower, iconify)
// without any object toolkit, resource lookups or bindings machinery.
#ifndef SRC_TWM_TWM_H_
#define SRC_TWM_TWM_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/xlib/display.h"
#include "src/xlib/icccm.h"

namespace twm {

struct TwmClient {
  xproto::WindowId window = xproto::kNone;
  xproto::WindowId frame = xproto::kNone;
  xproto::WindowId title = xproto::kNone;
  xproto::WindowId icon = xproto::kNone;
  int screen = 0;
  std::string name;
  bool iconic = false;
  int ignore_unmaps = 0;
};

class Twm {
 public:
  explicit Twm(xserver::Server* server);
  ~Twm();

  Twm(const Twm&) = delete;
  Twm& operator=(const Twm&) = delete;

  bool Start();
  void ProcessEvents();

  size_t ClientCount() const { return clients_.size(); }
  TwmClient* FindClient(xproto::WindowId window);
  xlib::Display& display() { return display_; }

  TwmClient* ManageWindow(xproto::WindowId window, int screen);
  void UnmanageWindow(xproto::WindowId window, bool reparent_back);
  void MoveClient(TwmClient* client, const xbase::Point& pos);
  void ResizeClient(TwmClient* client, const xbase::Size& size);
  void RaiseClient(TwmClient* client);
  void LowerClient(TwmClient* client);
  void Iconify(TwmClient* client);
  void Deiconify(TwmClient* client);

  static constexpr int kTitleHeight = 3;
  static constexpr int kBorder = 1;

 private:
  void HandleEvent(const xproto::Event& event);
  void DrawDecoration(TwmClient* client);

  xserver::Server* server_;
  xlib::Display display_;
  std::map<xproto::WindowId, std::unique_ptr<TwmClient>> clients_;
  std::map<xproto::WindowId, xproto::WindowId> frame_to_client_;
  bool started_ = false;
};

}  // namespace twm

#endif  // SRC_TWM_TWM_H_
