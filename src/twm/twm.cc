#include "src/twm/twm.h"

#include "src/base/logging.h"

namespace twm {

Twm::Twm(xserver::Server* server) : server_(server), display_(server, "localhost") {}

Twm::~Twm() {
  std::vector<xproto::WindowId> windows;
  for (const auto& [window, client] : clients_) {
    windows.push_back(window);
  }
  for (xproto::WindowId window : windows) {
    UnmanageWindow(window, server_->WindowExists(window));
  }
}

bool Twm::Start() {
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    uint32_t mask = xproto::kSubstructureRedirectMask | xproto::kSubstructureNotifyMask |
                    xproto::kButtonPressMask;
    if (!display_.SelectInput(display_.RootWindow(screen), mask)) {
      return false;
    }
  }
  started_ = true;
  // Manage pre-existing windows.
  for (int screen = 0; screen < display_.ScreenCount(); ++screen) {
    std::optional<xserver::QueryTreeReply> tree =
        display_.QueryTree(display_.RootWindow(screen));
    if (!tree.has_value()) {
      continue;
    }
    for (xproto::WindowId child : tree->children) {
      std::optional<xserver::WindowAttributes> attrs = display_.GetWindowAttributes(child);
      if (attrs.has_value() && !attrs->override_redirect &&
          attrs->map_state == xproto::MapState::kViewable) {
        ManageWindow(child, screen);
      }
    }
  }
  ProcessEvents();
  return true;
}

TwmClient* Twm::FindClient(xproto::WindowId window) {
  auto it = clients_.find(window);
  if (it != clients_.end()) {
    return it->second.get();
  }
  auto frame_it = frame_to_client_.find(window);
  if (frame_it != frame_to_client_.end()) {
    return FindClient(frame_it->second);
  }
  return nullptr;
}

TwmClient* Twm::ManageWindow(xproto::WindowId window, int screen) {
  if (FindClient(window) != nullptr) {
    return FindClient(window);
  }
  std::optional<xbase::Rect> geometry = display_.GetGeometry(window);
  std::optional<xserver::WindowAttributes> attrs = display_.GetWindowAttributes(window);
  if (!geometry.has_value() || !attrs.has_value() || attrs->override_redirect) {
    return nullptr;
  }
  auto owned = std::make_unique<TwmClient>();
  TwmClient* client = owned.get();
  client->window = window;
  client->screen = screen;
  client->name = xlib::GetWmName(&display_, window).value_or("");

  xbase::Rect frame_rect{geometry->x, geometry->y, geometry->width + 2 * kBorder,
                         geometry->height + kTitleHeight + 2 * kBorder};
  client->frame = display_.CreateWindow(display_.RootWindow(screen), frame_rect);
  display_.SetWindowBackground(client->frame, '#');
  client->title = display_.CreateWindow(
      client->frame, xbase::Rect{kBorder, kBorder, geometry->width, kTitleHeight});
  display_.SelectInput(client->title,
                       xproto::kButtonPressMask | xproto::kButtonReleaseMask |
                           xproto::kExposureMask);

  if (attrs->map_state == xproto::MapState::kViewable) {
    ++client->ignore_unmaps;
  }
  display_.ReparentWindow(window, client->frame,
                          {kBorder, kBorder + kTitleHeight});
  display_.AddToSaveSet(window);
  display_.SelectInput(window, xproto::kStructureNotifyMask);
  // Keep redirecting the client's own configure/map requests now that it is
  // parented on the frame rather than the root.
  display_.SelectInput(client->frame, xproto::kSubstructureRedirectMask |
                                          xproto::kSubstructureNotifyMask);

  frame_to_client_[client->frame] = window;
  frame_to_client_[client->title] = window;
  clients_[window] = std::move(owned);

  DrawDecoration(client);
  display_.MapWindow(client->title);
  display_.MapWindow(client->frame);
  display_.MapWindow(window);
  xlib::SetWmState(&display_, window, xproto::WmState::kNormal, xproto::kNone);
  return client;
}

void Twm::UnmanageWindow(xproto::WindowId window, bool reparent_back) {
  auto it = clients_.find(window);
  if (it == clients_.end()) {
    return;
  }
  TwmClient* client = it->second.get();
  if (reparent_back && server_->WindowExists(window)) {
    xbase::Point root_pos = server_->RootPosition(window);
    ++client->ignore_unmaps;
    display_.ReparentWindow(window, display_.RootWindow(client->screen), root_pos);
    display_.RemoveFromSaveSet(window);
  }
  frame_to_client_.erase(client->frame);
  frame_to_client_.erase(client->title);
  if (server_->WindowExists(client->frame)) {
    display_.DestroyWindow(client->frame);
  }
  if (client->icon != xproto::kNone && server_->WindowExists(client->icon)) {
    display_.DestroyWindow(client->icon);
  }
  clients_.erase(it);
}

void Twm::DrawDecoration(TwmClient* client) {
  display_.ClearWindow(client->title);
  std::optional<xbase::Rect> title_rect = display_.GetGeometry(client->title);
  if (!title_rect.has_value()) {
    return;
  }
  xserver::DrawOp border;
  border.kind = xserver::DrawOp::Kind::kBorder;
  border.rect = xbase::Rect{0, 0, title_rect->width, title_rect->height};
  display_.Draw(client->title, border);
  xserver::DrawOp text;
  text.kind = xserver::DrawOp::Kind::kTextCentered;
  text.rect = xbase::Rect{0, title_rect->height / 2, title_rect->width, 1};
  text.text = client->name;
  display_.Draw(client->title, text);
}

void Twm::MoveClient(TwmClient* client, const xbase::Point& pos) {
  display_.MoveWindow(client->frame, pos);
  std::optional<xbase::Rect> geometry = display_.GetGeometry(client->window);
  if (geometry.has_value()) {
    xlib::SendSyntheticConfigureNotify(
        &display_, client->window,
        xbase::Rect{pos.x + kBorder, pos.y + kBorder + kTitleHeight, geometry->width,
                    geometry->height});
  }
}

void Twm::ResizeClient(TwmClient* client, const xbase::Size& size) {
  display_.ResizeWindow(client->window, size);
  display_.ResizeWindow(client->title, {size.width, kTitleHeight});
  std::optional<xbase::Rect> frame = display_.GetGeometry(client->frame);
  if (frame.has_value()) {
    display_.ResizeWindow(client->frame, {size.width + 2 * kBorder,
                                          size.height + kTitleHeight + 2 * kBorder});
  }
  DrawDecoration(client);
}

void Twm::RaiseClient(TwmClient* client) { display_.RaiseWindow(client->frame); }
void Twm::LowerClient(TwmClient* client) { display_.LowerWindow(client->frame); }

void Twm::Iconify(TwmClient* client) {
  if (client->iconic) {
    return;
  }
  if (client->icon == xproto::kNone) {
    client->icon = display_.CreateWindow(display_.RootWindow(client->screen),
                                         xbase::Rect{4, 4, 10, 3});
    display_.SetWindowBackground(client->icon, 'i');
    xserver::DrawOp text;
    text.kind = xserver::DrawOp::Kind::kTextCentered;
    text.rect = xbase::Rect{0, 1, 10, 1};
    text.text = client->name.substr(0, 8);
    display_.Draw(client->icon, text);
  }
  display_.UnmapWindow(client->frame);
  ++client->ignore_unmaps;
  display_.UnmapWindow(client->window);
  display_.MapWindow(client->icon);
  client->iconic = true;
  xlib::SetWmState(&display_, client->window, xproto::WmState::kIconic, client->icon);
}

void Twm::Deiconify(TwmClient* client) {
  if (!client->iconic) {
    return;
  }
  display_.UnmapWindow(client->icon);
  display_.MapWindow(client->frame);
  display_.MapWindow(client->window);
  client->iconic = false;
  xlib::SetWmState(&display_, client->window, xproto::WmState::kNormal, xproto::kNone);
}

void Twm::ProcessEvents() {
  while (std::optional<xproto::Event> event = display_.NextEvent()) {
    HandleEvent(*event);
  }
}

void Twm::HandleEvent(const xproto::Event& event) {
  if (const auto* map_request = std::get_if<xproto::MapRequestEvent>(&event)) {
    TwmClient* existing = FindClient(map_request->window);
    if (existing != nullptr) {
      if (existing->iconic) {
        Deiconify(existing);
      } else {
        display_.MapWindow(map_request->window);
      }
      return;
    }
    ManageWindow(map_request->window, server_->ScreenOfWindow(map_request->parent));
    return;
  }
  if (const auto* configure = std::get_if<xproto::ConfigureRequestEvent>(&event)) {
    TwmClient* client = FindClient(configure->window);
    if (client == nullptr) {
      xserver::ConfigureValues values;
      values.geometry = configure->geometry;
      display_.ConfigureWindow(configure->window, configure->value_mask, values);
      return;
    }
    if (configure->value_mask & (xproto::kConfigWidth | xproto::kConfigHeight)) {
      std::optional<xbase::Rect> current = display_.GetGeometry(configure->window);
      xbase::Size size = current.has_value() ? current->size() : xbase::Size{1, 1};
      if (configure->value_mask & xproto::kConfigWidth) {
        size.width = configure->geometry.width;
      }
      if (configure->value_mask & xproto::kConfigHeight) {
        size.height = configure->geometry.height;
      }
      ResizeClient(client, size);
    }
    if (configure->value_mask & (xproto::kConfigX | xproto::kConfigY)) {
      std::optional<xbase::Rect> frame = display_.GetGeometry(client->frame);
      xbase::Point pos = frame.has_value() ? frame->origin() : xbase::Point{};
      if (configure->value_mask & xproto::kConfigX) {
        pos.x = configure->geometry.x;
      }
      if (configure->value_mask & xproto::kConfigY) {
        pos.y = configure->geometry.y;
      }
      MoveClient(client, pos);
    }
    return;
  }
  if (const auto* unmap = std::get_if<xproto::UnmapNotifyEvent>(&event)) {
    TwmClient* client = FindClient(unmap->window);
    if (client != nullptr && unmap->event_window == unmap->window) {
      if (client->ignore_unmaps > 0) {
        --client->ignore_unmaps;
      } else {
        UnmanageWindow(unmap->window, /*reparent_back=*/true);
      }
    }
    return;
  }
  if (const auto* destroy = std::get_if<xproto::DestroyNotifyEvent>(&event)) {
    if (FindClient(destroy->window) != nullptr &&
        clients_.count(destroy->window) != 0) {
      UnmanageWindow(destroy->window, /*reparent_back=*/false);
    }
    return;
  }
  if (const auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
    // Fixed policy: button 1 on the title raises, button 2 lowers,
    // button 3 iconifies.  (This is exactly the configurability gap the
    // paper holds against twm.)
    TwmClient* client = FindClient(button->window);
    if (client != nullptr && button->press) {
      if (button->button == 1) {
        RaiseClient(client);
      } else if (button->button == 2) {
        LowerClient(client);
      } else if (button->button == 3) {
        Iconify(client);
      }
    }
    return;
  }
}

}  // namespace twm
