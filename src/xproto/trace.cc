#include "src/xproto/trace.h"

#include <cstring>
#include <fstream>

namespace xproto {

namespace {

// One record on disk: [type u8][pad u8][payload length u32][payload].
void PutRecord(const TraceRecord& rec, WireWriter* w) {
  WireWriter payload;
  switch (rec.type) {
    case TraceRecordType::kConnect:
      payload.U32(rec.client);
      payload.U16(static_cast<uint16_t>(rec.machine.size()));
      payload.String(rec.machine);
      break;
    case TraceRecordType::kDisconnect:
      payload.U32(rec.client);
      break;
    case TraceRecordType::kRequest:
    case TraceRecordType::kReply:
      payload.U32(rec.client);
      payload.Bytes(rec.bytes);
      break;
    case TraceRecordType::kMotion:
      payload.I32(rec.x);
      payload.I32(rec.y);
      break;
    case TraceRecordType::kButton:
      payload.U8(static_cast<uint8_t>(rec.button));
      payload.U8(rec.press ? 1 : 0);
      payload.U16(0);
      payload.U32(rec.modifiers);
      break;
    case TraceRecordType::kKey:
      payload.U32(rec.keysym);
      payload.U8(rec.press ? 1 : 0);
      payload.U8(0);
      payload.U16(0);
      payload.U32(rec.modifiers);
      break;
    case TraceRecordType::kWarp:
      payload.I32(rec.screen);
      payload.I32(rec.x);
      payload.I32(rec.y);
      break;
    case TraceRecordType::kPump:
      break;
    case TraceRecordType::kExpect:
      payload.U64(rec.expect_requests);
      payload.U64(rec.expect_draw_ops);
      payload.U64(rec.expect_pixels);
      break;
  }
  w->U8(static_cast<uint8_t>(rec.type));
  w->U8(0);
  w->U32(static_cast<uint32_t>(payload.bytes().size()));
  w->Bytes(payload.span());
}

}  // namespace

std::vector<uint8_t> SerializeTrace(const Trace& trace) {
  WireWriter w;
  w.Bytes(std::span<const uint8_t>(kTraceMagic, 4));
  w.U32(kTraceVersion);
  for (const TraceRecord& rec : trace.records) {
    PutRecord(rec, &w);
  }
  return w.Take();
}

std::optional<Trace> ParseTrace(std::span<const uint8_t> bytes, ParseError* error) {
  auto fail = [&](ParseErrorCode code, size_t offset,
                  const std::string& detail) -> std::optional<Trace> {
    error->code = code;
    error->offset = offset;
    error->opcode = 0;
    error->detail = detail;
    return std::nullopt;
  };

  WireReader r(bytes);
  std::span<const uint8_t> magic = r.Bytes(4);
  uint32_t version = r.U32();
  if (!r.ok() || std::memcmp(magic.data(), kTraceMagic, 4) != 0) {
    return fail(ParseErrorCode::kBadOpcode, 0, "missing SWMT magic");
  }
  if (version < kMinTraceVersion || version > kTraceVersion) {
    return fail(ParseErrorCode::kBadValue, 4, "unsupported trace version");
  }

  Trace trace;
  while (r.remaining() > 0) {
    size_t record_offset = r.offset();
    uint8_t type = r.U8();
    r.Skip(1);
    uint32_t payload_len = r.U32();
    if (!r.ok()) {
      return fail(ParseErrorCode::kTruncated, record_offset, "record header short");
    }
    if (payload_len > kMaxTraceRecordBytes) {
      return fail(ParseErrorCode::kOversized, record_offset, "record payload over cap");
    }
    if (payload_len > r.remaining()) {
      return fail(ParseErrorCode::kTruncated, record_offset, "record payload short");
    }
    WireReader p(r.Bytes(payload_len));

    TraceRecord rec;
    rec.type = static_cast<TraceRecordType>(type);
    switch (rec.type) {
      case TraceRecordType::kConnect: {
        rec.client = p.U32();
        uint16_t len = p.U16();
        if (p.ok() && len > p.remaining()) {
          return fail(ParseErrorCode::kBadLength, record_offset,
                      "machine name overruns record");
        }
        rec.machine = p.String(len);
        break;
      }
      case TraceRecordType::kDisconnect:
        rec.client = p.U32();
        break;
      case TraceRecordType::kRequest:
      case TraceRecordType::kReply: {
        rec.client = p.U32();
        std::span<const uint8_t> body = p.Bytes(p.remaining());
        rec.bytes.assign(body.begin(), body.end());
        break;
      }
      case TraceRecordType::kMotion:
        rec.x = p.I32();
        rec.y = p.I32();
        break;
      case TraceRecordType::kButton:
        rec.button = p.U8();
        rec.press = p.U8() != 0;
        p.Skip(2);
        rec.modifiers = p.U32();
        break;
      case TraceRecordType::kKey:
        rec.keysym = p.U32();
        rec.press = p.U8() != 0;
        p.Skip(3);
        rec.modifiers = p.U32();
        break;
      case TraceRecordType::kWarp:
        rec.screen = p.I32();
        rec.x = p.I32();
        rec.y = p.I32();
        break;
      case TraceRecordType::kPump:
        break;
      case TraceRecordType::kExpect:
        rec.expect_requests = p.U64();
        rec.expect_draw_ops = p.U64();
        rec.expect_pixels = p.U64();
        break;
      default:
        return fail(ParseErrorCode::kBadOpcode, record_offset, "unknown record type");
    }
    if (!p.ok()) {
      return fail(ParseErrorCode::kTruncated, record_offset, "record body short");
    }
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

bool WriteTraceFile(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  std::vector<uint8_t> bytes = SerializeTrace(trace);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Trace> ReadTraceFile(const std::string& path, ParseError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error->code = ParseErrorCode::kTruncated;
    error->detail = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return ParseTrace(bytes, error);
}

// ---- TraceRecorder ----------------------------------------------------------

void TraceRecorder::RecordConnect(ClientId client, const std::string& machine) {
  TraceRecord rec;
  rec.type = TraceRecordType::kConnect;
  rec.client = client;
  rec.machine = machine;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordDisconnect(ClientId client) {
  TraceRecord rec;
  rec.type = TraceRecordType::kDisconnect;
  rec.client = client;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordRequestBytes(ClientId client, std::span<const uint8_t> bytes) {
  TraceRecord rec;
  rec.type = TraceRecordType::kRequest;
  rec.client = client;
  rec.bytes.assign(bytes.begin(), bytes.end());
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordReplyBytes(ClientId client, std::span<const uint8_t> bytes) {
  TraceRecord rec;
  rec.type = TraceRecordType::kReply;
  rec.client = client;
  rec.bytes.assign(bytes.begin(), bytes.end());
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordMotion(int x, int y) {
  TraceRecord rec;
  rec.type = TraceRecordType::kMotion;
  rec.x = x;
  rec.y = y;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordButton(int button, bool press, uint32_t modifiers) {
  TraceRecord rec;
  rec.type = TraceRecordType::kButton;
  rec.button = button;
  rec.press = press;
  rec.modifiers = modifiers;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordKey(KeySym keysym, bool press, uint32_t modifiers) {
  TraceRecord rec;
  rec.type = TraceRecordType::kKey;
  rec.keysym = keysym;
  rec.press = press;
  rec.modifiers = modifiers;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordWarp(int screen, int x, int y) {
  TraceRecord rec;
  rec.type = TraceRecordType::kWarp;
  rec.screen = screen;
  rec.x = x;
  rec.y = y;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordPump() {
  TraceRecord rec;
  rec.type = TraceRecordType::kPump;
  trace_.records.push_back(std::move(rec));
}

void TraceRecorder::RecordExpect(uint64_t requests, uint64_t draw_ops, uint64_t pixels) {
  TraceRecord rec;
  rec.type = TraceRecordType::kExpect;
  rec.expect_requests = requests;
  rec.expect_draw_ops = draw_ops;
  rec.expect_pixels = pixels;
  trace_.records.push_back(std::move(rec));
}

}  // namespace xproto
