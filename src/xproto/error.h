// X protocol error model.  Requests against dead or invalid resources
// generate an XError on the issuing client's connection instead of silently
// failing — the classic window-manager hazard (a client destroys its window
// while the WM is mid-decoration) surfaces here as a BadWindow.
#ifndef SRC_XPROTO_ERROR_H_
#define SRC_XPROTO_ERROR_H_

#include <cstdint>
#include <string>

namespace xproto {

// Error codes (subset of the X11 core set a window manager encounters).
enum class ErrorCode : uint8_t {
  kBadWindow,          // Request named a window that does not exist.
  kBadMatch,           // Request parameters violate a structural constraint.
  kBadValue,           // A numeric argument is out of range.
  kBadAtom,            // Request named an invalid atom.
  kBadAccess,          // Another client already holds an exclusive selection/grab.
  kBadImplementation,  // Server-side injected failure (fault harness).
  kBadRequest,         // Wire frame named an opcode outside the implemented subset.
  kBadLength,          // Wire frame length field inconsistent with its payload.
};

// The request that produced an error (the major opcode on the wire).
enum class RequestCode : uint8_t {
  kNone,
  kCreateWindow,
  kDestroyWindow,
  kMapWindow,
  kUnmapWindow,
  kReparentWindow,
  kConfigureWindow,
  kSelectInput,
  kChangeSaveSet,
  kChangeProperty,
  kDeleteProperty,
  kSendEvent,
  kSetInputFocus,
  kGrabButton,
  kUngrabButton,
  kShapeOp,
  kSetWindowBackground,
  kSetCursor,
  kClearWindow,
  kDraw,
  // Reply-bearing queries (docs/PROTOCOL.md "Replies").  Appended so the
  // values of the codes above stay stable on the wire.
  kGetWindowAttributes,
  kGetGeometry,
  kQueryTree,
  kInternAtom,
  kGetAtomName,
  kGetProperty,
  kTranslateCoordinates,
  // Out-of-process connection-setup queries (docs/PROTOCOL.md
  // "Out-of-process operation").  Appended, same stability rule as above.
  kQueryScreens,
  kQueryClientWindows,
};

// Highest RequestCode value (wire decoders validate against this bound).
inline constexpr uint8_t kMaxRequestCode =
    static_cast<uint8_t>(RequestCode::kQueryClientWindows);

// One error report, delivered to the issuing client's error handler.  The
// sequence number is per-connection and counts requests, so a handler can
// correlate an error with the request that caused it.
struct XError {
  ErrorCode code = ErrorCode::kBadImplementation;
  RequestCode request = RequestCode::kNone;
  uint32_t resource_id = 0;  // Offending window/atom id, 0 if not applicable.
  uint64_t sequence = 0;     // Issuing client's request sequence number.
};

std::string ErrorCodeName(ErrorCode code);
std::string RequestCodeName(RequestCode code);
// "BadWindow on ReparentWindow (resource 42, seq 1207)" — for logs.
std::string ErrorText(const XError& error);

}  // namespace xproto

#endif  // SRC_XPROTO_ERROR_H_
