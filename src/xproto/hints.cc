#include "src/xproto/hints.h"

#include <algorithm>

namespace xproto {

xbase::Size SizeHints::Constrain(xbase::Size requested) const {
  xbase::Size out = requested;
  if (flags & kPMinSize) {
    out.width = std::max(out.width, min_width);
    out.height = std::max(out.height, min_height);
  }
  if (flags & kPMaxSize) {
    out.width = std::min(out.width, max_width);
    out.height = std::min(out.height, max_height);
  }
  // The `> 0` guards are load-bearing: the sanitizing decoder resets
  // non-positive increments, but hints can also be constructed in-process,
  // and a zero increment here is a divide-by-zero.
  if ((flags & kPResizeInc) && width_inc > 0 && height_inc > 0) {
    int base_w = (flags & kPMinSize) ? min_width : 0;
    int base_h = (flags & kPMinSize) ? min_height : 0;
    out.width = base_w + ((out.width - base_w) / width_inc) * width_inc;
    out.height = base_h + ((out.height - base_h) / height_inc) * height_inc;
  }
  out.width = std::clamp(out.width, 1, kMaxCoordinate);
  out.height = std::clamp(out.height, 1, kMaxCoordinate);
  return out;
}

}  // namespace xproto
