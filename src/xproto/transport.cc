#include "src/xproto/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <stddef.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/logging.h"

namespace xproto {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// A channel over one read fd and one write fd (equal for a socketpair end,
// distinct for a pipe-pair end).  Owns and closes both.
class FdChannel : public ByteChannel {
 public:
  FdChannel(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {}
  ~FdChannel() override { Close(); }

  IoStatus Write(std::span<const uint8_t> data, size_t* written) override {
    *written = 0;
    if (write_fd_ < 0) {
      return IoStatus::kClosed;
    }
    if (data.empty()) {
      return IoStatus::kOk;
    }
    for (;;) {
      // Writes to a closed peer must surface as EPIPE, not SIGPIPE; the
      // first MakeSocketPair/MakePipePair call ignores SIGPIPE process-wide.
      ssize_t n = ::write(write_fd_, data.data(), data.size());
      if (n >= 0) {
        *written = static_cast<size_t>(n);
        return IoStatus::kOk;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoStatus::kWouldBlock;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return IoStatus::kClosed;
      }
      return IoStatus::kError;
    }
  }

  IoStatus Read(uint8_t* buf, size_t cap, size_t* bytes_read) override {
    *bytes_read = 0;
    if (read_fd_ < 0) {
      return IoStatus::kClosed;
    }
    if (cap == 0) {
      return IoStatus::kOk;
    }
    for (;;) {
      ssize_t n = ::read(read_fd_, buf, cap);
      if (n > 0) {
        *bytes_read = static_cast<size_t>(n);
        return IoStatus::kOk;
      }
      if (n == 0) {
        return IoStatus::kClosed;  // EOF: peer closed.
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoStatus::kWouldBlock;
      }
      if (errno == ECONNRESET) {
        return IoStatus::kClosed;
      }
      return IoStatus::kError;
    }
  }

  void Close() override {
    if (read_fd_ >= 0 && read_fd_ != write_fd_) {
      ::close(read_fd_);
    }
    if (write_fd_ >= 0) {
      ::close(write_fd_);
    }
    read_fd_ = -1;
    write_fd_ = -1;
  }

  bool IsOpen() const override { return read_fd_ >= 0 || write_fd_ >= 0; }

  int ReadFd() const override { return read_fd_; }
  int WriteFd() const override { return write_fd_; }

 private:
  int read_fd_;
  int write_fd_;
};

void IgnoreSigpipeOnce() {
  // A peer that dies mid-write must surface as EPIPE on the channel, not as
  // a process-killing SIGPIPE.
  static const bool ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

}  // namespace

ChannelPair MakeSocketPair(size_t buffer_bytes) {
  IgnoreSigpipeOnce();
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    XB_LOG(Warning) << "socketpair failed: " << std::strerror(errno);
    return {};
  }
  for (int fd : fds) {
    if (!SetNonBlocking(fd)) {
      XB_LOG(Warning) << "fcntl(O_NONBLOCK) failed: " << std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      return {};
    }
    if (buffer_bytes > 0) {
      int sz = static_cast<int>(buffer_bytes);
      // Best effort: the kernel clamps to its floor, which is fine — the
      // point is a small, bounded in-flight window.
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
    }
  }
  ChannelPair pair;
  pair.client = std::make_unique<FdChannel>(fds[0], fds[0]);
  pair.server = std::make_unique<FdChannel>(fds[1], fds[1]);
  return pair;
}

ChannelPair MakePipePair() {
  IgnoreSigpipeOnce();
  int a_to_b[2];  // a writes, b reads.
  int b_to_a[2];  // b writes, a reads.
  if (::pipe(a_to_b) != 0) {
    XB_LOG(Warning) << "pipe failed: " << std::strerror(errno);
    return {};
  }
  if (::pipe(b_to_a) != 0) {
    XB_LOG(Warning) << "pipe failed: " << std::strerror(errno);
    ::close(a_to_b[0]);
    ::close(a_to_b[1]);
    return {};
  }
  int fds[4] = {a_to_b[0], a_to_b[1], b_to_a[0], b_to_a[1]};
  for (int fd : fds) {
    if (!SetNonBlocking(fd)) {
      XB_LOG(Warning) << "fcntl(O_NONBLOCK) failed: " << std::strerror(errno);
      for (int f : fds) {
        ::close(f);
      }
      return {};
    }
  }
  ChannelPair pair;
  pair.client = std::make_unique<FdChannel>(/*read_fd=*/b_to_a[0], /*write_fd=*/a_to_b[1]);
  pair.server = std::make_unique<FdChannel>(/*read_fd=*/a_to_b[0], /*write_fd=*/b_to_a[1]);
  return pair;
}

// ---- Listening sockets ------------------------------------------------------

namespace {

// Fills sockaddr_un for `path`, honouring the '@' abstract-namespace
// convention.  Returns the addrlen to pass to bind/connect, or 0 when the
// path does not fit.
socklen_t FillSockaddr(const std::string& path, struct sockaddr_un* addr,
                       bool* is_abstract) {
  *addr = {};
  addr->sun_family = AF_UNIX;
  *is_abstract = !path.empty() && path[0] == '@';
  if (path.size() >= sizeof(addr->sun_path)) {
    XB_LOG(Warning) << "unix socket path too long: " << path;
    return 0;
  }
  if (*is_abstract) {
    // Abstract namespace: sun_path[0] == '\0', name follows, length counts
    // the name bytes (no trailing NUL).
    addr->sun_path[0] = '\0';
    std::memcpy(addr->sun_path + 1, path.data() + 1, path.size() - 1);
    return static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) + path.size());
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) + path.size() + 1);
}

}  // namespace

Listener::Listener(const std::string& path, int backlog) : path_(path) {
  IgnoreSigpipeOnce();
  struct sockaddr_un addr;
  bool is_abstract = false;
  socklen_t addrlen = FillSockaddr(path, &addr, &is_abstract);
  if (addrlen == 0) {
    return;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    XB_LOG(Warning) << "listener: socket failed: " << std::strerror(errno);
    return;
  }
  if (!is_abstract) {
    // A predecessor that crashed leaves its socket inode behind; bind would
    // fail with EADDRINUSE forever.  Unlinking is safe: we own this path.
    ::unlink(path.c_str());
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), addrlen) != 0) {
    XB_LOG(Warning) << "listener: bind(" << path << ") failed: " << std::strerror(errno);
    ::close(fd);
    return;
  }
  if (::listen(fd, backlog) != 0) {
    XB_LOG(Warning) << "listener: listen(" << path << ") failed: " << std::strerror(errno);
    ::close(fd);
    if (!is_abstract) {
      ::unlink(path.c_str());
    }
    return;
  }
  fd_ = fd;
  unlink_on_close_ = !is_abstract;
}

Listener::~Listener() { Close(); }

std::unique_ptr<ByteChannel> Listener::Accept() {
  if (fd_ < 0) {
    return nullptr;
  }
  int client;
  do {
    client = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  } while (client < 0 && errno == EINTR);
  if (client < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ECONNABORTED) {
      XB_LOG(Warning) << "listener: accept failed: " << std::strerror(errno);
    }
    return nullptr;
  }
  return std::make_unique<FdChannel>(client, client);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(path_.c_str());
    unlink_on_close_ = false;
  }
}

std::unique_ptr<ByteChannel> ConnectSocket(const std::string& path) {
  IgnoreSigpipeOnce();
  struct sockaddr_un addr;
  bool is_abstract = false;
  socklen_t addrlen = FillSockaddr(path, &addr, &is_abstract);
  if (addrlen == 0) {
    return nullptr;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    XB_LOG(Warning) << "connect: socket failed: " << std::strerror(errno);
    return nullptr;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), addrlen);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    XB_LOG(Warning) << "connect(" << path << ") failed: " << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  // Connect blocking (the accept queue hands out connections immediately),
  // then switch to non-blocking for the framed channel discipline.
  if (!SetNonBlocking(fd)) {
    XB_LOG(Warning) << "connect: fcntl(O_NONBLOCK) failed: " << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<FdChannel>(fd, fd);
}

// ---- Frame reassembly -------------------------------------------------------

std::optional<size_t> FrameBytesAtHead(FrameStream stream, std::span<const uint8_t> head) {
  if (stream == FrameStream::kRequests) {
    if (head.size() < 4) {
      return std::nullopt;
    }
    size_t frame =
        (static_cast<size_t>(head[2]) | static_cast<size_t>(head[3]) << 8) * 4;
    // A lying length field (too small or over the cap) is surrendered as a
    // header-sized pseudo-frame so the request decoder rejects it; waiting
    // for bytes that can never validly arrive would hang the stream.
    if (frame < 4 || frame > kMaxRequestBytes) {
      return 4;
    }
    return frame;
  }
  // Server→client: errors (0) and events (>= 2) are fixed 32-byte frames;
  // replies (1) carry a u32 extra-length at offset 4.
  if (head.empty()) {
    return std::nullopt;
  }
  if (head[0] != 1) {
    return kEventWireBytes;
  }
  if (head.size() < 8) {
    return std::nullopt;
  }
  uint32_t extra = 0;
  for (int i = 3; i >= 0; --i) {
    extra = extra << 8 | head[4 + static_cast<size_t>(i)];
  }
  if (extra > (kMaxReplyBytes - kMinReplyBytes) / 4) {
    return 8;  // Oversized lie: surrender the header for DecodeReply to reject.
  }
  return kMinReplyBytes + static_cast<size_t>(extra) * 4;
}

FrameReassembler::FrameReassembler(FrameStream stream, size_t buffer_cap)
    : stream_(stream), buffer_cap_(buffer_cap) {}

std::optional<size_t> FrameReassembler::HeadFrameBytes() const {
  std::span<const uint8_t> head(buffer_.data() + consumed_, buffer_.size() - consumed_);
  std::optional<size_t> frame = FrameBytesAtHead(stream_, head);
  if (!frame.has_value() || *frame > head.size()) {
    return std::nullopt;
  }
  return frame;
}

void FrameReassembler::Compact() {
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

bool FrameReassembler::Feed(std::span<const uint8_t> bytes) {
  if (overflowed_) {
    return false;
  }
  Compact();
  if (buffer_.size() + bytes.size() > buffer_cap_) {
    // Only an overflow if the bytes cannot drain: a buffer full of complete
    // frames is the caller's to take, a partial frame this big is hostile.
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    size_t scan = 0;
    while (scan < buffer_.size()) {
      std::optional<size_t> frame = FrameBytesAtHead(
          stream_, std::span<const uint8_t>(buffer_.data() + scan, buffer_.size() - scan));
      if (!frame.has_value() || scan + *frame > buffer_.size()) {
        break;
      }
      scan += *frame;
    }
    if (buffer_.size() - scan > buffer_cap_) {
      overflowed_ = true;
      return false;
    }
    return true;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  return true;
}

std::optional<std::vector<uint8_t>> FrameReassembler::NextFrame() {
  std::optional<size_t> frame = HeadFrameBytes();
  if (!frame.has_value()) {
    return std::nullopt;
  }
  std::vector<uint8_t> out(buffer_.begin() + static_cast<ptrdiff_t>(consumed_),
                           buffer_.begin() + static_cast<ptrdiff_t>(consumed_ + *frame));
  consumed_ += *frame;
  ++frames_assembled_;
  return out;
}

std::vector<uint8_t> FrameReassembler::TakeFrames() {
  size_t start = consumed_;
  while (HeadFrameBytes().has_value()) {
    consumed_ += *HeadFrameBytes();
    ++frames_assembled_;
  }
  std::vector<uint8_t> out(buffer_.begin() + static_cast<ptrdiff_t>(start),
                           buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
  Compact();
  return out;
}

// ---- Client endpoint --------------------------------------------------------

WireClientEndpoint::WireClientEndpoint(std::unique_ptr<ByteChannel> channel)
    : channel_(std::move(channel)) {}

void WireClientEndpoint::QueueRequest(const Request& request) {
  std::vector<uint8_t> bytes = EncodeRequestBytes(request);
  QueueBytes(bytes);
}

void WireClientEndpoint::QueueBytes(std::span<const uint8_t> bytes) {
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
}

IoStatus WireClientEndpoint::Flush() {
  if (!channel_) {
    return IoStatus::kClosed;
  }
  while (outbox_sent_ < outbox_.size()) {
    size_t written = 0;
    IoStatus status = channel_->Write(
        std::span<const uint8_t>(outbox_.data() + outbox_sent_, outbox_.size() - outbox_sent_),
        &written);
    outbox_sent_ += written;
    if (status != IoStatus::kOk || written == 0) {
      return status;
    }
  }
  outbox_.clear();
  outbox_sent_ = 0;
  return IoStatus::kOk;
}

IoStatus WireClientEndpoint::Poll() {
  if (!channel_) {
    return IoStatus::kClosed;
  }
  uint8_t buf[4096];
  IoStatus last = IoStatus::kWouldBlock;
  for (;;) {
    size_t n = 0;
    IoStatus status = channel_->Read(buf, sizeof(buf), &n);
    if (n > 0) {
      inbound_.Feed(std::span<const uint8_t>(buf, n));
      last = IoStatus::kOk;
    }
    if (status != IoStatus::kOk || n == 0) {
      if (status == IoStatus::kClosed && channel_ != nullptr) {
        // EOF is terminal: latch it so open() reports the truth instead of
        // letting callers retry a dead socket forever.  Frames already
        // reassembled stay extractable via NextFrame.
        channel_->Close();
      }
      return status == IoStatus::kOk ? last : status;
    }
  }
}

std::optional<std::vector<uint8_t>> WireClientEndpoint::NextFrame() {
  return inbound_.NextFrame();
}

bool WireClientEndpoint::NextReply(Reply* out, ParseError* error, uint16_t* sequence) {
  Poll();
  while (std::optional<std::vector<uint8_t>> frame = inbound_.NextFrame()) {
    if (!frame->empty() && (*frame)[0] == 1) {
      return DecodeReply(*frame, out, error, sequence) > 0;
    }
  }
  if (error != nullptr) {
    *error = ParseError{ParseErrorCode::kTruncated, 0, 0, "no reply frame available"};
  }
  return false;
}

void WireClientEndpoint::Close() {
  if (channel_) {
    channel_->Close();
  }
}

void WireClientEndpoint::CloseMidFrame() {
  if (channel_ && outbox_sent_ < outbox_.size()) {
    // Send all but the second half of the final frame, so the server's
    // reassembler is left holding a partial request when the EOF lands.
    size_t keep = (outbox_.size() - outbox_sent_) / 2;
    size_t stop = outbox_.size() - std::max<size_t>(keep, 1);
    while (outbox_sent_ < stop) {
      size_t written = 0;
      IoStatus status = channel_->Write(
          std::span<const uint8_t>(outbox_.data() + outbox_sent_, stop - outbox_sent_),
          &written);
      outbox_sent_ += written;
      if (status != IoStatus::kOk || written == 0) {
        break;
      }
    }
  }
  Close();
}

}  // namespace xproto
