#include "src/xproto/error.h"

#include <sstream>

namespace xproto {

std::string ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadWindow:
      return "BadWindow";
    case ErrorCode::kBadMatch:
      return "BadMatch";
    case ErrorCode::kBadValue:
      return "BadValue";
    case ErrorCode::kBadAtom:
      return "BadAtom";
    case ErrorCode::kBadAccess:
      return "BadAccess";
    case ErrorCode::kBadImplementation:
      return "BadImplementation";
    case ErrorCode::kBadRequest:
      return "BadRequest";
    case ErrorCode::kBadLength:
      return "BadLength";
  }
  return "BadImplementation";
}

std::string RequestCodeName(RequestCode code) {
  switch (code) {
    case RequestCode::kNone:
      return "None";
    case RequestCode::kCreateWindow:
      return "CreateWindow";
    case RequestCode::kDestroyWindow:
      return "DestroyWindow";
    case RequestCode::kMapWindow:
      return "MapWindow";
    case RequestCode::kUnmapWindow:
      return "UnmapWindow";
    case RequestCode::kReparentWindow:
      return "ReparentWindow";
    case RequestCode::kConfigureWindow:
      return "ConfigureWindow";
    case RequestCode::kSelectInput:
      return "SelectInput";
    case RequestCode::kChangeSaveSet:
      return "ChangeSaveSet";
    case RequestCode::kChangeProperty:
      return "ChangeProperty";
    case RequestCode::kDeleteProperty:
      return "DeleteProperty";
    case RequestCode::kSendEvent:
      return "SendEvent";
    case RequestCode::kSetInputFocus:
      return "SetInputFocus";
    case RequestCode::kGrabButton:
      return "GrabButton";
    case RequestCode::kUngrabButton:
      return "UngrabButton";
    case RequestCode::kShapeOp:
      return "ShapeOp";
    case RequestCode::kSetWindowBackground:
      return "SetWindowBackground";
    case RequestCode::kSetCursor:
      return "SetCursor";
    case RequestCode::kClearWindow:
      return "ClearWindow";
    case RequestCode::kDraw:
      return "Draw";
    case RequestCode::kGetWindowAttributes:
      return "GetWindowAttributes";
    case RequestCode::kGetGeometry:
      return "GetGeometry";
    case RequestCode::kQueryTree:
      return "QueryTree";
    case RequestCode::kInternAtom:
      return "InternAtom";
    case RequestCode::kGetAtomName:
      return "GetAtomName";
    case RequestCode::kGetProperty:
      return "GetProperty";
    case RequestCode::kTranslateCoordinates:
      return "TranslateCoordinates";
    case RequestCode::kQueryScreens:
      return "QueryScreens";
    case RequestCode::kQueryClientWindows:
      return "QueryClientWindows";
  }
  return "None";
}

std::string ErrorText(const XError& error) {
  std::ostringstream out;
  out << ErrorCodeName(error.code) << " on " << RequestCodeName(error.request)
      << " (resource " << error.resource_id << ", seq " << error.sequence << ")";
  return out.str();
}

}  // namespace xproto
