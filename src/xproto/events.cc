#include "src/xproto/events.h"

namespace xproto {
namespace {

struct NameVisitor {
  std::string operator()(const ButtonEvent& e) const {
    return e.press ? "ButtonPress" : "ButtonRelease";
  }
  std::string operator()(const MotionEvent&) const { return "MotionNotify"; }
  std::string operator()(const KeyEvent& e) const { return e.press ? "KeyPress" : "KeyRelease"; }
  std::string operator()(const CrossingEvent& e) const {
    return e.enter ? "EnterNotify" : "LeaveNotify";
  }
  std::string operator()(const ExposeEvent&) const { return "Expose"; }
  std::string operator()(const CreateNotifyEvent&) const { return "CreateNotify"; }
  std::string operator()(const DestroyNotifyEvent&) const { return "DestroyNotify"; }
  std::string operator()(const MapRequestEvent&) const { return "MapRequest"; }
  std::string operator()(const MapNotifyEvent&) const { return "MapNotify"; }
  std::string operator()(const UnmapNotifyEvent&) const { return "UnmapNotify"; }
  std::string operator()(const ReparentNotifyEvent&) const { return "ReparentNotify"; }
  std::string operator()(const ConfigureRequestEvent&) const { return "ConfigureRequest"; }
  std::string operator()(const ConfigureNotifyEvent&) const { return "ConfigureNotify"; }
  std::string operator()(const CirculateRequestEvent&) const { return "CirculateRequest"; }
  std::string operator()(const PropertyNotifyEvent&) const { return "PropertyNotify"; }
  std::string operator()(const ClientMessageEvent&) const { return "ClientMessage"; }
  std::string operator()(const FocusEvent& e) const { return e.in ? "FocusIn" : "FocusOut"; }
  std::string operator()(const ShapeNotifyEvent&) const { return "ShapeNotify"; }
};

struct WindowVisitor {
  WindowId operator()(const ButtonEvent& e) const { return e.window; }
  WindowId operator()(const MotionEvent& e) const { return e.window; }
  WindowId operator()(const KeyEvent& e) const { return e.window; }
  WindowId operator()(const CrossingEvent& e) const { return e.window; }
  WindowId operator()(const ExposeEvent& e) const { return e.window; }
  WindowId operator()(const CreateNotifyEvent& e) const { return e.parent; }
  WindowId operator()(const DestroyNotifyEvent& e) const { return e.event_window; }
  WindowId operator()(const MapRequestEvent& e) const { return e.parent; }
  WindowId operator()(const MapNotifyEvent& e) const { return e.event_window; }
  WindowId operator()(const UnmapNotifyEvent& e) const { return e.event_window; }
  WindowId operator()(const ReparentNotifyEvent& e) const { return e.event_window; }
  WindowId operator()(const ConfigureRequestEvent& e) const { return e.parent; }
  WindowId operator()(const ConfigureNotifyEvent& e) const { return e.event_window; }
  WindowId operator()(const CirculateRequestEvent& e) const { return e.parent; }
  WindowId operator()(const PropertyNotifyEvent& e) const { return e.window; }
  WindowId operator()(const ClientMessageEvent& e) const { return e.window; }
  WindowId operator()(const FocusEvent& e) const { return e.window; }
  WindowId operator()(const ShapeNotifyEvent& e) const { return e.window; }
};

}  // namespace

std::string EventName(const Event& event) { return std::visit(NameVisitor{}, event); }

WindowId EventWindow(const Event& event) { return std::visit(WindowVisitor{}, event); }

std::string WmStateName(WmState state) {
  switch (state) {
    case WmState::kWithdrawn:
      return "WithdrawnState";
    case WmState::kNormal:
      return "NormalState";
    case WmState::kIconic:
      return "IconicState";
  }
  return "UnknownState";
}

}  // namespace xproto
