// X11 binary wire encoding for the request/event/error subset this
// reproduction implements (docs/PROTOCOL.md).
//
// Built adversarial-input-first: the decoder assumes every byte was written
// by a hostile client.  WireReader is a zero-copy, bounds-checked cursor —
// it never reads past the buffer it was given, and any overrun attempt
// latches a failure flag instead of invoking UB.  Every length field is
// checked against both the frame and a hard cap before it is trusted, and a
// malformed message decodes to a typed ParseError, never a crash.  The
// fuzz gate (tests/wire_fuzz_test.cc, tools/fuzz_wire.cc) holds the decoder
// to that contract under ASan+UBSan.
//
// Framing follows core X11: requests are [opcode u8][detail u8][length u16
// in 4-byte units, header included][payload]; events and errors are fixed
// 32-byte frames.  All integers are little-endian on this wire.
#ifndef SRC_XPROTO_WIRE_H_
#define SRC_XPROTO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "src/base/geometry.h"
#include "src/xproto/error.h"
#include "src/xproto/events.h"
#include "src/xproto/types.h"

namespace xproto {

// ---- Limits -----------------------------------------------------------------

// Hard cap on a single request frame.  The length field could name up to
// 256KB (65535 * 4); nothing in our subset legitimately needs more than a
// ChangeProperty carrying a capped payload, so anything above this is
// rejected as kOversized before a single payload byte is trusted.
inline constexpr size_t kMaxRequestBytes = 16384;
// Fixed size of an event or error frame, as in core X11.
inline constexpr size_t kEventWireBytes = 32;
// Caps on variable-length request fields (checked before allocation).
inline constexpr size_t kMaxWireStringBytes = 4096;
inline constexpr size_t kMaxWireRects = 1024;
inline constexpr size_t kMaxWireBitmapCells = 1 << 16;
// Replies are 32-byte-minimum frames; the length field counts 4-byte units
// beyond the fixed 32 bytes.  Whole-frame cap checked before the length
// field is trusted, plus per-field caps checked before allocation.
inline constexpr size_t kMinReplyBytes = 32;
inline constexpr size_t kMaxReplyBytes = 1 << 20;
inline constexpr size_t kMaxReplyChildren = 1 << 16;
inline constexpr size_t kMaxReplyPropertyBytes = 1 << 18;

// ---- Parse errors -----------------------------------------------------------

enum class ParseErrorCode : uint8_t {
  kTruncated,    // Buffer ends before the frame (or its header) does.
  kBadOpcode,    // Major opcode / event code not in the implemented subset.
  kBadLength,    // Frame length field inconsistent with the payload present.
  kOversized,    // Frame or embedded length field exceeds its hard cap.
  kBadValue,     // A field holds a value outside its legal range.
};

// A rejected message.  `offset` is the byte offset of the offending frame in
// the buffer handed to the decoder, so a trace/corpus failure pinpoints the
// exact input bytes.
struct ParseError {
  ParseErrorCode code = ParseErrorCode::kTruncated;
  size_t offset = 0;
  uint8_t opcode = 0;  // Major opcode of the frame (0 if not yet readable).
  std::string detail;  // Human-readable, for logs and test output.
};

std::string ParseErrorCodeName(ParseErrorCode code);
// "BadLength at offset 12 (opcode 18): property data overruns frame" — logs.
std::string ParseErrorText(const ParseError& error);

// ---- Bounds-checked cursor types -------------------------------------------

// Zero-copy reader: a cursor over caller-owned bytes.  All accessors check
// bounds first; an out-of-range read latches ok() == false and returns 0 (or
// an empty span) without touching memory past the end.  Callers check ok()
// once after a run of reads — failed reads are sticky and side-effect free.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int16_t I16() { return static_cast<int16_t>(U16()); }
  int32_t I32() { return static_cast<int32_t>(U32()); }

  // `count` bytes without copying, or an empty span (and ok() == false) if
  // fewer remain.
  std::span<const uint8_t> Bytes(size_t count);
  // A counted string (bytes are copied out of the buffer here, at the edge).
  std::string String(size_t count);
  void Skip(size_t count);
  // Skips padding up to the next 4-byte boundary relative to buffer start.
  void AlignSkip();

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

// Append-only little-endian writer.
class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I16(int16_t v) { U16(static_cast<uint16_t>(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Bytes(std::span<const uint8_t> data);
  void String(const std::string& s);  // Raw bytes, no count prefix.
  // Zero padding up to the next 4-byte boundary.
  void AlignPad();
  // Overwrites 2 already-written bytes (length/sequence back-patching).
  void PatchU16(size_t offset, uint16_t v);
  // Overwrites 4 already-written bytes (reply length back-patching).
  void PatchU32(size_t offset, uint32_t v);

  // Opens a request frame: writes opcode/detail, reserves the length field.
  // CloseRequest pads to 4 bytes and patches the length.  One frame at a
  // time; frames may not nest.
  void BeginRequest(uint8_t opcode, uint8_t detail);
  void CloseRequest();

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::span<const uint8_t> span() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }
  void Clear() { bytes_.clear(); }

 private:
  std::vector<uint8_t> bytes_;
  size_t frame_start_ = SIZE_MAX;  // SIZE_MAX = no open frame.
};

// ---- Request objects --------------------------------------------------------

// Major opcodes.  Core requests reuse the real X11 numbers so a wire dump
// reads familiarly; simulator-specific requests (drawing into the ASCII
// canvas, SHAPE ops folded into one extension-style block) sit above 127.
enum class WireOpcode : uint8_t {
  kCreateWindow = 1,
  kGetWindowAttributes = 3,
  kDestroyWindow = 4,
  kChangeSaveSet = 6,
  kReparentWindow = 7,
  kMapWindow = 8,
  kUnmapWindow = 10,
  kConfigureWindow = 12,
  kSelectInput = 14,   // ChangeWindowAttributes(event-mask) in real X.
  kQueryTree = 15,
  kInternAtom = 16,
  kGetAtomName = 17,
  kChangeProperty = 18,
  kDeleteProperty = 19,
  kGetProperty = 20,
  kSendEvent = 25,
  kGrabButton = 28,
  kUngrabButton = 29,
  kTranslateCoordinates = 40,
  kSetInputFocus = 42,
  kClearWindow = 61,   // ClearArea in real X.
  // Simulator-specific (>= 128, the extension opcode range).
  kSetWindowBackground = 128,
  kSetCursor = 129,
  kDraw = 130,
  kShapeRegion = 131,
  kShapeClear = 132,
  kShapeSelect = 133,
  // Real X numbers GetGeometry 14, which kSelectInput occupies here; it
  // lives in the extension range instead (docs/PROTOCOL.md "Replies").
  kGetGeometry = 134,
  // Connection-setup queries for out-of-process clients (docs/PROTOCOL.md
  // "Out-of-process operation"): the screen table a remote Display caches at
  // connect, and the issuing client's own window list (ascending id, newest
  // last) — the wire substitute for the in-process DispatchResult's
  // last_created_window.
  kQueryScreens = 135,
  kQueryClientWindows = 136,
};

struct CreateWindowRequest {
  WindowId parent = kNone;
  xbase::Rect geometry;
  int border_width = 0;
  WindowClass window_class = WindowClass::kInputOutput;
  bool override_redirect = false;
  friend bool operator==(const CreateWindowRequest&, const CreateWindowRequest&) = default;
};

struct DestroyWindowRequest {
  WindowId window = kNone;
  friend bool operator==(const DestroyWindowRequest&, const DestroyWindowRequest&) = default;
};

struct MapWindowRequest {
  WindowId window = kNone;
  friend bool operator==(const MapWindowRequest&, const MapWindowRequest&) = default;
};

struct UnmapWindowRequest {
  WindowId window = kNone;
  friend bool operator==(const UnmapWindowRequest&, const UnmapWindowRequest&) = default;
};

struct ReparentWindowRequest {
  WindowId window = kNone;
  WindowId parent = kNone;
  xbase::Point position;
  friend bool operator==(const ReparentWindowRequest&, const ReparentWindowRequest&) = default;
};

// Mask-conditional VALUE list exactly as in core X11: only fields named in
// `value_mask` travel on the wire, each as one 4-byte slot — which makes the
// length field honest work to validate (and a favorite target of the
// length-lie fault).
struct ConfigureWindowRequest {
  WindowId window = kNone;
  uint16_t value_mask = 0;
  xbase::Rect geometry;
  int border_width = 0;
  WindowId sibling = kNone;
  StackMode stack_mode = StackMode::kAbove;
  friend bool operator==(const ConfigureWindowRequest&, const ConfigureWindowRequest&) = default;
};

struct SelectInputRequest {
  WindowId window = kNone;
  uint32_t event_mask = 0;
  friend bool operator==(const SelectInputRequest&, const SelectInputRequest&) = default;
};

struct ChangeSaveSetRequest {
  WindowId window = kNone;
  bool add = true;
  friend bool operator==(const ChangeSaveSetRequest&, const ChangeSaveSetRequest&) = default;
};

struct ChangePropertyRequest {
  WindowId window = kNone;
  AtomId property = kAtomNone;
  AtomId type = kAtomNone;
  int format = 8;      // 8, 16 or 32.
  uint8_t mode = 0;    // PropMode: 0 replace, 1 append, 2 prepend.
  std::vector<uint8_t> data;
  friend bool operator==(const ChangePropertyRequest&, const ChangePropertyRequest&) = default;
};

struct DeletePropertyRequest {
  WindowId window = kNone;
  AtomId property = kAtomNone;
  friend bool operator==(const DeletePropertyRequest&, const DeletePropertyRequest&) = default;
};

struct SendEventRequest {
  WindowId destination = kNone;
  uint32_t event_mask = 0;
  Event event;  // Travels as an embedded 32-byte event frame.
  friend bool operator==(const SendEventRequest&, const SendEventRequest&) = default;
};

struct SetInputFocusRequest {
  WindowId window = kNone;
  friend bool operator==(const SetInputFocusRequest&, const SetInputFocusRequest&) = default;
};

struct GrabButtonRequest {
  WindowId window = kNone;
  int button = 0;  // 0 = AnyButton.
  uint32_t modifiers = 0;
  uint32_t event_mask = 0;
  friend bool operator==(const GrabButtonRequest&, const GrabButtonRequest&) = default;
};

struct UngrabButtonRequest {
  WindowId window = kNone;
  int button = 0;
  uint32_t modifiers = 0;
  friend bool operator==(const UngrabButtonRequest&, const UngrabButtonRequest&) = default;
};

struct ClearWindowRequest {
  WindowId window = kNone;
  friend bool operator==(const ClearWindowRequest&, const ClearWindowRequest&) = default;
};

struct SetWindowBackgroundRequest {
  WindowId window = kNone;
  char background = ' ';
  friend bool operator==(const SetWindowBackgroundRequest&,
                         const SetWindowBackgroundRequest&) = default;
};

struct SetCursorRequest {
  WindowId window = kNone;
  std::string name;
  friend bool operator==(const SetCursorRequest&, const SetCursorRequest&) = default;
};

// The display-list draw request.  kBitmap ops carry the bitmap as a
// counted cell array; text ops carry a counted string.
struct DrawRequest {
  WindowId window = kNone;
  uint8_t kind = 0;  // xserver::DrawOp::Kind, validated on decode.
  xbase::Rect rect;
  char fill = ' ';
  std::string text;
  int bitmap_width = 0;
  int bitmap_height = 0;
  std::vector<uint8_t> bitmap_cells;  // Row-major, one byte per cell (0/1).
  friend bool operator==(const DrawRequest&, const DrawRequest&) = default;
};

struct ShapeRegionRequest {
  WindowId window = kNone;
  std::vector<xbase::Rect> rects;
  friend bool operator==(const ShapeRegionRequest&, const ShapeRegionRequest&) = default;
};

struct ShapeClearRequest {
  WindowId window = kNone;
  friend bool operator==(const ShapeClearRequest&, const ShapeClearRequest&) = default;
};

struct ShapeSelectRequest {
  WindowId window = kNone;
  bool enable = true;
  friend bool operator==(const ShapeSelectRequest&, const ShapeSelectRequest&) = default;
};

// ---- Query requests (reply-bearing; docs/PROTOCOL.md "Replies") -------------

struct GetWindowAttributesRequest {
  WindowId window = kNone;
  friend bool operator==(const GetWindowAttributesRequest&,
                         const GetWindowAttributesRequest&) = default;
};

struct GetGeometryRequest {
  WindowId window = kNone;
  friend bool operator==(const GetGeometryRequest&, const GetGeometryRequest&) = default;
};

struct QueryTreeRequest {
  WindowId window = kNone;
  friend bool operator==(const QueryTreeRequest&, const QueryTreeRequest&) = default;
};

struct InternAtomRequest {
  std::string name;
  friend bool operator==(const InternAtomRequest&, const InternAtomRequest&) = default;
};

struct GetAtomNameRequest {
  AtomId atom = kAtomNone;
  friend bool operator==(const GetAtomNameRequest&, const GetAtomNameRequest&) = default;
};

struct GetPropertyRequest {
  WindowId window = kNone;
  AtomId property = kAtomNone;
  friend bool operator==(const GetPropertyRequest&, const GetPropertyRequest&) = default;
};

struct TranslateCoordinatesRequest {
  WindowId src = kNone;
  WindowId dst = kNone;
  xbase::Point point;
  friend bool operator==(const TranslateCoordinatesRequest&,
                         const TranslateCoordinatesRequest&) = default;
};

// Both out-of-process setup queries are payload-free: the screens table is
// global, and QueryClientWindows is implicitly about the issuing client.
struct QueryScreensRequest {
  friend bool operator==(const QueryScreensRequest&, const QueryScreensRequest&) = default;
};

struct QueryClientWindowsRequest {
  friend bool operator==(const QueryClientWindowsRequest&,
                         const QueryClientWindowsRequest&) = default;
};

using Request = std::variant<
    CreateWindowRequest, DestroyWindowRequest, MapWindowRequest, UnmapWindowRequest,
    ReparentWindowRequest, ConfigureWindowRequest, SelectInputRequest, ChangeSaveSetRequest,
    ChangePropertyRequest, DeletePropertyRequest, SendEventRequest, SetInputFocusRequest,
    GrabButtonRequest, UngrabButtonRequest, ClearWindowRequest, SetWindowBackgroundRequest,
    SetCursorRequest, DrawRequest, ShapeRegionRequest, ShapeClearRequest, ShapeSelectRequest,
    GetWindowAttributesRequest, GetGeometryRequest, QueryTreeRequest, InternAtomRequest,
    GetAtomNameRequest, GetPropertyRequest, TranslateCoordinatesRequest,
    QueryScreensRequest, QueryClientWindowsRequest>;

// Wire opcode / human-readable name / error-channel RequestCode of a request.
WireOpcode RequestOpcode(const Request& request);
std::string WireRequestName(const Request& request);
RequestCode RequestCodeOf(const Request& request);
// RequestCode a raw opcode maps to (for error reports on frames that never
// decoded into a Request).  kNone for unknown opcodes.
RequestCode RequestCodeForOpcode(uint8_t opcode);

// ---- Request encode/decode --------------------------------------------------

// Appends one request frame to `writer`.
void EncodeRequest(const Request& request, WireWriter* writer);
// Convenience: one request as a fresh byte vector.
std::vector<uint8_t> EncodeRequestBytes(const Request& request);

// Decodes the frame at the front of `buffer`.  On success fills `*out` and
// returns the frame size in bytes (> 0).  On failure fills `*error` and
// returns 0; the buffer is untouched and no byte beyond it was read.
// Decoding is strict: the frame length must be exactly the padded size the
// request needs — a length field that lies in either direction is rejected.
size_t DecodeRequest(std::span<const uint8_t> buffer, Request* out, ParseError* error);

// ---- Reply objects ----------------------------------------------------------
//
// Replies travel as 32-byte-minimum frames, as in core X11:
//
//   [1][opcode u8][sequence u16][length u32][payload ...]
//
// with `length` counting the 4-byte units beyond the fixed 32 bytes.  One
// deviation from core X11, documented in docs/PROTOCOL.md: byte 1 carries
// the major opcode of the originating request instead of a reply-specific
// detail byte, so a reply frame is self-describing — DecodeReply, the
// fuzzers and the trace verifier can parse a captured stream without
// pairing it against a table of outstanding requests.

struct AttributesReply {
  WindowId window = kNone;
  WindowClass window_class = WindowClass::kInputOutput;
  MapState map_state = MapState::kUnmapped;
  bool override_redirect = false;
  uint32_t all_event_masks = 0;
  int border_width = 0;
  friend bool operator==(const AttributesReply&, const AttributesReply&) = default;
};

struct GeometryReply {
  WindowId window = kNone;
  xbase::Rect geometry;
  int border_width = 0;
  friend bool operator==(const GeometryReply&, const GeometryReply&) = default;
};

struct TreeReply {
  WindowId window = kNone;
  WindowId root = kNone;
  WindowId parent = kNone;
  std::vector<WindowId> children;  // Bottom-most first.
  friend bool operator==(const TreeReply&, const TreeReply&) = default;
};

// InternAtom.
struct AtomReply {
  AtomId atom = kAtomNone;
  friend bool operator==(const AtomReply&, const AtomReply&) = default;
};

struct AtomNameReply {
  AtomId atom = kAtomNone;
  std::string name;
  friend bool operator==(const AtomNameReply&, const AtomNameReply&) = default;
};

// GetProperty on a missing property is not an error in X; `found` carries
// the distinction (type/format/data are meaningful only when it is set).
struct PropertyReply {
  WindowId window = kNone;
  AtomId property = kAtomNone;
  bool found = false;
  AtomId type = kAtomNone;
  int format = 8;
  std::vector<uint8_t> data;
  friend bool operator==(const PropertyReply&, const PropertyReply&) = default;
};

struct CoordinatesReply {
  xbase::Point position;
  friend bool operator==(const CoordinatesReply&, const CoordinatesReply&) = default;
};

// QueryScreens: the per-screen table a remote Display caches at connect so
// ScreenCount/RootWindow/DisplaySize/IsMonochrome need no further traffic.
struct ScreensReply {
  struct Screen {
    WindowId root = kNone;
    int width = 0;
    int height = 0;
    bool monochrome = false;
    friend bool operator==(const Screen&, const Screen&) = default;
  };
  std::vector<Screen> screens;
  friend bool operator==(const ScreensReply&, const ScreensReply&) = default;
};

// QueryClientWindows: every window the issuing client owns, ascending id.
// Ids are minted monotonically, so the newest window is last — how a remote
// client learns the id its CreateWindow produced.
struct ClientWindowsReply {
  std::vector<WindowId> windows;
  friend bool operator==(const ClientWindowsReply&, const ClientWindowsReply&) = default;
};

using Reply = std::variant<AttributesReply, GeometryReply, TreeReply, AtomReply,
                           AtomNameReply, PropertyReply, CoordinatesReply,
                           ScreensReply, ClientWindowsReply>;

// Major opcode of the request a reply answers / human-readable name.
WireOpcode ReplyOpcode(const Reply& reply);
std::string WireReplyName(const Reply& reply);

// ---- Reply encode/decode ----------------------------------------------------

// Appends one reply frame to `writer` (sequence = the issuing connection's
// request sequence number, truncated to 16 bits as on the wire).
// Variable-length fields are clamped to their decode caps
// (kMaxReplyChildren / kMaxReplyPropertyBytes / kMaxWireStringBytes) so
// every encoded reply decodes.
void EncodeReply(const Reply& reply, uint16_t sequence, WireWriter* writer);
std::vector<uint8_t> EncodeReplyBytes(const Reply& reply, uint16_t sequence = 0);

// Decodes the reply frame at the front of `buffer`.  Same contract and
// strictness as DecodeRequest: on success fills `*out` (and `*sequence` if
// non-null) and returns the frame size; on failure fills `*error` and
// returns 0 having read no byte beyond the buffer.
size_t DecodeReply(std::span<const uint8_t> buffer, Reply* out, ParseError* error,
                   uint16_t* sequence = nullptr);

// ---- Event encode/decode ----------------------------------------------------

// Appends the fixed 32-byte frame for `event` (sequence = the delivering
// connection's request sequence number, truncated to 16 bits as on the wire).
void EncodeEvent(const Event& event, uint16_t sequence, WireWriter* writer);
std::vector<uint8_t> EncodeEventBytes(const Event& event, uint16_t sequence = 0);

// Decodes one 32-byte event frame.  Returns kEventWireBytes on success.
size_t DecodeEvent(std::span<const uint8_t> buffer, Event* out, ParseError* error,
                   uint16_t* sequence = nullptr);

// ---- Error encode/decode ----------------------------------------------------

// Errors travel as 32-byte frames whose first byte is 0, as in core X11.
void EncodeError(const XError& error, WireWriter* writer);
size_t DecodeError(std::span<const uint8_t> buffer, XError* out, ParseError* parse_error);

}  // namespace xproto

#endif  // SRC_XPROTO_WIRE_H_
