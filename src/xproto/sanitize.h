// Validating pass over decoded ICCCM client data (docs/ROBUSTNESS.md,
// "Input hardening").
//
// A window manager decodes properties written by arbitrary clients; nothing
// guarantees the bytes describe a sane window.  The functions here clamp or
// reject the classic poison values — min > max sizes, zero/negative resize
// increments (the divide-by-zero), multi-megabyte names, out-of-range icon
// geometry — and count every repair in a SanitizerStats block so callers can
// surface what their clients tried.  Decoders call these after decoding;
// geometry consumers keep their own guards (belt and suspenders).
#ifndef SRC_XPROTO_SANITIZE_H_
#define SRC_XPROTO_SANITIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/xproto/hints.h"

namespace xproto {

// Byte caps on client-supplied strings.  Generous for any real client, tiny
// against a hostile one (a WM_NAME is a title bar label, not a payload).
inline constexpr size_t kMaxWmStringBytes = 1024;     // WM_NAME, WM_ICON_NAME.
inline constexpr size_t kMaxWmCommandBytes = 4096;    // WM_COMMAND, total argv.
inline constexpr size_t kMaxWmClassBytes = 256;       // Each WM_CLASS half.
inline constexpr size_t kMaxIconNameBytes = 256;      // Icon pixmap names.

// What the sanitizer repaired, cumulatively.  One block per Display
// connection (xlib::Display::sanitizer_stats()); tests and diagnostics read
// it to prove hostile input was neutralized rather than ignored.
struct SanitizerStats {
  uint64_t size_clamped = 0;        // min/max/base sizes forced into range.
  uint64_t min_max_swapped = 0;     // min > max pairs swapped.
  uint64_t increments_rejected = 0; // width_inc/height_inc <= 0 reset to 1.
  uint64_t strings_truncated = 0;   // Over-cap WM_NAME/WM_COMMAND/... cut.
  uint64_t icon_geometry_clamped = 0;  // Icon position/pixmap out of range.
  uint64_t transient_self_broken = 0;  // WM_TRANSIENT_FOR naming itself.
  uint64_t transient_cycles_broken = 0;  // Cycles across transient chains.
  uint64_t states_rejected = 0;     // WM_HINTS initial_state not a WmState.
  uint64_t truncated_decodes = 0;   // Property shorter than its struct.

  uint64_t Total() const {
    return size_clamped + min_max_swapped + increments_rejected + strings_truncated +
           icon_geometry_clamped + transient_self_broken + transient_cycles_broken +
           states_rejected + truncated_decodes;
  }
};

// Clamps a SizeHints block to sane values in place.  Returns true if
// anything was repaired.  Guarantees on return:
//   1 <= min_width/height <= max_width/height <= kMaxCoordinate,
//   width_inc/height_inc >= 1, |x|,|y| <= kMaxCoordinate,
//   0 <= width/height <= kMaxCoordinate.
bool SanitizeSizeHints(SizeHints* hints, SanitizerStats* stats);

// Clamps WM_HINTS: icon position within [-kMaxCoordinate, kMaxCoordinate],
// icon pixmap name within kMaxIconNameBytes, initial_state to a legal
// WmState (anything else becomes kNormal).  Returns true if repaired.
bool SanitizeWmHints(WmHints* hints, SanitizerStats* stats);

// Truncates a client string to `cap` bytes and strips embedded NUL and
// control characters (which would corrupt logs and property round-trips).
// Returns true if modified.
bool SanitizeClientString(std::string* s, size_t cap, SanitizerStats* stats);

// WM_CLASS halves through SanitizeClientString with kMaxWmClassBytes.
bool SanitizeWmClass(WmClass* wm_class, SanitizerStats* stats);

// Decodes a raw WM_CLASS payload.  ICCCM requires exactly two NUL-terminated
// strings ("instance\0class\0"); clients routinely drop the trailing NUL and
// hostile ones drop the separator too.  Both malformations are repaired —
// the unterminated tail is taken as written and counted in
// truncated_decodes — instead of trusted, and the halves then pass through
// SanitizeWmClass.  Returns true if anything was repaired.
bool DecodeWmClass(const std::string& raw, WmClass* out, SanitizerStats* stats);

// WM_TRANSIENT_FOR self-reference: a window transient for itself gets the
// hint dropped (returns kNone).  Cycle breaking across *chains* needs the
// managed-window table and lives in the WM (swm::WindowManager).
WindowId SanitizeTransientFor(WindowId window, WindowId transient_for,
                              SanitizerStats* stats);

}  // namespace xproto

#endif  // SRC_XPROTO_SANITIZE_H_
