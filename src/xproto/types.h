// Core X protocol value types shared by the server simulator and the client
// library.  Names mirror the X11 protocol specification.
#ifndef SRC_XPROTO_TYPES_H_
#define SRC_XPROTO_TYPES_H_

#include <cstdint>
#include <string>

namespace xproto {

using WindowId = uint32_t;
using AtomId = uint32_t;
using ClientId = uint32_t;
using Timestamp = uint64_t;
using KeySym = uint32_t;

inline constexpr WindowId kNone = 0;
inline constexpr AtomId kAtomNone = 0;

// Hard protocol limit on coordinates/extents (signed 16-bit on the wire);
// this is the source of the paper's 32767x32767 Virtual Desktop ceiling.
inline constexpr int kMaxCoordinate = 32767;

enum class WindowClass : uint8_t {
  kInputOutput,
  kInputOnly,
};

enum class MapState : uint8_t {
  kUnmapped,
  kUnviewable,  // Mapped but an ancestor is unmapped.
  kViewable,
};

enum class StackMode : uint8_t {
  kAbove,
  kBelow,
  kTopIf,
  kBottomIf,
  kOpposite,
};

enum class BitGravity : uint8_t {
  kForget,
  kNorthWest,
  kStatic,
};

// ICCCM WM_STATE values.
enum class WmState : uint32_t {
  kWithdrawn = 0,
  kNormal = 1,
  kIconic = 3,
};

// Event selection mask bits (subset relevant to window management).
enum EventMask : uint32_t {
  kNoEventMask = 0,
  kKeyPressMask = 1u << 0,
  kKeyReleaseMask = 1u << 1,
  kButtonPressMask = 1u << 2,
  kButtonReleaseMask = 1u << 3,
  kEnterWindowMask = 1u << 4,
  kLeaveWindowMask = 1u << 5,
  kPointerMotionMask = 1u << 6,
  kExposureMask = 1u << 15,
  kStructureNotifyMask = 1u << 17,
  kResizeRedirectMask = 1u << 18,
  kSubstructureNotifyMask = 1u << 19,
  kSubstructureRedirectMask = 1u << 20,
  kFocusChangeMask = 1u << 21,
  kPropertyChangeMask = 1u << 22,
  kColormapChangeMask = 1u << 23,
};

enum class ModifierMask : uint32_t {
  kNone = 0,
  kShift = 1u << 0,
  kControl = 1u << 2,
  kMod1 = 1u << 3,  // Typically Meta/Alt.
};

inline uint32_t operator|(ModifierMask a, ModifierMask b) {
  return static_cast<uint32_t>(a) | static_cast<uint32_t>(b);
}

// Values of a ConfigureRequest's value_mask.
enum ConfigureMask : uint16_t {
  kConfigX = 1u << 0,
  kConfigY = 1u << 1,
  kConfigWidth = 1u << 2,
  kConfigHeight = 1u << 3,
  kConfigBorderWidth = 1u << 4,
  kConfigSibling = 1u << 5,
  kConfigStackMode = 1u << 6,
};

// Property change notifications.
enum class PropertyState : uint8_t {
  kNewValue,
  kDeleted,
};

// Pointer buttons are numbered 1..5 as in the protocol.
inline constexpr int kMaxButton = 5;

std::string WmStateName(WmState state);

}  // namespace xproto

#endif  // SRC_XPROTO_TYPES_H_
