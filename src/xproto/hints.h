// ICCCM client hint structures (WM_NORMAL_HINTS, WM_HINTS) and the standard
// property names window managers care about.
#ifndef SRC_XPROTO_HINTS_H_
#define SRC_XPROTO_HINTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/geometry.h"
#include "src/xproto/types.h"

namespace xproto {

// WM_NORMAL_HINTS flag bits (XSizeHints flags).
enum SizeHintFlags : uint32_t {
  kUSPosition = 1u << 0,  // User-specified x, y.
  kUSSize = 1u << 1,      // User-specified width, height.
  kPPosition = 1u << 2,   // Program-specified position.
  kPSize = 1u << 3,       // Program-specified size.
  kPMinSize = 1u << 4,
  kPMaxSize = 1u << 5,
  kPResizeInc = 1u << 6,
};

struct SizeHints {
  uint32_t flags = 0;
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  int min_width = 1;
  int min_height = 1;
  int max_width = kMaxCoordinate;
  int max_height = kMaxCoordinate;
  int width_inc = 1;
  int height_inc = 1;

  friend bool operator==(const SizeHints&, const SizeHints&) = default;

  bool HasUserPosition() const { return (flags & kUSPosition) != 0; }
  bool HasProgramPosition() const { return (flags & kPPosition) != 0; }

  // Clamps a requested size to min/max and resize increments.
  xbase::Size Constrain(xbase::Size requested) const;
};

// WM_HINTS flag bits (XWMHints flags).
enum WmHintFlags : uint32_t {
  kInputHint = 1u << 0,
  kStateHint = 1u << 1,
  kIconPixmapHint = 1u << 2,
  kIconWindowHint = 1u << 3,
  kIconPositionHint = 1u << 4,
};

struct WmHints {
  uint32_t flags = 0;
  bool input = true;
  WmState initial_state = WmState::kNormal;
  // Icon pixmap is modeled as a named built-in bitmap; empty = none.
  std::string icon_pixmap_name;
  WindowId icon_window = kNone;
  xbase::Point icon_position;

  friend bool operator==(const WmHints&, const WmHints&) = default;
};

struct WmClass {
  std::string instance;  // res_name, e.g. "xclock".
  std::string clazz;     // res_class, e.g. "XClock".

  friend bool operator==(const WmClass&, const WmClass&) = default;
};

// Standard property/atom names (ICCCM plus swm's private protocol atoms).
inline constexpr char kAtomWmName[] = "WM_NAME";
inline constexpr char kAtomWmIconName[] = "WM_ICON_NAME";
inline constexpr char kAtomWmClass[] = "WM_CLASS";
inline constexpr char kAtomWmCommand[] = "WM_COMMAND";
inline constexpr char kAtomWmClientMachine[] = "WM_CLIENT_MACHINE";
inline constexpr char kAtomWmTransientFor[] = "WM_TRANSIENT_FOR";
inline constexpr char kAtomWmNormalHints[] = "WM_NORMAL_HINTS";
inline constexpr char kAtomWmHints[] = "WM_HINTS";
inline constexpr char kAtomWmState[] = "WM_STATE";
inline constexpr char kAtomWmProtocols[] = "WM_PROTOCOLS";
inline constexpr char kAtomWmDeleteWindow[] = "WM_DELETE_WINDOW";
// swm-private: placed on the Virtual Desktop window so clients can discover
// the virtual root (the historical __SWM_VROOT convention).
inline constexpr char kAtomSwmVroot[] = "__SWM_VROOT";
// swm-private: placed on each client, names the window id of its effective
// root (virtual desktop or real root); updated on stick/unstick (paper §6.3.1).
inline constexpr char kAtomSwmRoot[] = "SWM_ROOT";
// swm-private: root-window property carrying swmcmd command strings (§4.5).
inline constexpr char kAtomSwmCommand[] = "SWM_COMMAND";
// swm-private: root-window property seeded by swmhints for session restart (§7).
inline constexpr char kAtomSwmRestartInfo[] = "SWM_RESTART_INFO";

}  // namespace xproto

#endif  // SRC_XPROTO_HINTS_H_
