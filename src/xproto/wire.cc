#include "src/xproto/wire.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace xproto {

namespace {

// Padded-to-4 size of `n` bytes.
constexpr size_t Pad4(size_t n) { return (n + 3u) & ~size_t{3}; }

ParseError MakeError(ParseErrorCode code, size_t offset, uint8_t opcode,
                     std::string detail) {
  ParseError error;
  error.code = code;
  error.offset = offset;
  error.opcode = opcode;
  error.detail = std::move(detail);
  return error;
}

}  // namespace

// ---- Parse-error text -------------------------------------------------------

std::string ParseErrorCodeName(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kTruncated:
      return "Truncated";
    case ParseErrorCode::kBadOpcode:
      return "BadOpcode";
    case ParseErrorCode::kBadLength:
      return "BadLength";
    case ParseErrorCode::kOversized:
      return "Oversized";
    case ParseErrorCode::kBadValue:
      return "BadValue";
  }
  return "Truncated";
}

std::string ParseErrorText(const ParseError& error) {
  std::ostringstream out;
  out << ParseErrorCodeName(error.code) << " at offset " << error.offset << " (opcode "
      << static_cast<int>(error.opcode) << ")";
  if (!error.detail.empty()) {
    out << ": " << error.detail;
  }
  return out.str();
}

// ---- WireReader -------------------------------------------------------------

uint8_t WireReader::U8() {
  if (!ok_ || data_.size() - offset_ < 1) {
    ok_ = false;
    return 0;
  }
  return data_[offset_++];
}

uint16_t WireReader::U16() {
  if (!ok_ || data_.size() - offset_ < 2) {
    ok_ = false;
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data_[offset_]) |
               static_cast<uint16_t>(data_[offset_ + 1]) << 8;
  offset_ += 2;
  return v;
}

uint32_t WireReader::U32() {
  if (!ok_ || data_.size() - offset_ < 4) {
    ok_ = false;
    return 0;
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = v << 8 | data_[offset_ + static_cast<size_t>(i)];
  }
  offset_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  if (!ok_ || data_.size() - offset_ < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | data_[offset_ + static_cast<size_t>(i)];
  }
  offset_ += 8;
  return v;
}

std::span<const uint8_t> WireReader::Bytes(size_t count) {
  if (!ok_ || data_.size() - offset_ < count) {
    ok_ = false;
    return {};
  }
  std::span<const uint8_t> view = data_.subspan(offset_, count);
  offset_ += count;
  return view;
}

std::string WireReader::String(size_t count) {
  std::span<const uint8_t> view = Bytes(count);
  return std::string(view.begin(), view.end());
}

void WireReader::Skip(size_t count) {
  if (!ok_ || data_.size() - offset_ < count) {
    ok_ = false;
    return;
  }
  offset_ += count;
}

void WireReader::AlignSkip() { Skip(Pad4(offset_) - offset_); }

// ---- WireWriter -------------------------------------------------------------

void WireWriter::U16(uint16_t v) {
  bytes_.push_back(static_cast<uint8_t>(v));
  bytes_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::Bytes(std::span<const uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void WireWriter::String(const std::string& s) {
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void WireWriter::AlignPad() {
  while (bytes_.size() % 4 != 0) {
    bytes_.push_back(0);
  }
}

void WireWriter::PatchU16(size_t offset, uint16_t v) {
  bytes_[offset] = static_cast<uint8_t>(v);
  bytes_[offset + 1] = static_cast<uint8_t>(v >> 8);
}

void WireWriter::PatchU32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void WireWriter::BeginRequest(uint8_t opcode, uint8_t detail) {
  frame_start_ = bytes_.size();
  U8(opcode);
  U8(detail);
  U16(0);  // Length, patched by CloseRequest.
}

void WireWriter::CloseRequest() {
  AlignPad();
  size_t frame_bytes = bytes_.size() - frame_start_;
  PatchU16(frame_start_ + 2, static_cast<uint16_t>(frame_bytes / 4));
  frame_start_ = SIZE_MAX;
}

// ---- Request metadata -------------------------------------------------------

namespace {

struct OpcodeInfo {
  WireOpcode opcode;
  RequestCode request_code;
  const char* name;
};

template <typename T>
OpcodeInfo InfoFor();

#define WIRE_INFO(TYPE, OPCODE, REQCODE)                                     \
  template <>                                                                \
  OpcodeInfo InfoFor<TYPE>() {                                               \
    return {WireOpcode::OPCODE, RequestCode::REQCODE, #TYPE};                \
  }

WIRE_INFO(CreateWindowRequest, kCreateWindow, kCreateWindow)
WIRE_INFO(DestroyWindowRequest, kDestroyWindow, kDestroyWindow)
WIRE_INFO(MapWindowRequest, kMapWindow, kMapWindow)
WIRE_INFO(UnmapWindowRequest, kUnmapWindow, kUnmapWindow)
WIRE_INFO(ReparentWindowRequest, kReparentWindow, kReparentWindow)
WIRE_INFO(ConfigureWindowRequest, kConfigureWindow, kConfigureWindow)
WIRE_INFO(SelectInputRequest, kSelectInput, kSelectInput)
WIRE_INFO(ChangeSaveSetRequest, kChangeSaveSet, kChangeSaveSet)
WIRE_INFO(ChangePropertyRequest, kChangeProperty, kChangeProperty)
WIRE_INFO(DeletePropertyRequest, kDeleteProperty, kDeleteProperty)
WIRE_INFO(SendEventRequest, kSendEvent, kSendEvent)
WIRE_INFO(SetInputFocusRequest, kSetInputFocus, kSetInputFocus)
WIRE_INFO(GrabButtonRequest, kGrabButton, kGrabButton)
WIRE_INFO(UngrabButtonRequest, kUngrabButton, kUngrabButton)
WIRE_INFO(ClearWindowRequest, kClearWindow, kClearWindow)
WIRE_INFO(SetWindowBackgroundRequest, kSetWindowBackground, kSetWindowBackground)
WIRE_INFO(SetCursorRequest, kSetCursor, kSetCursor)
WIRE_INFO(DrawRequest, kDraw, kDraw)
WIRE_INFO(ShapeRegionRequest, kShapeRegion, kShapeOp)
WIRE_INFO(ShapeClearRequest, kShapeClear, kShapeOp)
WIRE_INFO(ShapeSelectRequest, kShapeSelect, kShapeOp)
WIRE_INFO(GetWindowAttributesRequest, kGetWindowAttributes, kGetWindowAttributes)
WIRE_INFO(GetGeometryRequest, kGetGeometry, kGetGeometry)
WIRE_INFO(QueryTreeRequest, kQueryTree, kQueryTree)
WIRE_INFO(InternAtomRequest, kInternAtom, kInternAtom)
WIRE_INFO(GetAtomNameRequest, kGetAtomName, kGetAtomName)
WIRE_INFO(GetPropertyRequest, kGetProperty, kGetProperty)
WIRE_INFO(TranslateCoordinatesRequest, kTranslateCoordinates, kTranslateCoordinates)
WIRE_INFO(QueryScreensRequest, kQueryScreens, kQueryScreens)
WIRE_INFO(QueryClientWindowsRequest, kQueryClientWindows, kQueryClientWindows)

#undef WIRE_INFO

}  // namespace

WireOpcode RequestOpcode(const Request& request) {
  return std::visit(
      [](const auto& r) { return InfoFor<std::decay_t<decltype(r)>>().opcode; }, request);
}

std::string WireRequestName(const Request& request) {
  return std::visit(
      [](const auto& r) { return std::string(InfoFor<std::decay_t<decltype(r)>>().name); },
      request);
}

RequestCode RequestCodeOf(const Request& request) {
  return std::visit(
      [](const auto& r) { return InfoFor<std::decay_t<decltype(r)>>().request_code; },
      request);
}

RequestCode RequestCodeForOpcode(uint8_t opcode) {
  switch (static_cast<WireOpcode>(opcode)) {
    case WireOpcode::kCreateWindow:
      return RequestCode::kCreateWindow;
    case WireOpcode::kDestroyWindow:
      return RequestCode::kDestroyWindow;
    case WireOpcode::kChangeSaveSet:
      return RequestCode::kChangeSaveSet;
    case WireOpcode::kReparentWindow:
      return RequestCode::kReparentWindow;
    case WireOpcode::kMapWindow:
      return RequestCode::kMapWindow;
    case WireOpcode::kUnmapWindow:
      return RequestCode::kUnmapWindow;
    case WireOpcode::kConfigureWindow:
      return RequestCode::kConfigureWindow;
    case WireOpcode::kSelectInput:
      return RequestCode::kSelectInput;
    case WireOpcode::kChangeProperty:
      return RequestCode::kChangeProperty;
    case WireOpcode::kDeleteProperty:
      return RequestCode::kDeleteProperty;
    case WireOpcode::kSendEvent:
      return RequestCode::kSendEvent;
    case WireOpcode::kGrabButton:
      return RequestCode::kGrabButton;
    case WireOpcode::kUngrabButton:
      return RequestCode::kUngrabButton;
    case WireOpcode::kSetInputFocus:
      return RequestCode::kSetInputFocus;
    case WireOpcode::kClearWindow:
      return RequestCode::kClearWindow;
    case WireOpcode::kSetWindowBackground:
      return RequestCode::kSetWindowBackground;
    case WireOpcode::kSetCursor:
      return RequestCode::kSetCursor;
    case WireOpcode::kDraw:
      return RequestCode::kDraw;
    case WireOpcode::kShapeRegion:
    case WireOpcode::kShapeClear:
    case WireOpcode::kShapeSelect:
      return RequestCode::kShapeOp;
    case WireOpcode::kGetWindowAttributes:
      return RequestCode::kGetWindowAttributes;
    case WireOpcode::kGetGeometry:
      return RequestCode::kGetGeometry;
    case WireOpcode::kQueryTree:
      return RequestCode::kQueryTree;
    case WireOpcode::kInternAtom:
      return RequestCode::kInternAtom;
    case WireOpcode::kGetAtomName:
      return RequestCode::kGetAtomName;
    case WireOpcode::kGetProperty:
      return RequestCode::kGetProperty;
    case WireOpcode::kTranslateCoordinates:
      return RequestCode::kTranslateCoordinates;
    case WireOpcode::kQueryScreens:
      return RequestCode::kQueryScreens;
    case WireOpcode::kQueryClientWindows:
      return RequestCode::kQueryClientWindows;
  }
  return RequestCode::kNone;
}

// ---- Request encoding -------------------------------------------------------

namespace {

void PutRect(const xbase::Rect& r, WireWriter* w) {
  w->I16(static_cast<int16_t>(r.x));
  w->I16(static_cast<int16_t>(r.y));
  w->U16(static_cast<uint16_t>(r.width));
  w->U16(static_cast<uint16_t>(r.height));
}

xbase::Rect GetRect(WireReader* r) {
  xbase::Rect rect;
  rect.x = r->I16();
  rect.y = r->I16();
  rect.width = r->U16();
  rect.height = r->U16();
  return rect;
}

struct Encoder {
  WireWriter* w;

  void Frame(WireOpcode opcode, uint8_t detail) {
    w->BeginRequest(static_cast<uint8_t>(opcode), detail);
  }

  void operator()(const CreateWindowRequest& r) {
    Frame(WireOpcode::kCreateWindow, static_cast<uint8_t>(r.window_class));
    w->U32(r.parent);
    PutRect(r.geometry, w);
    w->U16(static_cast<uint16_t>(r.border_width));
    w->U8(r.override_redirect ? 1 : 0);
  }
  void operator()(const DestroyWindowRequest& r) {
    Frame(WireOpcode::kDestroyWindow, 0);
    w->U32(r.window);
  }
  void operator()(const MapWindowRequest& r) {
    Frame(WireOpcode::kMapWindow, 0);
    w->U32(r.window);
  }
  void operator()(const UnmapWindowRequest& r) {
    Frame(WireOpcode::kUnmapWindow, 0);
    w->U32(r.window);
  }
  void operator()(const ReparentWindowRequest& r) {
    Frame(WireOpcode::kReparentWindow, 0);
    w->U32(r.window);
    w->U32(r.parent);
    w->I16(static_cast<int16_t>(r.position.x));
    w->I16(static_cast<int16_t>(r.position.y));
  }
  void operator()(const ConfigureWindowRequest& r) {
    Frame(WireOpcode::kConfigureWindow, 0);
    w->U32(r.window);
    w->U16(r.value_mask);
    w->U16(0);
    // LISTofVALUE: one 4-byte slot per set mask bit, canonical order.
    if (r.value_mask & kConfigX) w->I32(r.geometry.x);
    if (r.value_mask & kConfigY) w->I32(r.geometry.y);
    if (r.value_mask & kConfigWidth) w->U32(static_cast<uint32_t>(r.geometry.width));
    if (r.value_mask & kConfigHeight) w->U32(static_cast<uint32_t>(r.geometry.height));
    if (r.value_mask & kConfigBorderWidth) w->U32(static_cast<uint32_t>(r.border_width));
    if (r.value_mask & kConfigSibling) w->U32(r.sibling);
    if (r.value_mask & kConfigStackMode) w->U32(static_cast<uint32_t>(r.stack_mode));
  }
  void operator()(const SelectInputRequest& r) {
    Frame(WireOpcode::kSelectInput, 0);
    w->U32(r.window);
    w->U32(r.event_mask);
  }
  void operator()(const ChangeSaveSetRequest& r) {
    Frame(WireOpcode::kChangeSaveSet, r.add ? 0 : 1);
    w->U32(r.window);
  }
  void operator()(const ChangePropertyRequest& r) {
    Frame(WireOpcode::kChangeProperty, r.mode);
    w->U32(r.window);
    w->U32(r.property);
    w->U32(r.type);
    w->U8(static_cast<uint8_t>(r.format));
    w->U8(0);
    w->U16(0);
    w->U32(static_cast<uint32_t>(r.data.size()));
    w->Bytes(r.data);
  }
  void operator()(const DeletePropertyRequest& r) {
    Frame(WireOpcode::kDeleteProperty, 0);
    w->U32(r.window);
    w->U32(r.property);
  }
  void operator()(const SendEventRequest& r) {
    Frame(WireOpcode::kSendEvent, 0);
    w->U32(r.destination);
    w->U32(r.event_mask);
    EncodeEvent(r.event, 0, w);
  }
  void operator()(const SetInputFocusRequest& r) {
    Frame(WireOpcode::kSetInputFocus, 0);
    w->U32(r.window);
  }
  void operator()(const GrabButtonRequest& r) {
    Frame(WireOpcode::kGrabButton, static_cast<uint8_t>(r.button));
    w->U32(r.window);
    w->U32(r.modifiers);
    w->U32(r.event_mask);
  }
  void operator()(const UngrabButtonRequest& r) {
    Frame(WireOpcode::kUngrabButton, static_cast<uint8_t>(r.button));
    w->U32(r.window);
    w->U32(r.modifiers);
  }
  void operator()(const ClearWindowRequest& r) {
    Frame(WireOpcode::kClearWindow, 0);
    w->U32(r.window);
  }
  void operator()(const SetWindowBackgroundRequest& r) {
    Frame(WireOpcode::kSetWindowBackground, 0);
    w->U32(r.window);
    w->U8(static_cast<uint8_t>(r.background));
  }
  void operator()(const SetCursorRequest& r) {
    Frame(WireOpcode::kSetCursor, 0);
    w->U32(r.window);
    w->U16(static_cast<uint16_t>(r.name.size()));
    w->String(r.name);
  }
  void operator()(const DrawRequest& r) {
    Frame(WireOpcode::kDraw, r.kind);
    w->U32(r.window);
    PutRect(r.rect, w);
    w->U8(static_cast<uint8_t>(r.fill));
    w->U8(0);
    w->U16(static_cast<uint16_t>(r.text.size()));
    w->U16(static_cast<uint16_t>(r.bitmap_width));
    w->U16(static_cast<uint16_t>(r.bitmap_height));
    w->String(r.text);
    w->Bytes(r.bitmap_cells);
  }
  void operator()(const ShapeRegionRequest& r) {
    Frame(WireOpcode::kShapeRegion, 0);
    w->U32(r.window);
    w->U16(static_cast<uint16_t>(r.rects.size()));
    w->U16(0);
    for (const xbase::Rect& rect : r.rects) {
      PutRect(rect, w);
    }
  }
  void operator()(const ShapeClearRequest& r) {
    Frame(WireOpcode::kShapeClear, 0);
    w->U32(r.window);
  }
  void operator()(const ShapeSelectRequest& r) {
    Frame(WireOpcode::kShapeSelect, r.enable ? 1 : 0);
    w->U32(r.window);
  }
  void operator()(const GetWindowAttributesRequest& r) {
    Frame(WireOpcode::kGetWindowAttributes, 0);
    w->U32(r.window);
  }
  void operator()(const GetGeometryRequest& r) {
    Frame(WireOpcode::kGetGeometry, 0);
    w->U32(r.window);
  }
  void operator()(const QueryTreeRequest& r) {
    Frame(WireOpcode::kQueryTree, 0);
    w->U32(r.window);
  }
  void operator()(const InternAtomRequest& r) {
    Frame(WireOpcode::kInternAtom, 0);
    w->U16(static_cast<uint16_t>(r.name.size()));
    w->U16(0);
    w->String(r.name);
  }
  void operator()(const GetAtomNameRequest& r) {
    Frame(WireOpcode::kGetAtomName, 0);
    w->U32(r.atom);
  }
  void operator()(const GetPropertyRequest& r) {
    Frame(WireOpcode::kGetProperty, 0);
    w->U32(r.window);
    w->U32(r.property);
  }
  void operator()(const TranslateCoordinatesRequest& r) {
    Frame(WireOpcode::kTranslateCoordinates, 0);
    w->U32(r.src);
    w->U32(r.dst);
    w->I16(static_cast<int16_t>(r.point.x));
    w->I16(static_cast<int16_t>(r.point.y));
  }
  void operator()(const QueryScreensRequest&) { Frame(WireOpcode::kQueryScreens, 0); }
  void operator()(const QueryClientWindowsRequest&) {
    Frame(WireOpcode::kQueryClientWindows, 0);
  }
};

}  // namespace

void EncodeRequest(const Request& request, WireWriter* writer) {
  std::visit(Encoder{writer}, request);
  writer->CloseRequest();
}

std::vector<uint8_t> EncodeRequestBytes(const Request& request) {
  WireWriter writer;
  EncodeRequest(request, &writer);
  return writer.Take();
}

// ---- Request decoding -------------------------------------------------------

namespace {

// Per-opcode payload decoders.  Each reads from a reader scoped to exactly
// the frame payload (header excluded) and returns the decoded request, or a
// ParseError via `*error` (offset/opcode filled in by the caller).  The
// caller verifies reader.ok() and that the frame was fully consumed.

std::optional<Request> DecodePayload(WireOpcode opcode, uint8_t detail, WireReader& r,
                                     ParseErrorCode* code, std::string* detail_text) {
  auto fail = [&](ParseErrorCode c, const std::string& text) -> std::optional<Request> {
    *code = c;
    *detail_text = text;
    return std::nullopt;
  };

  switch (opcode) {
    case WireOpcode::kCreateWindow: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "window class not 0/1");
      }
      CreateWindowRequest out;
      out.window_class = static_cast<WindowClass>(detail);
      out.parent = r.U32();
      out.geometry = GetRect(&r);
      out.border_width = r.U16();
      out.override_redirect = r.U8() != 0;
      return out;
    }
    case WireOpcode::kDestroyWindow: {
      DestroyWindowRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kMapWindow: {
      MapWindowRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kUnmapWindow: {
      UnmapWindowRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kReparentWindow: {
      ReparentWindowRequest out;
      out.window = r.U32();
      out.parent = r.U32();
      out.position.x = r.I16();
      out.position.y = r.I16();
      return out;
    }
    case WireOpcode::kConfigureWindow: {
      ConfigureWindowRequest out;
      out.window = r.U32();
      out.value_mask = r.U16();
      r.Skip(2);
      if (out.value_mask >> 7 != 0) {
        return fail(ParseErrorCode::kBadValue, "unknown configure mask bits");
      }
      if (out.value_mask & kConfigX) out.geometry.x = r.I32();
      if (out.value_mask & kConfigY) out.geometry.y = r.I32();
      if (out.value_mask & kConfigWidth) out.geometry.width = static_cast<int>(r.U32());
      if (out.value_mask & kConfigHeight) out.geometry.height = static_cast<int>(r.U32());
      if (out.value_mask & kConfigBorderWidth) out.border_width = static_cast<int>(r.U32());
      if (out.value_mask & kConfigSibling) out.sibling = r.U32();
      if (out.value_mask & kConfigStackMode) {
        uint32_t mode = r.U32();
        if (mode > static_cast<uint32_t>(StackMode::kOpposite)) {
          return fail(ParseErrorCode::kBadValue, "stack mode out of range");
        }
        out.stack_mode = static_cast<StackMode>(mode);
      }
      return out;
    }
    case WireOpcode::kSelectInput: {
      SelectInputRequest out;
      out.window = r.U32();
      out.event_mask = r.U32();
      return out;
    }
    case WireOpcode::kChangeSaveSet: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "save-set mode not 0/1");
      }
      ChangeSaveSetRequest out;
      out.add = detail == 0;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kChangeProperty: {
      if (detail > 2) {
        return fail(ParseErrorCode::kBadValue, "property mode not 0/1/2");
      }
      ChangePropertyRequest out;
      out.mode = detail;
      out.window = r.U32();
      out.property = r.U32();
      out.type = r.U32();
      out.format = r.U8();
      if (r.ok() && out.format != 8 && out.format != 16 && out.format != 32) {
        return fail(ParseErrorCode::kBadValue, "format not 8/16/32");
      }
      r.Skip(3);
      uint32_t data_len = r.U32();
      // The embedded count must fit the frame that carries it — the classic
      // length-field lie.  Checked against remaining() before Bytes() so an
      // attacker-controlled count never becomes an allocation or a read.
      if (r.ok() && data_len > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "property data overruns frame");
      }
      std::span<const uint8_t> data = r.Bytes(data_len);
      out.data.assign(data.begin(), data.end());
      return out;
    }
    case WireOpcode::kDeleteProperty: {
      DeletePropertyRequest out;
      out.window = r.U32();
      out.property = r.U32();
      return out;
    }
    case WireOpcode::kSendEvent: {
      SendEventRequest out;
      out.destination = r.U32();
      out.event_mask = r.U32();
      std::span<const uint8_t> frame = r.Bytes(kEventWireBytes);
      if (!r.ok()) {
        return fail(ParseErrorCode::kTruncated, "embedded event frame short");
      }
      ParseError event_error;
      if (DecodeEvent(frame, &out.event, &event_error) == 0) {
        return fail(event_error.code, "embedded event: " + event_error.detail);
      }
      return out;
    }
    case WireOpcode::kSetInputFocus: {
      SetInputFocusRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kGrabButton: {
      if (detail > kMaxButton) {
        return fail(ParseErrorCode::kBadValue, "button out of range");
      }
      GrabButtonRequest out;
      out.button = detail;
      out.window = r.U32();
      out.modifiers = r.U32();
      out.event_mask = r.U32();
      return out;
    }
    case WireOpcode::kUngrabButton: {
      if (detail > kMaxButton) {
        return fail(ParseErrorCode::kBadValue, "button out of range");
      }
      UngrabButtonRequest out;
      out.button = detail;
      out.window = r.U32();
      out.modifiers = r.U32();
      return out;
    }
    case WireOpcode::kClearWindow: {
      ClearWindowRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kSetWindowBackground: {
      SetWindowBackgroundRequest out;
      out.window = r.U32();
      out.background = static_cast<char>(r.U8());
      return out;
    }
    case WireOpcode::kSetCursor: {
      SetCursorRequest out;
      out.window = r.U32();
      uint16_t len = r.U16();
      if (r.ok() && len > kMaxWireStringBytes) {
        return fail(ParseErrorCode::kOversized, "cursor name over cap");
      }
      if (r.ok() && len > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "cursor name overruns frame");
      }
      out.name = r.String(len);
      return out;
    }
    case WireOpcode::kDraw: {
      if (detail > 4) {  // xserver::DrawOp::Kind has 5 values.
        return fail(ParseErrorCode::kBadValue, "draw kind out of range");
      }
      DrawRequest out;
      out.kind = detail;
      out.window = r.U32();
      out.rect = GetRect(&r);
      out.fill = static_cast<char>(r.U8());
      r.Skip(1);
      uint16_t text_len = r.U16();
      out.bitmap_width = r.U16();
      out.bitmap_height = r.U16();
      if (r.ok() && text_len > kMaxWireStringBytes) {
        return fail(ParseErrorCode::kOversized, "draw text over cap");
      }
      uint64_t cells = static_cast<uint64_t>(out.bitmap_width) *
                       static_cast<uint64_t>(out.bitmap_height);
      if (r.ok() && cells > kMaxWireBitmapCells) {
        return fail(ParseErrorCode::kOversized, "bitmap over cell cap");
      }
      if (r.ok() && static_cast<uint64_t>(text_len) + cells > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "draw payload overruns frame");
      }
      out.text = r.String(text_len);
      std::span<const uint8_t> cell_bytes = r.Bytes(static_cast<size_t>(cells));
      out.bitmap_cells.assign(cell_bytes.begin(), cell_bytes.end());
      return out;
    }
    case WireOpcode::kShapeRegion: {
      ShapeRegionRequest out;
      out.window = r.U32();
      uint16_t count = r.U16();
      r.Skip(2);
      if (r.ok() && count > kMaxWireRects) {
        return fail(ParseErrorCode::kOversized, "shape rect count over cap");
      }
      if (r.ok() && static_cast<size_t>(count) * 8 > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "shape rects overrun frame");
      }
      out.rects.reserve(count);
      for (uint16_t i = 0; i < count && r.ok(); ++i) {
        out.rects.push_back(GetRect(&r));
      }
      return out;
    }
    case WireOpcode::kShapeClear: {
      ShapeClearRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kShapeSelect: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "shape select flag not 0/1");
      }
      ShapeSelectRequest out;
      out.enable = detail == 1;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kGetWindowAttributes: {
      GetWindowAttributesRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kGetGeometry: {
      GetGeometryRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kQueryTree: {
      QueryTreeRequest out;
      out.window = r.U32();
      return out;
    }
    case WireOpcode::kInternAtom: {
      InternAtomRequest out;
      uint16_t len = r.U16();
      r.Skip(2);
      if (r.ok() && len > kMaxWireStringBytes) {
        return fail(ParseErrorCode::kOversized, "atom name over cap");
      }
      if (r.ok() && len > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "atom name overruns frame");
      }
      out.name = r.String(len);
      return out;
    }
    case WireOpcode::kGetAtomName: {
      GetAtomNameRequest out;
      out.atom = r.U32();
      return out;
    }
    case WireOpcode::kGetProperty: {
      GetPropertyRequest out;
      out.window = r.U32();
      out.property = r.U32();
      return out;
    }
    case WireOpcode::kTranslateCoordinates: {
      TranslateCoordinatesRequest out;
      out.src = r.U32();
      out.dst = r.U32();
      out.point.x = r.I16();
      out.point.y = r.I16();
      return out;
    }
    case WireOpcode::kQueryScreens: {
      return QueryScreensRequest{};
    }
    case WireOpcode::kQueryClientWindows: {
      return QueryClientWindowsRequest{};
    }
  }
  return fail(ParseErrorCode::kBadOpcode, "opcode not implemented");
}

}  // namespace

size_t DecodeRequest(std::span<const uint8_t> buffer, Request* out, ParseError* error) {
  if (buffer.size() < 4) {
    *error = MakeError(ParseErrorCode::kTruncated, 0, buffer.empty() ? 0 : buffer[0],
                       "buffer shorter than request header");
    return 0;
  }
  uint8_t opcode = buffer[0];
  uint8_t detail = buffer[1];
  size_t frame_bytes =
      (static_cast<size_t>(buffer[2]) | static_cast<size_t>(buffer[3]) << 8) * 4;
  if (frame_bytes < 4) {
    *error = MakeError(ParseErrorCode::kBadLength, 0, opcode,
                       "frame length smaller than its header");
    return 0;
  }
  if (frame_bytes > kMaxRequestBytes) {
    *error = MakeError(ParseErrorCode::kOversized, 0, opcode,
                       "frame length exceeds kMaxRequestBytes");
    return 0;
  }
  if (frame_bytes > buffer.size()) {
    *error = MakeError(ParseErrorCode::kTruncated, 0, opcode,
                       "frame extends past end of buffer");
    return 0;
  }

  WireReader reader(buffer.subspan(4, frame_bytes - 4));
  ParseErrorCode code = ParseErrorCode::kBadValue;
  std::string detail_text;
  std::optional<Request> request =
      DecodePayload(static_cast<WireOpcode>(opcode), detail, reader, &code, &detail_text);
  if (!request.has_value()) {
    *error = MakeError(code, 0, opcode, detail_text);
    return 0;
  }
  if (!reader.ok()) {
    *error = MakeError(ParseErrorCode::kBadLength, 0, opcode,
                       "payload shorter than the request needs");
    return 0;
  }
  // Strict framing: the length field must be exactly the padded size of what
  // the payload decoder consumed.  A frame padded out further than that is a
  // length-field lie, not slack.
  size_t consumed = Pad4(4 + reader.offset());
  if (consumed != frame_bytes) {
    *error = MakeError(ParseErrorCode::kBadLength, 0, opcode,
                       "frame length disagrees with payload size");
    return 0;
  }
  *out = std::move(*request);
  return frame_bytes;
}

// ---- Reply metadata ---------------------------------------------------------

namespace {

struct ReplyInfo {
  WireOpcode opcode;
  const char* name;
};

template <typename T>
ReplyInfo ReplyInfoFor();

#define WIRE_REPLY_INFO(TYPE, OPCODE)        \
  template <>                                \
  ReplyInfo ReplyInfoFor<TYPE>() {           \
    return {WireOpcode::OPCODE, #TYPE};      \
  }

WIRE_REPLY_INFO(AttributesReply, kGetWindowAttributes)
WIRE_REPLY_INFO(GeometryReply, kGetGeometry)
WIRE_REPLY_INFO(TreeReply, kQueryTree)
WIRE_REPLY_INFO(AtomReply, kInternAtom)
WIRE_REPLY_INFO(AtomNameReply, kGetAtomName)
WIRE_REPLY_INFO(PropertyReply, kGetProperty)
WIRE_REPLY_INFO(CoordinatesReply, kTranslateCoordinates)
WIRE_REPLY_INFO(ScreensReply, kQueryScreens)
WIRE_REPLY_INFO(ClientWindowsReply, kQueryClientWindows)

#undef WIRE_REPLY_INFO

}  // namespace

WireOpcode ReplyOpcode(const Reply& reply) {
  return std::visit(
      [](const auto& r) { return ReplyInfoFor<std::decay_t<decltype(r)>>().opcode; }, reply);
}

std::string WireReplyName(const Reply& reply) {
  return std::visit(
      [](const auto& r) { return std::string(ReplyInfoFor<std::decay_t<decltype(r)>>().name); },
      reply);
}

// ---- Reply encoding ---------------------------------------------------------

namespace {

struct ReplyEncoder {
  WireWriter* w;

  void operator()(const AttributesReply& r) {
    w->U32(r.window);
    w->U8(static_cast<uint8_t>(r.window_class));
    w->U8(static_cast<uint8_t>(r.map_state));
    w->U8(r.override_redirect ? 1 : 0);
    w->U8(0);
    w->U32(r.all_event_masks);
    w->U16(static_cast<uint16_t>(r.border_width));
  }
  void operator()(const GeometryReply& r) {
    w->U32(r.window);
    PutRect(r.geometry, w);
    w->U16(static_cast<uint16_t>(r.border_width));
  }
  void operator()(const TreeReply& r) {
    w->U32(r.window);
    w->U32(r.root);
    w->U32(r.parent);
    size_t count = std::min(r.children.size(), kMaxReplyChildren);
    w->U32(static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      w->U32(r.children[i]);
    }
  }
  void operator()(const AtomReply& r) { w->U32(r.atom); }
  void operator()(const AtomNameReply& r) {
    w->U32(r.atom);
    size_t len = std::min(r.name.size(), kMaxWireStringBytes);
    w->U16(static_cast<uint16_t>(len));
    w->String(r.name.substr(0, len));
  }
  void operator()(const PropertyReply& r) {
    w->U32(r.window);
    w->U32(r.property);
    w->U32(r.type);
    w->U8(static_cast<uint8_t>(r.format));
    w->U8(r.found ? 1 : 0);
    w->U16(0);
    size_t len = std::min(r.data.size(), kMaxReplyPropertyBytes);
    w->U32(static_cast<uint32_t>(len));
    w->Bytes(std::span<const uint8_t>(r.data.data(), len));
  }
  void operator()(const CoordinatesReply& r) {
    w->I32(r.position.x);
    w->I32(r.position.y);
  }
  void operator()(const ScreensReply& r) {
    size_t count = std::min(r.screens.size(), kMaxReplyChildren);
    w->U32(static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      const ScreensReply::Screen& s = r.screens[i];
      w->U32(s.root);
      w->U16(static_cast<uint16_t>(s.width));
      w->U16(static_cast<uint16_t>(s.height));
      w->U8(s.monochrome ? 1 : 0);
      w->U8(0);
      w->U16(0);
    }
  }
  void operator()(const ClientWindowsReply& r) {
    size_t count = std::min(r.windows.size(), kMaxReplyChildren);
    w->U32(static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      w->U32(r.windows[i]);
    }
  }
};

}  // namespace

void EncodeReply(const Reply& reply, uint16_t sequence, WireWriter* writer) {
  size_t start = writer->bytes().size();
  writer->U8(1);  // Replies are frame type 1, as in core X11.
  writer->U8(static_cast<uint8_t>(ReplyOpcode(reply)));
  writer->U16(sequence);
  writer->U32(0);  // Extra length, patched below.
  std::visit(ReplyEncoder{writer}, reply);
  // Pad to the 4-byte grid and to the 32-byte floor, then patch the length
  // field with the 4-byte units beyond the floor.
  while ((writer->bytes().size() - start) % 4 != 0 ||
         writer->bytes().size() - start < kMinReplyBytes) {
    writer->U8(0);
  }
  size_t frame_bytes = writer->bytes().size() - start;
  writer->PatchU32(start + 4, static_cast<uint32_t>((frame_bytes - kMinReplyBytes) / 4));
}

std::vector<uint8_t> EncodeReplyBytes(const Reply& reply, uint16_t sequence) {
  WireWriter writer;
  EncodeReply(reply, sequence, &writer);
  return writer.Take();
}

// ---- Reply decoding ---------------------------------------------------------

namespace {

std::optional<Reply> DecodeReplyPayload(WireOpcode opcode, WireReader& r,
                                        ParseErrorCode* code, std::string* detail_text) {
  auto fail = [&](ParseErrorCode c, const std::string& text) -> std::optional<Reply> {
    *code = c;
    *detail_text = text;
    return std::nullopt;
  };

  switch (opcode) {
    case WireOpcode::kGetWindowAttributes: {
      AttributesReply out;
      out.window = r.U32();
      uint8_t window_class = r.U8();
      uint8_t map_state = r.U8();
      uint8_t override_redirect = r.U8();
      r.Skip(1);
      if (r.ok() && window_class > 1) {
        return fail(ParseErrorCode::kBadValue, "window class not 0/1");
      }
      if (r.ok() && map_state > 2) {
        return fail(ParseErrorCode::kBadValue, "map state out of range");
      }
      if (r.ok() && override_redirect > 1) {
        return fail(ParseErrorCode::kBadValue, "override flag not 0/1");
      }
      out.window_class = static_cast<WindowClass>(window_class);
      out.map_state = static_cast<MapState>(map_state);
      out.override_redirect = override_redirect == 1;
      out.all_event_masks = r.U32();
      out.border_width = r.U16();
      return out;
    }
    case WireOpcode::kGetGeometry: {
      GeometryReply out;
      out.window = r.U32();
      out.geometry = GetRect(&r);
      out.border_width = r.U16();
      return out;
    }
    case WireOpcode::kQueryTree: {
      TreeReply out;
      out.window = r.U32();
      out.root = r.U32();
      out.parent = r.U32();
      uint32_t count = r.U32();
      if (r.ok() && count > kMaxReplyChildren) {
        return fail(ParseErrorCode::kOversized, "child count over cap");
      }
      if (r.ok() && static_cast<uint64_t>(count) * 4 > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "child list overruns frame");
      }
      out.children.reserve(count);
      for (uint32_t i = 0; i < count && r.ok(); ++i) {
        out.children.push_back(r.U32());
      }
      return out;
    }
    case WireOpcode::kInternAtom: {
      AtomReply out;
      out.atom = r.U32();
      return out;
    }
    case WireOpcode::kGetAtomName: {
      AtomNameReply out;
      out.atom = r.U32();
      uint16_t len = r.U16();
      if (r.ok() && len > kMaxWireStringBytes) {
        return fail(ParseErrorCode::kOversized, "atom name over cap");
      }
      if (r.ok() && len > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "atom name overruns frame");
      }
      out.name = r.String(len);
      return out;
    }
    case WireOpcode::kGetProperty: {
      PropertyReply out;
      out.window = r.U32();
      out.property = r.U32();
      out.type = r.U32();
      out.format = r.U8();
      uint8_t found = r.U8();
      r.Skip(2);
      if (r.ok() && out.format != 8 && out.format != 16 && out.format != 32) {
        return fail(ParseErrorCode::kBadValue, "format not 8/16/32");
      }
      if (r.ok() && found > 1) {
        return fail(ParseErrorCode::kBadValue, "found flag not 0/1");
      }
      out.found = found == 1;
      uint32_t data_len = r.U32();
      if (r.ok() && data_len > kMaxReplyPropertyBytes) {
        return fail(ParseErrorCode::kOversized, "property data over cap");
      }
      if (r.ok() && data_len > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "property data overruns frame");
      }
      std::span<const uint8_t> data = r.Bytes(data_len);
      out.data.assign(data.begin(), data.end());
      return out;
    }
    case WireOpcode::kTranslateCoordinates: {
      CoordinatesReply out;
      out.position.x = r.I32();
      out.position.y = r.I32();
      return out;
    }
    case WireOpcode::kQueryScreens: {
      ScreensReply out;
      uint32_t count = r.U32();
      if (r.ok() && count > kMaxReplyChildren) {
        return fail(ParseErrorCode::kOversized, "screen count over cap");
      }
      if (r.ok() && static_cast<uint64_t>(count) * 12 > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "screen list overruns frame");
      }
      out.screens.reserve(count);
      for (uint32_t i = 0; i < count && r.ok(); ++i) {
        ScreensReply::Screen s;
        s.root = r.U32();
        s.width = r.U16();
        s.height = r.U16();
        uint8_t mono = r.U8();
        r.Skip(3);
        if (r.ok() && mono > 1) {
          return fail(ParseErrorCode::kBadValue, "monochrome flag not 0/1");
        }
        s.monochrome = mono == 1;
        out.screens.push_back(s);
      }
      return out;
    }
    case WireOpcode::kQueryClientWindows: {
      ClientWindowsReply out;
      uint32_t count = r.U32();
      if (r.ok() && count > kMaxReplyChildren) {
        return fail(ParseErrorCode::kOversized, "window count over cap");
      }
      if (r.ok() && static_cast<uint64_t>(count) * 4 > r.remaining()) {
        return fail(ParseErrorCode::kBadLength, "window list overruns frame");
      }
      out.windows.reserve(count);
      for (uint32_t i = 0; i < count && r.ok(); ++i) {
        out.windows.push_back(r.U32());
      }
      return out;
    }
    default:
      return fail(ParseErrorCode::kBadOpcode, "opcode has no reply");
  }
}

}  // namespace

size_t DecodeReply(std::span<const uint8_t> buffer, Reply* out, ParseError* error,
                   uint16_t* sequence) {
  if (buffer.size() < 8) {
    *error = MakeError(ParseErrorCode::kTruncated, 0, buffer.empty() ? 0 : buffer[0],
                       "buffer shorter than reply header");
    return 0;
  }
  if (buffer[0] != 1) {
    *error = MakeError(ParseErrorCode::kBadOpcode, 0, buffer[0],
                       "reply frames start with a one byte");
    return 0;
  }
  uint8_t opcode = buffer[1];
  uint32_t extra = 0;
  for (int i = 3; i >= 0; --i) {
    extra = extra << 8 | buffer[4 + static_cast<size_t>(i)];
  }
  if (extra > (kMaxReplyBytes - kMinReplyBytes) / 4) {
    *error = MakeError(ParseErrorCode::kOversized, 0, opcode,
                       "frame length exceeds kMaxReplyBytes");
    return 0;
  }
  size_t frame_bytes = kMinReplyBytes + static_cast<size_t>(extra) * 4;
  if (frame_bytes > buffer.size()) {
    *error = MakeError(ParseErrorCode::kTruncated, 0, opcode,
                       "frame extends past end of buffer");
    return 0;
  }

  WireReader reader(buffer.subspan(8, frame_bytes - 8));
  ParseErrorCode code = ParseErrorCode::kBadValue;
  std::string detail_text;
  std::optional<Reply> reply =
      DecodeReplyPayload(static_cast<WireOpcode>(opcode), reader, &code, &detail_text);
  if (!reply.has_value()) {
    *error = MakeError(code, 0, opcode, detail_text);
    return 0;
  }
  if (!reader.ok()) {
    *error = MakeError(ParseErrorCode::kBadLength, 0, opcode,
                       "payload shorter than the reply needs");
    return 0;
  }
  // Strict framing, as for requests: the length field must name exactly the
  // padded size of what the payload decoder consumed (with the 32-byte
  // floor).  Anything else is a length-field lie.
  size_t consumed = std::max(kMinReplyBytes, Pad4(8 + reader.offset()));
  if (consumed != frame_bytes) {
    *error = MakeError(ParseErrorCode::kBadLength, 0, opcode,
                       "frame length disagrees with payload size");
    return 0;
  }
  if (sequence != nullptr) {
    *sequence = static_cast<uint16_t>(buffer[2]) |
                static_cast<uint16_t>(static_cast<uint16_t>(buffer[3]) << 8);
  }
  *out = std::move(*reply);
  return frame_bytes;
}

// ---- Event encoding ---------------------------------------------------------

namespace {

// Event codes on the wire (core X11 numbering; ShapeNotify uses the typical
// extension base).
enum : uint8_t {
  kWireKeyPress = 2,
  kWireKeyRelease = 3,
  kWireButtonPress = 4,
  kWireButtonRelease = 5,
  kWireMotionNotify = 6,
  kWireEnterNotify = 7,
  kWireLeaveNotify = 8,
  kWireFocusIn = 9,
  kWireFocusOut = 10,
  kWireExpose = 12,
  kWireCreateNotify = 16,
  kWireDestroyNotify = 17,
  kWireUnmapNotify = 18,
  kWireMapNotify = 19,
  kWireMapRequest = 20,
  kWireReparentNotify = 21,
  kWireConfigureNotify = 22,
  kWireConfigureRequest = 23,
  kWireCirculateRequest = 27,
  kWirePropertyNotify = 28,
  kWireClientMessage = 33,
  kWireShapeNotify = 64,
};

void PutPoint16(const xbase::Point& p, WireWriter* w) {
  w->I16(static_cast<int16_t>(p.x));
  w->I16(static_cast<int16_t>(p.y));
}

xbase::Point GetPoint16(WireReader* r) {
  xbase::Point p;
  p.x = r->I16();
  p.y = r->I16();
  return p;
}

struct EventEncoder {
  WireWriter* w;

  void Header(uint8_t code, uint8_t detail) {
    w->U8(code);
    w->U8(detail);
    w->U16(0);  // Sequence, patched by EncodeEvent.
  }

  void operator()(const ButtonEvent& e) {
    Header(e.press ? kWireButtonPress : kWireButtonRelease, static_cast<uint8_t>(e.button));
    w->U32(e.window);
    w->U32(e.subwindow);
    w->U32(e.modifiers);
    PutPoint16(e.root_pos, w);
    PutPoint16(e.pos, w);
    w->U64(e.time);
  }
  void operator()(const MotionEvent& e) {
    Header(kWireMotionNotify, 0);
    w->U32(e.window);
    w->U32(e.subwindow);
    w->U32(e.modifiers);
    PutPoint16(e.root_pos, w);
    PutPoint16(e.pos, w);
    w->U64(e.time);
  }
  void operator()(const KeyEvent& e) {
    Header(e.press ? kWireKeyPress : kWireKeyRelease, 0);
    w->U32(e.window);
    w->U32(e.keysym);
    w->U32(e.modifiers);
    PutPoint16(e.root_pos, w);
    PutPoint16(e.pos, w);
    w->U64(e.time);
  }
  void operator()(const CrossingEvent& e) {
    Header(e.enter ? kWireEnterNotify : kWireLeaveNotify, 0);
    w->U32(e.window);
    PutPoint16(e.root_pos, w);
    PutPoint16(e.pos, w);
    w->U64(e.time);
  }
  void operator()(const ExposeEvent& e) {
    Header(kWireExpose, 0);
    w->U32(e.window);
    PutRect(e.area, w);
    w->I32(e.count);
  }
  void operator()(const CreateNotifyEvent& e) {
    Header(kWireCreateNotify, e.override_redirect ? 1 : 0);
    w->U32(e.parent);
    w->U32(e.window);
    PutRect(e.geometry, w);
  }
  void operator()(const DestroyNotifyEvent& e) {
    Header(kWireDestroyNotify, 0);
    w->U32(e.event_window);
    w->U32(e.window);
  }
  void operator()(const MapRequestEvent& e) {
    Header(kWireMapRequest, 0);
    w->U32(e.parent);
    w->U32(e.window);
  }
  void operator()(const MapNotifyEvent& e) {
    Header(kWireMapNotify, e.override_redirect ? 1 : 0);
    w->U32(e.event_window);
    w->U32(e.window);
  }
  void operator()(const UnmapNotifyEvent& e) {
    Header(kWireUnmapNotify, e.from_configure ? 1 : 0);
    w->U32(e.event_window);
    w->U32(e.window);
  }
  void operator()(const ReparentNotifyEvent& e) {
    Header(kWireReparentNotify, e.override_redirect ? 1 : 0);
    w->U32(e.event_window);
    w->U32(e.window);
    w->U32(e.parent);
    PutPoint16(e.pos, w);
  }
  void operator()(const ConfigureRequestEvent& e) {
    Header(kWireConfigureRequest, static_cast<uint8_t>(e.stack_mode));
    w->U32(e.parent);
    w->U32(e.window);
    w->U32(e.sibling);
    PutRect(e.geometry, w);
    w->I16(static_cast<int16_t>(e.border_width));
    w->U16(e.value_mask);
  }
  void operator()(const ConfigureNotifyEvent& e) {
    uint8_t flags = (e.override_redirect ? 1 : 0) | (e.synthetic ? 2 : 0);
    Header(kWireConfigureNotify, flags);
    w->U32(e.event_window);
    w->U32(e.window);
    w->U32(e.above_sibling);
    PutRect(e.geometry, w);
    w->I16(static_cast<int16_t>(e.border_width));
  }
  void operator()(const CirculateRequestEvent& e) {
    Header(kWireCirculateRequest, e.place_on_top ? 0 : 1);
    w->U32(e.parent);
    w->U32(e.window);
  }
  void operator()(const PropertyNotifyEvent& e) {
    Header(kWirePropertyNotify, static_cast<uint8_t>(e.state));
    w->U32(e.window);
    w->U32(e.atom);
    w->U64(e.time);
  }
  void operator()(const ClientMessageEvent& e) {
    Header(kWireClientMessage, static_cast<uint8_t>(e.format));
    w->U32(e.window);
    w->U32(e.message_type);
    for (uint32_t word : e.data) {
      w->U32(word);
    }
  }
  void operator()(const FocusEvent& e) {
    Header(e.in ? kWireFocusIn : kWireFocusOut, 0);
    w->U32(e.window);
  }
  void operator()(const ShapeNotifyEvent& e) {
    Header(kWireShapeNotify, e.shaped ? 1 : 0);
    w->U32(e.window);
    PutRect(e.extents, w);
  }
};

}  // namespace

void EncodeEvent(const Event& event, uint16_t sequence, WireWriter* writer) {
  size_t start = writer->bytes().size();
  std::visit(EventEncoder{writer}, event);
  // Pad the frame to exactly 32 bytes and patch the sequence.
  while (writer->bytes().size() - start < kEventWireBytes) {
    writer->U8(0);
  }
  writer->PatchU16(start + 2, sequence);
}

std::vector<uint8_t> EncodeEventBytes(const Event& event, uint16_t sequence) {
  WireWriter writer;
  EncodeEvent(event, sequence, &writer);
  return writer.Take();
}

size_t DecodeEvent(std::span<const uint8_t> buffer, Event* out, ParseError* error,
                   uint16_t* sequence) {
  if (buffer.size() < kEventWireBytes) {
    *error = MakeError(ParseErrorCode::kTruncated, 0, buffer.empty() ? 0 : buffer[0],
                       "event frame shorter than 32 bytes");
    return 0;
  }
  uint8_t code = buffer[0];
  uint8_t detail = buffer[1];
  if (sequence != nullptr) {
    *sequence = static_cast<uint16_t>(buffer[2]) |
                static_cast<uint16_t>(static_cast<uint16_t>(buffer[3]) << 8);
  }
  WireReader r(buffer.subspan(4, kEventWireBytes - 4));

  auto fail = [&](ParseErrorCode c, const std::string& text) -> size_t {
    *error = MakeError(c, 0, code, text);
    return 0;
  };

  switch (code) {
    case kWireButtonPress:
    case kWireButtonRelease: {
      if (detail < 1 || detail > kMaxButton) {
        return fail(ParseErrorCode::kBadValue, "button out of range");
      }
      ButtonEvent e;
      e.press = code == kWireButtonPress;
      e.button = detail;
      e.window = r.U32();
      e.subwindow = r.U32();
      e.modifiers = r.U32();
      e.root_pos = GetPoint16(&r);
      e.pos = GetPoint16(&r);
      e.time = r.U64();
      *out = e;
      break;
    }
    case kWireMotionNotify: {
      MotionEvent e;
      e.window = r.U32();
      e.subwindow = r.U32();
      e.modifiers = r.U32();
      e.root_pos = GetPoint16(&r);
      e.pos = GetPoint16(&r);
      e.time = r.U64();
      *out = e;
      break;
    }
    case kWireKeyPress:
    case kWireKeyRelease: {
      KeyEvent e;
      e.press = code == kWireKeyPress;
      e.window = r.U32();
      e.keysym = r.U32();
      e.modifiers = r.U32();
      e.root_pos = GetPoint16(&r);
      e.pos = GetPoint16(&r);
      e.time = r.U64();
      *out = e;
      break;
    }
    case kWireEnterNotify:
    case kWireLeaveNotify: {
      CrossingEvent e;
      e.enter = code == kWireEnterNotify;
      e.window = r.U32();
      e.root_pos = GetPoint16(&r);
      e.pos = GetPoint16(&r);
      e.time = r.U64();
      *out = e;
      break;
    }
    case kWireExpose: {
      ExposeEvent e;
      e.window = r.U32();
      e.area = GetRect(&r);
      e.count = r.I32();
      *out = e;
      break;
    }
    case kWireCreateNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "override flag not 0/1");
      }
      CreateNotifyEvent e;
      e.override_redirect = detail == 1;
      e.parent = r.U32();
      e.window = r.U32();
      e.geometry = GetRect(&r);
      *out = e;
      break;
    }
    case kWireDestroyNotify: {
      DestroyNotifyEvent e;
      e.event_window = r.U32();
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWireMapRequest: {
      MapRequestEvent e;
      e.parent = r.U32();
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWireMapNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "override flag not 0/1");
      }
      MapNotifyEvent e;
      e.override_redirect = detail == 1;
      e.event_window = r.U32();
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWireUnmapNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "from-configure flag not 0/1");
      }
      UnmapNotifyEvent e;
      e.from_configure = detail == 1;
      e.event_window = r.U32();
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWireReparentNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "override flag not 0/1");
      }
      ReparentNotifyEvent e;
      e.override_redirect = detail == 1;
      e.event_window = r.U32();
      e.window = r.U32();
      e.parent = r.U32();
      e.pos = GetPoint16(&r);
      *out = e;
      break;
    }
    case kWireConfigureRequest: {
      if (detail > static_cast<uint8_t>(StackMode::kOpposite)) {
        return fail(ParseErrorCode::kBadValue, "stack mode out of range");
      }
      ConfigureRequestEvent e;
      e.stack_mode = static_cast<StackMode>(detail);
      e.parent = r.U32();
      e.window = r.U32();
      e.sibling = r.U32();
      e.geometry = GetRect(&r);
      e.border_width = r.I16();
      e.value_mask = r.U16();
      if (e.value_mask >> 7 != 0) {
        return fail(ParseErrorCode::kBadValue, "unknown configure mask bits");
      }
      *out = e;
      break;
    }
    case kWireConfigureNotify: {
      if (detail > 3) {
        return fail(ParseErrorCode::kBadValue, "flags beyond override|synthetic");
      }
      ConfigureNotifyEvent e;
      e.override_redirect = (detail & 1) != 0;
      e.synthetic = (detail & 2) != 0;
      e.event_window = r.U32();
      e.window = r.U32();
      e.above_sibling = r.U32();
      e.geometry = GetRect(&r);
      e.border_width = r.I16();
      *out = e;
      break;
    }
    case kWireCirculateRequest: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "place flag not 0/1");
      }
      CirculateRequestEvent e;
      e.place_on_top = detail == 0;
      e.parent = r.U32();
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWirePropertyNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "property state not 0/1");
      }
      PropertyNotifyEvent e;
      e.state = static_cast<PropertyState>(detail);
      e.window = r.U32();
      e.atom = r.U32();
      e.time = r.U64();
      *out = e;
      break;
    }
    case kWireClientMessage: {
      if (detail != 8 && detail != 16 && detail != 32) {
        return fail(ParseErrorCode::kBadValue, "format not 8/16/32");
      }
      ClientMessageEvent e;
      e.format = detail;
      e.window = r.U32();
      e.message_type = r.U32();
      for (uint32_t& word : e.data) {
        word = r.U32();
      }
      *out = e;
      break;
    }
    case kWireFocusIn:
    case kWireFocusOut: {
      FocusEvent e;
      e.in = code == kWireFocusIn;
      e.window = r.U32();
      *out = e;
      break;
    }
    case kWireShapeNotify: {
      if (detail > 1) {
        return fail(ParseErrorCode::kBadValue, "shaped flag not 0/1");
      }
      ShapeNotifyEvent e;
      e.shaped = detail == 1;
      e.window = r.U32();
      e.extents = GetRect(&r);
      *out = e;
      break;
    }
    default:
      return fail(ParseErrorCode::kBadOpcode, "event code not implemented");
  }
  // The payload reader is scoped to the 28-byte body, so ok() can only fail
  // if a decoder above consumed more than fits — a codec bug, not an input
  // property.  Guard anyway: never let a short read masquerade as success.
  if (!r.ok()) {
    return fail(ParseErrorCode::kTruncated, "event body short");
  }
  return kEventWireBytes;
}

// ---- Error encoding ---------------------------------------------------------

void EncodeError(const XError& error, WireWriter* writer) {
  size_t start = writer->bytes().size();
  writer->U8(0);  // Errors are frame type 0, as in core X11.
  writer->U8(static_cast<uint8_t>(error.code));
  writer->U16(static_cast<uint16_t>(error.sequence));
  writer->U32(error.resource_id);
  writer->U64(error.sequence);
  writer->U8(static_cast<uint8_t>(error.request));
  while (writer->bytes().size() - start < kEventWireBytes) {
    writer->U8(0);
  }
}

size_t DecodeError(std::span<const uint8_t> buffer, XError* out, ParseError* parse_error) {
  if (buffer.size() < kEventWireBytes) {
    *parse_error = MakeError(ParseErrorCode::kTruncated, 0, 0, "error frame short");
    return 0;
  }
  if (buffer[0] != 0) {
    *parse_error = MakeError(ParseErrorCode::kBadOpcode, 0, buffer[0],
                             "error frames start with a zero byte");
    return 0;
  }
  if (buffer[1] > static_cast<uint8_t>(ErrorCode::kBadLength)) {
    *parse_error = MakeError(ParseErrorCode::kBadValue, 0, 0, "error code out of range");
    return 0;
  }
  WireReader r(buffer.subspan(4, kEventWireBytes - 4));
  out->code = static_cast<ErrorCode>(buffer[1]);
  out->resource_id = r.U32();
  out->sequence = r.U64();
  uint8_t request = r.U8();
  if (request > kMaxRequestCode) {
    *parse_error = MakeError(ParseErrorCode::kBadValue, 0, 0, "request code out of range");
    return 0;
  }
  out->request = static_cast<RequestCode>(request);
  return kEventWireBytes;
}

}  // namespace xproto
