// Framed byte transport for the duplex wire protocol (docs/PROTOCOL.md,
// "Connection lifecycle").
//
// Three layers, all protocol-agnostic about *content* and strict about
// *framing*:
//
//   * ByteChannel — one end of a non-blocking byte pipe.  The production
//     implementation wraps an AF_UNIX SOCK_STREAM socketpair(2) fd (a
//     pipe-pair fallback glues two pipe(2)s into one duplex end), so bytes
//     really cross a kernel boundary and arrive in arbitrary slices.
//
//   * FrameReassembler — turns an arbitrary-sliced byte stream back into
//     wire frames.  It understands both stream directions: client→server
//     carries request frames ([opcode][detail][len u16 in 4-byte units]),
//     server→client carries 32-byte errors (first byte 0), replies (first
//     byte 1, 32-byte minimum with a u32 extra-length) and 32-byte events
//     (first byte >= 2).  Hostile length fields never make it buffer more
//     than its cap: an oversized or undersized frame is surrendered as-is
//     for the decoder to reject, and a peer that streams an unbounded
//     partial frame trips overflowed().
//
//   * WireClientEndpoint — the minimal client end of a framed connection:
//     queue request bytes, flush them through the channel (handling short
//     writes), and split the inbound server stream into frames.
//
// The server-side peer of all this is xserver::Connection, which adds
// lifecycle states, backpressure accounting and fault injection.
#ifndef SRC_XPROTO_TRANSPORT_H_
#define SRC_XPROTO_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/xproto/wire.h"

namespace xproto {

// ---- Byte channels ----------------------------------------------------------

enum class IoStatus : uint8_t {
  kOk,          // Some bytes moved.
  kWouldBlock,  // No bytes available / peer's buffer full; try again later.
  kClosed,      // Peer closed its end (EOF on read, EPIPE on write).
  kError,       // Unrecoverable transport error.
};

// One end of a non-blocking byte pipe.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  // Writes up to data.size() bytes; `*written` is how many were accepted.
  // kOk with *written < data.size() is a short write, not an error.
  virtual IoStatus Write(std::span<const uint8_t> data, size_t* written) = 0;
  // Reads up to `cap` bytes into `buf`; `*bytes_read` is how many arrived.
  virtual IoStatus Read(uint8_t* buf, size_t cap, size_t* bytes_read) = 0;
  virtual void Close() = 0;
  virtual bool IsOpen() const = 0;

  // The underlying kernel fds, for readiness polling (epoll registration,
  // poll(2) waits) and targeted shutdown(2) in tests.  The fd stays owned
  // by the channel — callers must not close it.  -1 when the channel has no
  // kernel fd (closed, or a test double).
  virtual int ReadFd() const { return -1; }
  virtual int WriteFd() const { return -1; }
};

// A connected pair of channel ends.  Both null if creation failed (logged).
struct ChannelPair {
  std::unique_ptr<ByteChannel> client;
  std::unique_ptr<ByteChannel> server;
};

// AF_UNIX SOCK_STREAM socketpair(2), both ends non-blocking.  A non-zero
// `buffer_bytes` shrinks SO_SNDBUF/SO_RCVBUF (tests use a tiny buffer to
// exercise backpressure deterministically).
ChannelPair MakeSocketPair(size_t buffer_bytes = 0);

// Two pipe(2)s glued into one duplex channel per end — the fallback when
// socketpair is unavailable, and a second kernel path for the fuzzers.
ChannelPair MakePipePair();

// ---- Listening sockets ------------------------------------------------------

// A bound, listening AF_UNIX SOCK_STREAM socket that genuinely separate
// processes connect to (docs/PROTOCOL.md "Out-of-process operation").
// Paths beginning with '@' name the Linux abstract namespace (no filesystem
// entry, auto-reclaimed on process death); filesystem paths have any stale
// socket left by a crashed predecessor unlinked before bind, and are
// unlinked again on destruction.
class Listener {
 public:
  explicit Listener(const std::string& path, int backlog = 16);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool ok() const { return fd_ >= 0; }
  // The listening fd, for epoll registration.  Owned by the Listener.
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  // Accepts one pending connection as a non-blocking ByteChannel, or
  // nullptr when none is pending (EAGAIN) or the accept failed (logged).
  // Call in a loop on listener readability until it returns nullptr.
  std::unique_ptr<ByteChannel> Accept();

  void Close();

 private:
  int fd_ = -1;
  std::string path_;
  bool unlink_on_close_ = false;
};

// Connects to a Listener's socket (same '@' abstract-namespace convention)
// and returns the non-blocking client channel, or nullptr on failure.
std::unique_ptr<ByteChannel> ConnectSocket(const std::string& path);

// ---- Frame reassembly -------------------------------------------------------

enum class FrameStream : uint8_t {
  kRequests,        // client→server: request frames.
  kServerToClient,  // server→client: errors / replies / events.
};

// Size in bytes of the frame whose header starts `head`, or nullopt if not
// enough bytes have arrived to know.  A length field naming an oversized or
// undersized frame yields the *header* size so the decoder sees (and
// rejects) the lie instead of the reassembler waiting forever.
std::optional<size_t> FrameBytesAtHead(FrameStream stream, std::span<const uint8_t> head);

class FrameReassembler {
 public:
  explicit FrameReassembler(FrameStream stream, size_t buffer_cap = kMaxRequestBytes * 4);

  // Appends incoming stream bytes.  Returns false — and latches
  // overflowed() — when buffering them would exceed the cap with no
  // complete frame to show for it (a peer streaming an unbounded frame).
  bool Feed(std::span<const uint8_t> bytes);

  // Extracts the next complete frame, or nullopt if none is buffered.
  std::optional<std::vector<uint8_t>> NextFrame();

  // Drains every complete frame into one contiguous buffer (what a server
  // pump hands to DispatchBytes); a trailing partial frame stays buffered.
  std::vector<uint8_t> TakeFrames();

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool overflowed() const { return overflowed_; }
  uint64_t frames_assembled() const { return frames_assembled_; }

 private:
  // Size of the frame at the head of the buffer, or nullopt.
  std::optional<size_t> HeadFrameBytes() const;
  void Compact();

  FrameStream stream_;
  size_t buffer_cap_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out.
  bool overflowed_ = false;
  uint64_t frames_assembled_ = 0;
};

// ---- Client endpoint --------------------------------------------------------

// The client end of a framed connection.  Single-threaded, non-blocking:
// callers interleave Flush()/Poll() with the server's pump.
class WireClientEndpoint {
 public:
  explicit WireClientEndpoint(std::unique_ptr<ByteChannel> channel);

  void QueueRequest(const Request& request);
  void QueueBytes(std::span<const uint8_t> bytes);
  // Writes as much of the queue as the channel accepts.
  IoStatus Flush();
  // Reads whatever the channel has into the reassembler.
  IoStatus Poll();
  // Next complete server→client frame (error, reply or event bytes).
  std::optional<std::vector<uint8_t>> NextFrame();
  // Polls, then scans frames for the next *reply*, decoding it into `*out`
  // (other frame types are discarded here; lifecycle tests that care about
  // events/errors use NextFrame directly).  Returns false when no reply
  // frame is currently available or the frame failed to decode.
  bool NextReply(Reply* out, ParseError* error, uint16_t* sequence = nullptr);

  bool open() const { return channel_ && channel_->IsOpen(); }
  void Close();
  // Writes only a prefix of the queued bytes (cutting the final frame in
  // half) and closes — a client dying mid-request, for the kill-tests.
  void CloseMidFrame();

  size_t queued_bytes() const { return outbox_.size() - outbox_sent_; }
  FrameReassembler& reassembler() { return inbound_; }
  // The channel's read fd, for poll(2)/epoll waits.  -1 when closed.
  int PollFd() const { return channel_ ? channel_->ReadFd() : -1; }
  ByteChannel* channel() { return channel_.get(); }

 private:
  std::unique_ptr<ByteChannel> channel_;
  std::vector<uint8_t> outbox_;
  size_t outbox_sent_ = 0;
  FrameReassembler inbound_{FrameStream::kServerToClient};
};

}  // namespace xproto

#endif  // SRC_XPROTO_TRANSPORT_H_
