// Event structures delivered by the server simulator.  One struct per
// protocol event; `Event` is the variant delivered to client queues.
#ifndef SRC_XPROTO_EVENTS_H_
#define SRC_XPROTO_EVENTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "src/base/geometry.h"
#include "src/xproto/types.h"

namespace xproto {

struct ButtonEvent {
  bool press = true;
  WindowId window = kNone;     // Event window (where delivered).
  WindowId subwindow = kNone;  // Child of event window containing pointer.
  int button = 1;
  uint32_t modifiers = 0;
  xbase::Point root_pos;  // Pointer position in (real) root coordinates.
  xbase::Point pos;       // Pointer position relative to event window.
  Timestamp time = 0;
};

struct MotionEvent {
  WindowId window = kNone;
  WindowId subwindow = kNone;
  uint32_t modifiers = 0;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
};

struct KeyEvent {
  bool press = true;
  WindowId window = kNone;
  KeySym keysym = 0;
  uint32_t modifiers = 0;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
};

struct CrossingEvent {
  bool enter = true;
  WindowId window = kNone;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
};

struct ExposeEvent {
  WindowId window = kNone;
  xbase::Rect area;
  int count = 0;  // Number of Expose events still to come for this window.
};

struct CreateNotifyEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  xbase::Rect geometry;
  bool override_redirect = false;
};

struct DestroyNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
};

struct MapRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
};

struct MapNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  bool override_redirect = false;
};

struct UnmapNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  bool from_configure = false;
};

struct ReparentNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  WindowId parent = kNone;
  xbase::Point pos;
  bool override_redirect = false;
};

struct ConfigureRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  uint16_t value_mask = 0;
  xbase::Rect geometry;
  int border_width = 0;
  WindowId sibling = kNone;
  StackMode stack_mode = StackMode::kAbove;
};

struct ConfigureNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  xbase::Rect geometry;  // Relative to parent; synthetic events carry
                         // root-relative coordinates per ICCCM §4.1.5.
  int border_width = 0;
  WindowId above_sibling = kNone;
  bool override_redirect = false;
  bool synthetic = false;
};

struct CirculateRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  bool place_on_top = true;
};

struct PropertyNotifyEvent {
  WindowId window = kNone;
  AtomId atom = kAtomNone;
  PropertyState state = PropertyState::kNewValue;
  Timestamp time = 0;
};

struct ClientMessageEvent {
  WindowId window = kNone;
  AtomId message_type = kAtomNone;
  int format = 32;
  std::array<uint32_t, 5> data = {};
};

struct FocusEvent {
  bool in = true;
  WindowId window = kNone;
};

struct ShapeNotifyEvent {
  WindowId window = kNone;
  bool shaped = false;
  xbase::Rect extents;
};

using Event =
    std::variant<ButtonEvent, MotionEvent, KeyEvent, CrossingEvent, ExposeEvent,
                 CreateNotifyEvent, DestroyNotifyEvent, MapRequestEvent, MapNotifyEvent,
                 UnmapNotifyEvent, ReparentNotifyEvent, ConfigureRequestEvent,
                 ConfigureNotifyEvent, CirculateRequestEvent, PropertyNotifyEvent,
                 ClientMessageEvent, FocusEvent, ShapeNotifyEvent>;

// Human-readable event name for logging/tests.
std::string EventName(const Event& event);

// The window an event is reported against (its "event window").
WindowId EventWindow(const Event& event);

}  // namespace xproto

#endif  // SRC_XPROTO_EVENTS_H_
