// Event structures delivered by the server simulator.  One struct per
// protocol event; `Event` is the variant delivered to client queues.
#ifndef SRC_XPROTO_EVENTS_H_
#define SRC_XPROTO_EVENTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "src/base/geometry.h"
#include "src/xproto/types.h"

namespace xproto {

struct ButtonEvent {
  bool press = true;
  WindowId window = kNone;     // Event window (where delivered).
  WindowId subwindow = kNone;  // Child of event window containing pointer.
  int button = 1;
  uint32_t modifiers = 0;
  xbase::Point root_pos;  // Pointer position in (real) root coordinates.
  xbase::Point pos;       // Pointer position relative to event window.
  Timestamp time = 0;
  friend bool operator==(const ButtonEvent&, const ButtonEvent&) = default;
};

struct MotionEvent {
  WindowId window = kNone;
  WindowId subwindow = kNone;
  uint32_t modifiers = 0;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
  friend bool operator==(const MotionEvent&, const MotionEvent&) = default;
};

struct KeyEvent {
  bool press = true;
  WindowId window = kNone;
  KeySym keysym = 0;
  uint32_t modifiers = 0;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
  friend bool operator==(const KeyEvent&, const KeyEvent&) = default;
};

struct CrossingEvent {
  bool enter = true;
  WindowId window = kNone;
  xbase::Point root_pos;
  xbase::Point pos;
  Timestamp time = 0;
  friend bool operator==(const CrossingEvent&, const CrossingEvent&) = default;
};

struct ExposeEvent {
  WindowId window = kNone;
  xbase::Rect area;
  int count = 0;  // Number of Expose events still to come for this window.
  friend bool operator==(const ExposeEvent&, const ExposeEvent&) = default;
};

struct CreateNotifyEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  xbase::Rect geometry;
  bool override_redirect = false;
  friend bool operator==(const CreateNotifyEvent&, const CreateNotifyEvent&) = default;
};

struct DestroyNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  friend bool operator==(const DestroyNotifyEvent&, const DestroyNotifyEvent&) = default;
};

struct MapRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  friend bool operator==(const MapRequestEvent&, const MapRequestEvent&) = default;
};

struct MapNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  bool override_redirect = false;
  friend bool operator==(const MapNotifyEvent&, const MapNotifyEvent&) = default;
};

struct UnmapNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  bool from_configure = false;
  friend bool operator==(const UnmapNotifyEvent&, const UnmapNotifyEvent&) = default;
};

struct ReparentNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  WindowId parent = kNone;
  xbase::Point pos;
  bool override_redirect = false;
  friend bool operator==(const ReparentNotifyEvent&, const ReparentNotifyEvent&) = default;
};

struct ConfigureRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  uint16_t value_mask = 0;
  xbase::Rect geometry;
  int border_width = 0;
  WindowId sibling = kNone;
  StackMode stack_mode = StackMode::kAbove;
  friend bool operator==(const ConfigureRequestEvent&, const ConfigureRequestEvent&) = default;
};

struct ConfigureNotifyEvent {
  WindowId event_window = kNone;
  WindowId window = kNone;
  xbase::Rect geometry;  // Relative to parent; synthetic events carry
                         // root-relative coordinates per ICCCM §4.1.5.
  int border_width = 0;
  WindowId above_sibling = kNone;
  bool override_redirect = false;
  bool synthetic = false;
  friend bool operator==(const ConfigureNotifyEvent&, const ConfigureNotifyEvent&) = default;
};

struct CirculateRequestEvent {
  WindowId parent = kNone;
  WindowId window = kNone;
  bool place_on_top = true;
  friend bool operator==(const CirculateRequestEvent&, const CirculateRequestEvent&) = default;
};

struct PropertyNotifyEvent {
  WindowId window = kNone;
  AtomId atom = kAtomNone;
  PropertyState state = PropertyState::kNewValue;
  Timestamp time = 0;
  friend bool operator==(const PropertyNotifyEvent&, const PropertyNotifyEvent&) = default;
};

struct ClientMessageEvent {
  WindowId window = kNone;
  AtomId message_type = kAtomNone;
  int format = 32;
  std::array<uint32_t, 5> data = {};
  friend bool operator==(const ClientMessageEvent&, const ClientMessageEvent&) = default;
};

struct FocusEvent {
  bool in = true;
  WindowId window = kNone;
  friend bool operator==(const FocusEvent&, const FocusEvent&) = default;
};

struct ShapeNotifyEvent {
  WindowId window = kNone;
  bool shaped = false;
  xbase::Rect extents;
  friend bool operator==(const ShapeNotifyEvent&, const ShapeNotifyEvent&) = default;
};

using Event =
    std::variant<ButtonEvent, MotionEvent, KeyEvent, CrossingEvent, ExposeEvent,
                 CreateNotifyEvent, DestroyNotifyEvent, MapRequestEvent, MapNotifyEvent,
                 UnmapNotifyEvent, ReparentNotifyEvent, ConfigureRequestEvent,
                 ConfigureNotifyEvent, CirculateRequestEvent, PropertyNotifyEvent,
                 ClientMessageEvent, FocusEvent, ShapeNotifyEvent>;

// Human-readable event name for logging/tests.
std::string EventName(const Event& event);

// The window an event is reported against (its "event window").
WindowId EventWindow(const Event& event);

}  // namespace xproto

#endif  // SRC_XPROTO_EVENTS_H_
