#include "src/xproto/sanitize.h"

#include <algorithm>

namespace xproto {

namespace {

// Clamp helper that records whether it changed anything.
bool ClampInt(int* value, int lo, int hi) {
  int clamped = std::clamp(*value, lo, hi);
  if (clamped == *value) {
    return false;
  }
  *value = clamped;
  return true;
}

}  // namespace

bool SanitizeSizeHints(SizeHints* hints, SanitizerStats* stats) {
  bool repaired = false;

  // Position/size fields: the protocol carries signed 32-bit values but only
  // signed 16-bit is representable on the glass.
  bool clamped = false;
  clamped |= ClampInt(&hints->x, -kMaxCoordinate, kMaxCoordinate);
  clamped |= ClampInt(&hints->y, -kMaxCoordinate, kMaxCoordinate);
  clamped |= ClampInt(&hints->width, 0, kMaxCoordinate);
  clamped |= ClampInt(&hints->height, 0, kMaxCoordinate);
  clamped |= ClampInt(&hints->min_width, 1, kMaxCoordinate);
  clamped |= ClampInt(&hints->min_height, 1, kMaxCoordinate);
  clamped |= ClampInt(&hints->max_width, 1, kMaxCoordinate);
  clamped |= ClampInt(&hints->max_height, 1, kMaxCoordinate);
  if (clamped) {
    ++stats->size_clamped;
    repaired = true;
  }

  // Inverted min > max: swapping preserves the client's likely intent better
  // than rejecting the whole block (a constrained window beats no hints).
  if (hints->min_width > hints->max_width || hints->min_height > hints->max_height) {
    if (hints->min_width > hints->max_width) {
      std::swap(hints->min_width, hints->max_width);
    }
    if (hints->min_height > hints->max_height) {
      std::swap(hints->min_height, hints->max_height);
    }
    ++stats->min_max_swapped;
    repaired = true;
  }

  // Zero/negative resize increments are the classic WM divide-by-zero.
  if (hints->width_inc <= 0 || hints->height_inc <= 0) {
    hints->width_inc = std::max(hints->width_inc, 1);
    hints->height_inc = std::max(hints->height_inc, 1);
    ++stats->increments_rejected;
    repaired = true;
  }

  return repaired;
}

bool SanitizeWmHints(WmHints* hints, SanitizerStats* stats) {
  bool repaired = false;
  bool clamped = false;
  clamped |= ClampInt(&hints->icon_position.x, -kMaxCoordinate, kMaxCoordinate);
  clamped |= ClampInt(&hints->icon_position.y, -kMaxCoordinate, kMaxCoordinate);
  if (clamped) {
    ++stats->icon_geometry_clamped;
    repaired = true;
  }
  if (hints->icon_pixmap_name.size() > kMaxIconNameBytes) {
    hints->icon_pixmap_name.resize(kMaxIconNameBytes);
    ++stats->icon_geometry_clamped;
    repaired = true;
  }
  switch (hints->initial_state) {
    case WmState::kWithdrawn:
    case WmState::kNormal:
    case WmState::kIconic:
      break;
    default:
      hints->initial_state = WmState::kNormal;
      ++stats->states_rejected;
      repaired = true;
      break;
  }
  return repaired;
}

bool SanitizeClientString(std::string* s, size_t cap, SanitizerStats* stats) {
  bool repaired = false;
  if (s->size() > cap) {
    s->resize(cap);
    repaired = true;
  }
  // Strip NUL and C0 control characters except tab; they corrupt log lines
  // and the newline-framed property protocols (SWM_COMMAND, restart info).
  std::string cleaned;
  cleaned.reserve(s->size());
  for (char c : *s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 || c == '\t') {
      cleaned.push_back(c);
    } else {
      repaired = true;
    }
  }
  if (repaired) {
    *s = std::move(cleaned);
    ++stats->strings_truncated;
  }
  return repaired;
}

bool SanitizeWmClass(WmClass* wm_class, SanitizerStats* stats) {
  bool a = SanitizeClientString(&wm_class->instance, kMaxWmClassBytes, stats);
  bool b = SanitizeClientString(&wm_class->clazz, kMaxWmClassBytes, stats);
  return a || b;
}

bool DecodeWmClass(const std::string& raw, WmClass* out, SanitizerStats* stats) {
  bool repaired = false;
  size_t first_nul = raw.find('\0');
  if (first_nul == std::string::npos) {
    // No separator at all: the whole payload is the instance name.
    out->instance = raw;
    out->clazz.clear();
    ++stats->truncated_decodes;
    repaired = true;
  } else {
    out->instance = raw.substr(0, first_nul);
    size_t second_nul = raw.find('\0', first_nul + 1);
    if (second_nul == std::string::npos) {
      // Missing trailing NUL: the class half ran to the end of the property
      // unterminated.  Take it as written — a decoder that trusts the
      // terminator walks off the end of the buffer here.
      out->clazz = raw.substr(first_nul + 1);
      ++stats->truncated_decodes;
      repaired = true;
    } else {
      out->clazz = raw.substr(first_nul + 1, second_nul - first_nul - 1);
      if (second_nul + 1 != raw.size()) {
        // Bytes after the terminating NUL (or more than two strings): the
        // spec says exactly two.  Excess is dropped and counted.
        ++stats->truncated_decodes;
        repaired = true;
      }
    }
  }
  repaired |= SanitizeWmClass(out, stats);
  return repaired;
}

WindowId SanitizeTransientFor(WindowId window, WindowId transient_for,
                              SanitizerStats* stats) {
  if (transient_for == window && transient_for != kNone) {
    ++stats->transient_self_broken;
    return kNone;
  }
  return transient_for;
}

}  // namespace xproto
