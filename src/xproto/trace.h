// Deterministic session traces (docs/PROTOCOL.md, "Trace format").
//
// A trace is the complete external stimulus of a server session — client
// connections, request bytes exactly as the parser saw them (including any
// fault-mutated garbage), simulated input, and harness checkpoints — in a
// length-prefixed binary format.  Replaying a trace against a fresh
// server+WM re-drives the session; because the server and WM are themselves
// deterministic, two replays of the same trace produce identical state, which
// is what makes captured chaos-seed traces usable as a regression corpus and
// lets identical traffic be benchmarked against old and new builds.
//
// Trace files are untrusted input: the reader is bounds-checked the same way
// the wire decoder is, and a corrupt file yields a ParseError, not UB.
#ifndef SRC_XPROTO_TRACE_H_
#define SRC_XPROTO_TRACE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/xproto/types.h"
#include "src/xproto/wire.h"

namespace xproto {

inline constexpr uint8_t kTraceMagic[4] = {'S', 'W', 'M', 'T'};
// Version 2 added kReply records (the server's honest outbound reply bytes,
// captured before any transport fault touches them).  The parser accepts
// version-1 files — the PR-6 corpus keeps replaying unchanged.
inline constexpr uint32_t kTraceVersion = 2;
inline constexpr uint32_t kMinTraceVersion = 1;
// Hard cap on one record's payload (a request buffer, a machine name...).
inline constexpr size_t kMaxTraceRecordBytes = 1 << 20;

enum class TraceRecordType : uint8_t {
  kConnect = 1,     // client id + machine string.
  kDisconnect = 2,  // client id.
  kRequest = 3,     // client id + raw request bytes (one DispatchBytes call).
  kMotion = 4,      // pointer motion to (x, y).
  kButton = 5,      // button press/release + modifiers.
  kKey = 6,         // keysym press/release + modifiers.
  kWarp = 7,        // pointer warp: screen + (x, y).
  kPump = 8,        // harness checkpoint: the WM drained its events here.
  kExpect = 9,      // footer: counters the recording session ended with.
  kReply = 10,      // client id + reply frame bytes the server emitted.
};

struct TraceRecord {
  TraceRecordType type = TraceRecordType::kPump;
  // kConnect / kDisconnect / kRequest.
  ClientId client = 0;
  std::string machine;         // kConnect.
  std::vector<uint8_t> bytes;  // kRequest / kReply: raw wire bytes.
  // kMotion / kWarp.
  int x = 0;
  int y = 0;
  int screen = 0;
  // kButton / kKey.
  int button = 0;
  KeySym keysym = 0;
  bool press = false;
  uint32_t modifiers = 0;
  // kExpect: the recording session's final counters, so a replay can verify
  // it reproduced the recorded session bit-for-bit.
  uint64_t expect_requests = 0;
  uint64_t expect_draw_ops = 0;
  uint64_t expect_pixels = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

struct Trace {
  std::vector<TraceRecord> records;

  friend bool operator==(const Trace&, const Trace&) = default;
};

// ---- Serialization ----------------------------------------------------------

std::vector<uint8_t> SerializeTrace(const Trace& trace);
// Bounds-checked parse; on failure returns nullopt and fills `*error`.
std::optional<Trace> ParseTrace(std::span<const uint8_t> bytes, ParseError* error);

// File IO (binary).  Read goes through ParseTrace — a corrupt or truncated
// file is a ParseError, never a crash.
bool WriteTraceFile(const std::string& path, const Trace& trace);
std::optional<Trace> ReadTraceFile(const std::string& path, ParseError* error);

// ---- Recording --------------------------------------------------------------

// Accumulates records.  The Server calls the Record* hooks when a recorder
// is installed (Server::SetTraceRecorder); the test harness adds kPump
// checkpoints and the kExpect footer itself.
class TraceRecorder {
 public:
  void RecordConnect(ClientId client, const std::string& machine);
  void RecordDisconnect(ClientId client);
  void RecordRequestBytes(ClientId client, std::span<const uint8_t> bytes);
  void RecordReplyBytes(ClientId client, std::span<const uint8_t> bytes);
  void RecordMotion(int x, int y);
  void RecordButton(int button, bool press, uint32_t modifiers);
  void RecordKey(KeySym keysym, bool press, uint32_t modifiers);
  void RecordWarp(int screen, int x, int y);
  void RecordPump();
  void RecordExpect(uint64_t requests, uint64_t draw_ops, uint64_t pixels);

  const Trace& trace() const { return trace_; }
  Trace Take() { return std::move(trace_); }

 private:
  Trace trace_;
};

}  // namespace xproto

#endif  // SRC_XPROTO_TRACE_H_
