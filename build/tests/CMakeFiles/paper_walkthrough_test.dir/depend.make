# Empty dependencies file for paper_walkthrough_test.
# This may be replaced when dependencies are built.
