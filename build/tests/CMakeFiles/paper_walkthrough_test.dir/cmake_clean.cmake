file(REMOVE_RECURSE
  "CMakeFiles/paper_walkthrough_test.dir/paper_walkthrough_test.cc.o"
  "CMakeFiles/paper_walkthrough_test.dir/paper_walkthrough_test.cc.o.d"
  "paper_walkthrough_test"
  "paper_walkthrough_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
