# Empty dependencies file for oi_layout_test.
# This may be replaced when dependencies are built.
