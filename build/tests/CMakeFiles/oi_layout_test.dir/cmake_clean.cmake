file(REMOVE_RECURSE
  "CMakeFiles/oi_layout_test.dir/oi_layout_test.cc.o"
  "CMakeFiles/oi_layout_test.dir/oi_layout_test.cc.o.d"
  "oi_layout_test"
  "oi_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oi_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
