# Empty dependencies file for swm_functions_test.
# This may be replaced when dependencies are built.
