file(REMOVE_RECURSE
  "CMakeFiles/swm_functions_test.dir/swm_functions_test.cc.o"
  "CMakeFiles/swm_functions_test.dir/swm_functions_test.cc.o.d"
  "swm_functions_test"
  "swm_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
