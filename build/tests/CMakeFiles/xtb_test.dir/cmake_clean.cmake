file(REMOVE_RECURSE
  "CMakeFiles/xtb_test.dir/xtb_test.cc.o"
  "CMakeFiles/xtb_test.dir/xtb_test.cc.o.d"
  "xtb_test"
  "xtb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
