file(REMOVE_RECURSE
  "CMakeFiles/swm_session_test.dir/swm_session_test.cc.o"
  "CMakeFiles/swm_session_test.dir/swm_session_test.cc.o.d"
  "swm_session_test"
  "swm_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
