# Empty compiler generated dependencies file for swm_session_test.
# This may be replaced when dependencies are built.
