# Empty compiler generated dependencies file for swm_manage_test.
# This may be replaced when dependencies are built.
