file(REMOVE_RECURSE
  "CMakeFiles/swm_manage_test.dir/swm_manage_test.cc.o"
  "CMakeFiles/swm_manage_test.dir/swm_manage_test.cc.o.d"
  "swm_manage_test"
  "swm_manage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_manage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
