file(REMOVE_RECURSE
  "CMakeFiles/twm_test.dir/twm_test.cc.o"
  "CMakeFiles/twm_test.dir/twm_test.cc.o.d"
  "twm_test"
  "twm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
