# Empty compiler generated dependencies file for twm_test.
# This may be replaced when dependencies are built.
