file(REMOVE_RECURSE
  "CMakeFiles/bitmap_canvas_test.dir/bitmap_canvas_test.cc.o"
  "CMakeFiles/bitmap_canvas_test.dir/bitmap_canvas_test.cc.o.d"
  "bitmap_canvas_test"
  "bitmap_canvas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_canvas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
