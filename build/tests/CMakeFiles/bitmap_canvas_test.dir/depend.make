# Empty dependencies file for bitmap_canvas_test.
# This may be replaced when dependencies are built.
