file(REMOVE_RECURSE
  "CMakeFiles/xlib_test.dir/xlib_test.cc.o"
  "CMakeFiles/xlib_test.dir/xlib_test.cc.o.d"
  "xlib_test"
  "xlib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
