# Empty dependencies file for xlib_test.
# This may be replaced when dependencies are built.
