file(REMOVE_RECURSE
  "CMakeFiles/swm_render_test.dir/swm_render_test.cc.o"
  "CMakeFiles/swm_render_test.dir/swm_render_test.cc.o.d"
  "swm_render_test"
  "swm_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
