# Empty compiler generated dependencies file for swm_render_test.
# This may be replaced when dependencies are built.
