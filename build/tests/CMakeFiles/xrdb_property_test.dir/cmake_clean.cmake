file(REMOVE_RECURSE
  "CMakeFiles/xrdb_property_test.dir/xrdb_property_test.cc.o"
  "CMakeFiles/xrdb_property_test.dir/xrdb_property_test.cc.o.d"
  "xrdb_property_test"
  "xrdb_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrdb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
