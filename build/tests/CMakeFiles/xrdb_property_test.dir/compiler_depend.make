# Empty compiler generated dependencies file for xrdb_property_test.
# This may be replaced when dependencies are built.
