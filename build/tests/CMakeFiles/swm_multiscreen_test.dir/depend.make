# Empty dependencies file for swm_multiscreen_test.
# This may be replaced when dependencies are built.
