file(REMOVE_RECURSE
  "CMakeFiles/swm_multiscreen_test.dir/swm_multiscreen_test.cc.o"
  "CMakeFiles/swm_multiscreen_test.dir/swm_multiscreen_test.cc.o.d"
  "swm_multiscreen_test"
  "swm_multiscreen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_multiscreen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
