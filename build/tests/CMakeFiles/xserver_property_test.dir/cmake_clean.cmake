file(REMOVE_RECURSE
  "CMakeFiles/xserver_property_test.dir/xserver_property_test.cc.o"
  "CMakeFiles/xserver_property_test.dir/xserver_property_test.cc.o.d"
  "xserver_property_test"
  "xserver_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xserver_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
