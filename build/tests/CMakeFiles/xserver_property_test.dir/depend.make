# Empty dependencies file for xserver_property_test.
# This may be replaced when dependencies are built.
