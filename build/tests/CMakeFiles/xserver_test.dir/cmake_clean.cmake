file(REMOVE_RECURSE
  "CMakeFiles/xserver_test.dir/xserver_test.cc.o"
  "CMakeFiles/xserver_test.dir/xserver_test.cc.o.d"
  "xserver_test"
  "xserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
