# Empty dependencies file for swm_vdesk_test.
# This may be replaced when dependencies are built.
