file(REMOVE_RECURSE
  "CMakeFiles/swm_vdesk_test.dir/swm_vdesk_test.cc.o"
  "CMakeFiles/swm_vdesk_test.dir/swm_vdesk_test.cc.o.d"
  "swm_vdesk_test"
  "swm_vdesk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_vdesk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
