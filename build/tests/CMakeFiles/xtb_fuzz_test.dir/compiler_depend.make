# Empty compiler generated dependencies file for xtb_fuzz_test.
# This may be replaced when dependencies are built.
