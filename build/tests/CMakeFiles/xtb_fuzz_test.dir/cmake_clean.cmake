file(REMOVE_RECURSE
  "CMakeFiles/xtb_fuzz_test.dir/xtb_fuzz_test.cc.o"
  "CMakeFiles/xtb_fuzz_test.dir/xtb_fuzz_test.cc.o.d"
  "xtb_fuzz_test"
  "xtb_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtb_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
