file(REMOVE_RECURSE
  "CMakeFiles/swm_extensions_test.dir/swm_extensions_test.cc.o"
  "CMakeFiles/swm_extensions_test.dir/swm_extensions_test.cc.o.d"
  "swm_extensions_test"
  "swm_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
