# Empty dependencies file for swm_extensions_test.
# This may be replaced when dependencies are built.
