# Empty compiler generated dependencies file for swm_icons_test.
# This may be replaced when dependencies are built.
