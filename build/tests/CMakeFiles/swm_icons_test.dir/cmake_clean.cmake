file(REMOVE_RECURSE
  "CMakeFiles/swm_icons_test.dir/swm_icons_test.cc.o"
  "CMakeFiles/swm_icons_test.dir/swm_icons_test.cc.o.d"
  "swm_icons_test"
  "swm_icons_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm_icons_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
