# Empty compiler generated dependencies file for xrdb_test.
# This may be replaced when dependencies are built.
