file(REMOVE_RECURSE
  "CMakeFiles/xrdb_test.dir/xrdb_test.cc.o"
  "CMakeFiles/xrdb_test.dir/xrdb_test.cc.o.d"
  "xrdb_test"
  "xrdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
