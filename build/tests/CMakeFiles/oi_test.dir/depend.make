# Empty dependencies file for oi_test.
# This may be replaced when dependencies are built.
