file(REMOVE_RECURSE
  "CMakeFiles/oi_test.dir/oi_test.cc.o"
  "CMakeFiles/oi_test.dir/oi_test.cc.o.d"
  "oi_test"
  "oi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
