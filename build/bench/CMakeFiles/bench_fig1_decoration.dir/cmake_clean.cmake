file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_decoration.dir/bench_fig1_decoration.cc.o"
  "CMakeFiles/bench_fig1_decoration.dir/bench_fig1_decoration.cc.o.d"
  "bench_fig1_decoration"
  "bench_fig1_decoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_decoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
