file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_root_panel.dir/bench_fig2_root_panel.cc.o"
  "CMakeFiles/bench_fig2_root_panel.dir/bench_fig2_root_panel.cc.o.d"
  "bench_fig2_root_panel"
  "bench_fig2_root_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_root_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
