# Empty dependencies file for bench_fig2_root_panel.
# This may be replaced when dependencies are built.
