# Empty dependencies file for bench_eval_toolkit_overhead.
# This may be replaced when dependencies are built.
