file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_toolkit_overhead.dir/bench_eval_toolkit_overhead.cc.o"
  "CMakeFiles/bench_eval_toolkit_overhead.dir/bench_eval_toolkit_overhead.cc.o.d"
  "bench_eval_toolkit_overhead"
  "bench_eval_toolkit_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_toolkit_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
