file(REMOVE_RECURSE
  "CMakeFiles/bench_session.dir/bench_session.cc.o"
  "CMakeFiles/bench_session.dir/bench_session.cc.o.d"
  "bench_session"
  "bench_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
