# Empty dependencies file for bench_session.
# This may be replaced when dependencies are built.
