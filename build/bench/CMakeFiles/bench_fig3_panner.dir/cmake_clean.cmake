file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_panner.dir/bench_fig3_panner.cc.o"
  "CMakeFiles/bench_fig3_panner.dir/bench_fig3_panner.cc.o.d"
  "bench_fig3_panner"
  "bench_fig3_panner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_panner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
