# Empty dependencies file for bench_eval_resource_db.
# This may be replaced when dependencies are built.
