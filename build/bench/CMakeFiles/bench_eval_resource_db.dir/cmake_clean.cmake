file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_resource_db.dir/bench_eval_resource_db.cc.o"
  "CMakeFiles/bench_eval_resource_db.dir/bench_eval_resource_db.cc.o.d"
  "bench_eval_resource_db"
  "bench_eval_resource_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_resource_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
