# Empty dependencies file for bench_shape.
# This may be replaced when dependencies are built.
