file(REMOVE_RECURSE
  "CMakeFiles/bench_shape.dir/bench_shape.cc.o"
  "CMakeFiles/bench_shape.dir/bench_shape.cc.o.d"
  "bench_shape"
  "bench_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
