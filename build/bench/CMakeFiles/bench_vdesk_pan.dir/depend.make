# Empty dependencies file for bench_vdesk_pan.
# This may be replaced when dependencies are built.
