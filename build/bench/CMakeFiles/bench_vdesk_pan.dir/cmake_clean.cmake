file(REMOVE_RECURSE
  "CMakeFiles/bench_vdesk_pan.dir/bench_vdesk_pan.cc.o"
  "CMakeFiles/bench_vdesk_pan.dir/bench_vdesk_pan.cc.o.d"
  "bench_vdesk_pan"
  "bench_vdesk_pan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vdesk_pan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
