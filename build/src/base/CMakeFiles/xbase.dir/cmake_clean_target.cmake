file(REMOVE_RECURSE
  "libxbase.a"
)
