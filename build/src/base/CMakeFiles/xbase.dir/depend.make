# Empty dependencies file for xbase.
# This may be replaced when dependencies are built.
