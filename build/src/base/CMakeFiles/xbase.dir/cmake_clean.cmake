file(REMOVE_RECURSE
  "CMakeFiles/xbase.dir/bitmap.cc.o"
  "CMakeFiles/xbase.dir/bitmap.cc.o.d"
  "CMakeFiles/xbase.dir/canvas.cc.o"
  "CMakeFiles/xbase.dir/canvas.cc.o.d"
  "CMakeFiles/xbase.dir/geometry.cc.o"
  "CMakeFiles/xbase.dir/geometry.cc.o.d"
  "CMakeFiles/xbase.dir/interner.cc.o"
  "CMakeFiles/xbase.dir/interner.cc.o.d"
  "CMakeFiles/xbase.dir/logging.cc.o"
  "CMakeFiles/xbase.dir/logging.cc.o.d"
  "CMakeFiles/xbase.dir/region.cc.o"
  "CMakeFiles/xbase.dir/region.cc.o.d"
  "CMakeFiles/xbase.dir/strings.cc.o"
  "CMakeFiles/xbase.dir/strings.cc.o.d"
  "libxbase.a"
  "libxbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
