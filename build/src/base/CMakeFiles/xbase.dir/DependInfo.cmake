
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bitmap.cc" "src/base/CMakeFiles/xbase.dir/bitmap.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/bitmap.cc.o.d"
  "/root/repo/src/base/canvas.cc" "src/base/CMakeFiles/xbase.dir/canvas.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/canvas.cc.o.d"
  "/root/repo/src/base/geometry.cc" "src/base/CMakeFiles/xbase.dir/geometry.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/geometry.cc.o.d"
  "/root/repo/src/base/interner.cc" "src/base/CMakeFiles/xbase.dir/interner.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/interner.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/base/CMakeFiles/xbase.dir/logging.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/logging.cc.o.d"
  "/root/repo/src/base/region.cc" "src/base/CMakeFiles/xbase.dir/region.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/region.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/base/CMakeFiles/xbase.dir/strings.cc.o" "gcc" "src/base/CMakeFiles/xbase.dir/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
