file(REMOVE_RECURSE
  "CMakeFiles/xrdb.dir/database.cc.o"
  "CMakeFiles/xrdb.dir/database.cc.o.d"
  "libxrdb.a"
  "libxrdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
