file(REMOVE_RECURSE
  "libxrdb.a"
)
