# Empty dependencies file for xrdb.
# This may be replaced when dependencies are built.
