# Empty dependencies file for swm.
# This may be replaced when dependencies are built.
