
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swm/panner.cc" "src/swm/CMakeFiles/swm.dir/panner.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/panner.cc.o.d"
  "/root/repo/src/swm/scrollbars.cc" "src/swm/CMakeFiles/swm.dir/scrollbars.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/scrollbars.cc.o.d"
  "/root/repo/src/swm/session.cc" "src/swm/CMakeFiles/swm.dir/session.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/session.cc.o.d"
  "/root/repo/src/swm/swmcmd.cc" "src/swm/CMakeFiles/swm.dir/swmcmd.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/swmcmd.cc.o.d"
  "/root/repo/src/swm/templates.cc" "src/swm/CMakeFiles/swm.dir/templates.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/templates.cc.o.d"
  "/root/repo/src/swm/vdesk.cc" "src/swm/CMakeFiles/swm.dir/vdesk.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/vdesk.cc.o.d"
  "/root/repo/src/swm/wm.cc" "src/swm/CMakeFiles/swm.dir/wm.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/wm.cc.o.d"
  "/root/repo/src/swm/wm_events.cc" "src/swm/CMakeFiles/swm.dir/wm_events.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/wm_events.cc.o.d"
  "/root/repo/src/swm/wm_functions.cc" "src/swm/CMakeFiles/swm.dir/wm_functions.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/wm_functions.cc.o.d"
  "/root/repo/src/swm/wm_icons.cc" "src/swm/CMakeFiles/swm.dir/wm_icons.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/wm_icons.cc.o.d"
  "/root/repo/src/swm/wm_manage.cc" "src/swm/CMakeFiles/swm.dir/wm_manage.cc.o" "gcc" "src/swm/CMakeFiles/swm.dir/wm_manage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oi/CMakeFiles/oi.dir/DependInfo.cmake"
  "/root/repo/build/src/xlib/CMakeFiles/xlib.dir/DependInfo.cmake"
  "/root/repo/build/src/xrdb/CMakeFiles/xrdb.dir/DependInfo.cmake"
  "/root/repo/build/src/xtb/CMakeFiles/xtb.dir/DependInfo.cmake"
  "/root/repo/build/src/xserver/CMakeFiles/xserver.dir/DependInfo.cmake"
  "/root/repo/build/src/xproto/CMakeFiles/xproto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
