file(REMOVE_RECURSE
  "CMakeFiles/swm.dir/panner.cc.o"
  "CMakeFiles/swm.dir/panner.cc.o.d"
  "CMakeFiles/swm.dir/scrollbars.cc.o"
  "CMakeFiles/swm.dir/scrollbars.cc.o.d"
  "CMakeFiles/swm.dir/session.cc.o"
  "CMakeFiles/swm.dir/session.cc.o.d"
  "CMakeFiles/swm.dir/swmcmd.cc.o"
  "CMakeFiles/swm.dir/swmcmd.cc.o.d"
  "CMakeFiles/swm.dir/templates.cc.o"
  "CMakeFiles/swm.dir/templates.cc.o.d"
  "CMakeFiles/swm.dir/vdesk.cc.o"
  "CMakeFiles/swm.dir/vdesk.cc.o.d"
  "CMakeFiles/swm.dir/wm.cc.o"
  "CMakeFiles/swm.dir/wm.cc.o.d"
  "CMakeFiles/swm.dir/wm_events.cc.o"
  "CMakeFiles/swm.dir/wm_events.cc.o.d"
  "CMakeFiles/swm.dir/wm_functions.cc.o"
  "CMakeFiles/swm.dir/wm_functions.cc.o.d"
  "CMakeFiles/swm.dir/wm_icons.cc.o"
  "CMakeFiles/swm.dir/wm_icons.cc.o.d"
  "CMakeFiles/swm.dir/wm_manage.cc.o"
  "CMakeFiles/swm.dir/wm_manage.cc.o.d"
  "libswm.a"
  "libswm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
