file(REMOVE_RECURSE
  "libswm.a"
)
