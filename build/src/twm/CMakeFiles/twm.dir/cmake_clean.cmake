file(REMOVE_RECURSE
  "CMakeFiles/twm.dir/twm.cc.o"
  "CMakeFiles/twm.dir/twm.cc.o.d"
  "libtwm.a"
  "libtwm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
