# Empty compiler generated dependencies file for twm.
# This may be replaced when dependencies are built.
