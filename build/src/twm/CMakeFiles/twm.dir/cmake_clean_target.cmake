file(REMOVE_RECURSE
  "libtwm.a"
)
