file(REMOVE_RECURSE
  "CMakeFiles/xserver.dir/pointer.cc.o"
  "CMakeFiles/xserver.dir/pointer.cc.o.d"
  "CMakeFiles/xserver.dir/render.cc.o"
  "CMakeFiles/xserver.dir/render.cc.o.d"
  "CMakeFiles/xserver.dir/server.cc.o"
  "CMakeFiles/xserver.dir/server.cc.o.d"
  "CMakeFiles/xserver.dir/shape.cc.o"
  "CMakeFiles/xserver.dir/shape.cc.o.d"
  "libxserver.a"
  "libxserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
