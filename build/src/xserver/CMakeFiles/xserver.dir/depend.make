# Empty dependencies file for xserver.
# This may be replaced when dependencies are built.
