file(REMOVE_RECURSE
  "libxserver.a"
)
