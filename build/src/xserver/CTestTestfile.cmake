# CMake generated Testfile for 
# Source directory: /root/repo/src/xserver
# Build directory: /root/repo/build/src/xserver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
