
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oi/menu.cc" "src/oi/CMakeFiles/oi.dir/menu.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/menu.cc.o.d"
  "/root/repo/src/oi/object.cc" "src/oi/CMakeFiles/oi.dir/object.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/object.cc.o.d"
  "/root/repo/src/oi/panel.cc" "src/oi/CMakeFiles/oi.dir/panel.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/panel.cc.o.d"
  "/root/repo/src/oi/panel_def.cc" "src/oi/CMakeFiles/oi.dir/panel_def.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/panel_def.cc.o.d"
  "/root/repo/src/oi/toolkit.cc" "src/oi/CMakeFiles/oi.dir/toolkit.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/toolkit.cc.o.d"
  "/root/repo/src/oi/widgets.cc" "src/oi/CMakeFiles/oi.dir/widgets.cc.o" "gcc" "src/oi/CMakeFiles/oi.dir/widgets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xlib/CMakeFiles/xlib.dir/DependInfo.cmake"
  "/root/repo/build/src/xrdb/CMakeFiles/xrdb.dir/DependInfo.cmake"
  "/root/repo/build/src/xtb/CMakeFiles/xtb.dir/DependInfo.cmake"
  "/root/repo/build/src/xproto/CMakeFiles/xproto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xbase.dir/DependInfo.cmake"
  "/root/repo/build/src/xserver/CMakeFiles/xserver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
