file(REMOVE_RECURSE
  "liboi.a"
)
