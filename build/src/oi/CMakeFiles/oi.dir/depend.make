# Empty dependencies file for oi.
# This may be replaced when dependencies are built.
