file(REMOVE_RECURSE
  "CMakeFiles/oi.dir/menu.cc.o"
  "CMakeFiles/oi.dir/menu.cc.o.d"
  "CMakeFiles/oi.dir/object.cc.o"
  "CMakeFiles/oi.dir/object.cc.o.d"
  "CMakeFiles/oi.dir/panel.cc.o"
  "CMakeFiles/oi.dir/panel.cc.o.d"
  "CMakeFiles/oi.dir/panel_def.cc.o"
  "CMakeFiles/oi.dir/panel_def.cc.o.d"
  "CMakeFiles/oi.dir/toolkit.cc.o"
  "CMakeFiles/oi.dir/toolkit.cc.o.d"
  "CMakeFiles/oi.dir/widgets.cc.o"
  "CMakeFiles/oi.dir/widgets.cc.o.d"
  "liboi.a"
  "liboi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
