# CMake generated Testfile for 
# Source directory: /root/repo/src/oi
# Build directory: /root/repo/build/src/oi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
