file(REMOVE_RECURSE
  "CMakeFiles/xlib.dir/client_app.cc.o"
  "CMakeFiles/xlib.dir/client_app.cc.o.d"
  "CMakeFiles/xlib.dir/display.cc.o"
  "CMakeFiles/xlib.dir/display.cc.o.d"
  "CMakeFiles/xlib.dir/icccm.cc.o"
  "CMakeFiles/xlib.dir/icccm.cc.o.d"
  "libxlib.a"
  "libxlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
