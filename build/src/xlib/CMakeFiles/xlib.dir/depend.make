# Empty dependencies file for xlib.
# This may be replaced when dependencies are built.
