# Empty compiler generated dependencies file for xlib.
# This may be replaced when dependencies are built.
