file(REMOVE_RECURSE
  "libxlib.a"
)
