file(REMOVE_RECURSE
  "libxproto.a"
)
