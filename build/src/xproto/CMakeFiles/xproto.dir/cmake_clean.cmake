file(REMOVE_RECURSE
  "CMakeFiles/xproto.dir/events.cc.o"
  "CMakeFiles/xproto.dir/events.cc.o.d"
  "CMakeFiles/xproto.dir/hints.cc.o"
  "CMakeFiles/xproto.dir/hints.cc.o.d"
  "libxproto.a"
  "libxproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
