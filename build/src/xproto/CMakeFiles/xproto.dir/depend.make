# Empty dependencies file for xproto.
# This may be replaced when dependencies are built.
