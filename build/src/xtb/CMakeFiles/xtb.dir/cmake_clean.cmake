file(REMOVE_RECURSE
  "CMakeFiles/xtb.dir/bindings.cc.o"
  "CMakeFiles/xtb.dir/bindings.cc.o.d"
  "libxtb.a"
  "libxtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
