file(REMOVE_RECURSE
  "libxtb.a"
)
