# Empty compiler generated dependencies file for xtb.
# This may be replaced when dependencies are built.
