# Empty compiler generated dependencies file for session_replay.
# This may be replaced when dependencies are built.
