
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/look_and_feel.cpp" "examples/CMakeFiles/look_and_feel.dir/look_and_feel.cpp.o" "gcc" "examples/CMakeFiles/look_and_feel.dir/look_and_feel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swm/CMakeFiles/swm.dir/DependInfo.cmake"
  "/root/repo/build/src/twm/CMakeFiles/twm.dir/DependInfo.cmake"
  "/root/repo/build/src/oi/CMakeFiles/oi.dir/DependInfo.cmake"
  "/root/repo/build/src/xrdb/CMakeFiles/xrdb.dir/DependInfo.cmake"
  "/root/repo/build/src/xtb/CMakeFiles/xtb.dir/DependInfo.cmake"
  "/root/repo/build/src/xlib/CMakeFiles/xlib.dir/DependInfo.cmake"
  "/root/repo/build/src/xserver/CMakeFiles/xserver.dir/DependInfo.cmake"
  "/root/repo/build/src/xproto/CMakeFiles/xproto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
