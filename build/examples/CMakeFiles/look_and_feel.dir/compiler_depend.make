# Empty compiler generated dependencies file for look_and_feel.
# This may be replaced when dependencies are built.
