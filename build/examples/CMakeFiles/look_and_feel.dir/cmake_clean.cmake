file(REMOVE_RECURSE
  "CMakeFiles/look_and_feel.dir/look_and_feel.cpp.o"
  "CMakeFiles/look_and_feel.dir/look_and_feel.cpp.o.d"
  "look_and_feel"
  "look_and_feel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/look_and_feel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
