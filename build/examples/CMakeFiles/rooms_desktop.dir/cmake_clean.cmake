file(REMOVE_RECURSE
  "CMakeFiles/rooms_desktop.dir/rooms_desktop.cpp.o"
  "CMakeFiles/rooms_desktop.dir/rooms_desktop.cpp.o.d"
  "rooms_desktop"
  "rooms_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooms_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
