# Empty dependencies file for rooms_desktop.
# This may be replaced when dependencies are built.
