file(REMOVE_RECURSE
  "CMakeFiles/swmcmd_cli.dir/swmcmd_cli.cpp.o"
  "CMakeFiles/swmcmd_cli.dir/swmcmd_cli.cpp.o.d"
  "swmcmd_cli"
  "swmcmd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmcmd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
