# Empty compiler generated dependencies file for swmcmd_cli.
# This may be replaced when dependencies are built.
