// Policy freedom (paper §1, §3): the same client decorated under the
// OpenLook+ template, the Motif emulation, and a custom user-written
// policy — without recompiling anything.  "It is very easy to implement a
// particular window management policy without the need to learn a new
// programming language."
#include <cstdio>
#include <memory>
#include <string>

#include "src/swm/templates.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace {

// A decoration nobody ships: buttons on the *left side* of the client, to
// show decoration panels are not limited to titlebars (paper §4.1.1:
// "Objects can easily be placed to the sides or below the client window").
constexpr char kCustomPolicy[] = R"(
swm*template: default
swm*decoration: sidebar
swm*panel.sidebar: \
  panel rail +0+0 \
  panel client +1+0
swm*panel.rail: \
  button up +0+0 \
  button name +0+1 \
  button dn +0+2
swm*button.up.label: ^
swm*button.up.bindings: <Btn1> : f.raise
swm*button.dn.label: v
swm*button.dn.bindings: <Btn1> : f.lower
swm*button.name.bindings: <Btn1> : f.move
swm*panner: False
)";

void ShowUnder(const std::string& label, const std::string& template_name,
               const std::string& resources) {
  xserver::Server server({xserver::ScreenConfig{64, 18, false}});
  swm::WindowManager::Options options;
  options.template_name = template_name;
  options.resources = resources.empty() ? "swm*panner: False\n" : resources;
  swm::WindowManager wm(&server, options);
  if (!wm.Start()) {
    return;
  }
  xlib::ClientAppConfig config;
  config.name = "xedit";
  config.wm_class = {"xedit", "XEdit"};
  config.command = {"xedit"};
  config.geometry = {0, 0, 36, 9};
  xlib::ClientApp app(&server, config);
  app.Map();
  wm.ProcessEvents();
  swm::ManagedClient* client = wm.FindClient(app.window());
  std::printf("==== %s (decoration '%s') ====\n%s\n", label.c_str(),
              client != nullptr ? client->decoration_name.c_str() : "?",
              server.RenderScreen(0).ToString().c_str());
}

}  // namespace

int main() {
  ShowUnder("OPEN LOOK emulation", "openlook", "");
  ShowUnder("OSF/Motif emulation", "motif", "");
  ShowUnder("custom user policy: side rail", "default", kCustomPolicy);
  std::printf("available templates:");
  for (const std::string& name : swm::TemplateNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
